//! The paper's resource-ceiling claims, exercised through the public API.

use kernelcv::gpu::{required_device_bytes, GpuError};
use kernelcv::gpu_sim::{ConstantMemory, DeviceSpec, MemoryPool, SimError};
use kernelcv::prelude::*;

#[test]
fn constant_memory_caps_the_grid_at_2048_bandwidths() {
    let sample = PaperDgp.sample(50, 1);
    let ok_grid = BandwidthGrid::linear(0.001, 1.0, 2_048).unwrap();
    assert!(select_bandwidth_gpu(&sample.x, &sample.y, &ok_grid, &GpuConfig::default()).is_ok());
    let bad_grid = BandwidthGrid::linear(0.001, 1.0, 2_049).unwrap();
    let err = select_bandwidth_gpu(&sample.x, &sample.y, &bad_grid, &GpuConfig::default())
        .unwrap_err();
    assert_eq!(err, GpuError::TooManyBandwidths { requested: 2_049, max: 2_048 });
}

#[test]
fn memory_requirement_formula_matches_a_dry_run() {
    // The dry-run pool check and the closed-form requirement must agree on
    // where the 4 GB wall falls.
    let spec = DeviceSpec::tesla_s10();
    let f = std::mem::size_of::<f32>();
    for n in [10_000usize, 20_000, 23_000, 24_000, 30_000] {
        let k = 50;
        let plan = vec![
            n * f,
            n * f,
            n * n * f,
            n * n * f,
            n * k * f,
            n * k * f,
            n * k * f,
            k * f,
        ];
        let pool = MemoryPool::for_device(&spec);
        let dry = pool.check_fit(&plan).is_ok();
        let formula = required_device_bytes(n, k) <= spec.global_mem_bytes;
        assert_eq!(dry, formula, "disagreement at n = {n}");
    }
    // And the wall is where the paper's scaling argument puts it: past
    // n = 20,000 (between 23k and 24k for this allocation set).
    assert!(required_device_bytes(20_000, 50) <= spec.global_mem_bytes);
    assert!(required_device_bytes(24_000, 50) > spec.global_mem_bytes);
}

#[test]
fn oversized_run_fails_with_out_of_memory() {
    // Scale the device down so the failure reproduces cheaply.
    let mut config = GpuConfig::default();
    config.spec.global_mem_bytes = 4 << 20; // 4 MiB "device"
    let sample = PaperDgp.sample(800, 2); // needs 2·800²·4 ≈ 5.1 MiB
    let grid = BandwidthGrid::paper_default(&sample.x, 20).unwrap();
    match select_bandwidth_gpu(&sample.x, &sample.y, &grid, &config) {
        Err(GpuError::Sim(SimError::OutOfMemory { capacity, .. })) => {
            assert_eq!(capacity, 4 << 20);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
    // Halving n brings it back under the ceiling.
    let small = PaperDgp.sample(400, 2);
    let grid = BandwidthGrid::paper_default(&small.x, 20).unwrap();
    assert!(select_bandwidth_gpu(&small.x, &small.y, &grid, &config).is_ok());
}

#[test]
fn modern_device_raises_both_ceilings() {
    let modern = GpuConfig::modern();
    assert!(modern.spec.max_constant_f32() > 2_048);
    let sample = PaperDgp.sample(100, 3);
    let grid = BandwidthGrid::linear(0.001, 1.0, 4_096).unwrap();
    // 4,096 bandwidths fit in the modern constant cache.
    assert!(select_bandwidth_gpu(&sample.x, &sample.y, &grid, &modern).is_ok());
}

#[test]
fn constant_memory_is_byte_accurate() {
    let spec = DeviceSpec::tesla_s10();
    // 2048 f32 = 8192 B exactly.
    assert!(ConstantMemory::new(&spec, &vec![0.0f32; 2_048]).is_ok());
    // 1024 f64 = 8192 B too.
    assert!(ConstantMemory::new(&spec, &vec![0.0f64; 1_024]).is_ok());
    assert!(ConstantMemory::new(&spec, &vec![0.0f64; 1_025]).is_err());
}

#[test]
fn simulated_time_scales_with_sample_size() {
    // Device time should grow super-linearly in n (n threads × n-element
    // rows), reproducing the shape of the paper's Table I GPU column.
    let time_at = |n: usize| {
        let sample = PaperDgp.sample(n, 4);
        let grid = BandwidthGrid::paper_default(&sample.x, 50).unwrap();
        select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default())
            .unwrap()
            .report
            .total_simulated_seconds
    };
    let t500 = time_at(500);
    let t2000 = time_at(2_000);
    assert!(
        t2000 > 4.0 * t500,
        "4× the data should cost ≥ 4× device time: {t500} → {t2000}"
    );
}

#[test]
fn bandwidth_count_is_nearly_free_on_the_gpu() {
    // Table II panel B: k = 5 → 2000 moves the run time by only a few
    // percent. Check the simulated times.
    let sample = PaperDgp.sample(2_048, 5);
    let time_with_k = |k: usize| {
        let grid = BandwidthGrid::paper_default(&sample.x, k).unwrap();
        select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default())
            .unwrap()
            .report
            .total_simulated_seconds
    };
    let t5 = time_with_k(5);
    let t2000 = time_with_k(2_000);
    assert!(
        t2000 < t5 * 1.6,
        "k should be nearly free on the sorted GPU path: k=5 → {t5}, k=2000 → {t2000}"
    );
}
