//! §IV-C replication: "the sequential C code and the CUDA code were checked
//! against each other to ensure that they produced identical results under
//! many different sets of inputs", and the R programs "produced optimal
//! bandwidths in similar ranges".

use kernelcv::core::cv::{cv_profile_naive, cv_profile_sorted, cv_profile_sorted_par};
use kernelcv::prelude::*;

fn assert_close(a: f64, b: f64, rel: f64, ctx: &str) {
    let diff = (a - b).abs();
    assert!(diff <= rel * a.abs().max(b.abs()).max(1e-12), "{ctx}: {a} vs {b}");
}

#[test]
fn sequential_and_gpu_programs_agree_on_many_inputs() {
    for seed in 0..8u64 {
        let n = 100 + (seed as usize) * 40;
        let sample = PaperDgp.sample(n, seed);
        let grid = BandwidthGrid::paper_default(&sample.x, 50).unwrap();
        let cpu = cv_profile_sorted(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap();
        let gpu =
            select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default()).unwrap();
        for m in 0..grid.len() {
            assert_close(
                gpu.scores[m] as f64,
                cpu.scores[m],
                2e-3,
                &format!("seed {seed}, h index {m}"),
            );
        }
        let cpu_opt = cpu.argmin().unwrap();
        assert!(
            (gpu.bandwidth - cpu_opt.bandwidth).abs() <= grid.step() + 1e-9,
            "seed {seed}: gpu {} vs cpu {}",
            gpu.bandwidth,
            cpu_opt.bandwidth
        );
    }
}

#[test]
fn all_cv_strategies_produce_identical_profiles() {
    let sample = PaperDgp.sample(250, 99);
    let grid = BandwidthGrid::paper_default(&sample.x, 40).unwrap();
    let naive = cv_profile_naive(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap();
    let sorted = cv_profile_sorted(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap();
    let parallel = cv_profile_sorted_par(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap();
    for m in 0..grid.len() {
        assert_close(naive.scores[m], sorted.scores[m], 1e-9, "naive vs sorted");
        assert_close(sorted.scores[m], parallel.scores[m], 1e-12, "sorted vs parallel");
        assert_eq!(naive.included[m], sorted.included[m]);
        assert_eq!(sorted.included[m], parallel.included[m]);
    }
}

#[test]
fn np_optimiser_lands_in_the_same_range_as_the_grid_programs() {
    // The paper's check is qualitative ("similar ranges"); we quantify it.
    for seed in 0..4u64 {
        let sample = PaperDgp.sample(300, 50 + seed);
        let grid_sel = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(100))
            .select(&sample.x, &sample.y)
            .unwrap();
        let np_sel = npregbw(&sample.x, &sample.y, NpRegBwOptions::default()).unwrap();
        assert!(
            (grid_sel.bandwidth - np_sel.bw).abs() < 0.1,
            "seed {seed}: grid {} vs np {}",
            grid_sel.bandwidth,
            np_sel.bw
        );
        // A dense grid's optimum can never be materially worse than what
        // the numerical optimiser found (the 100-point grid above can be,
        // because its step near the small optimum is coarse).
        let dense = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(2000))
            .select(&sample.x, &sample.y)
            .unwrap();
        assert!(
            dense.score <= np_sel.fval * 1.01 + 1e-9,
            "seed {seed}: dense grid {} vs optimiser {}",
            dense.score,
            np_sel.fval
        );
    }
}

#[test]
fn grid_search_is_immune_to_restart_seeds_unlike_the_optimiser() {
    let sample = PaperDgp.sample(120, 1234);
    let a = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
        .select(&sample.x, &sample.y)
        .unwrap();
    let b = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
        .select(&sample.x, &sample.y)
        .unwrap();
    assert_eq!(a.bandwidth, b.bandwidth, "grid search must be deterministic");

    // The numerical optimiser's answer can move with the seed (the paper's
    // instability claim); it must never *beat* the dense grid by much while
    // doing so.
    let fine = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(1000))
        .select(&sample.x, &sample.y)
        .unwrap();
    for seed in [1u64, 2, 3, 4, 5] {
        let np_sel = npregbw(
            &sample.x,
            &sample.y,
            NpRegBwOptions { nmulti: 1, seed, ..Default::default() },
        )
        .unwrap();
        assert!(fine.score <= np_sel.fval + 1e-6, "seed {seed}: dense grid should be ≥ optimiser");
    }
}

#[test]
fn gpu_and_cpu_agree_on_non_uniform_designs() {
    // Clustered x values, wide y range: stress the f32 port.
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..60 {
        let base = if i % 3 == 0 { 0.1 } else { 0.8 };
        x.push(base + (i as f64) * 1e-3);
        y.push((i as f64).sin() * 5.0 + 10.0);
    }
    let grid = BandwidthGrid::linear(0.01, 1.0, 30).unwrap();
    let cpu = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    let gpu = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
    for m in 0..grid.len() {
        assert_close(gpu.scores[m] as f64, cpu.scores[m], 5e-3, &format!("h index {m}"));
    }
}
