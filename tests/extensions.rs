//! Integration tests for the extension surfaces: local-linear sweep,
//! canned datasets, binned estimation, bootstrap inference, multi-device
//! execution, and the np density interface — exercised together through
//! the public facade.

use kernelcv::core::bootstrap::{bootstrap_band, bootstrap_bandwidth_distribution};
use kernelcv::core::cv::cv_profile_sorted_ll;
use kernelcv::core::estimate::BinnedNadarayaWatson;
use kernelcv::data::datasets::{cps71_like, gdp_like, motorcycle_like};
use kernelcv::gpu::select_bandwidth_multi_gpu;
use kernelcv::np::{npudensbw, NpUDensBwOptions};
use kernelcv::prelude::*;

#[test]
fn local_linear_sweep_agrees_with_np_local_linear_objective() {
    let sample = PaperDgp.sample(150, 501);
    let grid = BandwidthGrid::paper_default(&sample.x, 20).unwrap();
    let sorted = cv_profile_sorted_ll(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap();
    for (m, &h) in grid.values().iter().enumerate() {
        let np_obj = kernelcv::np::cv_objective(&sample.x, &sample.y, h, &Epanechnikov, true);
        assert!(
            (sorted.scores[m] - np_obj).abs() <= 1e-8 * np_obj.abs().max(1e-9),
            "h={h}: sweep {} vs np objective {np_obj}",
            sorted.scores[m]
        );
    }
}

#[test]
fn datasets_run_through_the_full_selection_pipeline() {
    for (name, data) in [
        ("cps71", cps71_like()),
        ("motorcycle", motorcycle_like()),
        ("gdp", gdp_like()),
    ] {
        let sel = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(100))
            .with_min_included(data.len() * 9 / 10)
            .select(&data.x, &data.y)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(sel.bandwidth > 0.0, "{name}");
        let fit = NadarayaWatson::new(&data.x, &data.y, Epanechnikov, sel.bandwidth).unwrap();
        let defined = fit.predict_many(&data.x).iter().filter(|p| p.is_some()).count();
        assert!(defined as f64 > 0.9 * data.len() as f64, "{name}: {defined} defined");
    }
}

#[test]
fn motorcycle_needs_a_much_tighter_bandwidth_than_gdp() {
    // Relative to each dataset's domain: sharply varying truth → small
    // relative bandwidth; near-linear truth → wide relative bandwidth.
    let rel_bw = |data: &kernelcv::data::Sample| {
        let sel = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(100))
            .with_min_included(data.len() / 2)
            .select(&data.x, &data.y)
            .unwrap();
        let (lo, hi) = data
            .x
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        sel.bandwidth / (hi - lo)
    };
    let moto = rel_bw(&motorcycle_like());
    let gdp = rel_bw(&gdp_like());
    assert!(moto < gdp, "motorcycle {moto} vs gdp {gdp}");
}

#[test]
fn binned_estimator_approximates_exact_on_dataset_scale() {
    let data = cps71_like();
    let h = 4.0;
    let binned = BinnedNadarayaWatson::new(&data.x, &data.y, Epanechnikov, h, 300).unwrap();
    let ages: Vec<f64> = (25..=60).map(|a| a as f64).collect();
    let worst = binned.max_deviation_from_exact(&data.x, &data.y, &ages).unwrap();
    assert!(worst < 0.05, "max deviation {worst}");
}

#[test]
fn bootstrap_and_asymptotic_bands_roughly_agree() {
    use kernelcv::core::ci::confidence_band;
    let sample = PaperDgp.sample(500, 502);
    let h = 0.08;
    let points = [0.3, 0.5, 0.7];
    let boot =
        bootstrap_band(&sample.x, &sample.y, &Epanechnikov, h, &points, 0.95, 300, 9).unwrap();
    let asym = confidence_band(&sample.x, &sample.y, &Epanechnikov, h, &points, 0.95).unwrap();
    for j in 0..points.len() {
        let wb = boot.upper[j] - boot.lower[j];
        let wa = asym.upper[j] - asym.lower[j];
        // Same order of magnitude (they estimate the same variance).
        assert!(wb < 3.0 * wa && wa < 3.0 * wb, "point {j}: bootstrap {wb} vs asymptotic {wa}");
    }
}

#[test]
fn bootstrap_bandwidth_distribution_brackets_the_full_sample_choice() {
    let sample = PaperDgp.sample(300, 503);
    let full = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
        .select(&sample.x, &sample.y)
        .unwrap();
    let hs = bootstrap_bandwidth_distribution(&sample.x, &sample.y, 50, 40, 10).unwrap();
    let lo = hs[hs.len() / 10];
    let hi = hs[hs.len() * 9 / 10];
    assert!(
        lo <= full.bandwidth && full.bandwidth <= hi,
        "full-sample h {} outside bootstrap [{lo}, {hi}]",
        full.bandwidth
    );
}

#[test]
fn multi_device_agrees_with_single_device_through_the_facade() {
    let sample = PaperDgp.sample(400, 504);
    let grid = BandwidthGrid::paper_default(&sample.x, 25).unwrap();
    let single = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default()).unwrap();
    let dual =
        select_bandwidth_multi_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default(), 2)
            .unwrap();
    assert_eq!(single.bandwidth, dual.bandwidth);
    assert!(dual.peak_bytes_per_device < single.report.device_bytes_peak);
}

#[test]
fn np_density_interface_selects_sane_bandwidths_for_uniform_data() {
    let sample = PaperDgp.sample(400, 505);
    let bw = npudensbw(&sample.x, NpUDensBwOptions::default()).unwrap();
    // X ~ U(0,1): the LSCV bandwidth should be a moderate fraction of the
    // domain (a uniform density rewards wide smoothing, but ≤ domain).
    assert!(bw.bw > 0.01 && bw.bw <= 1.0, "h = {}", bw.bw);
}
