//! Determinism guarantees across the workspace: same inputs → bitwise-same
//! outputs, run to run — including the parallel paths (fixed reduction
//! trees) and every seeded randomised facility. Reproducibility is a core
//! deliverable for a statistics package.

use kernelcv::core::bootstrap::bootstrap_band;
use kernelcv::core::cv::{cv_profile_sorted_ll_par, cv_profile_sorted_par};
use kernelcv::prelude::*;

#[test]
fn parallel_cv_profiles_are_bitwise_stable_across_runs() {
    let sample = PaperDgp.sample(300, 701);
    let grid = BandwidthGrid::paper_default(&sample.x, 40).unwrap();
    let runs: Vec<_> = (0..3)
        .map(|_| cv_profile_sorted_par(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap())
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.included, runs[0].included);
        // Rayon's fold/reduce tree can vary, but per-observation terms are
        // combined through commutative f64 additions over identical values;
        // require equality to within one ulp-scale tolerance and flag any
        // drift loudly.
        for (a, b) in r.scores.iter().zip(&runs[0].scores) {
            assert!((a - b).abs() <= 1e-15 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
    let ll_runs: Vec<_> = (0..2)
        .map(|_| cv_profile_sorted_ll_par(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap())
        .collect();
    assert_eq!(ll_runs[0].included, ll_runs[1].included);
}

#[test]
fn gpu_pipeline_is_fully_deterministic() {
    let sample = PaperDgp.sample(200, 702);
    let grid = BandwidthGrid::paper_default(&sample.x, 30).unwrap();
    let a = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default()).unwrap();
    let b = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default()).unwrap();
    assert_eq!(a.scores, b.scores);
    assert_eq!(a.bandwidth, b.bandwidth);
    assert_eq!(a.report.main_kernel.totals, b.report.main_kernel.totals);
    assert_eq!(a.report.main_kernel.simulated_cycles, b.report.main_kernel.simulated_cycles);
}

#[test]
fn seeded_facilities_reproduce_exactly() {
    let sample = PaperDgp.sample(150, 703);
    // npregbw restarts.
    let opts = || NpRegBwOptions { seed: 99, nmulti: 3, ..Default::default() };
    let a = npregbw(&sample.x, &sample.y, opts()).unwrap();
    let b = npregbw(&sample.x, &sample.y, opts()).unwrap();
    assert_eq!(a.bw, b.bw);
    assert_eq!(a.restart_bws, b.restart_bws);
    // Bootstrap bands.
    let band = |s| {
        bootstrap_band(&sample.x, &sample.y, &Epanechnikov, 0.1, &[0.5], 0.9, 32, s).unwrap()
    };
    assert_eq!(band(5), band(5));
    assert_ne!(band(5).lower, band(6).lower);
    // Data generation.
    assert_eq!(PaperDgp.sample(100, 1).x, PaperDgp.sample(100, 1).x);
}

#[test]
fn grid_search_is_invariant_to_thread_pool_size() {
    // The sequential and parallel sweeps must agree bitwise on included
    // counts and to f64-noise on scores, whatever rayon does underneath.
    let sample = PaperDgp.sample(250, 704);
    let grid = BandwidthGrid::paper_default(&sample.x, 25).unwrap();
    let seq =
        kernelcv::core::cv::cv_profile_sorted(&sample.x, &sample.y, &grid, &Epanechnikov)
            .unwrap();
    let par = cv_profile_sorted_par(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap();
    assert_eq!(seq.included, par.included);
    let seq_opt = seq.argmin().unwrap();
    let par_opt = par.argmin().unwrap();
    assert_eq!(seq_opt.index, par_opt.index);
}
