//! End-to-end workflows across the crates: data generation → bandwidth
//! selection → fitting → inference, on several data-generating processes.

use kernelcv::core::ci::confidence_band;
use kernelcv::core::density::{lscv_profile_sorted, Kde};
use kernelcv::core::diagnostics::{diagnostics, oracle_mse};
use kernelcv::core::kernels::EpanechnikovConvolution;
use kernelcv::core::select::{Rule, RuleOfThumbSelector};
use kernelcv::data::{DopplerDgp, HeteroskedasticDgp, SineDgp, StepDgp};
use kernelcv::prelude::*;

fn cv_selected_bandwidth(x: &[f64], y: &[f64]) -> f64 {
    SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(100))
        .with_min_included(x.len() / 2)
        .select(x, y)
        .unwrap()
        .bandwidth
}

#[test]
fn cv_bandwidth_beats_rule_of_thumb_on_curved_truth() {
    // On the paper's strongly curved DGP, Silverman's rule over-smooths
    // (it is derived for density estimation on Gaussian data); CV adapts.
    let dgp = PaperDgp;
    let sample = dgp.sample(800, 21);
    let h_cv = cv_selected_bandwidth(&sample.x, &sample.y);
    let h_rot = RuleOfThumbSelector::new(Epanechnikov, Rule::Silverman)
        .select(&sample.x, &sample.y)
        .unwrap()
        .bandwidth;
    assert!(h_cv < h_rot, "CV {h_cv} should be tighter than ROT {h_rot} here");

    let points: Vec<f64> = (10..=90).map(|i| i as f64 / 100.0).collect();
    let fit_cv = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, h_cv).unwrap();
    let fit_rot = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, h_rot).unwrap();
    let mse_cv = oracle_mse(&fit_cv, &points, |v| dgp.truth(v));
    let mse_rot = oracle_mse(&fit_rot, &points, |v| dgp.truth(v));
    assert!(
        mse_cv < mse_rot,
        "oracle MSE: CV {mse_cv} should beat rule-of-thumb {mse_rot}"
    );
}

#[test]
fn cv_adapts_bandwidth_to_the_shape_of_the_truth() {
    // Oscillating truth (sine, 6 periods) demands a much smaller bandwidth
    // than a gently curved one at the same noise level.
    let smooth = SineDgp { frequency: 0.5, noise: 0.2 }.sample(600, 5);
    let wiggly = SineDgp { frequency: 6.0, noise: 0.2 }.sample(600, 5);
    let h_smooth = cv_selected_bandwidth(&smooth.x, &smooth.y);
    let h_wiggly = cv_selected_bandwidth(&wiggly.x, &wiggly.y);
    assert!(
        h_wiggly < h_smooth,
        "wiggly truth needs smaller h: {h_wiggly} vs {h_smooth}"
    );
}

#[test]
fn step_discontinuity_forces_small_bandwidth() {
    let sample = StepDgp::default().sample(600, 6);
    let h = cv_selected_bandwidth(&sample.x, &sample.y);
    assert!(h < 0.2, "step truth should force a small bandwidth, got {h}");
    // The fitted jump should be visible.
    let fit = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, h).unwrap();
    let left = fit.predict(0.4).unwrap();
    let right = fit.predict(0.6).unwrap();
    assert!(right - left > 1.0, "jump flattened: {left} → {right}");
}

#[test]
fn doppler_is_fit_reasonably_in_the_smooth_region() {
    let dgp = DopplerDgp::default();
    let sample = dgp.sample(1_500, 7);
    let h = cv_selected_bandwidth(&sample.x, &sample.y);
    let fit = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, h).unwrap();
    // The right half of the doppler is slowly varying; demand decent fit.
    let points: Vec<f64> = (55..=90).map(|i| i as f64 / 100.0).collect();
    let mse = oracle_mse(&fit, &points, |v| dgp.truth(v));
    assert!(mse < 0.05, "doppler smooth-region MSE {mse}");
}

#[test]
fn local_linear_beats_nw_at_boundaries_on_sloped_truth() {
    let dgp = HeteroskedasticDgp { base_noise: 0.05 };
    let sample = dgp.sample(1_000, 8);
    let h = 0.1;
    let nw = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, h).unwrap();
    let ll = LocalLinear::new(&sample.x, &sample.y, Epanechnikov, h).unwrap();
    // Boundary points: x near 1, where truth has slope 0.5 + 20x ≈ 20.5.
    let boundary = [0.97, 0.98, 0.99];
    let nw_err = oracle_mse(&nw, &boundary, |v| dgp.truth(v));
    let ll_err = oracle_mse(&ll, &boundary, |v| dgp.truth(v));
    assert!(
        ll_err < nw_err,
        "local linear should beat NW at the boundary: {ll_err} vs {nw_err}"
    );
}

#[test]
fn full_np_style_workflow() {
    let sample = PaperDgp.sample(400, 9);
    let bws = npregbw(&sample.x, &sample.y, NpRegBwOptions::default()).unwrap();
    let fit = npreg(&bws, &sample.x, &sample.y).unwrap();
    assert!(fit.diagnostics.r_squared > 0.95);
    assert!(bws.summary().contains("Least Squares Cross-Validation"));
    assert!(fit.summary().contains("R-squared"));
}

#[test]
fn kde_lscv_workflow_recovers_uniform_density() {
    // X ~ U(0,1): the density is 1 on [0,1]; the LSCV-bandwidth KDE should
    // be close to 1 across the interior.
    let sample = PaperDgp.sample(1_200, 10);
    let grid = BandwidthGrid::linear(0.01, 0.5, 80).unwrap();
    let profile =
        lscv_profile_sorted(&sample.x, &grid, &Epanechnikov, &EpanechnikovConvolution).unwrap();
    let (_, h, _) = profile.argmin().unwrap();
    let kde = Kde::new(&sample.x, Epanechnikov, h).unwrap();
    for p in [0.2, 0.4, 0.6, 0.8] {
        let d = kde.evaluate(p);
        assert!((d - 1.0).abs() < 0.2, "density at {p}: {d}");
    }
}

#[test]
fn confidence_band_tightens_with_sample_size() {
    let width_at = |n: usize| {
        let sample = PaperDgp.sample(n, 11);
        let band = confidence_band(&sample.x, &sample.y, &Epanechnikov, 0.08, &[0.5], 0.95)
            .unwrap();
        band.upper[0] - band.lower[0]
    };
    let w_small = width_at(200);
    let w_large = width_at(3_200);
    // SE scales as 1/√(nh): 16× the data → ~4× tighter.
    assert!(
        w_large < w_small / 2.0,
        "band should tighten: {w_small} → {w_large}"
    );
}

#[test]
fn diagnostics_flag_overfit_and_underfit() {
    let sample = PaperDgp.sample(600, 12);
    let tight = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, 0.003).unwrap();
    let good = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, 0.05).unwrap();
    let wide = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, 0.9).unwrap();
    let d_tight = diagnostics(&tight, &sample.y);
    let d_good = diagnostics(&good, &sample.y);
    let d_wide = diagnostics(&wide, &sample.y);
    // In-sample MSE orders tight < good < wide (overfitting looks great
    // in-sample)…
    assert!(d_tight.mse <= d_good.mse && d_good.mse <= d_wide.mse);
    // …but the LOO MSE exposes both extremes.
    assert!(d_good.loo_mse < d_wide.loo_mse);
    assert!(d_good.loo_mse <= d_tight.loo_mse || d_tight.loo_count < d_good.loo_count);
}
