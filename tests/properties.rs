//! Cross-crate property-based tests: algebraic invariances of the CV
//! objective and agreement between independent implementations on
//! adversarial inputs.

use kernelcv::core::cv::{cv_profile_naive, cv_profile_sorted};
use kernelcv::prelude::*;
use proptest::prelude::*;
// Both preludes export a `Strategy`; the proptest trait is the one meant
// in combinator signatures here.
use proptest::strategy::Strategy;

/// Builds a valid regression sample from arbitrary pairs (dedup-free, but
/// with a guaranteed spread in x).
fn sample_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((-100.0f64..100.0, -50.0f64..50.0), 5..80).prop_map(|pairs| {
        let mut x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        // Ensure a non-degenerate domain.
        x[0] = -100.0;
        let last = x.len() - 1;
        x[last] = 100.0;
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sorted_equals_naive_on_arbitrary_data((x, y) in sample_strategy(), k in 1usize..40) {
        let grid = BandwidthGrid::paper_default(&x, k).unwrap();
        let a = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        let b = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..k {
            prop_assert_eq!(a.included[m], b.included[m]);
            let diff = (a.scores[m] - b.scores[m]).abs();
            prop_assert!(
                diff <= 1e-8 * a.scores[m].abs().max(1.0),
                "h={}: {} vs {}", grid.values()[m], a.scores[m], b.scores[m]
            );
        }
    }

    #[test]
    fn cv_profile_is_invariant_to_shifting_x_and_y((x, y) in sample_strategy()) {
        let grid = BandwidthGrid::paper_default(&x, 15).unwrap();
        let base = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();

        // Shift x by a constant: distances unchanged → identical profile.
        let x_shift: Vec<f64> = x.iter().map(|&v| v + 37.5).collect();
        let shifted = cv_profile_sorted(&x_shift, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            let diff = (base.scores[m] - shifted.scores[m]).abs();
            prop_assert!(diff <= 1e-7 * base.scores[m].abs().max(1e-9));
            prop_assert_eq!(base.included[m], shifted.included[m]);
        }

        // Shift y by a constant: residuals unchanged → identical profile.
        let y_shift: Vec<f64> = y.iter().map(|&v| v + 11.0).collect();
        let yshifted = cv_profile_sorted(&x, &y_shift, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            let diff = (base.scores[m] - yshifted.scores[m]).abs();
            prop_assert!(diff <= 1e-6 * base.scores[m].abs().max(1e-6));
        }
    }

    #[test]
    fn cv_scales_quadratically_with_y((x, y) in sample_strategy(), c in 0.5f64..4.0) {
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let base = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        let y_scaled: Vec<f64> = y.iter().map(|&v| c * v).collect();
        let scaled = cv_profile_sorted(&x, &y_scaled, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            let expected = base.scores[m] * c * c;
            let diff = (scaled.scores[m] - expected).abs();
            prop_assert!(
                diff <= 1e-7 * expected.abs().max(1e-9),
                "h index {m}: {} vs expected {}", scaled.scores[m], expected
            );
        }
    }

    #[test]
    fn cv_is_invariant_to_jointly_scaling_x_and_h((x, y) in sample_strategy(), c in 0.25f64..8.0) {
        // CV(h; x) = CV(c·h; c·x): the kernel only sees (x_i − x_l)/h.
        let grid = BandwidthGrid::paper_default(&x, 8).unwrap();
        let base = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        let x_scaled: Vec<f64> = x.iter().map(|&v| c * v).collect();
        let grid_scaled = BandwidthGrid::from_values(
            grid.values().iter().map(|&h| c * h).collect()
        ).unwrap();
        let scaled = cv_profile_sorted(&x_scaled, &y, &grid_scaled, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            let diff = (base.scores[m] - scaled.scores[m]).abs();
            prop_assert!(
                diff <= 1e-6 * base.scores[m].abs().max(1e-9),
                "h index {m}: {} vs {}", base.scores[m], scaled.scores[m]
            );
            prop_assert_eq!(base.included[m], scaled.included[m]);
        }
    }

    #[test]
    fn permuting_observations_leaves_the_profile_unchanged((x, y) in sample_strategy()) {
        let grid = BandwidthGrid::paper_default(&x, 12).unwrap();
        let base = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        // Reverse is a permutation; the CV sum is order-free.
        let x_rev: Vec<f64> = x.iter().rev().copied().collect();
        let y_rev: Vec<f64> = y.iter().rev().copied().collect();
        let rev = cv_profile_sorted(&x_rev, &y_rev, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            let diff = (base.scores[m] - rev.scores[m]).abs();
            prop_assert!(diff <= 1e-9 * base.scores[m].abs().max(1e-9));
            prop_assert_eq!(base.included[m], rev.included[m]);
        }
    }

    #[test]
    fn gpu_f32_tracks_cpu_f64_on_random_data(seed in 0u64..500, n in 20usize..100) {
        let sample = PaperDgp.sample(n, seed);
        let grid = BandwidthGrid::paper_default(&sample.x, 15).unwrap();
        let cpu = cv_profile_sorted(&sample.x, &sample.y, &grid, &Epanechnikov).unwrap();
        let gpu = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default())
            .unwrap();
        for m in 0..grid.len() {
            let c = cpu.scores[m];
            let g = gpu.scores[m] as f64;
            prop_assert!(
                (c - g).abs() <= 5e-3 * c.abs().max(1e-3),
                "h={}: cpu {c} vs gpu {g}", grid.values()[m]
            );
        }
    }
}
