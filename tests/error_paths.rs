//! End-to-end error-path coverage: every public entry point should reject
//! malformed input with the *right* error, never panic, and leave
//! reusable state behind.

use kernelcv::core::Error;
use kernelcv::gpu::GpuError;
use kernelcv::gpu_sim::SimError;
use kernelcv::prelude::*;

fn tiny() -> (Vec<f64>, Vec<f64>) {
    (vec![0.1, 0.9], vec![1.0, 2.0])
}

#[test]
fn length_mismatch_is_reported_everywhere() {
    let x = vec![1.0, 2.0, 3.0];
    let y = vec![1.0, 2.0];
    assert!(matches!(
        NadarayaWatson::new(&x, &y, Epanechnikov, 0.5).unwrap_err(),
        Error::LengthMismatch { x_len: 3, y_len: 2 }
    ));
    assert!(matches!(
        kernelcv::core::cv::cv_profile_sorted(
            &x,
            &y,
            &BandwidthGrid::from_values(vec![0.5]).unwrap(),
            &Epanechnikov
        )
        .unwrap_err(),
        Error::LengthMismatch { .. }
    ));
    assert!(npregbw(&x, &y, NpRegBwOptions::default()).is_err());
    let grid = BandwidthGrid::from_values(vec![0.5]).unwrap();
    assert!(matches!(
        select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap_err(),
        GpuError::Core(Error::LengthMismatch { .. })
    ));
}

#[test]
fn non_finite_data_is_caught_before_any_work() {
    let x = vec![0.1, f64::NAN, 0.9];
    let y = vec![1.0, 2.0, 3.0];
    assert!(matches!(
        SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(10))
            .select(&x, &y)
            .unwrap_err(),
        Error::NonFiniteData { which: "x", index: 1 }
    ));
    let y_bad = vec![1.0, f64::INFINITY];
    let (x2, _) = tiny();
    assert!(matches!(
        NadarayaWatson::new(&x2, &y_bad, Epanechnikov, 0.5).unwrap_err(),
        Error::NonFiniteData { which: "y", index: 1 }
    ));
}

#[test]
fn invalid_bandwidths_and_grids() {
    let (x, y) = tiny();
    for h in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            NadarayaWatson::new(&x, &y, Epanechnikov, h).unwrap_err(),
            Error::InvalidBandwidth(_)
        ));
    }
    assert!(matches!(
        BandwidthGrid::from_values(vec![0.5, 0.5]).unwrap_err(),
        Error::InvalidGrid(_)
    ));
    assert!(matches!(
        BandwidthGrid::linear(0.5, 0.1, 5).unwrap_err(),
        Error::InvalidGrid(_)
    ));
}

#[test]
fn degenerate_domain_flows_through_selectors() {
    let x = vec![3.0; 20];
    let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
    assert!(matches!(
        BandwidthGrid::paper_default(&x, 10).unwrap_err(),
        Error::DegenerateDomain
    ));
    assert!(npregbw(&x, &y, NpRegBwOptions::default()).is_err());
    assert!(kernelcv::core::select::select_bandwidth(&x, &y).is_err());
}

#[test]
fn gpu_resource_errors_carry_details() {
    let (x, y) = tiny();
    let too_fine = BandwidthGrid::linear(1e-6, 1.0, 3_000).unwrap();
    match select_bandwidth_gpu(&x, &y, &too_fine, &GpuConfig::default()) {
        Err(GpuError::TooManyBandwidths { requested: 3_000, max: 2_048 }) => {}
        other => panic!("unexpected: {other:?}"),
    }
    let mut starved = GpuConfig::default();
    starved.spec.global_mem_bytes = 16; // comically small device
    let grid = BandwidthGrid::from_values(vec![0.5]).unwrap();
    match select_bandwidth_gpu(&x, &y, &grid, &starved) {
        Err(GpuError::Sim(SimError::OutOfMemory { capacity: 16, .. })) => {}
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn error_messages_are_human_readable() {
    let messages = [
        Error::SampleTooSmall { n: 1, required: 2 }.to_string(),
        Error::NoValidBandwidth.to_string(),
        Error::DegenerateDomain.to_string(),
        GpuError::TooManyBandwidths { requested: 9, max: 8 }.to_string(),
        SimError::SharedMemoryRace { index: 3, threads: (0, 1) }.to_string(),
    ];
    for m in messages {
        assert!(m.len() > 15, "terse message: {m}");
        assert!(!m.contains("Error"), "debug-ish message: {m}");
    }
}

#[test]
fn failed_runs_leave_no_device_memory_behind() {
    use kernelcv::gpu_sim::MemoryPool;
    let pool = MemoryPool::new(1_000);
    for _ in 0..50 {
        let _ok = pool.alloc::<u8>(600).unwrap();
        assert!(pool.alloc::<u8>(600).is_err());
    }
    assert_eq!(pool.used(), 0, "leak after repeated failure cycles");
}
