# Development gates for the kernelcv workspace. Everything runs offline
# against the vendored path dependencies (see vendor/), so no registry
# access is needed.

CARGO ?= cargo
FLAGS ?= --offline

.PHONY: verify build test test-metrics doc clippy perf-gate multi-smoke bench-report scaling streaming serve clean

## The full PR gate: build, tests with metrics off AND on, docs, lints,
## the counter-based performance gate (including the streaming replay
## gates 17-19 and the sharded-serving gates 20-22), and the d = 2
## multivariate smoke.
verify: build test test-metrics doc clippy perf-gate multi-smoke
	@echo "verify: all gates green"

build:
	$(CARGO) build $(FLAGS) --workspace --release

test:
	$(CARGO) test $(FLAGS) --workspace -q

## The observability layer changes what compiles; test both feature states.
## Counters are scoped per `kcv_obs::Recorder`, so the metrics suite runs
## deliberately multi-threaded — no `exclusive()` serialisation.
test-metrics:
	$(CARGO) test $(FLAGS) --workspace --features metrics -q -- --test-threads=8

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc $(FLAGS) --workspace --no-deps

clippy:
	$(CARGO) clippy $(FLAGS) --workspace --all-targets -- -D warnings
	$(CARGO) clippy $(FLAGS) --workspace --all-targets --features metrics -- -D warnings

## Counter-based perf gate: asserts from one results/BENCH_report.json read
## that the merge-sweep's sort comparisons stay O(n log n) with kernel evals
## matching the sorted sweep's, that the prefix-moment sweep answers every
## (obs, bandwidth) cell within the n·k·ceil(log2 n) window-query ceiling
## with zero kernel evals, that the windowed GPU program holds its
## memory contract — peak device bytes ≤ 16·n·(deg+2) (no n² term) and
## simulated memory transactions ≤ n·k·(2·ceil(log2 n) + 24·(deg+1)), i.e.
## O(k·log n) per observation — and that the bagged selector holds its
## n-independence contract: work ≤ bags·bag_size·k window queries with
## zero kernel evals (no n term), measured peak host-heap bytes ≤
## workers × one bag's documented footprint bound — the multivariate
## fast-sum-updating contract: the d = 2 multi-fast strategy
## evaluates the kernel zero times, keeps its window queries within
## grid_points·n·d·ceil(log2 n), and beats the naive product-kernel full
## grid by ≥ 10× wall time at the identical bandwidth vector — and
## the streaming incremental-engine contract: the sliding-
## window replay's report object is present, its re-selections evaluate
## the kernel zero times with Fenwick tree updates within
## (inserts+removes)·ceil(log2 W)·(deg+3), and the replay beats
## per-arrival recompute-from-scratch by ≥ 10× wall time at the
## identical final bandwidth — and (schema v7, gates 20-22) the sharded
## serving contract: the report's serving object is present, the service
## coalesces bursts and evaluates the kernel zero times service-wide,
## and beats a global lock around one stream map by ≥ 4× wall time with
## per-stream final bandwidths bit-identical
## (see crates/bench/src/bin/perf_gate.rs).
perf-gate:
	$(CARGO) run $(FLAGS) --release -p kcv-bench --features metrics \
		--bin perf_gate -- --n 2000 --k 100

## d = 2 smoke of the beyond-the-paper "Multi fast" program: the fast
## full-grid selector must reproduce the naive full-grid oracle's optimum
## end to end through the bench program surface.
multi-smoke:
	$(CARGO) run $(FLAGS) --release -p kcv-bench --bin multi_smoke

## The past-the-paper scaling study (EXPERIMENTS.md SCALE): bagged CV at
## n = 10^5..10^7 vs the full-data prefix reference, with the binary's own
## acceptance checks as the gate. Writes results/scaling.csv and a
## schema-v6 BENCH_report.json with the scaling rows (CI uploads both).
## Full run (full-data reference up to 10^6) takes ~30 s in release.
scaling:
	$(CARGO) run $(FLAGS) --release -p kcv-bench --bin scaling

## The streaming replay study (EXPERIMENTS.md STREAM): 10^5 paper-DGP
## arrivals through the sliding-window incremental engine (W = 10^4) at a
## sweep of re-selection cadences, against the sampled-and-extrapolated
## per-arrival recompute baseline. The binary's own checks (>= 10x at
## every cadence >= 64, bit-identical final bandwidth) gate the run;
## writes results/streaming.csv (CI uploads it). Takes ~60 s in release.
streaming:
	$(CARGO) run $(FLAGS) --release -p kcv-bench --bin streaming

## The sharded serving study (EXPERIMENTS.md SERVE): 256 concurrent
## paper-DGP streams x 10^4 arrivals each through the 8-shard
## kcv-serve front-end vs one global lock around a stream map. The
## binary's own checks gate the run (>= 4x throughput, per-stream final
## bandwidths bit-identical to sequential replay, lossless delivery,
## zero kernel evals with bursts coalesced); writes results/serve.csv
## (CI uploads it). Takes ~45 s in release.
serve:
	$(CARGO) run $(FLAGS) --release -p kcv-bench --features metrics --bin serve

## Regenerate results/BENCH_report.json with live counters (small n).
bench-report:
	$(CARGO) run $(FLAGS) --release -p kcv-bench --features metrics \
		--bin experiments -- --max-n 500 --table2-max-n 200 --reps 1 --nmulti 1

clean:
	$(CARGO) clean
