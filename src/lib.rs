//! # kernelcv — optimal bandwidth selection for kernel regression
//!
//! Facade crate of the workspace reproducing *"Optimal Bandwidth Selection
//! for Kernel Regression Using a Fast Grid Search and a GPU"* (Rohlfs &
//! Zahran, IPPS 2017). It re-exports the member crates:
//!
//! * [`core`] (`kcv-core`) — kernels, estimators, the sorted-sweep CV grid
//!   search, selectors, KDE-LSCV, confidence bands;
//! * [`gpu_sim`] (`kcv-gpu-sim`) — the SPMD GPU simulator substrate;
//! * [`gpu`] (`kcv-gpu`) — the paper's CUDA program ported to the
//!   simulator;
//! * [`np`] (`kcv-np`) — the R-`np`-style numerical-optimisation baseline;
//! * [`data`] (`kcv-data`) — synthetic DGPs (including the paper's) and
//!   CSV I/O;
//! * [`serve`] (`kcv-serve`) — the sharded multi-stream serving front-end
//!   over the incremental sliding-window engine.
//!
//! ```
//! use kernelcv::prelude::*;
//!
//! let sample = kernelcv::data::PaperDgp.sample(300, 7);
//! let selector = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50));
//! let selection = selector.select(&sample.x, &sample.y).unwrap();
//! let fit = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, selection.bandwidth).unwrap();
//! assert!(fit.predict(0.5).is_some());
//! ```

#![warn(missing_docs)]

pub use kcv_core as core;
pub use kcv_data as data;
pub use kcv_gpu as gpu;
pub use kcv_gpu_sim as gpu_sim;
pub use kcv_np as np;
pub use kcv_serve as serve;

/// The core prelude plus the most-used items of the other member crates.
pub mod prelude {
    pub use kcv_core::prelude::*;
    pub use kcv_data::{Dgp, PaperDgp, Sample};
    pub use kcv_gpu::{select_bandwidth_gpu, GpuConfig};
    pub use kcv_np::{npreg, npregbw, NpRegBwOptions};
    pub use kcv_serve::{BandwidthService, ServeConfig};
}
