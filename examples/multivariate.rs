//! Multivariate kernel regression: per-dimension bandwidths over a full
//! grid ("an evenly-spaced grid or matrix in multivariate contexts", §I)
//! compared with the scalar-multiplier shortcut. Both selectors run on the
//! fast-sum-updating engine (`multi::fast`) — zero kernel evaluations for
//! the d = 2 Epanechnikov grid below.
//!
//! Run with: `cargo run --release --example multivariate`

use kernelcv::core::multi::{select_full_grid, select_multiplier_grid, MultiNadarayaWatson};
use kernelcv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A surface that is flat in x1 and strongly curved in x2 — the case
    // where per-dimension ("anisotropic") bandwidths pay off.
    let n = 500;
    let mut rng = StdRng::seed_from_u64(77);
    let x1: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    let x2: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    let truth = |a: f64, b: f64| 0.3 * a + (8.0 * b).sin();
    let y: Vec<f64> = x1
        .iter()
        .zip(&x2)
        .map(|(&a, &b)| {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            truth(a, b) + 0.15 * z
        })
        .collect();
    let columns = vec![x1, x2];

    println!("surface: g(x1, x2) = 0.3·x1 + sin(8·x2), n = {n}\n");

    // Full 10×10 bandwidth grid (the §I "matrix").
    let grid: Vec<f64> = (1..=10).map(|i| i as f64 * 0.035).collect();
    let full = select_full_grid(&columns, &y, &Epanechnikov, &[grid.clone(), grid.clone()])
        .expect("full grid");
    println!(
        "full-grid search     : h = ({:.3}, {:.3}), CV = {:.5}",
        full.bandwidths[0], full.bandwidths[1], full.score
    );

    // Scalar-multiplier shortcut (isotropic rescale of the Silverman base).
    let multipliers: Vec<f64> = (1..=16).map(|i| i as f64 * 0.25).collect();
    let scalar = select_multiplier_grid(&columns, &y, &Epanechnikov, &multipliers)
        .expect("multiplier grid");
    println!(
        "multiplier shortcut  : h = ({:.3}, {:.3}), CV = {:.5}\n",
        scalar.bandwidths[0], scalar.bandwidths[1], scalar.score
    );

    println!(
        "anisotropy: the full grid smooths the flat dimension {}× wider than\n\
         the oscillating one (h1/h2 = {:.2}); the scalar shortcut is forced to\n\
         a common scale and pays CV {:+.1}%.\n",
        (full.bandwidths[0] / full.bandwidths[1]).round(),
        full.bandwidths[0] / full.bandwidths[1],
        (scalar.score / full.score - 1.0) * 100.0
    );

    // Fit at the full-grid optimum and probe the surface.
    let fit = MultiNadarayaWatson::new(&columns, &y, Epanechnikov, full.bandwidths.clone())
        .expect("fit");
    println!("probe points (estimate vs truth):");
    for &(a, b) in &[(0.25, 0.25), (0.5, 0.5), (0.75, 0.2), (0.2, 0.8)] {
        let g = fit.predict(&[a, b]).expect("dims").unwrap_or(f64::NAN);
        println!("  g({a:.2}, {b:.2}) = {g:>7.3}   truth {:.3}", truth(a, b));
    }
}
