//! An applied-econometrics scenario of the kind the paper's introduction
//! motivates: estimating an Engel curve — the household food budget share
//! as a function of log total expenditure — without assuming a functional
//! form, with a cross-validated bandwidth and pointwise confidence bands.
//!
//! The data are synthetic (a Working–Leser curve with heteroskedastic
//! noise), since real household surveys are not shipped with the repo.
//!
//! Run with: `cargo run --release --example engel_curve`

use kernelcv::core::ci::confidence_band;
use kernelcv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A smooth Engel curve: the food budget share declines from ~0.54 for the
/// poorest households to ~0.12 for the richest, flattening at both ends —
/// the shape household-survey nonparametrics reliably find.
fn engel_truth(log_exp: f64) -> f64 {
    0.1 + 0.5 / (1.0 + (1.2 * (log_exp - 6.2)).exp())
}

fn main() {
    // Simulate a household expenditure survey.
    let n = 2_000;
    let mut rng = StdRng::seed_from_u64(1857);
    let mut log_exp = Vec::with_capacity(n);
    let mut food_share = Vec::with_capacity(n);
    for _ in 0..n {
        // Log-expenditure roughly N(6.5, 0.8²), truncated to [4.5, 9].
        let z = {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let le = (6.5 + 0.8 * z).clamp(4.5, 9.0);
        // Budget shares are noisier for poorer households.
        let noise_sd = 0.05 * (1.0 + (7.0 - le).max(0.0));
        let z2 = {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let share = (engel_truth(le) + noise_sd * z2).clamp(0.01, 0.95);
        log_exp.push(le);
        food_share.push(share);
    }

    println!("Engel curve estimation on {n} simulated households\n");

    // Bandwidth via the fast sorted grid search (parallel sweep).
    let selection = SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(200))
        .with_min_included(n)
        .select(&log_exp, &food_share)
        .expect("bandwidth selection");
    println!(
        "cross-validated bandwidth: h = {:.4} (CV = {:.6}, grid of {} candidates)",
        selection.bandwidth, selection.score, selection.evaluations
    );

    // Compare with what the np-style numerical optimiser would return.
    let np_bw = npregbw(&log_exp, &food_share, NpRegBwOptions::default())
        .expect("npregbw");
    println!("np-style optimiser       : h = {:.4} (fval = {:.6})\n", np_bw.bw, np_bw.fval);

    // Fit + 95% confidence band over the *interior* of the expenditure
    // range (the first-order band ignores the boundary bias of the
    // local-constant estimator, so we stay a bandwidth away from the edges).
    let points: Vec<f64> = (0..=30).map(|i| 5.25 + i as f64 * 0.1).collect();
    let band = confidence_band(
        &log_exp,
        &food_share,
        &Epanechnikov,
        selection.bandwidth,
        &points,
        0.95,
    )
    .expect("confidence band");

    println!("log-expenditure   food share ĝ(x)   95% CI             truth");
    let mut covered = 0usize;
    let mut defined = 0usize;
    for (i, &p) in points.iter().enumerate() {
        if !band.estimates[i].is_finite() {
            continue;
        }
        defined += 1;
        let truth = engel_truth(p);
        let inside = band.lower[i] <= truth && truth <= band.upper[i];
        if inside {
            covered += 1;
        }
        if i % 4 == 0 {
            println!(
                "{p:>14.2}   {:>14.4}   [{:.4}, {:.4}]   {truth:.4}{}",
                band.estimates[i],
                band.lower[i],
                band.upper[i],
                if inside { "" } else { "  <-- outside" }
            );
        }
    }
    println!(
        "\nband covered the true curve at {covered}/{defined} evaluation points \
         (σ̂² = {:.5})",
        band.sigma_sq
    );

    // Economics sanity check: food share declines with income (Engel's law).
    let fit = NadarayaWatson::new(&log_exp, &food_share, Epanechnikov, selection.bandwidth)
        .expect("fit");
    let poor = fit.predict(5.0).expect("estimate at 5.0");
    let rich = fit.predict(8.5).expect("estimate at 8.5");
    println!(
        "Engel's law check: ĝ(log-exp = 5.0) = {poor:.3} > ĝ(log-exp = 8.5) = {rich:.3}: {}",
        if poor > rich { "holds" } else { "VIOLATED" }
    );
}
