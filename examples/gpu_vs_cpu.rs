//! Walks through the paper's GPU program on the simulated Tesla S10 and
//! validates it against the f64 CPU reference, printing the cost-model
//! accounting (the simulator's analogue of a CUDA profiler run).
//!
//! Run with: `cargo run --release --example gpu_vs_cpu -- [n] [k]`

use kernelcv::core::cv::cv_profile_sorted;
use kernelcv::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    let sample = PaperDgp.sample(n, 77);
    let grid = BandwidthGrid::paper_default(&sample.x, k).expect("grid");

    println!("n = {n}, k = {k} bandwidths on [{:.4}, {:.4}]\n", grid.min(), grid.max());

    // CPU reference (f64, sequential sorted sweep — the paper's Program 3).
    let t0 = std::time::Instant::now();
    let cpu = cv_profile_sorted(&sample.x, &sample.y, &grid, &Epanechnikov).expect("cpu");
    let cpu_seconds = t0.elapsed().as_secs_f64();
    let cpu_opt = cpu.argmin().expect("cpu argmin");

    // GPU program (f32, simulated Tesla S10 — the paper's Program 4).
    let gpu = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default())
        .expect("gpu");
    let r = &gpu.report;

    println!("results");
    println!("  CPU (f64) optimum : h = {:.5}, CV = {:.6} ({cpu_seconds:.3}s wall)", cpu_opt.bandwidth, cpu_opt.score);
    println!("  GPU (f32) optimum : h = {:.5}, CV = {:.6}", gpu.bandwidth, gpu.score);
    let max_rel = cpu
        .scores
        .iter()
        .zip(&gpu.scores)
        .map(|(&c, &g)| ((g as f64 - c) / c.abs().max(1e-12)).abs())
        .fold(0.0f64, f64::max)
        * 100.0;
    println!("  max f32-vs-f64 CV-score deviation over the grid: {max_rel:.4}%\n");

    println!("simulated-device accounting ({} @ {:.1} GHz)", GpuConfig::default().spec.name, GpuConfig::default().spec.clock_hz / 1e9);
    println!("  peak device memory : {:>12} bytes ({} MiB)", r.device_bytes_peak, r.device_bytes_peak >> 20);
    println!("  host→device        : {:>12} bytes", r.h2d_bytes);
    println!("  device→host        : {:>12} bytes", r.d2h_bytes);
    let m = &r.main_kernel;
    println!("  main kernel        : {} threads × {} per block", m.threads, m.threads_per_block);
    println!("      flops          : {:>14}", m.totals.flops);
    println!("      global accesses: {:>14}", m.totals.global_reads + m.totals.global_writes);
    println!("      constant reads : {:>14}", m.totals.constant_reads);
    println!("      simulated time : {:.6}s", m.simulated_seconds);
    println!("  reductions         : {:.6}s ({} barrier syncs)", r.reduction_seconds, r.reduction_totals.syncs);
    println!("  transfers          : {:.6}s", r.transfer_seconds);
    println!("  TOTAL simulated    : {:.6}s", r.total_simulated_seconds);
    println!("  host wall clock    : {:.3}s (simulation cost on this machine)\n", r.host_seconds);

    // Ablation of the paper's §IV-B index switch: same answer, higher cost.
    let ablated = GpuConfig { obs_major_residuals: true, ..GpuConfig::default() };
    let no_switch = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &ablated).expect("gpu");
    println!(
        "index-switch ablation: without the bandwidth-major residual layout the\n\
         simulated time rises from {:.4}s to {:.4}s ({:+.1}%)\n",
        r.total_simulated_seconds,
        no_switch.report.total_simulated_seconds,
        (no_switch.report.total_simulated_seconds / r.total_simulated_seconds - 1.0) * 100.0
    );

    println!(
        "interpretation: on the modelled 240-core device this run takes {:.4}s;\n\
         the sequential CPU sweep took {cpu_seconds:.4}s on this host. The paper's\n\
         Table I reports the analogous contrast as 80.92s vs 32.49s at n = 20,000.",
        r.total_simulated_seconds
    );
}
