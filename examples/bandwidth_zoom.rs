//! The §IV-A recipe for precision beyond the 2,048-bandwidth constant-
//! memory ceiling: "the user can run the optimization code multiple times
//! with progressively smaller ranges of possible bandwidths."
//!
//! This example shows the constant-memory rejection at k = 4,096 and then
//! reaches the same effective resolution with four 64-point zoom rounds.
//!
//! Run with: `cargo run --release --example bandwidth_zoom`

use kernelcv::core::select::grid_search::ZoomGridSearch;
use kernelcv::prelude::*;

fn main() {
    let sample = PaperDgp.sample(1_500, 5150);

    // A 4,096-point grid is rejected by the device's constant cache.
    let too_fine = BandwidthGrid::linear(0.001, 1.0, 4_096).expect("grid");
    match select_bandwidth_gpu(&sample.x, &sample.y, &too_fine, &GpuConfig::default()) {
        Err(e) => println!("k = 4096 on the GPU: {e}\n"),
        Ok(_) => unreachable!("constant memory limit should reject k = 4096"),
    }

    // Single coarse pass (what fits comfortably).
    let coarse = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(64))
        .select(&sample.x, &sample.y)
        .expect("coarse");
    println!(
        "single 64-point grid : h = {:.6} (CV = {:.8}, step {:.4})",
        coarse.bandwidth,
        coarse.score,
        1.0 / 64.0
    );

    // Four zoom rounds of 64 points each: 256 evaluations total, but the
    // final step size shrinks geometrically.
    for rounds in [2usize, 3, 4] {
        let zoomed = ZoomGridSearch::new(Epanechnikov, 64, rounds)
            .select(&sample.x, &sample.y)
            .expect("zoom");
        println!(
            "{rounds} zoom rounds        : h = {:.6} (CV = {:.8}, {} evaluations)",
            zoomed.bandwidth, zoomed.score, zoomed.evaluations
        );
    }

    // Reference: one giant 4,096-point CPU grid (no constant-memory limit
    // on the host) — the zoom should land almost exactly here. The fine
    // grid's smallest candidates are below the typical nearest-neighbour
    // spacing, where the raw objective rewards excluding observations
    // (each excluded point contributes 0), so we require every observation
    // to keep a defined leave-one-out fit.
    let fine = SortedGridSearch::new(
        Epanechnikov,
        GridSpec::Explicit(BandwidthGrid::paper_default(&sample.x, 4_096).expect("grid")),
    )
    .with_min_included(sample.len())
    .select(&sample.x, &sample.y)
    .expect("fine");
    println!(
        "4096-point CPU grid  : h = {:.6} (CV = {:.8}, {} evaluations)",
        fine.bandwidth, fine.score, fine.evaluations
    );
}
