//! k-NN vs fixed-bandwidth kernel regression — the design contrast the
//! paper's §II draws against Creel & Zubair's GPU implementation: k-NN
//! adapts its window to local density (and never degenerates), fixed
//! bandwidths weight by distance. Both tuning problems are solved here with
//! the same incremental-sums idea: the sorted bandwidth sweep for the
//! kernel, prefix means for k-NN.
//!
//! Run with: `cargo run --release --example knn_vs_kernel`

use kernelcv::core::diagnostics::oracle_mse;
use kernelcv::core::estimate::{knn_cv_profile, KnnRegression};
use kernelcv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Non-uniform design: x clusters densely near 0.2 and sparsely above
    // 0.6 — exactly where the fixed bandwidth struggles and k-NN adapts.
    let n = 800;
    let mut rng = StdRng::seed_from_u64(2718);
    let truth = |v: f64| (6.0 * v).sin() + 2.0 * v;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let v = if i % 4 == 0 {
            0.6 + 0.4 * rng.random::<f64>() // sparse tail
        } else {
            0.4 * (rng.random::<f64>() + rng.random::<f64>()) / 2.0 + 0.05 // dense cluster
        };
        let z = {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        x.push(v);
        y.push(truth(v) + 0.2 * z);
    }

    println!("non-uniform design, n = {n}: dense cluster near 0.2, sparse tail past 0.6\n");

    // Tune the kernel bandwidth by the paper's sorted grid search.
    let kernel_sel = SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(200))
        .with_min_included(n)
        .select(&x, &y)
        .expect("kernel bandwidth");
    println!(
        "fixed-bandwidth kernel: h = {:.4} (CV = {:.5})",
        kernel_sel.bandwidth, kernel_sel.score
    );

    // Tune k by the k-NN prefix-sum CV profile.
    let knn_profile = knn_cv_profile(&x, &y, 200).expect("knn profile");
    let (k_opt, knn_cv) = knn_profile.argmin().expect("knn argmin");
    println!("k-nearest neighbours  : k = {k_opt} (CV = {knn_cv:.5})\n");

    // Compare against the truth in the dense and sparse regions.
    let kernel_fit =
        NadarayaWatson::new(&x, &y, Epanechnikov, kernel_sel.bandwidth).expect("fit");
    let knn_fit = KnnRegression::new(&x, &y, k_opt).expect("knn");
    let dense: Vec<f64> = (10..=40).map(|i| i as f64 / 100.0).collect();
    let sparse: Vec<f64> = (65..=95).map(|i| i as f64 / 100.0).collect();
    let knn_mse = |points: &[f64]| {
        points
            .iter()
            .map(|&p| {
                let e = knn_fit.predict(p) - truth(p);
                e * e
            })
            .sum::<f64>()
            / points.len() as f64
    };
    println!("oracle MSE by region:");
    println!(
        "  dense  [0.10, 0.40]: kernel {:.5}   knn {:.5}",
        oracle_mse(&kernel_fit, &dense, truth),
        knn_mse(&dense)
    );
    println!(
        "  sparse [0.65, 0.95]: kernel {:.5}   knn {:.5}",
        oracle_mse(&kernel_fit, &sparse, truth),
        knn_mse(&sparse)
    );
    println!(
        "\nCV comparison: the better leave-one-out score on this design is {}\n\
         (kernel {:.5} vs knn {knn_cv:.5}); both tunings came from one sort per\n\
         observation plus incremental sums — the paper's trick in two guises.",
        if kernel_sel.score < knn_cv { "the kernel's" } else { "k-NN's" },
        kernel_sel.score
    );
}
