//! Local-constant vs local-linear regression on a cps71-style wage–age
//! dataset (a synthetic lookalike of the survey data the np package ships),
//! with bandwidths selected by cross-validation for each estimator and a
//! bootstrap band for the preferred fit.
//!
//! Run with: `cargo run --release --example wage_curve`

use kernelcv::core::bootstrap::bootstrap_band;
use kernelcv::core::cv::{cv_profile_sorted, cv_profile_sorted_ll};
use kernelcv::core::diagnostics::diagnostics;
use kernelcv::data::datasets::cps71_like;
use kernelcv::prelude::*;

fn main() {
    let data = cps71_like();
    println!(
        "cps71-style data: {} workers, age {:.0}–{:.0}\n",
        data.len(),
        data.x.iter().fold(f64::MAX, |a, &b| a.min(b)),
        data.x.iter().fold(f64::MIN, |a, &b| a.max(b)),
    );

    // CV profiles for both regression types over the same grid.
    let grid = BandwidthGrid::paper_default(&data.x, 100).expect("grid");
    let lc_profile = cv_profile_sorted(&data.x, &data.y, &grid, &Epanechnikov).expect("lc");
    let ll_profile = cv_profile_sorted_ll(&data.x, &data.y, &grid, &Epanechnikov).expect("ll");
    let lc = lc_profile.argmin().expect("lc argmin");
    let ll = ll_profile.argmin().expect("ll argmin");
    println!("local-constant: h = {:.2} years (CV = {:.4})", lc.bandwidth, lc.score);
    println!("local-linear  : h = {:.2} years (CV = {:.4})", ll.bandwidth, ll.score);
    let better_ll = ll.score < lc.score;
    println!(
        "→ {} wins on leave-one-out error\n",
        if better_ll { "local-linear" } else { "local-constant" }
    );

    // Fit both and compare in-sample diagnostics.
    let nw = NadarayaWatson::new(&data.x, &data.y, Epanechnikov, lc.bandwidth).expect("nw");
    let lin = LocalLinear::new(&data.x, &data.y, Epanechnikov, ll.bandwidth).expect("ll");
    let d_nw = diagnostics(&nw, &data.y);
    let d_ll = diagnostics(&lin, &data.y);
    println!("local-constant: R² = {:.3}, LOO-MSE = {:.4}", d_nw.r_squared, d_nw.loo_mse);
    println!("local-linear  : R² = {:.3}, LOO-MSE = {:.4}\n", d_ll.r_squared, d_ll.loo_mse);

    // Bootstrap band for the local-constant fit across the age range.
    let ages: Vec<f64> = (23..=63).step_by(4).map(|a| a as f64).collect();
    let band = bootstrap_band(
        &data.x,
        &data.y,
        &Epanechnikov,
        lc.bandwidth,
        &ages,
        0.95,
        400,
        2024,
    )
    .expect("bootstrap");
    println!("age   E[log wage | age]   95% bootstrap band");
    for (i, &age) in ages.iter().enumerate() {
        println!(
            "{age:>3}   {:>17.3}   [{:.3}, {:.3}]",
            band.estimates[i], band.lower[i], band.upper[i]
        );
    }

    // The economically expected life-cycle shape: wages rise from the
    // early twenties into middle age.
    let young = nw.predict(23.0).expect("estimate at 23");
    let mid = nw.predict(47.0).expect("estimate at 47");
    println!(
        "\nlife-cycle check: ĝ(23) = {young:.2} < ĝ(47) = {mid:.2}: {}",
        if young < mid { "holds" } else { "VIOLATED" }
    );
}
