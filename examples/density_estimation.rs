//! The paper's named extension: least-squares cross-validation for *kernel
//! density* bandwidths using the same sorted sweep, compared against
//! Silverman's rule on a bimodal mixture (where rules of thumb
//! over-smooth and merge the modes).
//!
//! Run with: `cargo run --release --example density_estimation`

use kernelcv::core::density::{lscv_profile_sorted, Kde};
use kernelcv::core::kernels::EpanechnikovConvolution;
use kernelcv::core::select::silverman_bandwidth;
use kernelcv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A well-separated bimodal mixture: N(0, 0.25²) and N(3, 0.25²).
    let n = 1_500;
    let mut rng = StdRng::seed_from_u64(99);
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            if i % 2 == 0 {
                0.25 * z
            } else {
                3.0 + 0.25 * z
            }
        })
        .collect();

    // LSCV over a 200-point grid with the sorted sweep.
    let grid = BandwidthGrid::linear(0.02, 2.0, 200).expect("grid");
    let profile =
        lscv_profile_sorted(&x, &grid, &Epanechnikov, &EpanechnikovConvolution).expect("lscv");
    let (_, h_lscv, score) = profile.argmin().expect("argmin");
    let h_silverman = silverman_bandwidth(&x, &Epanechnikov).expect("silverman");

    println!("bimodal mixture, n = {n}");
    println!("  LSCV bandwidth      : {h_lscv:.4} (objective {score:.5})");
    println!("  Silverman bandwidth : {h_silverman:.4}\n");

    let kde_cv = Kde::new(&x, Epanechnikov, h_lscv).expect("kde");
    let kde_rot = Kde::new(&x, Epanechnikov, h_silverman).expect("kde");

    // The scientific point: the CV bandwidth preserves the dip between the
    // modes; an over-wide bandwidth fills it in.
    let dip_cv = kde_cv.evaluate(1.5);
    let mode_cv = kde_cv.evaluate(0.0);
    let dip_rot = kde_rot.evaluate(1.5);
    let mode_rot = kde_rot.evaluate(0.0);
    let ratio = |mode: f64, dip: f64| {
        if dip < 1e-6 {
            "clean separation (dip ≈ 0)".to_string()
        } else {
            format!("mode/dip ratio {:.1}", mode / dip)
        }
    };
    println!("  density at mode (x=0) / dip (x=1.5):");
    println!("    LSCV     : {mode_cv:.4} / {dip_cv:.4}  ({})", ratio(mode_cv, dip_cv));
    println!("    Silverman: {mode_rot:.4} / {dip_rot:.4}  ({})\n", ratio(mode_rot, dip_rot));

    // ASCII densities.
    println!("density estimates (c = LSCV, s = Silverman):");
    let (points, d_cv) = kde_cv.evaluate_grid(-1.0, 4.0, 26);
    let (_, d_rot) = kde_rot.evaluate_grid(-1.0, 4.0, 26);
    let dmax = d_cv.iter().chain(&d_rot).fold(0.0f64, |a, &b| a.max(b));
    for i in 0..points.len() {
        let mut row = vec![' '; 52];
        let pos = |v: f64| ((v / dmax) * 50.0).clamp(0.0, 51.0) as usize;
        row[pos(d_rot[i])] = 's';
        row[pos(d_cv[i])] = 'c';
        println!("x={:>5.2} |{}", points[i], row.iter().collect::<String>());
    }
}
