//! Quickstart: generate the paper's synthetic data, select the optimal
//! bandwidth with the fast sorted grid search, fit the regression, and
//! compare against the alternatives (numerical optimisation, rule of
//! thumb, simulated GPU).
//!
//! Run with: `cargo run --release --example quickstart`

use kernelcv::core::diagnostics::{diagnostics, oracle_mse};
use kernelcv::core::select::{NumericCvSelector, NumericMethod, Rule, RuleOfThumbSelector};
use kernelcv::prelude::*;

fn main() {
    // The paper's DGP: X ~ U(0,1), Y = 0.5X + 10X² + u, u ~ U(0, 0.5).
    let n = 1_000;
    let sample = PaperDgp.sample(n, 2024);
    println!("Generated {n} observations from the paper's DGP.\n");

    // 1. The paper's method: sorted grid search over 50 bandwidths.
    let grid_selection = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
        .select(&sample.x, &sample.y)
        .expect("grid search");
    println!(
        "sorted grid search : h = {:.4}  (CV = {:.5}, {} evaluations)",
        grid_selection.bandwidth, grid_selection.score, grid_selection.evaluations
    );

    // 2. The baseline: numerical optimisation of the same objective.
    let numeric = NumericCvSelector::new(Epanechnikov, NumericMethod::NelderMead { restarts: 3 })
        .select(&sample.x, &sample.y)
        .expect("numeric");
    println!(
        "numerical optimiser: h = {:.4}  (CV = {:.5}, {} evaluations)",
        numeric.bandwidth, numeric.score, numeric.evaluations
    );

    // 3. The shortcut practitioners use instead: Silverman's rule.
    let rot = RuleOfThumbSelector::new(Epanechnikov, Rule::Silverman)
        .select(&sample.x, &sample.y)
        .expect("rule of thumb");
    println!("Silverman's rule   : h = {:.4}  (never evaluates the objective)", rot.bandwidth);

    // 4. The paper's GPU program on the simulated Tesla S10.
    let grid = BandwidthGrid::paper_default(&sample.x, 50).expect("grid");
    let gpu = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &GpuConfig::default())
        .expect("gpu pipeline");
    println!(
        "simulated GPU      : h = {:.4}  (simulated device time {:.4}s, peak device mem {} MiB)\n",
        gpu.bandwidth,
        gpu.report.total_simulated_seconds,
        gpu.report.device_bytes_peak >> 20
    );

    // Fit at the selected bandwidth and inspect quality.
    let fit = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, grid_selection.bandwidth)
        .expect("fit");
    let d = diagnostics(&fit, &sample.y);
    println!("fit at h = {:.4}: R² = {:.4}, LOO-MSE = {:.5}", fit.bandwidth(), d.r_squared, d.loo_mse);

    // Oracle check against the known truth E[Y|X=x] = 0.5x + 10x² + 0.25.
    let points: Vec<f64> = (5..=95).map(|i| i as f64 / 100.0).collect();
    let mse_cv = oracle_mse(&fit, &points, |v| PaperDgp.truth(v));
    let wide = NadarayaWatson::new(&sample.x, &sample.y, Epanechnikov, 1.0).expect("fit");
    let mse_wide = oracle_mse(&wide, &points, |v| PaperDgp.truth(v));
    println!(
        "oracle MSE: CV-selected h → {mse_cv:.5}; domain-wide h = 1.0 → {mse_wide:.5} \
         ({}× worse)\n",
        (mse_wide / mse_cv).round()
    );

    // A small ASCII rendering of the fitted curve.
    println!("fitted curve ĝ(x) (· = estimate, T = truth):");
    let curve = FittedCurve::evaluate(&fit, 0.05, 0.95, 31).expect("curve");
    let y_max = 11.0;
    for (p, est) in curve.points.iter().zip(&curve.estimates) {
        let g = est.unwrap_or(f64::NAN);
        let t = PaperDgp.truth(*p);
        let mut row = vec![' '; 62];
        let pos = |v: f64| ((v / y_max) * 60.0).clamp(0.0, 61.0) as usize;
        row[pos(t)] = 'T';
        if g.is_finite() {
            row[pos(g)] = '\u{b7}';
        }
        println!("x={p:.2} |{}", row.iter().collect::<String>());
    }
}
