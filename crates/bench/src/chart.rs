//! A minimal ASCII line chart for the Figure 1 reproduction: run time (log
//! y) against sample size (log x), one mark per program.

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The mark character used for this series.
    pub mark: char,
    /// `(x, y)` points; `y ≤ 0` points are clamped to the axis floor.
    pub points: Vec<(f64, f64)>,
}

/// Renders series on a log-log grid of `width × height` characters.
pub fn render_loglog(series: &[Series], width: usize, height: usize) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let floor_y = 1e-6;
    let lx = |v: f64| v.max(1.0).log10();
    let ly = |v: f64| v.max(floor_y).log10();
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(lx(x));
        x1 = x1.max(lx(x));
        y0 = y0.min(ly(y));
        y1 = y1.max(ly(y));
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let cx = (((lx(x) - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((ly(y) - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = s.mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("run time (s), log scale [{:.2e} .. {:.2e}]\n", 10f64.powf(y0), 10f64.powf(y1)));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        " n (log scale) [{:.0} .. {:.0}]\n",
        10f64.powf(x0),
        10f64.powf(x1)
    ));
    for s in series {
        out.push_str(&format!("  {}  {}\n", s.mark, s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_marks_and_legend() {
        let series = vec![
            Series {
                label: "Sequential C".into(),
                mark: 's',
                points: vec![(100.0, 0.01), (1000.0, 0.27), (20000.0, 80.92)],
            },
            Series {
                label: "CUDA on GPU".into(),
                mark: 'g',
                points: vec![(100.0, 0.09), (1000.0, 0.24), (20000.0, 32.49)],
            },
        ];
        let chart = render_loglog(&series, 60, 20);
        assert!(chart.contains('s'));
        assert!(chart.contains('g'));
        assert!(chart.contains("Sequential C"));
        assert!(chart.lines().count() > 20);
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render_loglog(&[], 10, 5), "(no data)\n");
    }

    #[test]
    fn single_point_does_not_panic() {
        let s = vec![Series { label: "one".into(), mark: '*', points: vec![(50.0, 1.0)] }];
        let chart = render_loglog(&s, 20, 10);
        assert!(chart.contains('*'));
    }
}
