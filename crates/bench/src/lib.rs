//! # kcv-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | artefact | binary |
//! |---|---|
//! | Figure 1 (run times by program and sample size, log-x) | `figure1` |
//! | Table I (same data, tabulated) | `table1` |
//! | Table II panels A and B (run time vs bandwidth count) | `table2` |
//! | §IV-A/§V memory-wall and constant-cache limits | `memory_limit` |
//! | past-the-paper bagged scaling study (n = 10⁵..10⁷) | `scaling` |
//! | everything above, written to `results/` | `experiments` |
//!
//! Criterion ablation benches live under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_track;
pub mod chart;
pub mod json;
pub mod programs;
pub mod report;
pub mod sweep;
pub mod table;

pub use programs::{run_program, Program, ProgramResult};
pub use report::{collect_report, PerfReport, ReportConfig};

/// Every `kcv-bench` binary and test runs under the counting allocator so
/// host-memory peaks in `BENCH_report.json` are measured, not modelled.
#[global_allocator]
static ALLOC: alloc_track::CountingAllocator = alloc_track::CountingAllocator;
