//! Counting global allocator: real host heap numbers for the bench crate.
//!
//! PR 6's device-memory gate reads *simulated* peaks from the GPU model;
//! the bagged-memory gate needs the opposite — the **actual host heap**
//! peak of a run, so that a regression that quietly materialises an
//! `O(n)`-sized structure per bag (or keeps every bag's subsample alive at
//! once) fails on measurement, not on bookkeeping. This module wraps the
//! system allocator with relaxed atomic live/peak counters; the bench crate
//! installs it as its `#[global_allocator]`, so every binary and test in
//! `kcv-bench` is measured.
//!
//! Accuracy notes:
//!
//! * `current_bytes`/`peak_bytes` count *requested* layout sizes, not
//!   allocator-internal slack — a lower bound on RSS growth but exactly the
//!   quantity the footprint formula in
//!   `kcv_core::select::bagged::bag_footprint_bound_bytes` bounds.
//! * The counters are process-global. Peak deltas are only meaningful when
//!   nothing else allocates concurrently — true in the single-threaded
//!   `perf_gate`/`scaling` mains (the measured run's rayon workers are the
//!   only other allocating threads, and they are *part of* the measured
//!   run), but not under a multi-threaded test harness. Tests therefore
//!   assert presence and plausibility of the fields, never tight bounds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper keeping live/peak byte counters.
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn on_alloc(size: usize) {
        let live = CURRENT.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: defers every allocation to `System` unchanged; the counters are
// pure bookkeeping on the side.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        new_ptr
    }
}

/// Bytes currently live (allocated and not yet freed) process-wide.
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of [`current_bytes`] since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live count, so the next
/// [`peak_bytes`] read reports the peak of *subsequent* activity only.
/// Call immediately before the region to measure; subtract the
/// [`current_bytes`] baseline taken at the same point to get the region's
/// own transient peak.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_a_large_allocation() {
        // Other tests allocate concurrently, so assert monotone effects of
        // our own allocation only, not exact values.
        reset_peak();
        let before = current_bytes();
        let block: Vec<u8> = vec![0u8; 1 << 20];
        let during = current_bytes();
        assert!(during >= before + (1 << 20), "live {before} -> {during}");
        assert!(peak_bytes() >= during);
        drop(block);
        assert!(current_bytes() < during);
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let block: Vec<u8> = vec![0u8; 1 << 18];
        reset_peak();
        // The high-water mark after a reset can never sit below the live
        // count at reset time minus what has since been freed by others.
        assert!(peak_bytes() >= current_bytes().saturating_sub(1 << 10) || peak_bytes() > 0);
        drop(block);
    }
}
