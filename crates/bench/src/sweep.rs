//! Shared parameter sweeps used by the `figure1`, `table1`, and `table2`
//! binaries.

use crate::programs::{run_program_median, Program};
use kcv_data::{Dgp, PaperDgp};

/// The paper's Table I sample sizes.
pub const TABLE1_SIZES: [usize; 8] = [50, 100, 500, 1_000, 2_000, 5_000, 10_000, 20_000];

/// The paper's Table II bandwidth counts.
pub const TABLE2_BANDWIDTHS: [usize; 7] = [5, 10, 50, 100, 500, 1_000, 2_000];

/// The paper's Table II sample sizes.
pub const TABLE2_SIZES: [usize; 7] = [50, 100, 500, 1_000, 5_000, 10_000, 20_000];

/// The paper's Table I reference numbers (seconds), for side-by-side
/// reporting: `(n, racine_hayfield, multicore_r, sequential_c, cuda_gpu)`.
pub const PAPER_TABLE1: [(usize, f64, f64, f64, f64); 7] = [
    (50, 0.04, 1.16, 0.00, 0.09),
    (100, 0.05, 1.43, 0.01, 0.09),
    (500, 0.38, 1.46, 0.07, 0.15),
    (1_000, 1.12, 1.49, 0.27, 0.24),
    (2_000, 16.71, 13.59, 4.89, 1.83),
    (10_000, 68.69, 32.08, 19.24, 7.10),
    (20_000, 232.51, 124.70, 80.92, 32.49),
];

/// One measured cell of the Figure-1 / Table-I sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Sample size.
    pub n: usize,
    /// Program measured.
    pub program: Program,
    /// Median wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated device seconds (GPU program only).
    pub simulated_seconds: Option<f64>,
    /// Selected bandwidth.
    pub bandwidth: f64,
}

/// Runs the Figure-1/Table-I sweep: all programs (the paper's four plus
/// the merge-sweep and prefix-moment variants, and the `d = 2` "Multi
/// fast" full-grid selector chained after the univariate eight) over the
/// paper's sample sizes up to `max_n`, `k` grid bandwidths, `reps`
/// repetitions, `nmulti` optimiser restarts. Sizes are generated from the
/// paper DGP with a fixed seed per `n`.
pub fn figure1_sweep(max_n: usize, k: usize, reps: usize, nmulti: usize) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &n in TABLE1_SIZES.iter().filter(|&&n| n <= max_n) {
        let sample = PaperDgp.sample(n, 1_000 + n as u64);
        for program in Program::all().into_iter().chain([Program::MultiFast]) {
            match run_program_median(program, &sample.x, &sample.y, k.min(n), nmulti, reps) {
                Ok(r) => rows.push(SweepRow {
                    n,
                    program,
                    wall_seconds: r.wall_seconds,
                    simulated_seconds: r.simulated_seconds,
                    bandwidth: r.bandwidth,
                }),
                Err(e) => eprintln!("  {} at n={n}: {e}", program.label()),
            }
        }
    }
    rows
}

/// One measured cell of the Table-II sweep.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Sample size.
    pub n: usize,
    /// Bandwidth-grid size.
    pub k: usize,
    /// Median wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated device seconds (panel B only).
    pub simulated_seconds: Option<f64>,
}

/// Runs one Table-II panel: `program` (SequentialC for panel A, CudaGpu for
/// panel B) over the paper's `(k, n)` lattice with `k ≤ n` and `n ≤ max_n`.
pub fn table2_sweep(program: Program, max_n: usize, reps: usize) -> Vec<Table2Cell> {
    let mut cells = Vec::new();
    for &n in TABLE2_SIZES.iter().filter(|&&n| n <= max_n) {
        let sample = PaperDgp.sample(n, 2_000 + n as u64);
        for &k in TABLE2_BANDWIDTHS.iter().filter(|&&k| k <= n) {
            match run_program_median(program, &sample.x, &sample.y, k, 1, reps) {
                Ok(r) => cells.push(Table2Cell {
                    n,
                    k,
                    wall_seconds: r.wall_seconds,
                    simulated_seconds: r.simulated_seconds,
                }),
                Err(e) => eprintln!("  {} at n={n} k={k}: {e}", program.label()),
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_figure1_sweep_produces_all_cells() {
        let rows = figure1_sweep(100, 10, 1, 1);
        // 2 sizes × (8 univariate programs + the chained Multi fast run).
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|r| r.wall_seconds >= 0.0));
        assert_eq!(rows.iter().filter(|r| r.program == Program::MultiFast).count(), 2);
        assert!(rows
            .iter()
            .filter(|r| r.program == Program::CudaGpu || r.program == Program::WindowedGpu)
            .all(|r| r.simulated_seconds.is_some()));
    }

    #[test]
    fn table2_respects_k_leq_n() {
        let cells = table2_sweep(Program::SequentialC, 100, 1);
        // n = 50: k ∈ {5,10,50}; n = 100: k ∈ {5,10,50,100}.
        assert_eq!(cells.len(), 7);
        assert!(cells.iter().all(|c| c.k <= c.n));
    }
}
