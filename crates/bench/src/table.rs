//! ASCII table rendering and CSV output for the harness binaries.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders an ASCII table with right-aligned cells.
pub fn render(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {h:>width$} ", width = widths[i]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(out, "| {cell:>width$} ", width = widths[i]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Formats seconds the way the paper's tables do (two decimals).
pub fn fmt_seconds(s: f64) -> String {
    format!("{s:.2}")
}

/// Writes a CSV file under `results/`, creating the directory as needed.
pub fn write_csv(
    path: &Path,
    headers: &[&str],
    rows: &[Vec<f64>],
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    kcv_data::csv::write_table(io::BufWriter::new(file), headers, rows)
}

/// Parses `--flag value` style arguments: returns the value following
/// `name`, if present.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a numeric `--flag value`, falling back to `default`.
pub fn arg_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when a bare `--flag` is present.
pub fn arg_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["n".into(), "time".into()],
            &[
                vec!["100".into(), "0.05".into()],
                vec!["20000".into(), "232.51".into()],
            ],
        );
        assert!(t.contains("| 20000 | 232.51 |"));
        assert!(t.contains("|     n |   time |"));
    }

    #[test]
    fn fmt_seconds_two_decimals() {
        assert_eq!(fmt_seconds(232.509), "232.51");
        assert_eq!(fmt_seconds(0.0), "0.00");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["--max-n", "5000", "--full"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_parse(&args, "--max-n", 0usize), 5000);
        assert_eq!(arg_parse(&args, "--reps", 3usize), 3);
        assert!(arg_flag(&args, "--full"));
        assert!(!arg_flag(&args, "--quick"));
    }
}
