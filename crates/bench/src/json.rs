//! Minimal substring readers for `BENCH_report.json`.
//!
//! The workspace has no JSON dependency (offline policy), and the report is
//! hand-rolled by `report::PerfReport::to_json`, so the consumers — the
//! perf gate, the schema round-trip test — read it with targeted substring
//! scans instead of a parser. The helpers live here so every consumer reads
//! fields the same way; they are deliberately dumb (no nesting awareness
//! beyond the strategy-entry split) and rely on the writer's fixed key
//! order and formatting.

/// Extracts one strategy's JSON object (from its `"name"` key to the start
/// of the next strategy or the end of the array) out of a report string.
pub fn strategy_slice<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("{{\"name\":\"{name}\"");
    let start = json.find(&needle)?;
    let rest = &json[start + needle.len()..];
    let end = rest.find("{\"name\":\"").map_or(rest.len(), |e| e);
    Some(&rest[..end])
}

/// Reads an unsigned integer field (`"key":123`) from a JSON slice.
pub fn u64_field(slice: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = slice.find(&needle)? + needle.len();
    let digits: String = slice[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Reads a float field (`"key":0.125`) from a JSON slice.
pub fn f64_field(slice: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = slice.find(&needle)? + needle.len();
    let num: String = slice[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E')
        .collect();
    num.parse().ok()
}

/// Reads a flat array field (`"key":[…]`) from a JSON slice, brackets
/// included, so two serialised arrays can be compared for bit identity.
/// No nesting awareness: the array must not itself contain `]`.
pub fn array_field<'a>(slice: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":[");
    let start = slice.find(&needle)? + needle.len() - 1;
    let rest = &slice[start..];
    rest.find(']').map(|end| &rest[..=end])
}

/// Reads a string field (`"key":"value"`) from a JSON slice.
pub fn str_field<'a>(slice: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = slice.find(&needle)? + needle.len();
    let rest = &slice[start..];
    rest.find('"').map(|end| &rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"version\":4,\"strategies\":[\
        {\"name\":\"sorted\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
        \"sort_comparisons\":400000}}},\
        {\"name\":\"bagged\",\"bandwidth\":0.110000,\
        \"bagged\":{\"bags\":10,\"bag_size\":500,\"combiner\":\"mean\"}}]}";

    #[test]
    fn strategy_slice_isolates_one_entry() {
        let sorted = strategy_slice(SAMPLE, "sorted").unwrap();
        assert!(sorted.contains("\"sort_comparisons\":400000"));
        assert!(!sorted.contains("\"bags\":10"));
        assert!(strategy_slice(SAMPLE, "gpu-sim").is_none());
    }

    #[test]
    fn field_readers_parse_numbers_and_strings() {
        let bagged = strategy_slice(SAMPLE, "bagged").unwrap();
        assert_eq!(u64_field(bagged, "bags"), Some(10));
        assert_eq!(u64_field(bagged, "bag_size"), Some(500));
        assert_eq!(f64_field(bagged, "bandwidth"), Some(0.11));
        assert_eq!(str_field(bagged, "combiner"), Some("mean"));
        assert_eq!(u64_field(bagged, "missing"), None);
        assert_eq!(str_field(bagged, "missing"), None);
        assert_eq!(u64_field(SAMPLE, "version"), Some(4));
    }

    #[test]
    fn array_field_returns_the_bracketed_slice() {
        let entry = "{\"name\":\"multi-fast\",\
                     \"multi\":{\"bandwidths\":[0.104,0.088],\"dims\":2}}";
        assert_eq!(array_field(entry, "bandwidths"), Some("[0.104,0.088]"));
        assert_eq!(array_field(entry, "missing"), None);
    }
}
