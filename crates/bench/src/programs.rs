//! The four programs of the paper's §IV-C evaluation, behind one interface.

use kcv_core::cv::SlidingWindowSelector;
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_core::select::{BaggedSelector, BandwidthSelector, GridSpec};
use kcv_core::util::SplitMix64;
use kcv_gpu::{select_bandwidth_gpu, select_bandwidth_gpu_windowed, GpuConfig};
use kcv_np::{npregbw, NpRegBwOptions};
use std::time::Instant;

/// The paper's four evaluated programs, plus this reproduction's
/// merge-sweep variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Program {
    /// Program 1 — "Racine & Hayfield": the np-style numerical-optimisation
    /// selector, sequential.
    RacineHayfield,
    /// Program 2 — "Multicore R": the same selector with the objective
    /// evaluated across cores.
    MulticoreR,
    /// Program 3 — "Sequential C": the sorted-sweep grid search, one core.
    SequentialC,
    /// Beyond the paper — "Merged C": the merge-sweep grid search (one
    /// global argsort, no per-observation sort), one core.
    MergedC,
    /// Beyond the paper — "Prefix C": the prefix-moment grid search (window
    /// queries over global moment prefix sums, no per-neighbour scan), one
    /// core.
    PrefixC,
    /// Program 4 — "CUDA on GPU": the sorted-sweep grid search on the
    /// simulated Tesla S10.
    CudaGpu,
    /// Beyond the paper — "Windowed GPU": the prefix-moment grid search on
    /// the simulated device, `O(n·(deg+2) + k)` device bytes instead of the
    /// classic program's `O(n²)` matrices.
    WindowedGpu,
    /// Beyond the paper — "Bagged": Barreiro-Ures-style subsampled bagging
    /// (`B = 25` bags of `r = min(n, 2000)`, prefix engine, mean combiner,
    /// rescaled by `(r/n)^{1/5}`), the only program whose cost does not
    /// grow with `n` once `n > r`.
    Bagged,
    /// Beyond the paper — "Multi fast": the `d = 2` full-grid selector on
    /// the dimension-recursive fast-sum-updating engine
    /// (`kcv_core::multi::fast`) over the [`multi_dataset`] bivariate
    /// sample. Zero kernel evaluations on the hot path; the naive product
    /// oracle for the same grid is the `multi-naive` BENCH-report strategy.
    /// Kept out of [`Program::all`] so the §IV-C "eight programs" framing
    /// (which is univariate) stays intact.
    MultiFast,
    /// Beyond the paper — "Streaming": the sample replayed as an arrival
    /// stream through the sliding-window incremental Fenwick engine
    /// (`kcv_core::cv::SlidingWindowSelector`): window `max(n/4, 64)`,
    /// re-selection every 64 arrivals over a `k`-point log grid, zero
    /// kernel evaluations on the hot path. The reported selection is the
    /// final window's, so on `n ≤ 4·64` samples (window = whole stream)
    /// it matches the prefix program on the same grid exactly. Kept out
    /// of [`Program::all`] for the same reason as `MultiFast`: the §IV-C
    /// framing is batch.
    Streaming,
}

impl Program {
    /// Every program, in the paper's order (with the merge-sweep and
    /// prefix-moment sweeps slotted after the sequential sorted sweep they
    /// successively improve on).
    pub fn all() -> [Program; 8] {
        [
            Program::RacineHayfield,
            Program::MulticoreR,
            Program::SequentialC,
            Program::MergedC,
            Program::PrefixC,
            Program::CudaGpu,
            Program::WindowedGpu,
            Program::Bagged,
        ]
    }

    /// The display name (the paper's, where the program is the paper's).
    pub fn label(&self) -> &'static str {
        match self {
            Program::RacineHayfield => "Racine & Hayfield",
            Program::MulticoreR => "Multicore R",
            Program::SequentialC => "Sequential C",
            Program::MergedC => "Merged C",
            Program::PrefixC => "Prefix C",
            Program::CudaGpu => "CUDA on GPU",
            Program::WindowedGpu => "Windowed GPU",
            Program::Bagged => "Bagged",
            Program::MultiFast => "Multi fast",
            Program::Streaming => "Streaming",
        }
    }
}

/// Derives the deterministic `d = 2` dataset every multivariate benchmark
/// runs on: the paper DGP's `(x, y)` joined by a SplitMix64 second
/// regressor `x2 ~ U[0, 1)` (fixed seed, independent of the sample's own
/// seed) carrying its own quadratic signal, `y2 = y + 2·x2²`. The "Multi
/// fast" program and the BENCH report's `multi-naive`/`multi-fast`
/// strategies all call this, so their measurements cover the identical
/// sample.
pub fn multi_dataset(x: &[f64], y: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SplitMix64::new(77);
    let x2: Vec<f64> = (0..x.len()).map(|_| rng.next_f64()).collect();
    let y2: Vec<f64> = y.iter().zip(&x2).map(|(&v, &b)| v + 2.0 * b * b).collect();
    (vec![x.to_vec(), x2], y2)
}

/// Per-dimension grid side for a `k`-point univariate budget: the largest
/// square grid of at most `k` points, floored at 2 per dimension (so even
/// tiny budgets still search a genuine 2-D lattice).
pub fn multi_grid_side(k: usize) -> usize {
    ((k as f64).sqrt().floor() as usize).max(2)
}

/// Resolves one `side`-point paper-default bandwidth grid per column.
pub fn multi_grids(columns: &[Vec<f64>], side: usize) -> Result<Vec<Vec<f64>>, String> {
    columns
        .iter()
        .map(|col| {
            BandwidthGrid::paper_default(col, side)
                .map(|g| g.values().to_vec())
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// One timed run of one program.
#[derive(Debug, Clone)]
pub struct ProgramResult {
    /// The bandwidth the program selected.
    pub bandwidth: f64,
    /// The CV score it reports at that bandwidth.
    pub score: f64,
    /// Host wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated device seconds (GPU program only): what the cost model says
    /// the run takes on the 240-core Tesla — the number comparable to the
    /// paper's Table I "CUDA on GPU" column when the host has few cores.
    pub simulated_seconds: Option<f64>,
    /// Objective evaluations (numerical programs) or grid size (grid
    /// searches).
    pub evaluations: usize,
}

/// Runs `program` once on `(x, y)` with a `k`-point paper-default grid
/// (grid programs) or `nmulti` restarts (numerical programs).
pub fn run_program(
    program: Program,
    x: &[f64],
    y: &[f64],
    k: usize,
    nmulti: usize,
) -> Result<ProgramResult, String> {
    let start = Instant::now();
    match program {
        Program::RacineHayfield | Program::MulticoreR => {
            let options = NpRegBwOptions {
                nmulti,
                parallel: program == Program::MulticoreR,
                ..Default::default()
            };
            let bw = npregbw(x, y, options).map_err(|e| e.to_string())?;
            Ok(ProgramResult {
                bandwidth: bw.bw,
                score: bw.fval,
                wall_seconds: start.elapsed().as_secs_f64(),
                simulated_seconds: None,
                evaluations: bw.evaluations,
            })
        }
        Program::SequentialC | Program::MergedC | Program::PrefixC => {
            let grid = BandwidthGrid::paper_default(x, k).map_err(|e| e.to_string())?;
            let profile = match program {
                Program::MergedC => kcv_core::cv::cv_profile_merged(x, y, &grid, &Epanechnikov),
                Program::PrefixC => kcv_core::cv::cv_profile_prefix(x, y, &grid, &Epanechnikov),
                _ => kcv_core::cv::cv_profile_sorted(x, y, &grid, &Epanechnikov),
            }
            .map_err(|e| e.to_string())?;
            let opt = profile.argmin().map_err(|e| e.to_string())?;
            Ok(ProgramResult {
                bandwidth: opt.bandwidth,
                score: opt.score,
                wall_seconds: start.elapsed().as_secs_f64(),
                simulated_seconds: None,
                evaluations: k,
            })
        }
        Program::CudaGpu => {
            let grid = BandwidthGrid::paper_default(x, k).map_err(|e| e.to_string())?;
            let run = select_bandwidth_gpu(x, y, &grid, &GpuConfig::default())
                .map_err(|e| e.to_string())?;
            Ok(ProgramResult {
                bandwidth: run.bandwidth,
                score: run.score,
                wall_seconds: start.elapsed().as_secs_f64(),
                simulated_seconds: Some(run.report.total_simulated_seconds),
                evaluations: k,
            })
        }
        Program::WindowedGpu => {
            let grid = BandwidthGrid::paper_default(x, k).map_err(|e| e.to_string())?;
            let run = select_bandwidth_gpu_windowed(x, y, &grid, &GpuConfig::default())
                .map_err(|e| e.to_string())?;
            Ok(ProgramResult {
                bandwidth: run.bandwidth,
                score: run.score,
                wall_seconds: start.elapsed().as_secs_f64(),
                simulated_seconds: Some(run.report.total_simulated_seconds),
                evaluations: k,
            })
        }
        Program::Bagged => {
            // r caps at 2,000 (the ISSUE's scaling-study setting); below
            // that the bags are the full sample and bagging degenerates to
            // B redundant prefix selections, so small-n comparisons against
            // the other programs stay meaningful.
            let bag_size = x.len().min(2_000);
            let selector =
                BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(k), 25, bag_size)
                    .with_seed(42);
            let sel = selector.select(x, y).map_err(|e| e.to_string())?;
            Ok(ProgramResult {
                bandwidth: sel.bandwidth,
                score: sel.score,
                wall_seconds: start.elapsed().as_secs_f64(),
                simulated_seconds: None,
                evaluations: sel.evaluations,
            })
        }
        Program::Streaming => {
            let n = x.len();
            let window = (n / 4).max(64).min(n);
            let (lo, hi) = x
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            let domain = hi - lo;
            // Log-spaced grid, matching the scaling study's full-data runs:
            // a linear paper-default grid would clamp the optimum at its
            // `domain/k` floor once the window grows large.
            let grid = BandwidthGrid::log(domain * 1e-3, domain * 0.3, k)
                .map_err(|e| e.to_string())?;
            let mut sel = SlidingWindowSelector::new(Epanechnikov, grid, window, 64)
                .map_err(|e| e.to_string())?;
            for (&xi, &yi) in x.iter().zip(y) {
                sel.push(xi, yi).map_err(|e| e.to_string())?;
            }
            let opt = sel.reselect_now().map_err(|e| e.to_string())?;
            Ok(ProgramResult {
                bandwidth: opt.bandwidth,
                score: opt.score,
                wall_seconds: start.elapsed().as_secs_f64(),
                simulated_seconds: None,
                evaluations: k,
            })
        }
        Program::MultiFast => {
            // The scalar `bandwidth` column reports dimension 1's choice so
            // the sweep tables stay rectangular; the full per-dimension
            // vector lives in the BENCH report's `multi` object.
            let (columns, y2) = multi_dataset(x, y);
            let side = multi_grid_side(k);
            let grids = multi_grids(&columns, side)?;
            let sel = kcv_core::multi::select_full_grid(&columns, &y2, &Epanechnikov, &grids)
                .map_err(|e| e.to_string())?;
            Ok(ProgramResult {
                bandwidth: sel.bandwidths[0],
                score: sel.score,
                wall_seconds: start.elapsed().as_secs_f64(),
                simulated_seconds: None,
                evaluations: side * side,
            })
        }
    }
}

/// Runs `program` `reps` times and returns the result with the median wall
/// time (the paper runs each configuration five times).
pub fn run_program_median(
    program: Program,
    x: &[f64],
    y: &[f64],
    k: usize,
    nmulti: usize,
    reps: usize,
) -> Result<ProgramResult, String> {
    let mut runs: Vec<ProgramResult> = (0..reps.max(1))
        .map(|_| run_program(program, x, y, k, nmulti))
        .collect::<Result<_, _>>()?;
    runs.sort_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds));
    Ok(runs.swap_remove(runs.len() / 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcv_data::{Dgp, PaperDgp};

    #[test]
    fn all_programs_agree_on_the_optimum_region() {
        let s = PaperDgp.sample(150, 7);
        let mut bandwidths = Vec::new();
        for p in Program::all() {
            let r = run_program(p, &s.x, &s.y, 50, 3).unwrap();
            assert!(r.bandwidth > 0.0 && r.bandwidth <= 1.0, "{}: {}", p.label(), r.bandwidth);
            bandwidths.push(r.bandwidth);
        }
        // §IV-C: the programs should produce "optimal bandwidths in similar
        // ranges" on the same data.
        let (lo, hi) = bandwidths
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(hi - lo < 0.12, "programs disagree: {bandwidths:?}");
    }

    #[test]
    fn merged_and_sequential_c_select_identically() {
        let s = PaperDgp.sample(250, 10);
        let seq = run_program(Program::SequentialC, &s.x, &s.y, 40, 1).unwrap();
        let merged = run_program(Program::MergedC, &s.x, &s.y, 40, 1).unwrap();
        assert_eq!(seq.bandwidth, merged.bandwidth);
        assert!((seq.score - merged.score).abs() < 1e-9);
    }

    #[test]
    fn prefix_and_sequential_c_select_identically() {
        let s = PaperDgp.sample(250, 10);
        let seq = run_program(Program::SequentialC, &s.x, &s.y, 40, 1).unwrap();
        let prefix = run_program(Program::PrefixC, &s.x, &s.y, 40, 1).unwrap();
        assert_eq!(seq.bandwidth, prefix.bandwidth);
        assert!((seq.score - prefix.score).abs() < 1e-9);
    }

    #[test]
    fn grid_programs_agree_exactly() {
        let s = PaperDgp.sample(200, 8);
        let seq = run_program(Program::SequentialC, &s.x, &s.y, 50, 1).unwrap();
        let gpu = run_program(Program::CudaGpu, &s.x, &s.y, 50, 1).unwrap();
        // f32 vs f64 may flip near-equal minima by at most one grid step.
        let step = 1.0 / 50.0;
        assert!((seq.bandwidth - gpu.bandwidth).abs() < step + 1e-9);
        assert!(gpu.simulated_seconds.unwrap() > 0.0);
    }

    #[test]
    fn windowed_gpu_matches_the_classic_gpu_program() {
        let s = PaperDgp.sample(200, 8);
        let gpu = run_program(Program::CudaGpu, &s.x, &s.y, 50, 1).unwrap();
        let win = run_program(Program::WindowedGpu, &s.x, &s.y, 50, 1).unwrap();
        // Both run in f32 but accumulate differently (running sums vs
        // compensated prefix windows): near-equal minima may flip by at most
        // one grid step.
        let step = 1.0 / 50.0;
        assert!((gpu.bandwidth - win.bandwidth).abs() < step + 1e-9);
        assert!(win.simulated_seconds.unwrap() > 0.0);
    }

    #[test]
    fn bagged_program_degenerates_to_prefix_below_the_bag_cap() {
        // n < 2,000: every bag is the full sample and the rescale factor is
        // 1, so the Bagged program agrees with Prefix C up to the one
        // rounding step of averaging 25 identical values (sum/25 is not a
        // power-of-two division; bit identity is only guaranteed at B = 1,
        // which the core proptest pins).
        let s = PaperDgp.sample(250, 10);
        let prefix = run_program(Program::PrefixC, &s.x, &s.y, 40, 1).unwrap();
        let bagged = run_program(Program::Bagged, &s.x, &s.y, 40, 1).unwrap();
        assert!((bagged.bandwidth - prefix.bandwidth).abs() <= 1e-12 * prefix.bandwidth);
        assert!((bagged.score - prefix.score).abs() <= 1e-12 * prefix.score.abs());
        assert_eq!(bagged.evaluations, 25 * 40);
    }

    #[test]
    fn multi_fast_program_matches_the_naive_full_grid() {
        let s = PaperDgp.sample(150, 7);
        let r = run_program(Program::MultiFast, &s.x, &s.y, 25, 1).unwrap();
        // k = 25 → a 5×5 lattice.
        assert_eq!(r.evaluations, 25);
        let (columns, y2) = multi_dataset(&s.x, &s.y);
        let grids = multi_grids(&columns, multi_grid_side(25)).unwrap();
        let naive =
            kcv_core::multi::select_full_grid_naive(&columns, &y2, &Epanechnikov, &grids)
                .unwrap();
        assert_eq!(r.bandwidth, naive.bandwidths[0]);
        assert!((r.score - naive.score).abs() <= 1e-9 * naive.score.abs());
    }

    #[test]
    fn streaming_program_matches_a_fresh_prefix_profile_on_its_window() {
        // n = 200 ≤ 4·64: the sliding window covers the whole stream, so
        // the streaming replay must select exactly what a fresh prefix
        // profile selects on the same log grid.
        let s = PaperDgp.sample(200, 11);
        let r = run_program(Program::Streaming, &s.x, &s.y, 20, 1).unwrap();
        assert_eq!(r.evaluations, 20);
        let (lo, hi) = s
            .x
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let domain = hi - lo;
        let grid = BandwidthGrid::log(domain * 1e-3, domain * 0.3, 20).unwrap();
        let profile =
            kcv_core::cv::cv_profile_prefix(&s.x, &s.y, &grid, &Epanechnikov).unwrap();
        let opt = profile.argmin().unwrap();
        assert_eq!(r.bandwidth.to_bits(), opt.bandwidth.to_bits());
    }

    #[test]
    fn multi_dataset_is_deterministic_and_aligned() {
        let s = PaperDgp.sample(64, 3);
        let (c1, y1) = multi_dataset(&s.x, &s.y);
        let (c2, y2) = multi_dataset(&s.x, &s.y);
        assert_eq!(c1, c2);
        assert_eq!(y1, y2);
        assert_eq!(c1.len(), 2);
        assert_eq!(c1[0], s.x);
        assert_eq!(c1[1].len(), s.x.len());
        assert!(c1[1].iter().all(|&v| (0.0..1.0).contains(&v)));
        assert_eq!(multi_grid_side(100), 10);
        assert_eq!(multi_grid_side(1), 2);
    }

    #[test]
    fn median_runner_returns_a_valid_run() {
        let s = PaperDgp.sample(80, 9);
        let r = run_program_median(Program::SequentialC, &s.x, &s.y, 10, 1, 3).unwrap();
        assert!(r.wall_seconds >= 0.0);
        assert_eq!(r.evaluations, 10);
    }
}
