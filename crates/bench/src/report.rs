//! Versioned machine-readable performance report (`BENCH_report.json`).
//!
//! One report captures, at a single `(n, k)` configuration, every CV
//! strategy's wall time together with the op-counters and phase timers the
//! observability layer collected during that strategy's run (kernel
//! evaluations, sort comparisons, compact-support skips, simulated memory
//! transactions, …). Counters are live only when the workspace is built
//! with `--features metrics`; without it the `obs` objects in the JSON are
//! empty and `metrics_enabled` is `false`, so downstream tooling can tell
//! "zero because cheap" from "zero because disabled".
//!
//! Every strategy is measured under its own [`kcv_obs::Recorder`], so the
//! snapshots are per-run deltas by construction — immune to any other
//! instrumented code running concurrently in the process.
//!
//! ## Schema (version 3)
//!
//! Version 2 renamed the per-phase `seconds` field to `cpu_seconds`:
//! overlapping same-name phase scopes on different rayon workers sum to CPU
//! time, which legitimately exceeds wall-clock (see the `kcv-obs`
//! *Phase-timer semantics* rustdoc). Version 3 added the `gpu-windowed`
//! strategy (the O(n)-memory device program) and the per-strategy
//! `device_bytes_peak` field (`null` for CPU strategies) that the
//! windowed-memory perf gate reads.
//!
//! ```json
//! {
//!   "version": 3,
//!   "metrics_enabled": true,
//!   "config": {"n": 1000, "k": 50, "seed": 42, "kernel": "epanechnikov"},
//!   "strategies": [
//!     {
//!       "name": "naive",
//!       "bandwidth": 0.104,
//!       "score": 0.0321,
//!       "wall_seconds": 0.0124,
//!       "simulated_seconds": null,
//!       "device_bytes_peak": null,
//!       "obs": {
//!         "counters": {"kernel_evals": 49950000, "sort_comparisons": 0, ...},
//!         "phases": {"cv.naive": {"calls": 1, "cpu_seconds": 0.0123}, ...}
//!       }
//!     }
//!   ]
//! }
//! ```

use kcv_core::cv::{
    cv_profile_merged, cv_profile_merged_par, cv_profile_naive, cv_profile_prefix,
    cv_profile_prefix_par, cv_profile_sorted, cv_profile_sorted_par,
};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_gpu::{select_bandwidth_gpu, select_bandwidth_gpu_windowed, GpuConfig};
use kcv_obs::Snapshot;
use std::time::Instant;

/// Current `BENCH_report.json` schema version. Bump on any breaking change
/// to the JSON layout and describe the change in EXPERIMENTS.md.
/// Version 2: phase timers serialise as `cpu_seconds` (was `seconds`).
/// Version 3: added the `gpu-windowed` strategy and the per-strategy
/// `device_bytes_peak` field.
pub const REPORT_VERSION: u32 = 3;

/// The strategies a report covers, in emission order.
pub const STRATEGIES: [&str; 9] = [
    "naive",
    "sorted",
    "parallel",
    "merged",
    "merged-par",
    "prefix",
    "prefix-par",
    "gpu-sim",
    "gpu-windowed",
];

/// The `(n, k, seed)` point a report was measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportConfig {
    /// Sample size.
    pub n: usize,
    /// Bandwidth-grid size.
    pub k: usize,
    /// DGP seed.
    pub seed: u64,
}

/// One strategy's measurement: selection outcome, wall time, and the
/// observability snapshot delta for exactly that run.
#[derive(Debug, Clone)]
pub struct StrategyPerf {
    /// Strategy name (one of [`STRATEGIES`]).
    pub name: &'static str,
    /// Selected bandwidth.
    pub bandwidth: f64,
    /// CV score at the selected bandwidth.
    pub score: f64,
    /// Host wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Simulated device seconds (device strategies only).
    pub simulated_seconds: Option<f64>,
    /// Peak simulated device memory in bytes (device strategies only).
    /// The windowed-memory perf gate pins `gpu-windowed`'s value to the
    /// O(n·(deg+2) + k) formula.
    pub device_bytes_peak: Option<u64>,
    /// Counters and phase timers recorded during the run.
    pub obs: Snapshot,
}

/// A full report: configuration plus one [`StrategyPerf`] per strategy.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Measurement point.
    pub config: ReportConfig,
    /// Per-strategy results, in [`STRATEGIES`] order.
    pub strategies: Vec<StrategyPerf>,
}

impl PerfReport {
    /// Serialises the report as schema-version-[`REPORT_VERSION`] JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":{REPORT_VERSION},\"metrics_enabled\":{},\
             \"config\":{{\"n\":{},\"k\":{},\"seed\":{},\"kernel\":\"epanechnikov\"}},\
             \"strategies\":[",
            kcv_obs::enabled(),
            self.config.n,
            self.config.k,
            self.config.seed,
        );
        for (i, s) in self.strategies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let sim = s
                .simulated_seconds
                .map_or("null".to_string(), |v| format!("{v:.9}"));
            let peak = s
                .device_bytes_peak
                .map_or("null".to_string(), |v| v.to_string());
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"bandwidth\":{:.12},\"score\":{:.12},\
                 \"wall_seconds\":{:.9},\"simulated_seconds\":{sim},\
                 \"device_bytes_peak\":{peak},\"obs\":{}}}",
                s.name,
                s.bandwidth,
                s.score,
                s.wall_seconds,
                s.obs.to_json(),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Runs every strategy in [`STRATEGIES`] at one `(n, k)` point on the paper
/// DGP and collects a [`PerfReport`].
///
/// Each strategy runs under its own freshly installed [`kcv_obs::Recorder`],
/// so every snapshot is exactly that strategy's delta even if other
/// instrumented code executes concurrently elsewhere in the process.
pub fn collect_report(config: ReportConfig) -> Result<PerfReport, String> {
    let s = {
        use kcv_data::Dgp;
        kcv_data::PaperDgp.sample(config.n, config.seed)
    };
    let grid = BandwidthGrid::paper_default(&s.x, config.k).map_err(|e| e.to_string())?;

    let mut strategies = Vec::with_capacity(STRATEGIES.len());
    for name in STRATEGIES {
        let recorder = kcv_obs::Recorder::new();
        let scope = recorder.install();
        let start = Instant::now();
        let (bandwidth, score, simulated_seconds, device_bytes_peak) = match name {
            "naive" => {
                let p = cv_profile_naive(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "sorted" => {
                let p = cv_profile_sorted(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "parallel" => {
                let p = cv_profile_sorted_par(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "merged" => {
                let p = cv_profile_merged(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "merged-par" => {
                let p = cv_profile_merged_par(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "prefix" => {
                let p = cv_profile_prefix(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "prefix-par" => {
                let p = cv_profile_prefix_par(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "gpu-sim" => {
                let run = select_bandwidth_gpu(&s.x, &s.y, &grid, &GpuConfig::default())
                    .map_err(|e| e.to_string())?;
                (
                    run.bandwidth,
                    run.score,
                    Some(run.report.total_simulated_seconds),
                    Some(run.report.device_bytes_peak as u64),
                )
            }
            "gpu-windowed" => {
                let run =
                    select_bandwidth_gpu_windowed(&s.x, &s.y, &grid, &GpuConfig::default())
                        .map_err(|e| e.to_string())?;
                (
                    run.bandwidth,
                    run.score,
                    Some(run.report.total_simulated_seconds),
                    Some(run.report.device_bytes_peak as u64),
                )
            }
            other => return Err(format!("unknown strategy {other}")),
        };
        let wall_seconds = start.elapsed().as_secs_f64();
        drop(scope);
        strategies.push(StrategyPerf {
            name,
            bandwidth,
            score,
            wall_seconds,
            simulated_seconds,
            device_bytes_peak,
            obs: recorder.snapshot(),
        });
    }
    Ok(PerfReport { config, strategies })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_strategies_and_serialises() {
        let report = collect_report(ReportConfig { n: 120, k: 10, seed: 5 }).unwrap();
        assert_eq!(report.strategies.len(), STRATEGIES.len());
        for (s, name) in report.strategies.iter().zip(STRATEGIES) {
            assert_eq!(s.name, name);
            assert!(s.bandwidth > 0.0);
            assert!(s.wall_seconds >= 0.0);
        }
        let classic = &report.strategies[7];
        assert_eq!(classic.name, "gpu-sim");
        assert!(classic.simulated_seconds.unwrap() > 0.0);
        let windowed = report.strategies.last().unwrap();
        assert_eq!(windowed.name, "gpu-windowed");
        assert!(windowed.simulated_seconds.unwrap() > 0.0);
        // The windowed program's whole point: a fraction of the classic
        // footprint at the same (n, k).
        assert!(windowed.device_bytes_peak.unwrap() < classic.device_bytes_peak.unwrap() / 2);

        let json = report.to_json();
        assert!(json.starts_with("{\"version\":3,"));
        for name in STRATEGIES {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "{json}");
        }
        assert!(json.contains("\"simulated_seconds\":null"));
        assert!(json.contains("\"device_bytes_peak\":null"));
        assert!(json.ends_with("]}"));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn report_records_strategy_counters() {
        // No serialization needed: collect_report measures each strategy
        // under its own recorder, so concurrent tests cannot pollute it.
        let n = 60u64;
        let k = 8u64;
        let report = collect_report(ReportConfig {
            n: n as usize,
            k: k as usize,
            seed: 1,
        })
        .unwrap();
        let by_name = |name: &str| {
            report
                .strategies
                .iter()
                .find(|s| s.name == name)
                .unwrap()
                .obs
                .clone()
        };
        // Naive evaluates the kernel for every (i, l≠i, h) triple.
        assert_eq!(by_name("naive").counter("kernel_evals"), k * n * (n - 1));
        // The sweep absorbs each neighbour at most once per observation.
        let sorted = by_name("sorted");
        assert!(sorted.counter("kernel_evals") <= n * (n - 1));
        assert!(sorted.counter("sort_comparisons") > 0);
        // The merge-sweep walks the same support as the sorted sweep but
        // replaces the per-observation sorts with one global argsort.
        let merged = by_name("merged");
        assert_eq!(merged.counter("kernel_evals"), sorted.counter("kernel_evals"));
        assert!(merged.counter("sort_comparisons") < sorted.counter("sort_comparisons"));
        // The prefix sweep answers every (obs, bandwidth) cell with exactly
        // one window query and touches no neighbours at all.
        let prefix = by_name("prefix");
        assert_eq!(prefix.counter("window_queries"), n * k);
        assert_eq!(prefix.counter("kernel_evals"), 0);
        let prefix_par = by_name("prefix-par");
        assert_eq!(prefix_par.counter("window_queries"), n * k);
        assert_eq!(prefix_par.counter("kernel_evals"), 0);
        // The gpu-sim path reports simulated memory traffic.
        assert!(by_name("gpu-sim").counter("mem_transactions") > 0);
        // The windowed device program answers each (obs, bandwidth) cell
        // with one window query resolved by binary-search probes, and its
        // total simulated traffic stays within the per-cell O(log n) gate
        // bound (the same formula perf_gate enforces).
        let windowed = by_name("gpu-windowed");
        assert_eq!(windowed.counter("window_queries"), n * k);
        assert!(windowed.counter("binary_search_probes") > 0);
        let log2n = (64 - (n - 1).leading_zeros()) as u64;
        assert!(
            windowed.counter("mem_transactions") <= n * k * (2 * log2n + 24 * 3),
            "windowed traffic {} exceeds the per-cell bound",
            windowed.counter("mem_transactions")
        );
    }
}
