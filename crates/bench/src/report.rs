//! Versioned machine-readable performance report (`BENCH_report.json`).
//!
//! One report captures, at a single `(n, k)` configuration, every CV
//! strategy's wall time together with the op-counters and phase timers the
//! observability layer collected during that strategy's run (kernel
//! evaluations, sort comparisons, compact-support skips, simulated memory
//! transactions, …). Counters are live only when the workspace is built
//! with `--features metrics`; without it the `obs` objects in the JSON are
//! empty and `metrics_enabled` is `false`, so downstream tooling can tell
//! "zero because cheap" from "zero because disabled".
//!
//! Every strategy is measured under its own [`kcv_obs::Recorder`], so the
//! snapshots are per-run deltas by construction — immune to any other
//! instrumented code running concurrently in the process.
//!
//! ## Schema (version 7)
//!
//! Version 2 renamed the per-phase `seconds` field to `cpu_seconds`:
//! overlapping same-name phase scopes on different rayon workers sum to CPU
//! time, which legitimately exceeds wall-clock (see the `kcv-obs`
//! *Phase-timer semantics* rustdoc). Version 3 added the `gpu-windowed`
//! strategy (the O(n)-memory device program) and the per-strategy
//! `device_bytes_peak` field (`null` for CPU strategies) that the
//! windowed-memory perf gate reads. Version 4 adds:
//!
//! * the `bagged` strategy entry, whose nested `bagged` object (`null` on
//!   every other strategy) records `bags` (their `N`), `bag_size` (their
//!   `r`), the `combiner`, the rayon `workers` the bags were chunked over,
//!   and `host_bytes_peak` — the *measured* host-heap high-water delta of
//!   the run from the crate's counting allocator (see `alloc_track`), which
//!   the bagged-memory perf gate divides by `workers`;
//! * the top-level `scaling` array (empty unless written by the `scaling`
//!   binary) with one row per past-the-paper sample size;
//! * an explicit restatement of the version-2 rule because the bagged run
//!   is the first *multi-bag parallel* strategy in the report: the
//!   `cv.bag` phase's `cpu_seconds` is the **sum over bags on all
//!   workers**, so it exceeds the strategy's `wall_seconds` whenever bags
//!   actually overlapped — that is the parallelism working, not a timer
//!   bug. Tooling comparing strategies must use `wall_seconds`; phase
//!   `cpu_seconds` only ever compares against other phase `cpu_seconds`.
//!
//! Version 5 adds the two multivariate strategies, measured over the
//! shared `d = 2` dataset of [`crate::programs::multi_dataset`] on a
//! `⌊√k⌋ × ⌊√k⌋` full bandwidth lattice:
//!
//! * `multi-naive` — `kcv_core::multi::select_full_grid_naive`, the
//!   product-kernel oracle that evaluates `Π_j K(·)` for every
//!   `(i, l ≠ i, h)` triple;
//! * `multi-fast` — `kcv_core::multi::select_full_grid`, the
//!   dimension-recursive fast-sum-updating engine (zero kernel
//!   evaluations; window queries and `dim_sweeps` counters instead);
//! * the per-strategy nested `multi` object (`null` on every univariate
//!   strategy) recording `dims`, `grid_points`, and the full per-dimension
//!   `bandwidths` array — the scalar `bandwidth` field on those entries is
//!   dimension 1's component, kept so every entry stays shape-compatible.
//!   The multivariate perf gates read `multi` to pin the fast engine's
//!   zero-eval and window-query contracts and its ≥ 10× wall-time win
//!   over `multi-naive` at gate scale.
//!
//! Version 6 adds the streaming replay and the chunk-hook observability:
//!
//! * the top-level `streaming` object (after `scaling`): a sliding-window
//!   replay of the report's own paper-DGP sample through
//!   `kcv_core::cv::SlidingWindowSelector` (window `max(n/4, 64)`,
//!   re-selection cadence 64 arrivals, the same `k`-point **log-spaced**
//!   grid the scaling study's full runs use). `wall_seconds` is the whole
//!   replay including every cadence-triggered re-selection plus one forced
//!   final `reselect`; `recompute_wall_seconds` is the extrapolated cost of
//!   the recompute-from-scratch policy (a fresh prefix profile on the live
//!   window at *every* arrival) — timing all `n` recomputes would dwarf
//!   the report, so the baseline is **sampled at the replay's re-selection
//!   points and the final window** and scaled to per-arrival cost. The
//!   streaming perf gates pin `kernel_evals == 0`, the
//!   `tree_updates ≤ (inserts+removes)·⌈log₂ window⌉·(deg+3)` budget, the
//!   ≥ 10× wall-time win over the recompute baseline, and
//!   `final_bandwidth == recompute_bandwidth` (serialised form);
//! * the `scope_enters` counter in every `obs.counters` object: recorder
//!   scope re-entries inside worker closures. The vendored rayon's
//!   `fold_with_setup` chunk hook makes each parallel strategy pay one
//!   entry per worker *chunk* (at most `available_parallelism`) instead of
//!   one per observation, so a parallel strategy's count is now orders of
//!   magnitude below its observation count while its sequential twin stays
//!   at zero — the per-chunk-vs-per-observation delta is directly visible
//!   in the report, with the per-item counter attribution (`kernel_evals`,
//!   `window_queries`, …) unchanged.
//!
//! Version 7 adds the top-level `serving` object (after `streaming`): the
//! sharded multi-stream service measurement. The report's paper-DGP sample
//! is replayed as several concurrent arrival streams (each stream a
//! rotation of the sample, so the per-stream sequences differ) through
//! `kcv_serve::BandwidthService` — bounded per-shard queues, burst
//! coalescing, one conflated re-selection per boundary-crossing burst —
//! and, identically, through the single-global-lock baseline
//! (`kcv_serve::GlobalLockService`) that re-selects at **every** cadence
//! boundary under the lock. The object records both wall times, the
//! service-side outcome counters (`reselects` vs `lock_reselects`, counted
//! from the per-stream outcomes, so they are live without `--features
//! metrics`), the merged shard obs counters (`requests_served`,
//! `coalesced_arrivals`, `queue_high_water` — max across shards —
//! `shed_requests`, `kernel_evals`; zero without metrics), and the two
//! per-stream `final_bandwidths` arrays in stream-id order. Perf gates
//! 20–22 pin the object's presence, the zero-kernel-eval /
//! coalescing-observed contract, and the ≥ 4× throughput win at
//! bit-identical serialised final bandwidths.
//!
//! ```json
//! {
//!   "version": 6,
//!   "metrics_enabled": true,
//!   "config": {"n": 1000, "k": 50, "seed": 42, "kernel": "epanechnikov"},
//!   "strategies": [
//!     {
//!       "name": "naive",
//!       "bandwidth": 0.104,
//!       "score": 0.0321,
//!       "wall_seconds": 0.0124,
//!       "simulated_seconds": null,
//!       "device_bytes_peak": null,
//!       "bagged": null,
//!       "multi": null,
//!       "obs": {
//!         "counters": {"kernel_evals": 49950000, "sort_comparisons": 0, ...},
//!         "phases": {"cv.naive": {"calls": 1, "cpu_seconds": 0.0123}, ...}
//!       }
//!     },
//!     {
//!       "name": "bagged",
//!       "bandwidth": 0.102,
//!       ...
//!       "bagged": {"bags": 10, "bag_size": 500, "combiner": "mean",
//!                   "workers": 8, "host_bytes_peak": 392704},
//!       "obs": {...}
//!     },
//!     {
//!       "name": "multi-fast",
//!       "bandwidth": 0.104,
//!       ...
//!       "multi": {"dims": 2, "grid_points": 49,
//!                  "bandwidths": [0.104, 0.088]},
//!       "obs": {...}
//!     }
//!   ],
//!   "scaling": [
//!     {"n": 10000000, "bags": 25, "bag_size": 2000, "combiner": "mean",
//!      "bagged_wall_seconds": 0.021, "bagged_host_bytes_peak": 81920000,
//!      "bagged_bandwidth": 0.0021, "full_wall_seconds": null,
//!      "full_host_bytes_peak": null, "full_bandwidth": null,
//!      "full_score": null, "bagged_regret": null}
//!   ],
//!   "streaming": {
//!     "arrivals": 2000, "window": 500, "cadence": 64,
//!     "inserts": 2000, "removes": 1500, "reselects": 32,
//!     "tree_updates": 104000, "kernel_evals": 0,
//!     "final_bandwidth": 0.052341, "recompute_bandwidth": 0.052341,
//!     "wall_seconds": 0.011, "recompute_wall_seconds": 0.420
//!   },
//!   "serving": {
//!     "streams": 8, "arrivals_per_stream": 2000, "shards": 4,
//!     "window": 256, "cadence": 50,
//!     "requests_served": 16008, "coalesced_arrivals": 15200,
//!     "queue_high_water": 812, "shed_requests": 0,
//!     "reselects": 24, "lock_reselects": 328, "kernel_evals": 0,
//!     "wall_seconds": 0.081, "lock_wall_seconds": 0.840,
//!     "final_bandwidths": [0.052341, ...],
//!     "lock_final_bandwidths": [0.052341, ...]
//!   }
//! }
//! ```

use kcv_core::cv::{
    cv_profile_merged, cv_profile_merged_par, cv_profile_naive, cv_profile_prefix,
    cv_profile_prefix_par, cv_profile_sorted, cv_profile_sorted_par,
};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_core::select::bagged::{bag_workers, BaggedSelector};
use kcv_core::select::{BandwidthSelector, GridSpec};
use kcv_gpu::{select_bandwidth_gpu, select_bandwidth_gpu_windowed, GpuConfig};
use kcv_obs::Snapshot;
use std::time::Instant;

/// Current `BENCH_report.json` schema version. Bump on any breaking change
/// to the JSON layout and describe the change in EXPERIMENTS.md.
/// Version 2: phase timers serialise as `cpu_seconds` (was `seconds`).
/// Version 3: added the `gpu-windowed` strategy and the per-strategy
/// `device_bytes_peak` field.
/// Version 4: added the `bagged` strategy (nested `bags`/`bag_size`/
/// `combiner`/`workers`/`host_bytes_peak` object) and the top-level
/// `scaling` array; documented that multi-bag parallel phase `cpu_seconds`
/// legitimately exceeds `wall_seconds` (the module-level schema notes).
/// Version 5: added the `multi-naive`/`multi-fast` strategies (the `d = 2`
/// full-grid selectors) and the per-strategy nested `multi` object
/// (`dims`/`grid_points`/`bandwidths`, `null` on univariate strategies).
/// Version 6: added the top-level `streaming` object (the sliding-window
/// replay the streaming perf gates read) and the `scope_enters` counter
/// (the chunk-hook scope-entry delta; see the module-level schema notes).
/// Version 7: added the top-level `serving` object (the sharded
/// multi-stream service vs global-lock baseline measurement perf gates
/// 20–22 read; see the module-level schema notes).
pub const REPORT_VERSION: u32 = 7;

/// The strategies a report covers, in emission order.
pub const STRATEGIES: [&str; 12] = [
    "naive",
    "sorted",
    "parallel",
    "merged",
    "merged-par",
    "prefix",
    "prefix-par",
    "gpu-sim",
    "gpu-windowed",
    "bagged",
    "multi-naive",
    "multi-fast",
];

/// The `(n, k, seed)` point a report was measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportConfig {
    /// Sample size.
    pub n: usize,
    /// Bandwidth-grid size.
    pub k: usize,
    /// DGP seed.
    pub seed: u64,
}

/// The bagged strategy's extra dimensions (schema v4): the subsampling
/// configuration and the *measured* host-memory peak the bagged-memory perf
/// gate checks against `workers ×` one bag's documented footprint bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaggedInfo {
    /// Number of bags `B` (Barreiro-Ures et al.'s `N`).
    pub bags: usize,
    /// Subsample size `r` per bag.
    pub bag_size: usize,
    /// Aggregation rule label (`"mean"` / `"median"`).
    pub combiner: &'static str,
    /// Rayon workers the bags were chunked over — the maximum number of
    /// bags whose data is live simultaneously.
    pub workers: u64,
    /// Measured host-heap high-water delta of the run, from the crate's
    /// counting allocator ([`crate::alloc_track`]). Only meaningful when
    /// nothing else allocates concurrently (true in the `perf_gate` and
    /// `scaling` mains; not under `cargo test`).
    pub host_bytes_peak: u64,
}

/// The multivariate strategies' extra dimensions (schema v5): the grid
/// shape and the full per-dimension bandwidth vector that the scalar
/// `bandwidth` field (dimension 1's component) cannot carry. The
/// multivariate perf gates compare `multi-naive`'s and `multi-fast`'s
/// serialised `bandwidths` arrays for bit identity.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiInfo {
    /// Number of regressor dimensions `d`.
    pub dims: usize,
    /// Total bandwidth-lattice points searched (`side^d`).
    pub grid_points: usize,
    /// The selected per-dimension bandwidth vector.
    pub bandwidths: Vec<f64>,
}

/// One row of the past-the-paper scaling study (schema v4, written by the
/// `scaling` binary). The `full_*` fields are `None` where the full-data
/// prefix run was skipped as infeasible.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Sample size.
    pub n: usize,
    /// Bags `B` in the bagged run.
    pub bags: usize,
    /// Subsample size `r` per bag.
    pub bag_size: usize,
    /// Aggregation rule label.
    pub combiner: &'static str,
    /// Bagged selection wall time.
    pub bagged_wall_seconds: f64,
    /// Bagged selection measured host-heap peak delta (bytes).
    pub bagged_host_bytes_peak: u64,
    /// The bagged (combined, rescaled) bandwidth.
    pub bagged_bandwidth: f64,
    /// Full-data prefix wall time, where feasible.
    pub full_wall_seconds: Option<f64>,
    /// Full-data prefix measured host-heap peak delta (bytes).
    pub full_host_bytes_peak: Option<u64>,
    /// Full-data prefix bandwidth.
    pub full_bandwidth: Option<f64>,
    /// Full-data CV score at [`ScalingRow::full_bandwidth`] (the grid
    /// minimum).
    pub full_score: Option<f64>,
    /// Relative full-data CV regret of the bagged bandwidth:
    /// `(CV_n(h_bag) − CV_n(h_full)) / CV_n(h_full)`. This is the study's
    /// quality metric — the CV valley is so flat at these `n` that
    /// bandwidth ratios sit inside the CV minimizer's own `O(n^{−1/10})`
    /// noise, while the regret says directly how much objective the bagged
    /// answer gives up.
    pub bagged_regret: Option<f64>,
}

/// The streaming replay's settings and measurements (schema v6): one
/// sliding-window pass of the report's paper-DGP sample through the
/// incremental Fenwick engine, next to the sampled-and-extrapolated
/// recompute-from-scratch baseline (see the module-level schema notes for
/// the sampling policy).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingInfo {
    /// Observations replayed through the sliding window (the report's `n`).
    pub arrivals: usize,
    /// Window capacity `W` (`max(n/4, 64)`, capped at `n`).
    pub window: usize,
    /// Re-selection cadence in arrivals.
    pub cadence: usize,
    /// `insert` operations applied to the moment tree (= arrivals).
    pub inserts: u64,
    /// `remove` operations applied (evictions: `arrivals − window` once the
    /// window fills).
    pub removes: u64,
    /// Completed `reselect()` passes (cadence-triggered plus the forced
    /// final one), from the `reselects` counter.
    pub reselects: u64,
    /// Fenwick node visits, from the `tree_updates` counter. Perf gate 18
    /// holds this under `(inserts+removes)·⌈log₂ window⌉·(deg+3)`.
    pub tree_updates: u64,
    /// Kernel evaluations spent by the whole replay — pinned to zero by
    /// perf gate 18.
    pub kernel_evals: u64,
    /// The bandwidth selected by the forced final `reselect` on the full
    /// window.
    pub final_bandwidth: f64,
    /// The bandwidth a fresh prefix run selects on the identical final
    /// window — perf gate 19 pins it equal to
    /// [`StreamingInfo::final_bandwidth`].
    pub recompute_bandwidth: f64,
    /// Wall-clock seconds for the whole replay (pushes + re-selections).
    pub wall_seconds: f64,
    /// Extrapolated wall-clock seconds of the recompute-at-every-arrival
    /// prefix baseline (sampled at the re-selection points; perf gate 19
    /// requires ≥ 10× [`StreamingInfo::wall_seconds`]).
    pub recompute_wall_seconds: f64,
}

/// The sharded serving measurement (schema v7): the report's sample
/// replayed as concurrent streams through `kcv_serve::BandwidthService`
/// next to the single-global-lock baseline on the identical per-stream
/// sequences. Perf gate 22 compares the serialised `final_bandwidths`
/// arrays for bit identity and requires `lock_wall_seconds ≥ 4 ×
/// wall_seconds` at gate scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingInfo {
    /// Concurrent arrival streams replayed.
    pub streams: usize,
    /// Arrivals per stream (the report's `n`; each stream is a rotation
    /// of the sample so sequences differ across streams).
    pub arrivals_per_stream: usize,
    /// Worker shards the streams hash across.
    pub shards: usize,
    /// Sliding-window capacity `W` of every stream's selector.
    pub window: usize,
    /// Re-selection cadence in arrivals.
    pub cadence: usize,
    /// Requests drained by shard workers (opens + arrivals), from the
    /// merged `requests_served` counter (zero without metrics).
    pub requests_served: u64,
    /// Arrivals absorbed into an already-started burst, from the merged
    /// `coalesced_arrivals` counter (zero without metrics).
    pub coalesced_arrivals: u64,
    /// Deepest single shard queue observed, from the `queue_high_water`
    /// counter (max across shards; zero without metrics).
    pub queue_high_water: u64,
    /// Requests shed by full queues — zero here by construction (the
    /// replay uses the blocking send for lossless delivery).
    pub shed_requests: u64,
    /// Service-side re-selections summed over the per-stream outcomes
    /// (counted by the workers themselves, so live without metrics).
    pub reselects: u64,
    /// Baseline re-selections summed over its per-stream outcomes — one
    /// per cadence boundary per stream, plus each close.
    pub lock_reselects: u64,
    /// Kernel evaluations across the whole service run, from the merged
    /// shard counters — pinned to zero by perf gate 21.
    pub kernel_evals: u64,
    /// Wall-clock seconds for the sharded service replay (enqueue through
    /// shutdown drain).
    pub wall_seconds: f64,
    /// Wall-clock seconds for the global-lock baseline on the identical
    /// per-stream sequences.
    pub lock_wall_seconds: f64,
    /// Per-stream final bandwidths in stream-id order (service).
    pub final_bandwidths: Vec<f64>,
    /// Per-stream final bandwidths in stream-id order (baseline) — perf
    /// gate 22 pins the serialised arrays equal.
    pub lock_final_bandwidths: Vec<f64>,
}

/// One strategy's measurement: selection outcome, wall time, and the
/// observability snapshot delta for exactly that run.
#[derive(Debug, Clone)]
pub struct StrategyPerf {
    /// Strategy name (one of [`STRATEGIES`]).
    pub name: &'static str,
    /// Selected bandwidth.
    pub bandwidth: f64,
    /// CV score at the selected bandwidth.
    pub score: f64,
    /// Host wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Simulated device seconds (device strategies only).
    pub simulated_seconds: Option<f64>,
    /// Peak simulated device memory in bytes (device strategies only).
    /// The windowed-memory perf gate pins `gpu-windowed`'s value to the
    /// O(n·(deg+2) + k) formula.
    pub device_bytes_peak: Option<u64>,
    /// Bagged-run dimensions (the `bagged` strategy only).
    pub bagged: Option<BaggedInfo>,
    /// Multivariate-run dimensions (the `multi-*` strategies only).
    pub multi: Option<MultiInfo>,
    /// Counters and phase timers recorded during the run.
    pub obs: Snapshot,
}

/// A full report: configuration plus one [`StrategyPerf`] per strategy.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Measurement point.
    pub config: ReportConfig,
    /// Per-strategy results, in [`STRATEGIES`] order.
    pub strategies: Vec<StrategyPerf>,
    /// Past-the-paper scaling rows; empty except in reports written by the
    /// `scaling` binary.
    pub scaling: Vec<ScalingRow>,
    /// The streaming replay measurement (always collected by
    /// [`collect_report`]; `None` only in hand-built reports).
    pub streaming: Option<StreamingInfo>,
    /// The sharded serving measurement (always collected by
    /// [`collect_report`]; `None` only in hand-built reports).
    pub serving: Option<ServingInfo>,
}

impl PerfReport {
    /// Serialises the report as schema-version-[`REPORT_VERSION`] JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":{REPORT_VERSION},\"metrics_enabled\":{},\
             \"config\":{{\"n\":{},\"k\":{},\"seed\":{},\"kernel\":\"epanechnikov\"}},\
             \"strategies\":[",
            kcv_obs::enabled(),
            self.config.n,
            self.config.k,
            self.config.seed,
        );
        for (i, s) in self.strategies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let sim = s
                .simulated_seconds
                .map_or("null".to_string(), |v| format!("{v:.9}"));
            let peak = s
                .device_bytes_peak
                .map_or("null".to_string(), |v| v.to_string());
            let bagged = s.bagged.map_or("null".to_string(), |b| {
                format!(
                    "{{\"bags\":{},\"bag_size\":{},\"combiner\":\"{}\",\
                     \"workers\":{},\"host_bytes_peak\":{}}}",
                    b.bags, b.bag_size, b.combiner, b.workers, b.host_bytes_peak,
                )
            });
            let multi = s.multi.as_ref().map_or("null".to_string(), |m| {
                let bw: Vec<String> =
                    m.bandwidths.iter().map(|b| format!("{b:.12}")).collect();
                format!(
                    "{{\"dims\":{},\"grid_points\":{},\"bandwidths\":[{}]}}",
                    m.dims,
                    m.grid_points,
                    bw.join(","),
                )
            });
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"bandwidth\":{:.12},\"score\":{:.12},\
                 \"wall_seconds\":{:.9},\"simulated_seconds\":{sim},\
                 \"device_bytes_peak\":{peak},\"bagged\":{bagged},\
                 \"multi\":{multi},\"obs\":{}}}",
                s.name,
                s.bandwidth,
                s.score,
                s.wall_seconds,
                s.obs.to_json(),
            ));
        }
        out.push_str("],\"scaling\":[");
        for (i, r) in self.scaling.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let fw = r
                .full_wall_seconds
                .map_or("null".to_string(), |v| format!("{v:.9}"));
            let fp = r
                .full_host_bytes_peak
                .map_or("null".to_string(), |v| v.to_string());
            let fb = r
                .full_bandwidth
                .map_or("null".to_string(), |v| format!("{v:.12}"));
            let fs = r
                .full_score
                .map_or("null".to_string(), |v| format!("{v:.12}"));
            let rg = r
                .bagged_regret
                .map_or("null".to_string(), |v| format!("{v:.12}"));
            out.push_str(&format!(
                "{{\"n\":{},\"bags\":{},\"bag_size\":{},\"combiner\":\"{}\",\
                 \"bagged_wall_seconds\":{:.9},\"bagged_host_bytes_peak\":{},\
                 \"bagged_bandwidth\":{:.12},\"full_wall_seconds\":{fw},\
                 \"full_host_bytes_peak\":{fp},\"full_bandwidth\":{fb},\
                 \"full_score\":{fs},\"bagged_regret\":{rg}}}",
                r.n,
                r.bags,
                r.bag_size,
                r.combiner,
                r.bagged_wall_seconds,
                r.bagged_host_bytes_peak,
                r.bagged_bandwidth,
            ));
        }
        out.push_str("],\"streaming\":");
        match &self.streaming {
            None => out.push_str("null"),
            Some(st) => out.push_str(&format!(
                "{{\"arrivals\":{},\"window\":{},\"cadence\":{},\"inserts\":{},\
                 \"removes\":{},\"reselects\":{},\"tree_updates\":{},\
                 \"kernel_evals\":{},\"final_bandwidth\":{:.12},\
                 \"recompute_bandwidth\":{:.12},\"wall_seconds\":{:.9},\
                 \"recompute_wall_seconds\":{:.9}}}",
                st.arrivals,
                st.window,
                st.cadence,
                st.inserts,
                st.removes,
                st.reselects,
                st.tree_updates,
                st.kernel_evals,
                st.final_bandwidth,
                st.recompute_bandwidth,
                st.wall_seconds,
                st.recompute_wall_seconds,
            )),
        }
        out.push_str(",\"serving\":");
        match &self.serving {
            None => out.push_str("null"),
            Some(sv) => {
                let fb: Vec<String> =
                    sv.final_bandwidths.iter().map(|b| format!("{b:.12}")).collect();
                let lb: Vec<String> =
                    sv.lock_final_bandwidths.iter().map(|b| format!("{b:.12}")).collect();
                out.push_str(&format!(
                    "{{\"streams\":{},\"arrivals_per_stream\":{},\"shards\":{},\
                     \"window\":{},\"cadence\":{},\"requests_served\":{},\
                     \"coalesced_arrivals\":{},\"queue_high_water\":{},\
                     \"shed_requests\":{},\"reselects\":{},\"lock_reselects\":{},\
                     \"kernel_evals\":{},\"wall_seconds\":{:.9},\
                     \"lock_wall_seconds\":{:.9},\"final_bandwidths\":[{}],\
                     \"lock_final_bandwidths\":[{}]}}",
                    sv.streams,
                    sv.arrivals_per_stream,
                    sv.shards,
                    sv.window,
                    sv.cadence,
                    sv.requests_served,
                    sv.coalesced_arrivals,
                    sv.queue_high_water,
                    sv.shed_requests,
                    sv.reselects,
                    sv.lock_reselects,
                    sv.kernel_evals,
                    sv.wall_seconds,
                    sv.lock_wall_seconds,
                    fb.join(","),
                    lb.join(","),
                ));
            }
        }
        out.push('}');
        out
    }
}

/// Replays the report's sample as a stream through the sliding-window
/// incremental engine and measures it against the sampled
/// recompute-from-scratch prefix baseline (schema v6 `streaming` object).
///
/// The window is `max(n/4, 64)` (capped at `n`) and the re-selection
/// cadence is 64 arrivals: one incremental `reselect` costs a small
/// constant factor more than a fresh prefix profile on the same window
/// (the Fenwick log-factor per cell), so the amortised win over the
/// recompute-every-arrival policy is roughly `cadence / that factor` —
/// comfortably past perf gate 19's 10× at cadence 64.
fn measure_streaming(x: &[f64], y: &[f64], k: usize) -> Result<StreamingInfo, String> {
    use kcv_core::cv::SlidingWindowSelector;
    let n = x.len();
    let window = (n / 4).max(64).min(n);
    let cadence = 64usize;
    // The same log-spaced grid policy as the scaling study's full-data
    // runs: the optimum lives on a log scale, and the paper-default
    // *linear* grid would clamp it at the `domain/k` floor for large
    // windows (the PR 7 measurement the scaling binary documents).
    let (lo, hi) = x
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    let domain = hi - lo;
    let grid =
        BandwidthGrid::log(domain * 1e-3, domain * 0.3, k).map_err(|e| e.to_string())?;

    let recorder = kcv_obs::Recorder::new();
    let scope = recorder.install();
    let mut sel = SlidingWindowSelector::new(Epanechnikov, grid.clone(), window, cadence)
        .map_err(|e| e.to_string())?;
    let start = Instant::now();
    for (&xi, &yi) in x.iter().zip(y) {
        sel.push(xi, yi).map_err(|e| e.to_string())?;
    }
    // Force a final re-selection so the final-bandwidth comparison below
    // runs on the identical window regardless of where the cadence landed.
    let final_opt = sel.reselect_now().map_err(|e| e.to_string())?;
    let wall_seconds = start.elapsed().as_secs_f64();
    drop(scope);
    let snap = recorder.snapshot();

    // Recompute-from-scratch baseline, sampled at the replay's own
    // re-selection points (every `cadence` arrivals, plus the final
    // window) and extrapolated to the per-arrival policy's cost.
    let mut points: Vec<usize> = (1..=n).filter(|&t| t % cadence == 0).collect();
    if points.last() != Some(&n) {
        points.push(n);
    }
    let mut last = None;
    let rc_start = Instant::now();
    for &t in &points {
        let w = window.min(t);
        let p = cv_profile_prefix(&x[t - w..t], &y[t - w..t], &grid, &Epanechnikov)
            .map_err(|e| e.to_string())?;
        last = Some(p.argmin().map_err(|e| e.to_string())?);
    }
    let sampled_seconds = rc_start.elapsed().as_secs_f64();
    let recompute_wall_seconds = sampled_seconds / points.len() as f64 * n as f64;
    let recompute = last.expect("at least the final window was recomputed");

    Ok(StreamingInfo {
        arrivals: n,
        window,
        cadence,
        inserts: n as u64,
        removes: (n - window) as u64,
        reselects: snap.counter("reselects"),
        tree_updates: snap.counter("tree_updates"),
        kernel_evals: snap.counter("kernel_evals"),
        final_bandwidth: final_opt.bandwidth,
        recompute_bandwidth: recompute.bandwidth,
        wall_seconds,
        recompute_wall_seconds,
    })
}

/// Replays the report's sample as concurrent arrival streams through the
/// sharded bandwidth service and through the single-global-lock baseline
/// on the identical per-stream sequences (schema v7 `serving` object).
///
/// Stream `s` replays the sample rotated by `37·s` positions, so every
/// stream carries a distinct sequence while both services still see
/// identical per-stream inputs. Arrivals are enqueued in per-stream chunks
/// of `8 × cadence` through the blocking send, the traffic shape that lets
/// a shard worker drain whole bursts: with conflation on, a burst crossing
/// several cadence boundaries funds **one** re-selection where the
/// baseline — re-selecting under its lock at every boundary — pays one per
/// boundary. That conflation is the entire wall-time gap perf gate 22
/// measures; the final bandwidths still agree bit-for-bit because both
/// services run the same final re-selection over the same surviving
/// window at close.
fn measure_serving(x: &[f64], y: &[f64]) -> Result<ServingInfo, String> {
    use kcv_serve::{BandwidthService, GlobalLockService, ServeConfig, StreamId};

    let n = x.len();
    let streams = 8usize;
    let shards = 4usize;
    let window = n.min(256);
    let cadence = 50usize;
    let k = 100usize.min(window * 2);
    let (lo, hi) = x
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    let domain = hi - lo;
    let grid =
        BandwidthGrid::log(domain * 1e-3, domain * 0.3, k).map_err(|e| e.to_string())?;
    let config = ServeConfig {
        queue_capacity: 2048,
        ..ServeConfig::new(shards, window, cadence)
    };
    let chunk = 8 * cadence;
    let arrival = |s: usize, i: usize| {
        let j = (i + 37 * s) % n;
        (x[j], y[j])
    };

    let service = BandwidthService::new(Epanechnikov, grid.clone(), config.clone())
        .map_err(|e| e.to_string())?;
    for s in 0..streams {
        service.open(s as StreamId).map_err(|e| e.to_string())?;
    }
    let start = Instant::now();
    for chunk_start in (0..n).step_by(chunk) {
        for s in 0..streams {
            for i in chunk_start..(chunk_start + chunk).min(n) {
                let (xi, yi) = arrival(s, i);
                service
                    .send_blocking(s as StreamId, xi, yi)
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    let report = service.shutdown();
    let wall_seconds = start.elapsed().as_secs_f64();

    let lock = GlobalLockService::new(Epanechnikov, grid, config)
        .map_err(|e| e.to_string())?;
    for s in 0..streams {
        lock.open(s as StreamId).map_err(|e| e.to_string())?;
    }
    let lock_start = Instant::now();
    for chunk_start in (0..n).step_by(chunk) {
        for s in 0..streams {
            for i in chunk_start..(chunk_start + chunk).min(n) {
                let (xi, yi) = arrival(s, i);
                lock.send(s as StreamId, xi, yi).map_err(|e| e.to_string())?;
            }
        }
    }
    let lock_outcomes = lock.shutdown();
    let lock_wall_seconds = lock_start.elapsed().as_secs_f64();

    // Both shutdowns return streams in id order.
    let final_bandwidths: Vec<f64> = report
        .streams
        .iter()
        .map(|r| r.outcome.final_optimum.map_or(f64::NAN, |o| o.bandwidth))
        .collect();
    let lock_final_bandwidths: Vec<f64> = lock_outcomes
        .iter()
        .map(|(_, o)| o.final_optimum.map_or(f64::NAN, |o| o.bandwidth))
        .collect();
    let reselects: u64 = report.streams.iter().map(|r| r.outcome.reselects).sum();
    let lock_reselects: u64 = lock_outcomes.iter().map(|(_, o)| o.reselects).sum();

    Ok(ServingInfo {
        streams,
        arrivals_per_stream: n,
        shards,
        window,
        cadence,
        requests_served: report.metrics.counter("requests_served"),
        coalesced_arrivals: report.metrics.counter("coalesced_arrivals"),
        queue_high_water: report.metrics.counter("queue_high_water"),
        shed_requests: report.metrics.counter("shed_requests"),
        reselects,
        lock_reselects,
        kernel_evals: report.metrics.counter("kernel_evals"),
        wall_seconds,
        lock_wall_seconds,
        final_bandwidths,
        lock_final_bandwidths,
    })
}

/// Runs every strategy in [`STRATEGIES`] at one `(n, k)` point on the paper
/// DGP and collects a [`PerfReport`].
///
/// Each strategy runs under its own freshly installed [`kcv_obs::Recorder`],
/// so every snapshot is exactly that strategy's delta even if other
/// instrumented code executes concurrently elsewhere in the process.
pub fn collect_report(config: ReportConfig) -> Result<PerfReport, String> {
    let s = {
        use kcv_data::Dgp;
        kcv_data::PaperDgp.sample(config.n, config.seed)
    };
    let grid = BandwidthGrid::paper_default(&s.x, config.k).map_err(|e| e.to_string())?;

    let mut strategies = Vec::with_capacity(STRATEGIES.len());
    for name in STRATEGIES {
        let recorder = kcv_obs::Recorder::new();
        let scope = recorder.install();
        let mut bagged_info = None;
        let mut multi_info = None;
        let start = Instant::now();
        let (bandwidth, score, simulated_seconds, device_bytes_peak) = match name {
            "naive" => {
                let p = cv_profile_naive(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "sorted" => {
                let p = cv_profile_sorted(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "parallel" => {
                let p = cv_profile_sorted_par(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "merged" => {
                let p = cv_profile_merged(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "merged-par" => {
                let p = cv_profile_merged_par(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "prefix" => {
                let p = cv_profile_prefix(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "prefix-par" => {
                let p = cv_profile_prefix_par(&s.x, &s.y, &grid, &Epanechnikov)
                    .map_err(|e| e.to_string())?;
                let o = p.argmin().map_err(|e| e.to_string())?;
                (o.bandwidth, o.score, None, None)
            }
            "gpu-sim" => {
                let run = select_bandwidth_gpu(&s.x, &s.y, &grid, &GpuConfig::default())
                    .map_err(|e| e.to_string())?;
                (
                    run.bandwidth,
                    run.score,
                    Some(run.report.total_simulated_seconds),
                    Some(run.report.device_bytes_peak as u64),
                )
            }
            "gpu-windowed" => {
                let run =
                    select_bandwidth_gpu_windowed(&s.x, &s.y, &grid, &GpuConfig::default())
                        .map_err(|e| e.to_string())?;
                (
                    run.bandwidth,
                    run.score,
                    Some(run.report.total_simulated_seconds),
                    Some(run.report.device_bytes_peak as u64),
                )
            }
            "bagged" => {
                // Small-report defaults: enough bags to exercise the
                // machinery without dominating the gate's runtime. The
                // scaling binary uses the ISSUE's (B = 25, r = 2,000).
                let bags = 10;
                let bag_size = config.n.min(500);
                let selector = BaggedSelector::new(
                    Epanechnikov,
                    GridSpec::PaperDefault(config.k),
                    bags,
                    bag_size,
                )
                .with_seed(config.seed);
                crate::alloc_track::reset_peak();
                let baseline = crate::alloc_track::current_bytes();
                let sel = selector.select(&s.x, &s.y).map_err(|e| e.to_string())?;
                let host_bytes_peak =
                    crate::alloc_track::peak_bytes().saturating_sub(baseline);
                bagged_info = Some(BaggedInfo {
                    bags,
                    bag_size,
                    combiner: "mean",
                    workers: bag_workers(bags),
                    host_bytes_peak,
                });
                (sel.bandwidth, sel.score, None, None)
            }
            "multi-naive" | "multi-fast" => {
                // Both multivariate strategies run on the shared derived
                // d = 2 dataset and the identical √k-per-side lattice, so
                // the perf gate's ≥ 10× wall-ratio and bandwidth-identity
                // checks compare like with like.
                let (columns, y2) = crate::programs::multi_dataset(&s.x, &s.y);
                let side = crate::programs::multi_grid_side(config.k);
                let grids = crate::programs::multi_grids(&columns, side)?;
                let sel = if name == "multi-naive" {
                    kcv_core::multi::select_full_grid_naive(
                        &columns,
                        &y2,
                        &Epanechnikov,
                        &grids,
                    )
                } else {
                    kcv_core::multi::select_full_grid(&columns, &y2, &Epanechnikov, &grids)
                }
                .map_err(|e| e.to_string())?;
                multi_info = Some(MultiInfo {
                    dims: columns.len(),
                    grid_points: side * side,
                    bandwidths: sel.bandwidths.clone(),
                });
                (sel.bandwidths[0], sel.score, None, None)
            }
            other => return Err(format!("unknown strategy {other}")),
        };
        let wall_seconds = start.elapsed().as_secs_f64();
        drop(scope);
        strategies.push(StrategyPerf {
            name,
            bandwidth,
            score,
            wall_seconds,
            simulated_seconds,
            device_bytes_peak,
            bagged: bagged_info,
            multi: multi_info,
            obs: recorder.snapshot(),
        });
    }
    let streaming = Some(measure_streaming(&s.x, &s.y, config.k)?);
    let serving = Some(measure_serving(&s.x, &s.y)?);
    Ok(PerfReport { config, strategies, scaling: Vec::new(), streaming, serving })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_strategies_and_serialises() {
        let report = collect_report(ReportConfig { n: 120, k: 10, seed: 5 }).unwrap();
        assert_eq!(report.strategies.len(), STRATEGIES.len());
        for (s, name) in report.strategies.iter().zip(STRATEGIES) {
            assert_eq!(s.name, name);
            assert!(s.bandwidth > 0.0);
            assert!(s.wall_seconds >= 0.0);
        }
        let classic = &report.strategies[7];
        assert_eq!(classic.name, "gpu-sim");
        assert!(classic.simulated_seconds.unwrap() > 0.0);
        let windowed = &report.strategies[8];
        assert_eq!(windowed.name, "gpu-windowed");
        assert!(windowed.simulated_seconds.unwrap() > 0.0);
        // The windowed program's whole point: a fraction of the classic
        // footprint at the same (n, k).
        assert!(windowed.device_bytes_peak.unwrap() < classic.device_bytes_peak.unwrap() / 2);
        let bagged = report.strategies.iter().find(|s| s.name == "bagged").unwrap();
        let info = bagged.bagged.unwrap();
        assert_eq!(info.bags, 10);
        // n = 120 < 500: bags fall back to the full sample.
        assert_eq!(info.bag_size, 120);
        assert_eq!(info.combiner, "mean");
        assert!(info.workers >= 1);
        // Peak is measured under a concurrent test harness, so only
        // presence and plausibility are asserted here (see alloc_track).
        assert!(info.host_bytes_peak > 0);
        assert!(report.strategies.iter().filter(|s| s.bagged.is_some()).count() == 1);

        // The two multivariate entries share the d = 2 lattice and select
        // the identical bandwidth vector (fast == naive oracle).
        let mnaive = report.strategies.iter().find(|s| s.name == "multi-naive").unwrap();
        let mfast = report.strategies.iter().find(|s| s.name == "multi-fast").unwrap();
        let (ni, fi) = (mnaive.multi.as_ref().unwrap(), mfast.multi.as_ref().unwrap());
        assert_eq!(ni.dims, 2);
        // k = 10 → side 3 → 9 lattice points.
        assert_eq!(ni.grid_points, 9);
        assert_eq!(ni, fi);
        assert_eq!(mnaive.bandwidth, ni.bandwidths[0]);
        assert!(report.strategies.iter().filter(|s| s.multi.is_some()).count() == 2);

        // The streaming replay: n = 120 arrivals into a window of
        // max(n/4, 64) = 64, so 56 evictions, and the final incremental
        // selection lands on the same grid value as the fresh prefix
        // recompute over the identical final window.
        let st = report.streaming.as_ref().unwrap();
        assert_eq!(st.arrivals, 120);
        assert_eq!(st.window, 64);
        assert_eq!(st.cadence, 64);
        assert_eq!(st.inserts, 120);
        assert_eq!(st.removes, 56);
        assert!(st.wall_seconds >= 0.0);
        assert!(st.recompute_wall_seconds > 0.0);
        assert_eq!(st.final_bandwidth.to_bits(), st.recompute_bandwidth.to_bits());

        // The serving replay: 8 streams of all n = 120 arrivals through 4
        // shards and through the global-lock baseline. Whatever the
        // machine's timing did to burst shapes, the per-stream final
        // bandwidths must agree bit-for-bit (speedup is asserted only at
        // gate scale, by perf gate 22 — not here).
        let sv = report.serving.as_ref().unwrap();
        assert_eq!(sv.streams, 8);
        assert_eq!(sv.arrivals_per_stream, 120);
        assert_eq!(sv.shards, 4);
        assert_eq!(sv.window, 120);
        assert_eq!(sv.cadence, 50);
        assert_eq!(sv.shed_requests, 0, "blocking sends never shed");
        assert!(sv.reselects >= 8, "at least each stream's close re-selection");
        assert!(sv.lock_reselects >= sv.reselects);
        assert!(sv.wall_seconds > 0.0);
        assert!(sv.lock_wall_seconds > 0.0);
        assert_eq!(sv.final_bandwidths.len(), 8);
        let bits = |v: &[f64]| v.iter().map(|b| b.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&sv.final_bandwidths), bits(&sv.lock_final_bandwidths));

        let json = report.to_json();
        assert!(json.starts_with("{\"version\":7,"));
        for name in STRATEGIES {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "{json}");
        }
        assert!(json.contains("\"simulated_seconds\":null"));
        assert!(json.contains("\"device_bytes_peak\":null"));
        assert!(json.contains("\"bagged\":null"));
        assert!(json.contains("\"bagged\":{\"bags\":10,"));
        assert!(json.contains("\"multi\":null"));
        assert!(json.contains("\"multi\":{\"dims\":2,\"grid_points\":9,\"bandwidths\":["));
        assert!(json.contains(
            ",\"scaling\":[],\"streaming\":{\"arrivals\":120,\"window\":64,\"cadence\":64,\
             \"inserts\":120,\"removes\":56,"
        ));
        assert!(json.contains(",\"serving\":{\"streams\":8,\"arrivals_per_stream\":120,"));
        assert!(json.ends_with("]}}"), "serving's bandwidth arrays close the report");
    }

    /// Schema v6 round-trip: every field written by `to_json` must be
    /// readable back through the shared `json` helpers, so a future version
    /// bump that drops or renames a field fails here instead of silently
    /// producing reports the gate half-reads (ISSUE 7's bugfix satellite).
    #[test]
    fn report_json_round_trips_through_the_shared_readers() {
        use crate::json::{f64_field, str_field, strategy_slice, u64_field};

        let obs = Snapshot::default();
        let report = PerfReport {
            config: ReportConfig { n: 1_000, k: 50, seed: 7 },
            strategies: vec![
                StrategyPerf {
                    name: "prefix",
                    bandwidth: 0.125,
                    score: 0.5,
                    wall_seconds: 0.25,
                    simulated_seconds: None,
                    device_bytes_peak: None,
                    bagged: None,
                    multi: None,
                    obs: obs.clone(),
                },
                StrategyPerf {
                    name: "bagged",
                    bandwidth: 0.118,
                    score: 0.51,
                    wall_seconds: 0.03,
                    simulated_seconds: None,
                    device_bytes_peak: None,
                    bagged: Some(BaggedInfo {
                        bags: 25,
                        bag_size: 2_000,
                        combiner: "median",
                        workers: 8,
                        host_bytes_peak: 4_300_800,
                    }),
                    multi: None,
                    obs: obs.clone(),
                },
                StrategyPerf {
                    name: "multi-fast",
                    bandwidth: 0.104,
                    score: 0.49,
                    wall_seconds: 0.01,
                    simulated_seconds: None,
                    device_bytes_peak: None,
                    bagged: None,
                    multi: Some(MultiInfo {
                        dims: 2,
                        grid_points: 100,
                        bandwidths: vec![0.104, 0.088],
                    }),
                    obs,
                },
            ],
            scaling: vec![
                ScalingRow {
                    n: 10_000_000,
                    bags: 25,
                    bag_size: 2_000,
                    combiner: "mean",
                    bagged_wall_seconds: 0.5,
                    bagged_host_bytes_peak: 81_920_000,
                    bagged_bandwidth: 0.0021,
                    full_wall_seconds: None,
                    full_host_bytes_peak: None,
                    full_bandwidth: None,
                    full_score: None,
                    bagged_regret: None,
                },
                ScalingRow {
                    n: 100_000,
                    bags: 25,
                    bag_size: 2_000,
                    combiner: "mean",
                    bagged_wall_seconds: 0.4,
                    bagged_host_bytes_peak: 1_024,
                    bagged_bandwidth: 0.0084,
                    full_wall_seconds: Some(12.5),
                    full_host_bytes_peak: Some(2_400_000),
                    full_bandwidth: Some(0.0086),
                    full_score: Some(0.020833),
                    bagged_regret: Some(0.000019),
                },
            ],
            streaming: Some(StreamingInfo {
                arrivals: 2_000,
                window: 500,
                cadence: 64,
                inserts: 2_000,
                removes: 1_500,
                reselects: 32,
                tree_updates: 104_000,
                kernel_evals: 0,
                final_bandwidth: 0.052341,
                recompute_bandwidth: 0.052341,
                wall_seconds: 0.011,
                recompute_wall_seconds: 0.42,
            }),
            serving: Some(ServingInfo {
                streams: 8,
                arrivals_per_stream: 2_000,
                shards: 4,
                window: 256,
                cadence: 50,
                requests_served: 16_008,
                coalesced_arrivals: 15_200,
                queue_high_water: 812,
                shed_requests: 0,
                reselects: 24,
                lock_reselects: 328,
                kernel_evals: 0,
                wall_seconds: 0.081,
                lock_wall_seconds: 0.84,
                final_bandwidths: vec![0.052341, 0.052341],
                lock_final_bandwidths: vec![0.052341, 0.052341],
            }),
        };
        let json = report.to_json();

        assert_eq!(u64_field(&json, "version"), Some(u64::from(REPORT_VERSION)));
        assert_eq!(u64_field(&json, "n"), Some(1_000));

        let prefix = strategy_slice(&json, "prefix").unwrap();
        assert_eq!(f64_field(prefix, "bandwidth"), Some(0.125));
        assert!(prefix.contains("\"bagged\":null"));

        let bagged = strategy_slice(&json, "bagged").unwrap();
        assert_eq!(u64_field(bagged, "bags"), Some(25));
        assert_eq!(u64_field(bagged, "bag_size"), Some(2_000));
        assert_eq!(str_field(bagged, "combiner"), Some("median"));
        assert_eq!(u64_field(bagged, "workers"), Some(8));
        assert_eq!(u64_field(bagged, "host_bytes_peak"), Some(4_300_800));
        assert!(bagged.contains("\"multi\":null"));

        let mfast = strategy_slice(&json, "multi-fast").unwrap();
        assert_eq!(u64_field(mfast, "dims"), Some(2));
        assert_eq!(u64_field(mfast, "grid_points"), Some(100));
        assert_eq!(
            crate::json::array_field(mfast, "bandwidths"),
            Some("[0.104000000000,0.088000000000]")
        );
        assert!(mfast.contains("\"bagged\":null"));

        // Bound the scaling slice at the streaming object so the row
        // lookups below cannot leak into it.
        let scaling_start = json.find("\"scaling\":[").unwrap();
        let streaming_start = json.find("\"streaming\":").unwrap();
        let scaling = &json[scaling_start..streaming_start];
        let second_row = &scaling[scaling.rfind('{').unwrap()..];
        assert_eq!(u64_field(scaling, "n"), Some(10_000_000));
        assert_eq!(f64_field(scaling, "bagged_bandwidth"), Some(0.0021));
        assert!(scaling.contains("\"full_wall_seconds\":null"));
        assert_eq!(u64_field(second_row, "n"), Some(100_000));
        assert_eq!(f64_field(second_row, "full_wall_seconds"), Some(12.5));
        assert_eq!(u64_field(second_row, "full_host_bytes_peak"), Some(2_400_000));
        assert_eq!(f64_field(second_row, "full_bandwidth"), Some(0.0086));
        assert_eq!(f64_field(second_row, "full_score"), Some(0.020833));
        assert_eq!(f64_field(second_row, "bagged_regret"), Some(0.000019));
        assert!(scaling.contains("\"full_score\":null"));
        assert!(scaling.contains("\"bagged_regret\":null"));

        // Bound the streaming slice at the serving object the same way —
        // the two share field names (`window`, `cadence`, `reselects`,
        // `kernel_evals`, `wall_seconds`), so an unbounded slice would
        // read across the boundary.
        let serving_start = json.find("\"serving\":").unwrap();
        let streaming = &json[streaming_start..serving_start];
        assert_eq!(u64_field(streaming, "arrivals"), Some(2_000));
        assert_eq!(u64_field(streaming, "window"), Some(500));
        assert_eq!(u64_field(streaming, "cadence"), Some(64));
        assert_eq!(u64_field(streaming, "inserts"), Some(2_000));
        assert_eq!(u64_field(streaming, "removes"), Some(1_500));
        assert_eq!(u64_field(streaming, "reselects"), Some(32));
        assert_eq!(u64_field(streaming, "tree_updates"), Some(104_000));
        assert_eq!(u64_field(streaming, "kernel_evals"), Some(0));
        assert_eq!(f64_field(streaming, "final_bandwidth"), Some(0.052341));
        assert_eq!(f64_field(streaming, "recompute_bandwidth"), Some(0.052341));
        assert_eq!(f64_field(streaming, "wall_seconds"), Some(0.011));
        assert_eq!(f64_field(streaming, "recompute_wall_seconds"), Some(0.42));

        let serving = &json[serving_start..];
        assert_eq!(u64_field(serving, "streams"), Some(8));
        assert_eq!(u64_field(serving, "arrivals_per_stream"), Some(2_000));
        assert_eq!(u64_field(serving, "shards"), Some(4));
        assert_eq!(u64_field(serving, "window"), Some(256));
        assert_eq!(u64_field(serving, "cadence"), Some(50));
        assert_eq!(u64_field(serving, "requests_served"), Some(16_008));
        assert_eq!(u64_field(serving, "coalesced_arrivals"), Some(15_200));
        assert_eq!(u64_field(serving, "queue_high_water"), Some(812));
        assert_eq!(u64_field(serving, "shed_requests"), Some(0));
        assert_eq!(u64_field(serving, "reselects"), Some(24));
        assert_eq!(u64_field(serving, "lock_reselects"), Some(328));
        assert_eq!(u64_field(serving, "kernel_evals"), Some(0));
        assert_eq!(f64_field(serving, "wall_seconds"), Some(0.081));
        assert_eq!(f64_field(serving, "lock_wall_seconds"), Some(0.84));
        // Gate 22 compares these serialised slices verbatim.
        assert_eq!(
            crate::json::array_field(serving, "final_bandwidths"),
            Some("[0.052341000000,0.052341000000]")
        );
        assert_eq!(
            crate::json::array_field(serving, "final_bandwidths"),
            crate::json::array_field(serving, "lock_final_bandwidths"),
        );
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn report_records_strategy_counters() {
        // No serialization needed: collect_report measures each strategy
        // under its own recorder, so concurrent tests cannot pollute it.
        let n = 60u64;
        let k = 8u64;
        let report = collect_report(ReportConfig {
            n: n as usize,
            k: k as usize,
            seed: 1,
        })
        .unwrap();
        let by_name = |name: &str| {
            report
                .strategies
                .iter()
                .find(|s| s.name == name)
                .unwrap()
                .obs
                .clone()
        };
        // Naive evaluates the kernel for every (i, l≠i, h) triple.
        assert_eq!(by_name("naive").counter("kernel_evals"), k * n * (n - 1));
        // The sweep absorbs each neighbour at most once per observation.
        let sorted = by_name("sorted");
        assert!(sorted.counter("kernel_evals") <= n * (n - 1));
        assert!(sorted.counter("sort_comparisons") > 0);
        // The merge-sweep walks the same support as the sorted sweep but
        // replaces the per-observation sorts with one global argsort.
        let merged = by_name("merged");
        assert_eq!(merged.counter("kernel_evals"), sorted.counter("kernel_evals"));
        assert!(merged.counter("sort_comparisons") < sorted.counter("sort_comparisons"));
        // The prefix sweep answers every (obs, bandwidth) cell with exactly
        // one window query and touches no neighbours at all.
        let prefix = by_name("prefix");
        assert_eq!(prefix.counter("window_queries"), n * k);
        assert_eq!(prefix.counter("kernel_evals"), 0);
        let prefix_par = by_name("prefix-par");
        assert_eq!(prefix_par.counter("window_queries"), n * k);
        assert_eq!(prefix_par.counter("kernel_evals"), 0);
        // The gpu-sim path reports simulated memory traffic.
        assert!(by_name("gpu-sim").counter("mem_transactions") > 0);
        // The windowed device program answers each (obs, bandwidth) cell
        // with one window query resolved by binary-search probes, and its
        // total simulated traffic stays within the per-cell O(log n) gate
        // bound (the same formula perf_gate enforces).
        let windowed = by_name("gpu-windowed");
        assert_eq!(windowed.counter("window_queries"), n * k);
        assert!(windowed.counter("binary_search_probes") > 0);
        // The bagged run (B = 10, r = min(n, 500) = n here) does exactly
        // B × one bag's prefix work — and records one bags_run per bag.
        let bagged = by_name("bagged");
        assert_eq!(bagged.counter("bags_run"), 10);
        assert_eq!(bagged.counter("window_queries"), 10 * n * k);
        assert_eq!(bagged.counter("kernel_evals"), 0);
        // The multivariate pair share a k = 8 → 2×2 = 4-point d = 2
        // lattice. The naive oracle walks neighbours (kernel evals > 0);
        // the fast engine answers every (obs, grid-point) cell from its
        // dimension sweeps — d window queries per cell, one dim-sweep per
        // (grid point, dimension), and zero kernel evaluations.
        let (g, d) = (4u64, 2u64);
        let mnaive = by_name("multi-naive");
        assert!(mnaive.counter("kernel_evals") > 0);
        assert_eq!(mnaive.counter("dim_sweeps"), 0);
        let mfast = by_name("multi-fast");
        assert_eq!(mfast.counter("kernel_evals"), 0);
        assert_eq!(mfast.counter("dim_sweeps"), g * d);
        assert_eq!(mfast.counter("window_queries"), g * n * d);
        let log2n = (64 - (n - 1).leading_zeros()) as u64;
        assert!(
            windowed.counter("mem_transactions") <= n * k * (2 * log2n + 24 * 3),
            "windowed traffic {} exceeds the per-cell bound",
            windowed.counter("mem_transactions")
        );
        // The rayon chunk hook enters the kcv_obs scope once per worker
        // chunk — at most one per available worker — while the sequential
        // twins never touch it. Per-item attribution is unchanged: the
        // parallel sweep still records exactly the sequential sweep's
        // kernel evaluations.
        let workers = std::thread::available_parallelism().map_or(1, |w| w.get()) as u64;
        for seq in ["naive", "sorted", "merged", "prefix"] {
            assert_eq!(by_name(seq).counter("scope_enters"), 0, "{seq}");
        }
        for par in ["parallel", "merged-par", "prefix-par"] {
            let enters = by_name(par).counter("scope_enters");
            assert!(
                (1..=workers.min(n)).contains(&enters),
                "{par}: {enters} scope entries for {workers} workers"
            );
        }
        assert_eq!(
            by_name("parallel").counter("kernel_evals"),
            sorted.counter("kernel_evals")
        );
        // Schema v6 streaming replay, measured under its own recorder:
        // with n = 60 < the 64-observation window floor the window covers
        // the whole stream (no evictions), the 64-arrival cadence never
        // fires before the forced final pass, and the incremental engine
        // answers the grid with zero kernel evaluations inside the
        // gate-18 tree-update budget.
        let st = report.streaming.as_ref().unwrap();
        assert_eq!(st.window, 60);
        assert_eq!(st.removes, 0);
        assert_eq!(st.reselects, 1);
        assert_eq!(st.kernel_evals, 0);
        let log2w = (64 - (st.window as u64 - 1).leading_zeros()) as u64;
        assert!(
            st.tree_updates <= (st.inserts + st.removes) * log2w * 5,
            "tree_updates {} exceeds the update budget",
            st.tree_updates
        );
        assert_eq!(st.final_bandwidth.to_bits(), st.recompute_bandwidth.to_bits());
        // Schema v7 serving replay, measured from the shard workers' own
        // merged recorders: every drained request is counted (8 opens +
        // 8 × 60 arrivals; shutdown closes bypass the queues), the
        // blocking sends shed nothing, the queues were actually observed,
        // and the whole service answered from the incremental engine
        // without a single kernel evaluation. Burst shapes (and so
        // `coalesced_arrivals`) are timing-dependent — asserted at gate
        // scale by perf gate 21, not here.
        let sv = report.serving.as_ref().unwrap();
        assert_eq!(sv.requests_served, 8 * (n + 1));
        assert_eq!(sv.shed_requests, 0);
        assert!(sv.queue_high_water >= 1);
        assert_eq!(sv.kernel_evals, 0);
        let bits = |v: &[f64]| v.iter().map(|b| b.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&sv.final_bandwidths), bits(&sv.lock_final_bandwidths));
    }
}
