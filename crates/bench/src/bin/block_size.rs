//! The §IV-B block-size tuning experiment: "Because this main kernel does
//! not use shared memory or coordination across threads, the block size and
//! grid size were selected to minimize the run-time. … The fastest
//! performance was found with threads per block set to 512, the maximum
//! possible on the GPU being used."
//!
//! Sweeps threads-per-block on the simulated Tesla S10 and prints the
//! simulated device time (deterministic — it comes from operation counts,
//! not host timing).
//!
//! Usage: `cargo run -p kcv-bench --release --bin block_size -- [--n N] [--k K]`

use kcv_bench::table::{arg_parse, render};
use kcv_core::grid::BandwidthGrid;
use kcv_data::{Dgp, PaperDgp};
use kcv_gpu::{select_bandwidth_gpu, GpuConfig};
use kcv_gpu_sim::cost::fastest_timing;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = arg_parse(&args, "--n", 4_000usize);
    let k = arg_parse(&args, "--k", 50usize);
    let sms = arg_parse(&args, "--sms", 30usize);

    let sample = PaperDgp.sample(n, 512);
    let grid = BandwidthGrid::paper_default(&sample.x, k).expect("grid");

    println!(
        "block-size sweep at n = {n}, k = {k} on a {sms}-SM Tesla-class device \
         (simulated seconds)\n"
    );
    let headers: Vec<String> = vec![
        "threads/block".into(),
        "simulated s".into(),
        "vs 512".into(),
        "selected h".into(),
    ];
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for tpb in [32usize, 64, 128, 256, 512] {
        let mut config = GpuConfig::default().with_threads_per_block(tpb);
        config.spec.num_sms = sms;
        let run = select_bandwidth_gpu(&sample.x, &sample.y, &grid, &config).expect("gpu run");
        results.push((tpb, run.report.total_simulated_seconds, run.bandwidth));
    }
    let t512 = results.last().expect("sweep non-empty").1;
    for &(tpb, t, h) in &results {
        rows.push(vec![
            tpb.to_string(),
            format!("{t:.4}"),
            format!("{:+.1}%", (t / t512 - 1.0) * 100.0),
            format!("{h:.4}"),
        ]);
    }
    println!("{}", render(&headers, &rows));

    let timing: Vec<(usize, f64)> = results.iter().map(|r| (r.0, r.1)).collect();
    let best = fastest_timing(&timing).expect("sweep non-empty");
    println!(
        "fastest block size: {} (paper, at n = 20 000: 512). The selected h is\n\
         identical at every block size — only the schedule changes.\n",
        best.0
    );
    let saturation_n = sms * 512;
    if n < saturation_n {
        println!(
            "note: at n = {n} the grid has too few 512-thread blocks to occupy all\n\
             {sms} SMs, so smaller blocks win on load balance. The paper's regime\n\
             (512 fastest, via occupancy/latency hiding) needs n ≥ {saturation_n} on this\n\
             device — try `--n {saturation_n}` or scale the device with `--sms 4`."
        );
    }
}
