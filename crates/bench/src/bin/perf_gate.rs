//! Counter-based performance gate over `results/BENCH_report.json`.
//!
//! Collects a fresh per-strategy report at a small fixed `(n, k)` point,
//! writes it to the report path, then re-reads the file ONCE and asserts the
//! merge-sweep's and the prefix-moment sweep's complexity contracts from the
//! JSON itself, as a single named gate table:
//!
//! 1. `merged` sort comparisons stay `O(n log n)` — hard ceiling
//!    `3 · n · ceil(log2 n)` (one global argsort; a per-observation sort
//!    would be `Θ(n² log n)` and blow straight through it);
//! 2. `merged` kernel evaluations equal the sorted sweep's exactly (the
//!    merge changes how neighbours are *ordered*, never which neighbours
//!    are *evaluated*);
//! 3. at `n ≥ 2,000` the sorted sweep spends at least 100× more sort
//!    comparisons than the merge-sweep;
//! 4. the sorted and merged strategies select the identical bandwidth;
//! 5. `prefix` answers every (obs, bandwidth) cell with binary-search window
//!    queries — counted once per cell, so the count is bounded by
//!    `n · k · ceil(log2 n)` (a per-neighbour scan has no business here);
//! 6. `prefix` and `prefix-par` evaluate the kernel **zero** times — every
//!    score comes from prefix-sum differencing, never a neighbour visit;
//! 7. `prefix` actually ran its window machinery (queries > 0);
//! 8. `prefix` and `prefix-par` select the same bandwidth as the sorted
//!    sweep;
//! 9. `gpu-windowed` device-memory peak stays `O(n)` — hard ceiling
//!    `16 · n · (deg + 2)` bytes (64n at the default quadratic kernel).
//!    The classic pipeline's two `n×n` matrices sit at `8n²` and blow
//!    through this ceiling by the hundreds at gate scale, so any regression
//!    that sneaks a dense matrix back into the windowed program fails loud;
//! 10. `gpu-windowed` simulated memory transactions stay
//!     `O(k · log n)` per observation — ceiling
//!     `n · k · (2·ceil(log2 n) + 24·(deg + 1))`: two binary searches plus a
//!     constant number of prefix-table touches per cell. A per-neighbour
//!     scan (the classic running-sum loop) is `Θ(n)` per cell and fails.
//! 11. `bagged` total work stays ≤ `B ×` one bag's bound — window queries
//!     at most `bags · bag_size · k` and **zero** kernel evals (prefix
//!     engine), with `bags`/`bag_size` read from the report itself. The
//!     ceiling has no `n` term at fixed `(B, r)`: a bagged run that
//!     quietly sweeps the full sample per bag fails by orders of
//!     magnitude;
//! 12. `bagged` measured host-heap peak stays ≤ `workers ×` one bag's
//!     documented footprint bound (`kcv_core::select::bagged::
//!     bag_footprint_bound_bytes`) — each rayon worker holds at most one
//!     bag's subsample and tables at a time, so keeping every bag's data
//!     alive at once (or materialising anything `O(n)` per bag) fails.
//! 13. the report's schema version is exactly [`REPORT_VERSION`] — the
//!     multivariate gates below read the v5 `multi` object, so a stale
//!     writer must fail here, not half-pass on missing fields;
//! 14. `multi-fast` evaluates the kernel **zero** times while its
//!     dimension sweeps actually ran (`dim_sweeps > 0`) — every product
//!     weight comes from prefix-moment differencing over the per-dimension
//!     Fenwick/prefix tables, never a neighbour visit;
//! 15. `multi-fast` window queries stay within
//!     `grid_points · n · d · ceil(log2 n)` — the d-per-cell binary-search
//!     budget; a per-neighbour product scan is `Θ(n)` per cell and fails;
//! 16. at `n ≥ 2,000` `multi-fast` beats `multi-naive` by ≥ 10× wall time
//!     while selecting the bit-identical bandwidth **vector** (the
//!     serialised `bandwidths` arrays compare equal);
//! 17. the schema-v6 top-level `streaming` object is present — the two
//!     replay gates below read it, so a writer that stops measuring the
//!     streaming engine must fail here, not pass by absence;
//! 18. the streaming replay never evaluates the kernel and its Fenwick
//!     tree updates stay within `(inserts + removes) · ceil(log2 W) ·
//!     (deg + 3)` — every re-selection is answered from the
//!     order-statistic moment tree (`O(log W)` node-blocks per update),
//!     never a neighbour visit;
//! 19. the streaming replay beats the per-arrival recompute-from-scratch
//!     policy by ≥ 10× wall time while selecting the identical bandwidth
//!     on the final window (the serialised values compare equal);
//! 20. the schema-v7 top-level `serving` object is present — the two
//!     service gates below read it, so a writer that stops measuring the
//!     sharded service must fail here, not pass by absence;
//! 21. the sharded service answers every stream from the incremental
//!     engine — **zero** kernel evaluations service-wide — while its
//!     workers actually drained requests and coalesced bursts
//!     (`requests_served > 0`, `coalesced_arrivals > 0`): a service that
//!     quietly re-selects per arrival (nothing to coalesce) or recomputes
//!     profiles from scratch (kernel evals) fails;
//! 22. at `n ≥ 2,000` the sharded service beats the single-global-lock
//!     baseline by ≥ 4× wall time on the identical per-stream traffic
//!     while the serialised per-stream `final_bandwidths` arrays compare
//!     bit-identical — the conflated re-selections must cost throughput
//!     nothing in selection quality.
//!
//! Exits non-zero if any gate fails, printing each gate's verdict and then
//! naming the failures, so `make verify` and CI fail if a regression
//! reintroduces per-observation sorting or per-neighbour scanning. Requires
//! a `--features metrics` build (the gate refuses to pass on a report with
//! counters disabled).
//!
//! Usage: `cargo run -p kcv-bench --features metrics --bin perf_gate --
//! [--n N] [--k K] [--out results/BENCH_report.json]`

use kcv_bench::json::{array_field, f64_field, strategy_slice, u64_field};
use kcv_bench::report::{collect_report, ReportConfig, REPORT_VERSION};
use kcv_bench::table::{arg_parse, arg_value};
use kcv_core::select::bagged::bag_footprint_bound_bytes;
use std::path::Path;
use std::process::ExitCode;

/// One gate's verdict: `ok == None` means skipped (with the reason in
/// `detail`), otherwise pass/fail plus the numbers behind it.
struct Gate {
    name: &'static str,
    ok: Option<bool>,
    detail: String,
}

impl Gate {
    fn pass_if(name: &'static str, ok: bool, detail: String) -> Gate {
        Gate { name, ok: Some(ok), detail }
    }

    fn skip(name: &'static str, detail: String) -> Gate {
        Gate { name, ok: None, detail }
    }
}

/// Evaluates every gate against a report JSON string measured at `(n, k)`.
/// Pure over its inputs so the table is unit-testable without a metrics
/// build or a filesystem.
fn evaluate_gates(json: &str, n: usize, k: usize) -> Vec<Gate> {
    let mut gates = Vec::new();
    if !json.contains("\"metrics_enabled\":true") {
        gates.push(Gate::pass_if(
            "metrics enabled in report",
            false,
            "counters disabled; run with `cargo run -p kcv-bench --features metrics \
             --bin perf_gate`"
                .into(),
        ));
        return gates;
    }

    let (sorted, merged, prefix, prefix_par, windowed, bagged, multi_naive, multi_fast) =
        match (
            strategy_slice(json, "sorted"),
            strategy_slice(json, "merged"),
            strategy_slice(json, "prefix"),
            strategy_slice(json, "prefix-par"),
            strategy_slice(json, "gpu-windowed"),
            strategy_slice(json, "bagged"),
            strategy_slice(json, "multi-naive"),
            strategy_slice(json, "multi-fast"),
        ) {
            (Some(s), Some(m), Some(p), Some(pp), Some(w), Some(b), Some(mn), Some(mf)) => {
                (s, m, p, pp, w, b, mn, mf)
            }
            _ => {
                gates.push(Gate::pass_if(
                    "report lists sorted/merged/prefix/prefix-par/gpu-windowed/bagged/\
                     multi-naive/multi-fast strategies",
                    false,
                    "at least one strategy entry is missing from the report".into(),
                ));
                return gates;
            }
        };
    gates.push(Gate::pass_if(
        "report schema version matches the gate's",
        u64_field(json, "version") == Some(u64::from(REPORT_VERSION)),
        format!("{:?} == Some({REPORT_VERSION})", u64_field(json, "version")),
    ));
    let field = |slice: &str, key: &str| u64_field(slice, key).unwrap_or(0);
    let log2n = (n as f64).log2().ceil() as u64;

    // --- merge-sweep contract (PR 3) -----------------------------------
    let cmp_ceiling = 3 * n as u64 * log2n;
    let merged_cmps = field(merged, "sort_comparisons");
    gates.push(Gate::pass_if(
        "merged sort comparisons stay O(n log n)",
        merged_cmps <= cmp_ceiling,
        format!("{merged_cmps} <= {cmp_ceiling}"),
    ));

    let (se, me) = (field(sorted, "kernel_evals"), field(merged, "kernel_evals"));
    gates.push(Gate::pass_if(
        "merged kernel evals equal sorted sweep's",
        me == se,
        format!("{me} == {se}"),
    ));

    let sorted_cmps = field(sorted, "sort_comparisons");
    if n >= 2_000 {
        gates.push(Gate::pass_if(
            "sorted sweep sorts >= 100x more than merged",
            sorted_cmps >= 100 * merged_cmps.max(1),
            format!("{sorted_cmps} >= 100 * {merged_cmps}"),
        ));
    } else {
        gates.push(Gate::skip(
            "sorted sweep sorts >= 100x more than merged",
            format!("ratio asserted only at n >= 2,000 (n = {n})"),
        ));
    }

    let sb = f64_field(sorted, "bandwidth");
    let mb = f64_field(merged, "bandwidth");
    gates.push(Gate::pass_if(
        "sorted and merged select the same bandwidth",
        sb.is_some() && sb == mb,
        format!("{sb:?} == {mb:?}"),
    ));

    // --- prefix-moment contract (this PR) ------------------------------
    let query_ceiling = (n * k) as u64 * log2n;
    let prefix_queries = field(prefix, "window_queries");
    gates.push(Gate::pass_if(
        "prefix window queries stay within n*k*ceil(log2 n)",
        prefix_queries <= query_ceiling,
        format!("{prefix_queries} <= {query_ceiling}"),
    ));

    let (pe, ppe) = (field(prefix, "kernel_evals"), field(prefix_par, "kernel_evals"));
    gates.push(Gate::pass_if(
        "prefix sweeps never evaluate the kernel",
        pe == 0 && ppe == 0,
        format!("prefix {pe} == 0, prefix-par {ppe} == 0"),
    ));

    gates.push(Gate::pass_if(
        "prefix window machinery actually ran",
        prefix_queries > 0,
        format!("{prefix_queries} > 0"),
    ));

    let pb = f64_field(prefix, "bandwidth");
    let ppb = f64_field(prefix_par, "bandwidth");
    gates.push(Gate::pass_if(
        "prefix strategies select the sorted sweep's bandwidth",
        sb.is_some() && pb == sb && ppb == sb,
        format!("prefix {pb:?}, prefix-par {ppb:?} == sorted {sb:?}"),
    ));

    // --- windowed GPU memory contract (this PR) ------------------------
    // The default config runs the quadratic Epanechnikov kernel, so
    // deg = 2: peak ceiling 16·n·(deg+2) = 64n bytes, and the per-cell
    // traffic budget is 2·ceil(log2 n) probe reads + 24·(deg+1) table /
    // assembly transactions. Both ceilings deliberately carry NO n² term:
    // the classic pipeline's 8n² residual matrices cannot hide under them.
    let deg = 2u64;
    let peak_ceiling = 16 * n as u64 * (deg + 2);
    let windowed_peak = field(windowed, "device_bytes_peak");
    gates.push(Gate::pass_if(
        "windowed peak device bytes stay O(n), no n^2 term",
        windowed_peak > 0 && windowed_peak <= peak_ceiling,
        format!("0 < {windowed_peak} <= 16*n*(deg+2) = {peak_ceiling}"),
    ));

    let txn_ceiling = (n * k) as u64 * (2 * log2n + 24 * (deg + 1));
    let windowed_txns = field(windowed, "mem_transactions");
    gates.push(Gate::pass_if(
        "windowed mem transactions stay O(k log n) per observation",
        windowed_txns > 0 && windowed_txns <= txn_ceiling,
        format!("0 < {windowed_txns} <= n*k*(2*ceil(log2 n) + 24*(deg+1)) = {txn_ceiling}"),
    ));

    // --- bagged contracts (this PR) ------------------------------------
    // Both ceilings are functions of (bags, bag_size, k, workers) read
    // from the report itself — deliberately independent of n, which is
    // the bagged selector's entire value proposition.
    let bags = field(bagged, "bags");
    let bag_size = field(bagged, "bag_size");
    let work_ceiling = bags * bag_size * k as u64;
    let bagged_queries = field(bagged, "window_queries");
    let bagged_evals = field(bagged, "kernel_evals");
    gates.push(Gate::pass_if(
        "bagged work stays within B x one bag's bound, no n term",
        bags > 0
            && bag_size > 0
            && bagged_evals == 0
            && bagged_queries > 0
            && bagged_queries <= work_ceiling,
        format!(
            "0 < {bagged_queries} <= B*r*k = {work_ceiling}, kernel_evals {bagged_evals} == 0"
        ),
    ));

    let workers = field(bagged, "workers");
    let bagged_peak = field(bagged, "host_bytes_peak");
    let mem_ceiling = workers * bag_footprint_bound_bytes(bag_size as usize, k);
    gates.push(Gate::pass_if(
        "bagged peak memory stays within workers x one bag's footprint",
        workers > 0 && bagged_peak > 0 && bagged_peak <= mem_ceiling,
        format!("0 < {bagged_peak} <= workers({workers}) * bag_bound = {mem_ceiling}"),
    ));

    // --- multivariate fast-sum-updating contracts (this PR) -------------
    // The d = 2 full-grid selector: every product weight must come from
    // the dimension-recursive prefix-moment tables, never a kernel call.
    let mf_evals = field(multi_fast, "kernel_evals");
    let mf_sweeps = field(multi_fast, "dim_sweeps");
    gates.push(Gate::pass_if(
        "multi-fast never evaluates the kernel",
        mf_evals == 0 && mf_sweeps > 0,
        format!("kernel_evals {mf_evals} == 0, dim_sweeps {mf_sweeps} > 0"),
    ));

    let dims = field(multi_fast, "dims");
    let grid_points = field(multi_fast, "grid_points");
    let mf_queries = field(multi_fast, "window_queries");
    let mf_ceiling = grid_points * n as u64 * dims * log2n;
    gates.push(Gate::pass_if(
        "multi-fast window queries stay within g*n*d*ceil(log2 n)",
        dims > 0 && grid_points > 0 && mf_queries > 0 && mf_queries <= mf_ceiling,
        format!(
            "0 < {mf_queries} <= g({grid_points})*n*d({dims})*ceil(log2 n) = {mf_ceiling}"
        ),
    ));

    let nv_bw = array_field(multi_naive, "bandwidths");
    let mf_bw = array_field(multi_fast, "bandwidths");
    if n >= 2_000 {
        let ratio = match (
            f64_field(multi_naive, "wall_seconds"),
            f64_field(multi_fast, "wall_seconds"),
        ) {
            (Some(nw), Some(fw)) if fw > 0.0 => nw / fw,
            _ => 0.0,
        };
        gates.push(Gate::pass_if(
            "multi-fast beats multi-naive >= 10x on the identical optimum",
            ratio >= 10.0 && nv_bw.is_some() && nv_bw == mf_bw,
            format!("wall ratio {ratio:.1} >= 10, bandwidths {nv_bw:?} == {mf_bw:?}"),
        ));
    } else {
        gates.push(Gate::skip(
            "multi-fast beats multi-naive >= 10x on the identical optimum",
            format!("ratio asserted only at n >= 2,000 (n = {n})"),
        ));
    }

    // --- streaming incremental-engine contracts (PR 9) -------------------
    // The replay measurements live in the schema-v6 top-level `streaming`
    // object. Since v7 it is no longer the report's final entry — the
    // `serving` object follows it and shares field names (`window`,
    // `cadence`, `reselects`, `kernel_evals`, `wall_seconds`), so the
    // slice must stop at the `serving` key, not the end of the document.
    let streaming = match json.find("\"streaming\":{") {
        Some(i) => {
            let end = json[i..].find("\"serving\":").map_or(json.len(), |j| i + j);
            &json[i..end]
        }
        None => {
            gates.push(Gate::pass_if(
                "report carries the schema-v6 streaming object",
                false,
                "no streaming object in the report".into(),
            ));
            return gates;
        }
    };
    gates.push(Gate::pass_if(
        "report carries the schema-v6 streaming object",
        true,
        "streaming replay measured".into(),
    ));

    let st = |key: &str| u64_field(streaming, key).unwrap_or(0);
    let window = st("window");
    let updates = st("tree_updates");
    let st_evals = st("kernel_evals");
    let reselects = st("reselects");
    let log2w = (window.max(2) as f64).log2().ceil() as u64;
    let update_ceiling = (st("inserts") + st("removes")) * log2w * (deg + 3);
    gates.push(Gate::pass_if(
        "streaming replay: zero kernel evals, tree updates O(log W)",
        st_evals == 0 && reselects > 0 && updates > 0 && updates <= update_ceiling,
        format!(
            "kernel_evals {st_evals} == 0, reselects {reselects} > 0, \
             0 < tree_updates {updates} <= (ins+rem)*ceil(log2 W)*(deg+3) = {update_ceiling}"
        ),
    ));

    let st_wall = f64_field(streaming, "wall_seconds").unwrap_or(f64::NAN);
    let st_recompute = f64_field(streaming, "recompute_wall_seconds").unwrap_or(f64::NAN);
    let st_ratio = st_recompute / st_wall;
    let fb = f64_field(streaming, "final_bandwidth");
    let rb = f64_field(streaming, "recompute_bandwidth");
    gates.push(Gate::pass_if(
        "streaming replay beats per-arrival recompute >= 10x, identical bandwidth",
        st_ratio >= 10.0 && fb.is_some() && fb == rb,
        format!("wall ratio {st_ratio:.1} >= 10, final {fb:?} == recompute {rb:?}"),
    ));

    // --- sharded serving contracts (this PR) -----------------------------
    // The service measurements live in the schema-v7 top-level `serving`
    // object, the report's final entry.
    let serving = match json.find("\"serving\":{") {
        Some(i) => &json[i..],
        None => {
            gates.push(Gate::pass_if(
                "report carries the schema-v7 serving object",
                false,
                "no serving object in the report".into(),
            ));
            return gates;
        }
    };
    gates.push(Gate::pass_if(
        "report carries the schema-v7 serving object",
        true,
        "sharded service measured".into(),
    ));

    let sv = |key: &str| u64_field(serving, key).unwrap_or(0);
    let sv_evals = sv("kernel_evals");
    let sv_served = sv("requests_served");
    let sv_coalesced = sv("coalesced_arrivals");
    gates.push(Gate::pass_if(
        "serving: zero kernel evals service-wide, bursts coalesced",
        sv_evals == 0 && sv_served > 0 && sv_coalesced > 0,
        format!(
            "kernel_evals {sv_evals} == 0, requests_served {sv_served} > 0, \
             coalesced_arrivals {sv_coalesced} > 0"
        ),
    ));

    let sv_bw = array_field(serving, "final_bandwidths");
    let lk_bw = array_field(serving, "lock_final_bandwidths");
    if n >= 2_000 {
        let sv_ratio = match (
            f64_field(serving, "lock_wall_seconds"),
            f64_field(serving, "wall_seconds"),
        ) {
            (Some(lw), Some(sw)) if sw > 0.0 => lw / sw,
            _ => 0.0,
        };
        gates.push(Gate::pass_if(
            "sharded service beats the global lock >= 4x at identical bandwidths",
            sv_ratio >= 4.0 && sv_bw.is_some() && sv_bw == lk_bw,
            format!("wall ratio {sv_ratio:.1} >= 4, bandwidths {sv_bw:?} == {lk_bw:?}"),
        ));
    } else {
        gates.push(Gate::skip(
            "sharded service beats the global lock >= 4x at identical bandwidths",
            format!("ratio asserted only at n >= 2,000 (n = {n})"),
        ));
    }

    gates
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = arg_parse(&args, "--n", 2_000usize);
    let k = arg_parse(&args, "--k", 100usize);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_report.json".into());

    eprintln!("perf gate: collecting BENCH report at n = {n}, k = {k}…");
    let report = match collect_report(ReportConfig { n, k, seed: 42 }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf gate: report collection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let path = Path::new(&out);
    if let Some(dir) = path.parent() {
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("perf gate: cannot create {}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if std::fs::write(path, report.to_json()).is_err() {
        eprintln!("perf gate: cannot write {}", path.display());
        return ExitCode::FAILURE;
    }
    // Assert from the file, not the in-memory report: the gate's contract is
    // over what downstream tooling will actually read. One read serves every
    // gate.
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("perf gate: cannot read back {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };

    let gates = evaluate_gates(&json, n, k);
    let width = gates.iter().map(|g| g.name.len()).max().unwrap_or(0);
    for g in &gates {
        let verdict = match g.ok {
            Some(true) => "PASS",
            Some(false) => "FAIL",
            None => "skip",
        };
        println!("perf gate: {verdict} — {:width$} ({})", g.name, g.detail);
    }
    let failures: Vec<&Gate> = gates.iter().filter(|g| g.ok == Some(false)).collect();
    if failures.is_empty() {
        println!("perf gate: all invariants hold (n = {n}, k = {k}, report: {})", path.display());
        ExitCode::SUCCESS
    } else {
        println!("perf gate: {} invariant(s) violated:", failures.len());
        for g in &failures {
            println!("perf gate:   - {} ({})", g.name, g.detail);
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"version\":7,\"metrics_enabled\":true,\"strategies\":[\
        {\"name\":\"sorted\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
        \"kernel_evals\":90,\"sort_comparisons\":400000}}},\
        {\"name\":\"merged\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
        \"kernel_evals\":90,\"sort_comparisons\":35}}},\
        {\"name\":\"prefix\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
        \"kernel_evals\":0,\"window_queries\":200000}}},\
        {\"name\":\"prefix-par\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
        \"kernel_evals\":0,\"window_queries\":200000}}},\
        {\"name\":\"gpu-windowed\",\"bandwidth\":0.125000,\
        \"device_bytes_peak\":58048,\"obs\":{\"counters\":{\
        \"window_queries\":200000,\"mem_transactions\":5600000}}},\
        {\"name\":\"bagged\",\"bandwidth\":0.120000,\
        \"bagged\":{\"bags\":10,\"bag_size\":500,\"combiner\":\"mean\",\
        \"workers\":8,\"host_bytes_peak\":900000},\"obs\":{\"counters\":{\
        \"kernel_evals\":0,\"window_queries\":500000,\"bags_run\":10}}},\
        {\"name\":\"multi-naive\",\"bandwidth\":0.125000,\
        \"wall_seconds\":1.500000000,\"multi\":{\"dims\":2,\"grid_points\":100,\
        \"bandwidths\":[0.125000,0.250000]},\"obs\":{\"counters\":{\
        \"kernel_evals\":790000000,\"window_queries\":0}}},\
        {\"name\":\"multi-fast\",\"bandwidth\":0.125000,\
        \"wall_seconds\":0.050000000,\"multi\":{\"dims\":2,\"grid_points\":100,\
        \"bandwidths\":[0.125000,0.250000]},\"obs\":{\"counters\":{\
        \"kernel_evals\":0,\"dim_sweeps\":200,\"window_queries\":400000}}}],\
        \"streaming\":{\"arrivals\":2000,\"window\":500,\"cadence\":64,\
        \"inserts\":2000,\"removes\":1500,\"reselects\":32,\
        \"tree_updates\":104000,\"kernel_evals\":0,\
        \"final_bandwidth\":0.052341000000,\"recompute_bandwidth\":0.052341000000,\
        \"wall_seconds\":0.011000000,\"recompute_wall_seconds\":0.420000000},\
        \"serving\":{\"streams\":8,\"arrivals_per_stream\":2000,\"shards\":4,\
        \"window\":256,\"cadence\":50,\"requests_served\":16008,\
        \"coalesced_arrivals\":15200,\"queue_high_water\":812,\
        \"shed_requests\":0,\"reselects\":24,\"lock_reselects\":328,\
        \"kernel_evals\":0,\"wall_seconds\":0.081000000,\
        \"lock_wall_seconds\":0.840000000,\
        \"final_bandwidths\":[0.052000000000,0.053000000000],\
        \"lock_final_bandwidths\":[0.052000000000,0.053000000000]}}";

    #[test]
    fn strategy_slice_isolates_one_entry() {
        let sorted = strategy_slice(SAMPLE, "sorted").unwrap();
        assert!(sorted.contains("\"sort_comparisons\":400000"));
        assert!(!sorted.contains("\"sort_comparisons\":35"));
        let merged = strategy_slice(SAMPLE, "merged").unwrap();
        assert_eq!(u64_field(merged, "sort_comparisons"), Some(35));
        assert!(strategy_slice(SAMPLE, "gpu-sim").is_none());
    }

    #[test]
    fn strategy_slice_distinguishes_prefix_from_prefix_par() {
        // The needle carries the closing quote, so "prefix" cannot match the
        // "prefix-par" entry; emission order makes the plain entry first.
        let prefix = strategy_slice(SAMPLE, "prefix").unwrap();
        assert!(prefix.contains("\"window_queries\":200000"));
        assert!(!prefix.contains("prefix-par"));
        assert!(strategy_slice(SAMPLE, "prefix-par").is_some());
    }

    #[test]
    fn field_parsers_read_numbers() {
        let merged = strategy_slice(SAMPLE, "merged").unwrap();
        assert_eq!(u64_field(merged, "kernel_evals"), Some(90));
        assert_eq!(f64_field(merged, "bandwidth"), Some(0.125));
        assert_eq!(u64_field(merged, "missing"), None);
    }

    #[test]
    fn all_gates_pass_on_a_conforming_report() {
        // n = 2,000, k = 100: ceil(log2 2000) = 11, so the window-query
        // ceiling is 2,200,000, the comparison ceiling 66,000, the windowed
        // peak ceiling 128,000 bytes and the transaction ceiling 18,800,000.
        // Bagged (B = 10, r = 500): work ceiling 500,000 queries; memory
        // ceiling 8 × (256·500 + 64·100 + 65,536) = 1,599,488 bytes.
        // Multi-fast (g = 100, d = 2): query ceiling 100·2,000·2·11 =
        // 4,400,000; wall ratio 1.5/0.05 = 30×. Streaming (W = 500):
        // update ceiling (2,000 + 1,500)·9·5 = 157,500; wall ratio
        // 0.42/0.011 = 38×. Serving: wall ratio 0.84/0.081 = 10.4×,
        // identical bandwidth arrays.
        let gates = evaluate_gates(SAMPLE, 2_000, 100);
        assert_eq!(gates.len(), 22);
        assert!(gates.iter().all(|g| g.ok == Some(true)), "{:?}", fails(&gates));
    }

    #[test]
    fn ratio_gate_skips_below_two_thousand() {
        let gates = evaluate_gates(SAMPLE, 1_000, 100);
        let ratio = gates
            .iter()
            .find(|g| g.name.contains("100x"))
            .unwrap();
        assert_eq!(ratio.ok, None);
        assert!(gates.iter().filter(|g| g.ok == Some(false)).count() == 0, "{:?}", fails(&gates));
    }

    #[test]
    fn kernel_eval_gate_catches_a_scanning_prefix() {
        let bad = SAMPLE.replace(
            "{\"name\":\"prefix\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
             \"kernel_evals\":0",
            "{\"name\":\"prefix\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
             \"kernel_evals\":7",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["prefix sweeps never evaluate the kernel"]);
    }

    #[test]
    fn window_query_gate_catches_a_per_probe_count() {
        // A count above n·k·ceil(log2 n) means queries are being charged per
        // binary-search probe (or per neighbour), not per cell.
        let bad = SAMPLE.replace("\"window_queries\":200000", "\"window_queries\":2200001");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert!(fails(&gates)
            .contains(&"prefix window queries stay within n*k*ceil(log2 n)"));
    }

    #[test]
    fn bandwidth_gate_catches_a_prefix_disagreement() {
        let bad = SAMPLE.replacen(
            "{\"name\":\"prefix\",\"bandwidth\":0.125000",
            "{\"name\":\"prefix\",\"bandwidth\":0.250000",
            1,
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["prefix strategies select the sorted sweep's bandwidth"]);
    }

    #[test]
    fn windowed_peak_gate_catches_a_dense_matrix_allocation() {
        // 8n² bytes at n = 2,000 is 32 MB — a windowed program that quietly
        // reallocated the classic n×n residual matrices lands here, five
        // hundred times over the 64n = 128,000-byte ceiling.
        let bad = SAMPLE.replace("\"device_bytes_peak\":58048", "\"device_bytes_peak\":32000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["windowed peak device bytes stay O(n), no n^2 term"]);
    }

    #[test]
    fn windowed_traffic_gate_catches_a_per_neighbour_scan() {
        // A per-neighbour running-sum loop reads Θ(n) cells per (obs, h)
        // pair: n·k·n = 4·10⁸ transactions at gate scale, far above the
        // n·k·(2·ceil(log2 n) + 72) = 18,800,000 ceiling.
        let bad = SAMPLE.replace("\"mem_transactions\":5600000", "\"mem_transactions\":400000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["windowed mem transactions stay O(k log n) per observation"]
        );
    }

    #[test]
    fn windowed_gates_refuse_zero_counts() {
        // A report produced without actually running the windowed program
        // (peak 0, no traffic) must not pass by vacuity.
        let bad = SAMPLE
            .replace("\"device_bytes_peak\":58048", "\"device_bytes_peak\":0")
            .replace("\"mem_transactions\":5600000", "\"mem_transactions\":0");
        let gates = evaluate_gates(&bad, 2_000, 100);
        let failed = fails(&gates);
        assert!(failed.contains(&"windowed peak device bytes stay O(n), no n^2 term"));
        assert!(failed.contains(&"windowed mem transactions stay O(k log n) per observation"));
    }

    #[test]
    fn bagged_work_gate_catches_a_full_sample_sweep() {
        // A bagged run that sweeps all n observations per bag does
        // B·n·k = 10·2,000·100 = 2,000,000 queries, four times the
        // B·r·k = 500,000 ceiling.
        let bad = SAMPLE.replace("\"window_queries\":500000", "\"window_queries\":2000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["bagged work stays within B x one bag's bound, no n term"]);
    }

    #[test]
    fn bagged_work_gate_catches_a_kernel_evaluating_engine() {
        let bad = SAMPLE.replace(
            "\"kernel_evals\":0,\"window_queries\":500000",
            "\"kernel_evals\":7,\"window_queries\":500000",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["bagged work stays within B x one bag's bound, no n term"]);
    }

    #[test]
    fn bagged_memory_gate_catches_all_bags_held_alive() {
        // Keeping all 10 bags' data live (or anything O(n)-sized) blows
        // through the 8-worker × 199,936-byte = 1,599,488 ceiling.
        let bad = SAMPLE.replace("\"host_bytes_peak\":900000", "\"host_bytes_peak\":100000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["bagged peak memory stays within workers x one bag's footprint"]
        );
    }

    #[test]
    fn bagged_gates_refuse_zero_counts() {
        // A report whose bagged entry never ran (no queries, no peak) must
        // not pass by vacuity.
        let bad = SAMPLE
            .replace("\"window_queries\":500000", "\"window_queries\":0")
            .replace("\"host_bytes_peak\":900000", "\"host_bytes_peak\":0");
        let gates = evaluate_gates(&bad, 2_000, 100);
        let failed = fails(&gates);
        assert!(failed.contains(&"bagged work stays within B x one bag's bound, no n term"));
        assert!(failed.contains(&"bagged peak memory stays within workers x one bag's footprint"));
    }

    #[test]
    fn version_gate_catches_a_stale_writer() {
        let bad = SAMPLE.replace("\"version\":7", "\"version\":6");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["report schema version matches the gate's"]);
    }

    #[test]
    fn multi_kernel_eval_gate_catches_a_product_evaluating_engine() {
        let bad = SAMPLE.replace(
            "\"kernel_evals\":0,\"dim_sweeps\":200",
            "\"kernel_evals\":7,\"dim_sweeps\":200",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["multi-fast never evaluates the kernel"]);
    }

    #[test]
    fn multi_window_gate_catches_a_per_neighbour_product_scan() {
        // One over the g·n·d·ceil(log2 n) = 100·2,000·2·11 = 4,400,000
        // ceiling: queries charged per neighbour, not per cell.
        let bad = SAMPLE.replace("\"window_queries\":400000", "\"window_queries\":4400001");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["multi-fast window queries stay within g*n*d*ceil(log2 n)"]
        );
    }

    #[test]
    fn multi_speedup_gate_catches_a_slow_fast_path() {
        // Ratio 1.5/1.0 = 1.5× is far under the required 10×.
        let bad =
            SAMPLE.replace("\"wall_seconds\":0.050000000", "\"wall_seconds\":1.000000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["multi-fast beats multi-naive >= 10x on the identical optimum"]
        );
    }

    #[test]
    fn multi_speedup_gate_catches_a_bandwidth_vector_mismatch() {
        // First occurrence is multi-naive's vector: any componentwise
        // drift between the serialised arrays must fail, even when the
        // scalar dimension-1 `bandwidth` fields still agree.
        let bad = SAMPLE.replacen("[0.125000,0.250000]", "[0.125000,0.260000]", 1);
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["multi-fast beats multi-naive >= 10x on the identical optimum"]
        );
    }

    #[test]
    fn multi_speedup_gate_skips_below_two_thousand() {
        let gates = evaluate_gates(SAMPLE, 1_000, 100);
        let gate = gates.iter().find(|g| g.name.contains(">= 10x")).unwrap();
        assert_eq!(gate.ok, None);
    }

    #[test]
    fn multi_gates_refuse_zero_counts() {
        // A report whose multi-fast entry never ran (no sweeps, no
        // queries) must not pass by vacuity.
        let bad = SAMPLE.replace(
            "\"kernel_evals\":0,\"dim_sweeps\":200,\"window_queries\":400000",
            "\"kernel_evals\":0,\"dim_sweeps\":0,\"window_queries\":0",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        let failed = fails(&gates);
        assert!(failed.contains(&"multi-fast never evaluates the kernel"));
        assert!(failed.contains(&"multi-fast window queries stay within g*n*d*ceil(log2 n)"));
    }

    #[test]
    fn merged_gates_still_guard_the_pr3_contract() {
        let bad = SAMPLE.replace("\"sort_comparisons\":35", "\"sort_comparisons\":9999999");
        let gates = evaluate_gates(&bad, 2_000, 100);
        let failed = fails(&gates);
        assert!(failed.contains(&"merged sort comparisons stay O(n log n)"));
        assert!(failed.contains(&"sorted sweep sorts >= 100x more than merged"));
    }

    #[test]
    fn streaming_gate_catches_a_missing_object() {
        // A writer that stops measuring the replay (pre-v6 tail) must fail
        // gate 17 explicitly, not let gates 18–19 pass by absence.
        let end = SAMPLE.find(",\"streaming\":{").unwrap();
        let bad = format!("{}}}", &SAMPLE[..end]);
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["report carries the schema-v6 streaming object"]);
    }

    #[test]
    fn streaming_update_gate_catches_a_kernel_evaluating_replay() {
        let bad = SAMPLE.replace(
            "\"kernel_evals\":0,\"final_bandwidth\"",
            "\"kernel_evals\":7,\"final_bandwidth\"",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["streaming replay: zero kernel evals, tree updates O(log W)"]
        );
    }

    #[test]
    fn streaming_update_gate_catches_an_over_budget_tree() {
        // One rebuild per arrival (or per-moment-slot counting) lands far
        // above the (ins+rem)·ceil(log2 W)·(deg+3) = 157,500 ceiling.
        let bad = SAMPLE.replace("\"tree_updates\":104000", "\"tree_updates\":1000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["streaming replay: zero kernel evals, tree updates O(log W)"]
        );
    }

    #[test]
    fn streaming_speedup_gate_catches_a_slow_replay() {
        // Ratio 0.42/0.2 = 2.1× is far under the required 10×.
        let bad =
            SAMPLE.replace("\"wall_seconds\":0.011000000", "\"wall_seconds\":0.200000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["streaming replay beats per-arrival recompute >= 10x, identical bandwidth"]
        );
    }

    #[test]
    fn streaming_speedup_gate_catches_a_bandwidth_divergence() {
        let bad = SAMPLE.replace(
            "\"recompute_bandwidth\":0.052341000000",
            "\"recompute_bandwidth\":0.052999000000",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["streaming replay beats per-arrival recompute >= 10x, identical bandwidth"]
        );
    }

    #[test]
    fn serving_gate_catches_a_missing_object() {
        // A writer that stops measuring the sharded service (v6 tail) must
        // fail gate 20 explicitly, not let gates 21–22 pass by absence.
        let end = SAMPLE.find(",\"serving\":{").unwrap();
        let bad = format!("{}}}", &SAMPLE[..end]);
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(fails(&gates), vec!["report carries the schema-v7 serving object"]);
    }

    #[test]
    fn serving_gate_catches_a_kernel_evaluating_service() {
        let bad = SAMPLE.replace(
            "\"kernel_evals\":0,\"wall_seconds\":0.081000000",
            "\"kernel_evals\":7,\"wall_seconds\":0.081000000",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["serving: zero kernel evals service-wide, bursts coalesced"]
        );
    }

    #[test]
    fn serving_gate_refuses_an_uncoalesced_run() {
        // A worker that re-selects per arrival never merges a burst:
        // coalesced_arrivals == 0 must not pass by vacuity.
        let bad =
            SAMPLE.replace("\"coalesced_arrivals\":15200", "\"coalesced_arrivals\":0");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["serving: zero kernel evals service-wide, bursts coalesced"]
        );
    }

    #[test]
    fn serving_speedup_gate_catches_a_slow_service() {
        // Ratio 0.84/0.5 = 1.7× is far under the required 4×.
        let bad =
            SAMPLE.replace("\"wall_seconds\":0.081000000", "\"wall_seconds\":0.500000000");
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["sharded service beats the global lock >= 4x at identical bandwidths"]
        );
    }

    #[test]
    fn serving_speedup_gate_catches_a_bandwidth_divergence() {
        // Conflation must not change any stream's final selection: one
        // component drifting in the baseline's array fails the identity.
        let bad = SAMPLE.replace(
            "\"lock_final_bandwidths\":[0.052000000000,0.053000000000]",
            "\"lock_final_bandwidths\":[0.052000000000,0.054000000000]",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        assert_eq!(
            fails(&gates),
            vec!["sharded service beats the global lock >= 4x at identical bandwidths"]
        );
    }

    #[test]
    fn serving_speedup_gate_skips_below_two_thousand() {
        let gates = evaluate_gates(SAMPLE, 1_000, 100);
        let gate = gates.iter().find(|g| g.name.contains(">= 4x")).unwrap();
        assert_eq!(gate.ok, None);
        assert_eq!(fails(&gates), Vec::<&str>::new());
    }

    #[test]
    fn streaming_slice_stops_at_the_serving_boundary() {
        // The two objects share field names; corrupting serving's
        // `kernel_evals` must trip the serving gate, never the streaming
        // one (which would prove the streaming slice leaked across).
        let bad = SAMPLE.replace(
            "\"kernel_evals\":0,\"wall_seconds\":0.081000000",
            "\"kernel_evals\":9,\"wall_seconds\":0.081000000",
        );
        let gates = evaluate_gates(&bad, 2_000, 100);
        let failed = fails(&gates);
        assert!(!failed
            .contains(&"streaming replay: zero kernel evals, tree updates O(log W)"));
        assert!(failed.contains(&"serving: zero kernel evals service-wide, bursts coalesced"));
    }

    #[test]
    fn disabled_metrics_fail_the_gate() {
        let off = SAMPLE.replace("\"metrics_enabled\":true", "\"metrics_enabled\":false");
        let gates = evaluate_gates(&off, 2_000, 100);
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].ok, Some(false));
    }

    #[test]
    fn missing_strategy_entries_fail_the_gate() {
        let truncated = SAMPLE.replace("{\"name\":\"prefix-par\"", "{\"name\":\"other\"");
        let gates = evaluate_gates(&truncated, 2_000, 100);
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].ok, Some(false));
    }

    fn fails(gates: &[Gate]) -> Vec<&'static str> {
        gates.iter().filter(|g| g.ok == Some(false)).map(|g| g.name).collect()
    }
}
