//! Counter-based performance gate over `results/BENCH_report.json`.
//!
//! Collects a fresh per-strategy report at a small fixed `(n, k)` point,
//! writes it to the report path, then re-reads the file and asserts the
//! merge-sweep's complexity contract from the JSON itself:
//!
//! 1. `merged` sort comparisons stay `O(n log n)` — hard ceiling
//!    `3 · n · ceil(log2 n)` (one global argsort; a per-observation sort
//!    would be `Θ(n² log n)` and blow straight through it);
//! 2. `merged` kernel evaluations equal the sorted sweep's exactly (the
//!    merge changes how neighbours are *ordered*, never which neighbours
//!    are *evaluated*);
//! 3. at `n ≥ 2,000` the sorted sweep spends at least 100× more sort
//!    comparisons than the merge-sweep;
//! 4. both grid strategies select the identical bandwidth.
//!
//! Exits non-zero on the first violated invariant, so `make verify` and CI
//! fail if a regression reintroduces per-observation sorting. Requires a
//! `--features metrics` build (the gate refuses to pass on a report with
//! counters disabled).
//!
//! Usage: `cargo run -p kcv-bench --features metrics --bin perf_gate --
//! [--n N] [--k K] [--out results/BENCH_report.json]`

use kcv_bench::report::{collect_report, ReportConfig};
use kcv_bench::table::{arg_parse, arg_value};
use std::path::Path;
use std::process::ExitCode;

/// Extracts one strategy's JSON object (from its `"name"` key to the start
/// of the next strategy or the end of the array) out of a report string.
fn strategy_slice<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("{{\"name\":\"{name}\"");
    let start = json.find(&needle)?;
    let rest = &json[start + needle.len()..];
    let end = rest.find("{\"name\":\"").map_or(rest.len(), |e| e);
    Some(&rest[..end])
}

/// Reads an unsigned integer field (`"key":123`) from a JSON slice.
fn u64_field(slice: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = slice.find(&needle)? + needle.len();
    let digits: String = slice[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Reads a float field (`"key":0.125`) from a JSON slice.
fn f64_field(slice: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = slice.find(&needle)? + needle.len();
    let num: String = slice[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E')
        .collect();
    num.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = arg_parse(&args, "--n", 2_000usize);
    let k = arg_parse(&args, "--k", 100usize);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_report.json".into());

    eprintln!("perf gate: collecting BENCH report at n = {n}, k = {k}…");
    let report = match collect_report(ReportConfig { n, k, seed: 42 }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf gate: report collection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let path = Path::new(&out);
    if let Some(dir) = path.parent() {
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("perf gate: cannot create {}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if std::fs::write(path, report.to_json()).is_err() {
        eprintln!("perf gate: cannot write {}", path.display());
        return ExitCode::FAILURE;
    }
    // Assert from the file, not the in-memory report: the gate's contract is
    // over what downstream tooling will actually read.
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("perf gate: cannot read back {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };

    if !json.contains("\"metrics_enabled\":true") {
        eprintln!(
            "perf gate: FAIL — counters disabled in the report; run with \
             `cargo run -p kcv-bench --features metrics --bin perf_gate`"
        );
        return ExitCode::FAILURE;
    }
    let (Some(sorted), Some(merged)) =
        (strategy_slice(&json, "sorted"), strategy_slice(&json, "merged"))
    else {
        eprintln!("perf gate: FAIL — report lacks sorted/merged strategy entries");
        return ExitCode::FAILURE;
    };
    let field = |slice: &str, key: &str| u64_field(slice, key).unwrap_or(0);

    let mut failures = 0u32;
    let mut check = |label: &str, ok: bool, detail: String| {
        if ok {
            println!("perf gate: PASS — {label} ({detail})");
        } else {
            println!("perf gate: FAIL — {label} ({detail})");
            failures += 1;
        }
    };

    // 1. One global argsort: O(n log n) comparison ceiling.
    let log2n = (n as f64).log2().ceil() as u64;
    let ceiling = 3 * n as u64 * log2n;
    let merged_cmps = field(merged, "sort_comparisons");
    check(
        "merged sort comparisons stay O(n log n)",
        merged_cmps <= ceiling,
        format!("{merged_cmps} <= {ceiling}"),
    );

    // 2. Identical support walk: kernel evals match the sorted sweep's.
    let (se, me) = (field(sorted, "kernel_evals"), field(merged, "kernel_evals"));
    check("merged kernel evals equal sorted sweep's", me == se, format!("{me} == {se}"));

    // 3. The point of the PR: ≥100× fewer sort comparisons at n ≥ 2,000.
    let sorted_cmps = field(sorted, "sort_comparisons");
    if n >= 2_000 {
        check(
            "sorted sweep sorts >= 100x more than merged",
            sorted_cmps >= 100 * merged_cmps.max(1),
            format!("{sorted_cmps} >= 100 * {merged_cmps}"),
        );
    } else {
        println!("perf gate: skip — 100x ratio asserted only at n >= 2,000 (n = {n})");
    }

    // 4. Same selected bandwidth.
    let (sb, mb) = (f64_field(sorted, "bandwidth"), f64_field(merged, "bandwidth"));
    check("sorted and merged select the same bandwidth", sb == mb, format!("{sb:?} == {mb:?}"));

    if failures == 0 {
        println!("perf gate: all invariants hold (n = {n}, k = {k}, report: {})", path.display());
        ExitCode::SUCCESS
    } else {
        println!("perf gate: {failures} invariant(s) violated");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"version\":1,\"metrics_enabled\":true,\"strategies\":[\
        {\"name\":\"sorted\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
        \"kernel_evals\":90,\"sort_comparisons\":4000}}},\
        {\"name\":\"merged\",\"bandwidth\":0.125000,\"obs\":{\"counters\":{\
        \"kernel_evals\":90,\"sort_comparisons\":35}}}]}";

    #[test]
    fn strategy_slice_isolates_one_entry() {
        let sorted = strategy_slice(SAMPLE, "sorted").unwrap();
        assert!(sorted.contains("\"sort_comparisons\":4000"));
        assert!(!sorted.contains("\"sort_comparisons\":35"));
        let merged = strategy_slice(SAMPLE, "merged").unwrap();
        assert_eq!(u64_field(merged, "sort_comparisons"), Some(35));
        assert!(strategy_slice(SAMPLE, "gpu-sim").is_none());
    }

    #[test]
    fn field_parsers_read_numbers() {
        let merged = strategy_slice(SAMPLE, "merged").unwrap();
        assert_eq!(u64_field(merged, "kernel_evals"), Some(90));
        assert_eq!(f64_field(merged, "bandwidth"), Some(0.125));
        assert_eq!(u64_field(merged, "missing"), None);
    }
}
