//! Past-the-paper scaling study: bagged CV selection at n = 10⁵, 10⁶, 10⁷.
//!
//! The paper's evaluation stops at n = 20,000 (the device memory wall);
//! PR 6's windowed pipeline broke the wall but still sweeps all n
//! observations. This binary produces the repo's first numbers past that
//! ceiling: for each sample size it runs the bagged selector (default
//! B = 25 bags of r = 2,000, prefix engine, mean combiner — the ISSUE 7
//! configuration) and, where feasible (n ≤ `--full-max-n`, default 10⁶),
//! the full-data prefix strategy for comparison, measuring wall time, the
//! counting allocator's host-heap peak delta, and the selected bandwidth.
//!
//! ## Why every run uses a log-spaced grid
//!
//! The CV-optimal bandwidth shrinks like `n^{−1/5}`, so it lives on a log
//! scale; the paper-default *linear* grid (`domain/k` steps up from a
//! `domain/k` floor) either clamps the full-data argmin at its own floor
//! (measured: exactly 0.010000 at both 10⁵ and 10⁶ with k = 100 — the
//! bagged answer correctly rescales *below* the floor) or quantises it to
//! a step as coarse as the optimum itself. Both the full runs and the
//! bagged selector's in-bag search therefore sweep a k-point log grid
//! spanning `domain·[10⁻³, 0.3]` (the bags share the full sample's
//! domain), which keeps the optimum interior at every study size — a
//! regression test below pins the unclamped n = 10⁶ minimizer.
//!
//! ## The documented tolerance (acceptance check 2)
//!
//! The full-data CV valley at these sizes is extremely flat — at n = 10⁶
//! the score changes only in the 6th decimal across a 10× bandwidth range,
//! and the full-data argmin itself moves between 0.0036 and 0.0045 across
//! DGP seeds (the CV minimizer's relative noise is `O(n^{−1/10})`, ≈ 0.25
//! at 10⁶). Bandwidth-ratio comparisons tighter than that noise would be
//! gating on sampling accidents, so the tolerance is two-part:
//!
//! 1. the bagged bandwidth lies within a factor of 2 of the full-data
//!    argmin (catches gross rescaling failures; measured ratios ≤ 1.3), and
//! 2. the bagged bandwidth's *full-data CV regret*
//!    `(CV_n(h_bag) − CV_n(h_full)) / CV_n(h_full)` stays below 0.1%
//!    (measured ≈ 2·10⁻⁵) — the metric CV actually optimises.
//!
//! Outputs:
//!
//! * `results/scaling.csv` — the raw table (CI uploads this artifact);
//! * `results/BENCH_report.json` — a schema-v6 report collected at the
//!   perf-gate point with the `scaling` array populated;
//! * stdout — the rendered table plus the two acceptance checks:
//!   1. the bagged selection at the *largest* n finishes in under the
//!      full-data prefix time at n = 10⁵ (the ISSUE 7 criterion), and
//!   2. the two-part tolerance above at every n where the full run
//!      happened.
//!
//! Exits non-zero if either check fails.
//!
//! Usage: `cargo run --release -p kcv-bench --bin scaling --
//! [--max-n 10000000] [--full-max-n 1000000] [--bags 25] [--bag-size 2000]
//! [--k 100]`

use kcv_bench::alloc_track;
use kcv_bench::report::{collect_report, ReportConfig, ScalingRow};
use kcv_bench::table::{arg_parse, fmt_seconds, render, write_csv};
use kcv_core::prelude::*;
use kcv_data::{Dgp, PaperDgp};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// The study's sample sizes: one, ten, and a hundred times 10⁵.
const SIZES: [usize; 3] = [100_000, 1_000_000, 10_000_000];

/// Part 1 of the documented tolerance: the bagged bandwidth must lie
/// within this factor of the full-data argmin (measured ratios ≤ 1.3; the
/// CV minimizer's own seed-to-seed spread at n = 10⁶ is ±13%).
const BANDWIDTH_FACTOR: f64 = 2.0;

/// Part 2: the bagged bandwidth's relative full-data CV regret bound
/// (measured ≈ 2·10⁻⁵ — the valley is flat, which is exactly why part 1
/// cannot be much tighter than the minimizer's own noise).
const REGRET_TOLERANCE: f64 = 1e-3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_n = arg_parse(&args, "--max-n", 10_000_000usize);
    let full_max_n = arg_parse(&args, "--full-max-n", 1_000_000usize);
    let bags = arg_parse(&args, "--bags", 25usize);
    let bag_size = arg_parse(&args, "--bag-size", 2_000usize);
    let k = arg_parse(&args, "--k", 100usize);

    let mut rows: Vec<ScalingRow> = Vec::new();
    for n in SIZES.into_iter().filter(|&n| n <= max_n) {
        eprintln!("scaling: n = {n}: sampling paper DGP…");
        let s = PaperDgp.sample(n, 42);

        // One k-point log grid over the full sample's domain, shared by the
        // bagged in-bag search and the full-data run: the optimum h ~
        // n^{−1/5} lives on a log scale (see the module docs for the
        // measured linear-grid floor clamp this replaces). Bag subsamples
        // deliberately inherit the full sample's domain so every bag
        // searches the same candidates.
        let (lo, hi) =
            s.x.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let domain = hi - lo;
        let grid = match BandwidthGrid::log(domain * 1e-3, domain * 0.3, k) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("scaling: log grid failed at n = {n}: {e}");
                return ExitCode::FAILURE;
            }
        };

        eprintln!("scaling: n = {n}: bagged selection (B = {bags}, r = {bag_size})…");
        let selector =
            BaggedSelector::new(Epanechnikov, GridSpec::Explicit(grid.clone()), bags, bag_size)
                .with_seed(42);
        alloc_track::reset_peak();
        let baseline = alloc_track::current_bytes();
        let start = Instant::now();
        let bagged = match selector.select_bagged(&s.x, &s.y) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("scaling: bagged selection failed at n = {n}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bagged_wall_seconds = start.elapsed().as_secs_f64();
        let bagged_host_bytes_peak = alloc_track::peak_bytes().saturating_sub(baseline);

        let full = if n <= full_max_n {
            let (grid_min, grid_max) = (grid.min(), grid.max());
            eprintln!("scaling: n = {n}: full-data prefix selection (log grid, k = {k})…");
            alloc_track::reset_peak();
            let baseline = alloc_track::current_bytes();
            let start = Instant::now();
            match SortedGridSearch::prefix(Epanechnikov, GridSpec::Explicit(grid))
                .select(&s.x, &s.y)
            {
                Ok(sel) => {
                    if sel.bandwidth <= grid_min || sel.bandwidth >= grid_max {
                        eprintln!(
                            "scaling: WARNING — full-data argmin {:.6} sits on the grid \
                             edge [{grid_min:.6}, {grid_max:.6}]; widen the sweep",
                            sel.bandwidth
                        );
                    }
                    Some((
                        start.elapsed().as_secs_f64(),
                        alloc_track::peak_bytes().saturating_sub(baseline),
                        sel.bandwidth,
                        sel.score,
                    ))
                }
                Err(e) => {
                    eprintln!("scaling: full-data selection failed at n = {n}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!(
                "scaling: n = {n}: full-data prefix run skipped (> --full-max-n {full_max_n})"
            );
            None
        };

        // The study's quality metric: the full-data CV score at the bagged
        // bandwidth (one O(n) prefix pass), against the full-data minimum.
        let bagged_regret = match full {
            Some((_, _, _, full_score)) => {
                let one = match BandwidthGrid::from_values(vec![bagged.bandwidth]) {
                    Ok(g) => g,
                    Err(e) => {
                        eprintln!("scaling: regret grid failed at n = {n}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match kcv_core::cv::cv_profile_prefix(&s.x, &s.y, &one, &Epanechnikov) {
                    Ok(p) => Some((p.scores[0] - full_score) / full_score),
                    Err(e) => {
                        eprintln!("scaling: regret evaluation failed at n = {n}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => None,
        };

        rows.push(ScalingRow {
            n,
            bags,
            bag_size,
            combiner: "mean",
            bagged_wall_seconds,
            bagged_host_bytes_peak,
            bagged_bandwidth: bagged.bandwidth,
            full_wall_seconds: full.map(|f| f.0),
            full_host_bytes_peak: full.map(|f| f.1),
            full_bandwidth: full.map(|f| f.2),
            full_score: full.map(|f| f.3),
            bagged_regret,
        });
    }
    if rows.is_empty() {
        eprintln!("scaling: --max-n {max_n} excludes every study size {SIZES:?}");
        return ExitCode::FAILURE;
    }

    // ---- artifacts ------------------------------------------------------
    let csv_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n as f64,
                r.bags as f64,
                r.bag_size as f64,
                r.bagged_wall_seconds,
                r.bagged_host_bytes_peak as f64,
                r.bagged_bandwidth,
                r.full_wall_seconds.unwrap_or(f64::NAN),
                r.full_host_bytes_peak.map_or(f64::NAN, |v| v as f64),
                r.full_bandwidth.unwrap_or(f64::NAN),
                r.full_score.unwrap_or(f64::NAN),
                r.bagged_regret.unwrap_or(f64::NAN),
            ]
        })
        .collect();
    if let Err(e) = write_csv(
        Path::new("results/scaling.csv"),
        &[
            "n",
            "bags",
            "bag_size",
            "bagged_wall_seconds",
            "bagged_host_bytes_peak",
            "bagged_bandwidth",
            "full_wall_seconds",
            "full_host_bytes_peak",
            "full_bandwidth",
            "full_score",
            "bagged_regret",
        ],
        &csv_rows,
    ) {
        eprintln!("scaling: cannot write results/scaling.csv: {e}");
        return ExitCode::FAILURE;
    }

    eprintln!("scaling: collecting schema-v6 report at the perf-gate point…");
    let mut report = match collect_report(ReportConfig { n: 2_000, k: 100, seed: 42 }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scaling: report collection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    report.scaling = rows.clone();
    if let Err(e) = std::fs::write("results/BENCH_report.json", report.to_json()) {
        eprintln!("scaling: cannot write results/BENCH_report.json: {e}");
        return ExitCode::FAILURE;
    }

    // ---- table ----------------------------------------------------------
    let headers: Vec<String> = [
        "n",
        "bagged wall",
        "bagged peak B",
        "bagged h",
        "full wall",
        "full peak B",
        "full h",
        "regret",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let t_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                fmt_seconds(r.bagged_wall_seconds),
                r.bagged_host_bytes_peak.to_string(),
                format!("{:.6}", r.bagged_bandwidth),
                r.full_wall_seconds.map_or("-".into(), fmt_seconds),
                r.full_host_bytes_peak.map_or("-".into(), |v| v.to_string()),
                r.full_bandwidth.map_or("-".into(), |v| format!("{v:.6}")),
                r.bagged_regret.map_or("-".into(), |v| format!("{v:.2e}")),
            ]
        })
        .collect();
    println!(
        "SCALING PAST THE PAPER (B = {bags}, r = {bag_size}, k = {k}, prefix engine)\n{}",
        render(&headers, &t_rows)
    );

    // ---- acceptance checks ----------------------------------------------
    let mut ok = true;

    let largest = rows.last().unwrap();
    match rows.iter().find(|r| r.n == 100_000).and_then(|r| r.full_wall_seconds) {
        Some(full_1e5) if rows.len() > 1 => {
            let pass = largest.bagged_wall_seconds < full_1e5;
            println!(
                "scaling: {} — bagged at n = {} took {:.3}s vs full-data prefix at n = 100,000: {:.3}s",
                if pass { "PASS" } else { "FAIL" },
                largest.n,
                largest.bagged_wall_seconds,
                full_1e5,
            );
            ok &= pass;
        }
        _ => println!(
            "scaling: skip — speed check needs the n = 100,000 full run and a larger bagged run"
        ),
    }

    for r in &rows {
        if let Some(full_h) = r.full_bandwidth {
            let ratio = r.bagged_bandwidth / full_h;
            let band_ok = ratio > 1.0 / BANDWIDTH_FACTOR && ratio < BANDWIDTH_FACTOR;
            let regret = r.bagged_regret.unwrap_or(f64::NAN);
            let regret_ok = regret < REGRET_TOLERANCE;
            let pass = band_ok && regret_ok;
            println!(
                "scaling: {} — n = {}: bagged h = {:.6} vs full h = {:.6} \
                 (ratio {ratio:.3} vs factor {BANDWIDTH_FACTOR}; full-data CV regret \
                 {regret:.2e} vs tolerance {REGRET_TOLERANCE:.0e})",
                if pass { "PASS" } else { "FAIL" },
                r.n,
                r.bagged_bandwidth,
                full_h,
            );
            ok &= pass;
        }
    }

    if ok {
        println!("scaling: all checks hold; wrote results/scaling.csv and results/BENCH_report.json");
        ExitCode::SUCCESS
    } else {
        println!("scaling: acceptance check(s) failed");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISSUE 9 regression for the grid-default fix: at n = 10⁶ the study's
    /// log grid must leave the full-data CV minimizer *interior*, strictly
    /// below the linear paper-default grid's `domain/k` floor — the floor
    /// the PR 7 measurement showed the linear grid clamping to (exactly
    /// 0.010000 at k = 100). A smaller k keeps the test affordable; the
    /// log spacing is identical.
    #[test]
    fn log_grid_leaves_the_million_point_minimizer_unclamped() {
        let s = PaperDgp.sample(1_000_000, 42);
        let (lo, hi) =
            s.x.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let domain = hi - lo;
        let grid = BandwidthGrid::log(domain * 1e-3, domain * 0.3, 10).unwrap();
        let (grid_min, grid_max) = (grid.min(), grid.max());
        let profile =
            kcv_core::cv::cv_profile_prefix_par(&s.x, &s.y, &grid, &Epanechnikov).unwrap();
        let opt = profile.argmin().unwrap();
        assert!(
            opt.bandwidth > grid_min && opt.bandwidth < grid_max,
            "argmin {} clamped to a grid edge [{grid_min}, {grid_max}]",
            opt.bandwidth
        );
        assert!(
            opt.bandwidth < domain / 100.0,
            "argmin {} is not below the linear k = 100 floor {}",
            opt.bandwidth,
            domain / 100.0
        );
    }
}
