//! Reproduces the paper's §III motivation for the grid search: the CV
//! objective "is not necessarily concave", so "numerical optimization
//! techniques … will often produce non-global minima that depend upon the
//! initial values used".
//!
//! We run the np-style Nelder–Mead selector from many independent single
//! starts on the same data and compare every outcome against the dense-grid
//! optimum (which is deterministic and guaranteed on the grid).
//!
//! Usage: `cargo run -p kcv-bench --release --bin unreliability --
//! [--n N] [--starts S]`

use kcv_bench::table::{arg_parse, render};
use kcv_core::kernels::Epanechnikov;
use kcv_core::select::{BandwidthSelector, GridSpec, SortedGridSearch};
use kcv_data::{Dgp, SineDgp};
use kcv_np::{npregbw, NpRegBwOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = arg_parse(&args, "--n", 2_000usize);
    let starts = arg_parse(&args, "--starts", 24usize);

    // An oscillating truth gives the CV surface several local minima (one
    // per plausible smoothing scale). n is large enough that the smallest
    // searchable bandwidth (domain/1000, both for the grid and for the
    // optimiser bracket) stays above the nearest-neighbour spacing, so
    // neither method can wander into the degenerate all-excluded region.
    let sample = SineDgp { frequency: 4.0, noise: 0.35 }.sample(n, 314);

    let grid_sel = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(1_000))
        .select(&sample.x, &sample.y)
        .expect("grid search");
    println!(
        "dense grid search (k = 2000, deterministic): h = {:.5}, CV = {:.6}\n",
        grid_sel.bandwidth, grid_sel.score
    );

    let mut outcomes: Vec<(f64, f64)> = Vec::with_capacity(starts);
    for seed in 0..starts as u64 {
        let bw = npregbw(
            &sample.x,
            &sample.y,
            NpRegBwOptions { nmulti: 1, seed, ..Default::default() },
        )
        .expect("npregbw");
        outcomes.push((bw.bw, bw.fval));
    }

    // Cluster the outcomes (0.5% objective tolerance) to show the distinct
    // local minima the optimiser lands in.
    let mut clusters: Vec<(f64, f64, usize)> = Vec::new();
    for &(h, f) in &outcomes {
        match clusters.iter_mut().find(|(ch, _, _)| (h - *ch).abs() < 0.02) {
            Some(c) => {
                c.2 += 1;
                if f < c.1 {
                    c.0 = h;
                    c.1 = f;
                }
            }
            None => clusters.push((h, f, 1)),
        }
    }
    clusters.sort_by(|a, b| a.1.total_cmp(&b.1));

    let headers: Vec<String> =
        vec!["local minimum h".into(), "CV value".into(), "hit by".into(), "vs grid optimum".into()];
    let rows: Vec<Vec<String>> = clusters
        .iter()
        .map(|&(h, f, count)| {
            vec![
                format!("{h:.5}"),
                format!("{f:.6}"),
                format!("{count}/{starts} starts"),
                format!("{:+.2}%", (f / grid_sel.score - 1.0) * 100.0),
            ]
        })
        .collect();
    println!("single-start Nelder–Mead outcomes over {starts} random starts:\n");
    println!("{}", render(&headers, &rows));

    let non_global = outcomes
        .iter()
        .filter(|(_, f)| *f > grid_sel.score * 1.01)
        .count();
    println!(
        "{non_global}/{starts} single-start runs converged to a local minimum ≥ 1% worse\n\
         than the grid optimum; the grid search returns the same answer every time.\n\
         (This is the instability §III cites as the reason to prefer the grid search,\n\
         and why np's manual suggests multiple restarts.)"
    );
}
