//! Runs the complete experiment suite (Figure 1, Tables I and II, the
//! memory-limit checks, and the §IV-C correctness cross-checks), writing
//! CSVs plus a text summary under `results/`.
//!
//! Usage: `cargo run -p kcv-bench --release --bin experiments --
//! [--max-n N] [--table2-max-n N] [--reps R] [--nmulti M]`

use kcv_bench::chart::{render_loglog, Series};
use kcv_bench::programs::{run_program, Program};
use kcv_bench::report::{collect_report, ReportConfig};
use kcv_bench::sweep::{figure1_sweep, table2_sweep, PAPER_TABLE1, TABLE2_BANDWIDTHS, TABLE2_SIZES};
use kcv_bench::table::{arg_parse, fmt_seconds, render, write_csv};
use kcv_data::{Dgp, PaperDgp};
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_n = arg_parse(&args, "--max-n", 5_000usize);
    let t2_max_n = arg_parse(&args, "--table2-max-n", 1_000usize);
    let reps = arg_parse(&args, "--reps", 3usize);
    let nmulti = arg_parse(&args, "--nmulti", 2usize);
    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "kernelcv experiment suite — max_n={max_n}, table2_max_n={t2_max_n}, reps={reps}, nmulti={nmulti}\n"
    );

    // ---- Figure 1 / Table I -------------------------------------------
    eprintln!("[1/5] Figure 1 / Table I sweep…");
    let rows = figure1_sweep(max_n, 50, reps, nmulti);
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = rows.iter().map(|r| r.n).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let get = |n: usize, p: Program| rows.iter().find(|r| r.n == n && r.program == p);
    let mut csv_rows = Vec::new();
    let mut table_rows = Vec::new();
    for &n in &sizes {
        let wall = |p| get(n, p).map_or(f64::NAN, |r| r.wall_seconds);
        let sim = get(n, Program::CudaGpu).and_then(|r| r.simulated_seconds).unwrap_or(f64::NAN);
        csv_rows.push(vec![
            n as f64,
            wall(Program::RacineHayfield),
            wall(Program::MulticoreR),
            wall(Program::SequentialC),
            wall(Program::MergedC),
            wall(Program::PrefixC),
            wall(Program::CudaGpu),
            sim,
            wall(Program::Bagged),
            wall(Program::MultiFast),
        ]);
        table_rows.push(vec![
            n.to_string(),
            fmt_seconds(wall(Program::RacineHayfield)),
            fmt_seconds(wall(Program::MulticoreR)),
            fmt_seconds(wall(Program::SequentialC)),
            fmt_seconds(wall(Program::MergedC)),
            fmt_seconds(wall(Program::PrefixC)),
            fmt_seconds(wall(Program::CudaGpu)),
            fmt_seconds(sim),
            fmt_seconds(wall(Program::Bagged)),
            fmt_seconds(wall(Program::MultiFast)),
        ]);
    }
    write_csv(
        Path::new("results/table1.csv"),
        &["n", "racine_hayfield", "multicore_r", "sequential_c", "merged_c", "prefix_c", "cuda_wall", "cuda_simulated", "bagged", "multi_fast"],
        &csv_rows,
    )
    .expect("write table1.csv");
    let headers: Vec<String> = [
        "n",
        "Racine&Hayfield",
        "Multicore R",
        "Sequential C",
        "Merged C",
        "Prefix C",
        "CUDA wall",
        "CUDA simulated",
        "Bagged",
        "Multi fast",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = writeln!(summary, "TABLE I (measured, seconds)\n{}", render(&headers, &table_rows));

    // Speedup analysis at the largest measured n vs the paper's 7×.
    if let Some(&n) = sizes.last() {
        let rh = get(n, Program::RacineHayfield).map_or(f64::NAN, |r| r.wall_seconds);
        let sc = get(n, Program::SequentialC).map_or(f64::NAN, |r| r.wall_seconds);
        let mc = get(n, Program::MergedC).map_or(f64::NAN, |r| r.wall_seconds);
        let pc = get(n, Program::PrefixC).map_or(f64::NAN, |r| r.wall_seconds);
        let sim = get(n, Program::CudaGpu).and_then(|r| r.simulated_seconds).unwrap_or(f64::NAN);
        let _ = writeln!(
            summary,
            "At n = {n}: sorted grid search beats numerical optimisation by {:.1}×;\n\
             merge-sweep vs sorted sweep: {:.1}×; prefix-moments vs merge-sweep: {:.1}×;\n\
             numerical-opt vs simulated GPU time: {:.1}× (paper at n = 20,000: 7.2×).\n",
            rh / sc,
            sc / mc,
            mc / pc,
            rh / sim
        );
    }
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE1
        .iter()
        .map(|&(n, a, b, c, d)| {
            vec![
                n.to_string(),
                fmt_seconds(a),
                fmt_seconds(b),
                fmt_seconds(c),
                "-".into(),
                "-".into(),
                fmt_seconds(d),
                "-".into(),
                "-".into(),
                "-".into(),
            ]
        })
        .collect();
    let _ = writeln!(summary, "TABLE I (paper, seconds)\n{}", render(&headers, &paper_rows));

    // ASCII Figure 1.
    let mut series = Vec::new();
    for (mark, program) in [
        ('r', Program::RacineHayfield),
        ('m', Program::MulticoreR),
        ('s', Program::SequentialC),
        ('c', Program::MergedC),
        ('p', Program::PrefixC),
        ('g', Program::CudaGpu),
        ('b', Program::Bagged),
        ('f', Program::MultiFast),
    ] {
        series.push(Series {
            label: format!("{} (wall)", program.label()),
            mark,
            points: rows
                .iter()
                .filter(|r| r.program == program)
                .map(|r| (r.n as f64, r.wall_seconds.max(1e-4)))
                .collect(),
        });
    }
    series.push(Series {
        label: "CUDA on GPU (simulated device seconds)".into(),
        mark: 'G',
        points: rows
            .iter()
            .filter(|r| r.program == Program::CudaGpu)
            .filter_map(|r| r.simulated_seconds.map(|s| (r.n as f64, s.max(1e-4))))
            .collect(),
    });
    let _ = writeln!(summary, "FIGURE 1 (measured)\n{}", render_loglog(&series, 72, 24));

    // ---- Table II ------------------------------------------------------
    eprintln!("[2/5] Table II sweeps…");
    let t2_sizes: Vec<usize> = TABLE2_SIZES.iter().copied().filter(|&n| n <= t2_max_n).collect();
    let mut t2_headers: Vec<String> = vec!["Bandwidths".into()];
    t2_headers.extend(t2_sizes.iter().map(|n| n.to_string()));
    for (label, program, use_sim, path) in [
        ("PANEL A: Sequential C (wall s)", Program::SequentialC, false, "results/table2a.csv"),
        ("PANEL B: CUDA (simulated s)", Program::CudaGpu, true, "results/table2b_simulated.csv"),
    ] {
        let cells = table2_sweep(program, t2_max_n, 1);
        let mut t_rows = Vec::new();
        let mut c_rows = Vec::new();
        for &k in &TABLE2_BANDWIDTHS {
            let mut t_row = vec![k.to_string()];
            let mut c_row = vec![k as f64];
            for &n in &t2_sizes {
                let v = cells.iter().find(|c| c.n == n && c.k == k).map(|c| {
                    if use_sim {
                        c.simulated_seconds.unwrap_or(f64::NAN)
                    } else {
                        c.wall_seconds
                    }
                });
                t_row.push(v.map_or("".into(), fmt_seconds));
                c_row.push(v.unwrap_or(f64::NAN));
            }
            t_rows.push(t_row);
            c_rows.push(c_row);
        }
        let mut csv_headers: Vec<String> = vec!["bandwidths".into()];
        csv_headers.extend(t2_sizes.iter().map(|n| format!("n{n}")));
        let refs: Vec<&str> = csv_headers.iter().map(|s| s.as_str()).collect();
        write_csv(Path::new(path), &refs, &c_rows).expect("write table2 csv");
        let _ = writeln!(summary, "TABLE II — {label}\n{}", render(&t2_headers, &t_rows));
    }

    // ---- §IV-C correctness cross-checks --------------------------------
    eprintln!("[3/5] correctness cross-checks…");
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut max_spread = 0.0f64;
    for seed in 0..5u64 {
        let s = PaperDgp.sample(400, 9_000 + seed);
        let bw: Vec<f64> = Program::all()
            .iter()
            .map(|&p| run_program(p, &s.x, &s.y, 50, nmulti).expect("program run").bandwidth)
            .collect();
        let (lo, hi) = bw.iter().fold((f64::MAX, f64::MIN), |(l, h), &b| (l.min(b), h.max(b)));
        max_spread = max_spread.max(hi - lo);
        total += 1;
        if hi - lo < 0.1 {
            agree += 1;
        }
    }
    let _ = writeln!(
        summary,
        "Correctness (§IV-C): all eight programs (incl. the bagged selector, which\n\
         degenerates to B redundant prefix selections at n ≤ 2,000) produced bandwidths\n\
         within 0.1 of each other on {agree}/{total} seeds (max spread {max_spread:.4}); the\n\
         grid programs agree to within one grid step by construction (see integration tests).\n"
    );

    // ---- memory ceilings ------------------------------------------------
    eprintln!("[4/5] memory ceilings…");
    let spec = kcv_gpu_sim::DeviceSpec::tesla_s10();
    let four_gb = spec.global_mem_bytes;
    let wall_n = (1_000..40_000)
        .step_by(1_000)
        .find(|&n| kcv_gpu::required_device_bytes(n, 50) > four_gb)
        .unwrap_or(0);
    let _ = writeln!(
        summary,
        "Memory wall: requirement first exceeds 4 GB at n = {wall_n} (paper: >20,000).\n\
         Constant cache: 2,048 f32 bandwidths fit, 2,049 rejected (paper: 2,048 max).\n"
    );

    // ---- per-strategy observability report ------------------------------
    eprintln!("[5/5] per-strategy observability report…");
    let report_n = max_n.clamp(50, 1_000);
    let report = collect_report(ReportConfig { n: report_n, k: 50, seed: 42 })
        .expect("collect BENCH report");
    let _ = writeln!(
        summary,
        "Observability (n = {report_n}, k = 50, metrics {}): per-strategy wall\n\
         times and op-counters written to results/BENCH_report.json.\n",
        if kcv_obs::enabled() { "ON" } else { "OFF — rebuild with --features metrics for counters" }
    );

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_report.json", report.to_json()).expect("write BENCH report");
    std::fs::write("results/summary.txt", &summary).expect("write summary");
    println!("{summary}");
    eprintln!(
        "wrote results/summary.txt, results/table1.csv, results/table2a.csv, \
         results/table2b_simulated.csv, results/BENCH_report.json"
    );
}
