//! End-to-end `d = 2` smoke of the "Multi fast" program for `make verify`:
//! runs the fast full-grid selector on a small paper-DGP-derived bivariate
//! sample, cross-checks the optimum against the naive product-kernel
//! oracle on the identical lattice, and exits non-zero on any
//! disagreement. Fast — a few hundred observations — so the verify chain
//! always exercises the multivariate engine through the same program
//! surface the sweeps use, not just through unit tests.
//!
//! Usage: `cargo run -p kcv-bench --release --bin multi_smoke --
//! [--n N] [--k K]`

use kcv_bench::programs::{multi_dataset, multi_grid_side, multi_grids, run_program, Program};
use kcv_bench::table::arg_parse;
use kcv_core::kernels::Epanechnikov;
use kcv_data::{Dgp, PaperDgp};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = arg_parse(&args, "--n", 400usize);
    let k = arg_parse(&args, "--k", 25usize);
    let side = multi_grid_side(k);
    eprintln!("multi smoke: n = {n}, k = {k} → {side}×{side} lattice…");

    let s = PaperDgp.sample(n, 42);
    let fast = match run_program(Program::MultiFast, &s.x, &s.y, k, 1) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("multi smoke: Multi fast program failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (columns, y2) = multi_dataset(&s.x, &s.y);
    let grids = match multi_grids(&columns, side) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("multi smoke: grid resolution failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let naive =
        match kcv_core::multi::select_full_grid_naive(&columns, &y2, &Epanechnikov, &grids) {
            Ok(sel) => sel,
            Err(e) => {
                eprintln!("multi smoke: naive oracle failed: {e}");
                return ExitCode::FAILURE;
            }
        };

    println!(
        "multi smoke: fast  h1 = {:.6}, CV = {:.9}, {:.1} ms",
        fast.bandwidth,
        fast.score,
        fast.wall_seconds * 1e3
    );
    println!(
        "multi smoke: naive h  = ({:.6}, {:.6}), CV = {:.9}",
        naive.bandwidths[0], naive.bandwidths[1], naive.score
    );

    let same_optimum = fast.bandwidth == naive.bandwidths[0];
    let score_close = (fast.score - naive.score).abs() <= 1e-9 * naive.score.abs().max(1e-12);
    if same_optimum && score_close && fast.evaluations == side * side {
        println!("multi smoke: fast engine reproduces the naive full-grid oracle");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "multi smoke: FAIL — optimum match {same_optimum}, score match {score_close}, \
             evaluations {} (expected {})",
            fast.evaluations,
            side * side
        );
        ExitCode::FAILURE
    }
}
