//! Streaming replay benchmark: the sliding-window incremental engine vs
//! recompute-from-scratch.
//!
//! Replays `--arrivals` paper-DGP observations (default 10⁵) into a
//! `--window`-capacity [`SlidingWindowSelector`] (default 10⁴, oldest
//! evicted first) and re-selects the bandwidth every `cadence` arrivals
//! over a k-point log grid, for a sweep of cadences around the
//! `--cadence` headline. Every row is compared against the same policy a
//! batch-only codebase would have to run: a fresh `cv_profile_prefix`
//! profile over the current window at *every arrival*.
//!
//! ## The baseline is sampled, not fully run
//!
//! Recomputing 10⁵ prefix profiles of 10⁴ observations each would take
//! hours, so the baseline is measured at `--baseline-samples` (default
//! 40) evenly spaced arrival indices and extrapolated linearly to the
//! per-arrival total — prefix-profile cost depends only on the window
//! size, which is constant once the window fills, so the extrapolation
//! is faithful and is logged (never silently assumed). Because the
//! stream is contiguous, the slice `x[t−w..t]` holds exactly the
//! multiset the window would hold at arrival `t`.
//!
//! The amortisation curve this produces is the tentpole's pitch: one
//! incremental re-selection costs a small constant factor more than one
//! fresh prefix profile on the same window (the Fenwick log-factor per
//! cell), so the speedup over per-arrival recompute grows roughly
//! linearly in the cadence.
//!
//! Outputs:
//!
//! * `results/streaming.csv` — one row per cadence (CI uploads this);
//! * stdout — the rendered table plus the perf-gate-19 check: at every
//!   cadence ≥ 64 the replay must beat per-arrival recompute by ≥ 10×
//!   and select bit-identically on the final window.
//!
//! Exits non-zero if the check fails.
//!
//! Usage: `cargo run --release -p kcv-bench --bin streaming --
//! [--arrivals 100000] [--window 10000] [--k 25] [--cadence 500]
//! [--seed 42] [--baseline-samples 40]`

use kcv_bench::table::{arg_parse, fmt_seconds, render, write_csv};
use kcv_core::cv::{cv_profile_prefix, SlidingWindowSelector};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_data::{Dgp, PaperDgp};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Gate 19's wall-clock floor: the replay must beat per-arrival
/// recompute by at least this factor at every swept cadence ≥ 64.
const SPEEDUP_FLOOR: f64 = 10.0;

/// One swept cadence's measurements.
struct CadenceRow {
    cadence: usize,
    reselects: usize,
    wall_seconds: f64,
    final_bandwidth: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arrivals = arg_parse(&args, "--arrivals", 100_000usize);
    let window = arg_parse(&args, "--window", 10_000usize).max(2).min(arrivals);
    let k = arg_parse(&args, "--k", 25usize);
    let headline = arg_parse(&args, "--cadence", 500usize).max(1);
    let seed = arg_parse(&args, "--seed", 42u64);
    let baseline_samples = arg_parse(&args, "--baseline-samples", 40usize).max(2);

    eprintln!("streaming: sampling {arrivals} paper-DGP arrivals (seed {seed})…");
    let s = PaperDgp.sample(arrivals, seed);

    let (lo, hi) = s
        .x
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    let domain = hi - lo;
    // Log-spaced grid, as everywhere the window is large: a linear
    // paper-default grid would clamp the optimum at its `domain/k` floor.
    let grid = match BandwidthGrid::log(domain * 1e-3, domain * 0.3, k) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("streaming: log grid failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // ---- sampled recompute-from-scratch baseline ------------------------
    // Sampling starts once the window has filled: below that, tiny windows
    // can have no valid bandwidth at all, and the profile cost is still
    // ramping. Charging the ramp-up arrivals (< first, at most window/
    // arrivals of the stream) at the full-window rate overstates the
    // baseline by at most that fraction — logged here, never hidden.
    let first = window.min(arrivals);
    let mut points: Vec<usize> = (0..baseline_samples)
        .map(|i| first + (arrivals - first) * i / (baseline_samples - 1))
        .collect();
    points.dedup();
    eprintln!(
        "streaming: baseline — fresh prefix profile at {} sampled arrivals in \
         [{first}, {arrivals}], extrapolated ×{arrivals} to the per-arrival \
         policy (window cost is constant once the window fills; the {first} \
         ramp-up arrivals are charged at the full-window rate, an overestimate \
         of at most {:.0}%)…",
        points.len(),
        100.0 * first as f64 / arrivals as f64,
    );
    let mut recompute_bandwidth = f64::NAN;
    let start = Instant::now();
    for &t in &points {
        let w = window.min(t);
        let profile = match cv_profile_prefix(&s.x[t - w..t], &s.y[t - w..t], &grid, &Epanechnikov)
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("streaming: baseline profile failed at arrival {t}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match profile.argmin() {
            Ok(opt) => recompute_bandwidth = opt.bandwidth,
            Err(e) => {
                eprintln!("streaming: baseline argmin failed at arrival {t}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let recompute_wall_seconds =
        start.elapsed().as_secs_f64() / points.len() as f64 * arrivals as f64;

    // ---- cadence sweep ---------------------------------------------------
    let mut cadences: Vec<usize> =
        [headline / 2, headline, headline * 2, headline * 4].into();
    cadences.retain(|&c| c >= 1);
    cadences.sort_unstable();
    cadences.dedup();

    let mut rows: Vec<CadenceRow> = Vec::new();
    for &cadence in &cadences {
        eprintln!("streaming: replay at cadence {cadence}…");
        let mut sel =
            match SlidingWindowSelector::new(Epanechnikov, grid.clone(), window, cadence) {
                Ok(sel) => sel,
                Err(e) => {
                    eprintln!("streaming: bad window/cadence configuration: {e}");
                    return ExitCode::FAILURE;
                }
            };
        let mut reselects = 0usize;
        let start = Instant::now();
        for (&xi, &yi) in s.x.iter().zip(&s.y) {
            match sel.push(xi, yi) {
                Ok(opt) => reselects += usize::from(opt.is_some()),
                Err(e) => {
                    eprintln!("streaming: push failed at cadence {cadence}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        // Force a final pass so every cadence is compared on the identical
        // final window.
        let final_opt = match sel.reselect_now() {
            Ok(o) => o,
            Err(e) => {
                eprintln!("streaming: final reselect failed at cadence {cadence}: {e}");
                return ExitCode::FAILURE;
            }
        };
        reselects += 1;
        rows.push(CadenceRow {
            cadence,
            reselects,
            wall_seconds: start.elapsed().as_secs_f64(),
            final_bandwidth: final_opt.bandwidth,
        });
    }

    // ---- artifacts -------------------------------------------------------
    let csv_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cadence as f64,
                r.reselects as f64,
                r.wall_seconds,
                recompute_wall_seconds,
                recompute_wall_seconds / r.wall_seconds,
                r.final_bandwidth,
                recompute_bandwidth,
            ]
        })
        .collect();
    if let Err(e) = write_csv(
        Path::new("results/streaming.csv"),
        &[
            "cadence",
            "reselects",
            "wall_seconds",
            "recompute_wall_seconds",
            "speedup",
            "final_bandwidth",
            "recompute_bandwidth",
        ],
        &csv_rows,
    ) {
        eprintln!("streaming: cannot write results/streaming.csv: {e}");
        return ExitCode::FAILURE;
    }

    // ---- table -----------------------------------------------------------
    let headers: Vec<String> = ["cadence", "reselects", "wall", "recompute wall", "speedup", "final h"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let t_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cadence.to_string(),
                r.reselects.to_string(),
                fmt_seconds(r.wall_seconds),
                fmt_seconds(recompute_wall_seconds),
                format!("{:.1}x", recompute_wall_seconds / r.wall_seconds),
                format!("{:.6}", r.final_bandwidth),
            ]
        })
        .collect();
    println!(
        "STREAMING REPLAY (A = {arrivals}, W = {window}, k = {k}, log grid, \
         baseline sampled at {} points)\n{}",
        points.len(),
        render(&headers, &t_rows)
    );

    // ---- acceptance check (gate 19's criterion, across the sweep) --------
    let mut ok = true;
    for r in &rows {
        if r.cadence < 64 {
            println!(
                "streaming: info — cadence {} below the 64-arrival gate threshold, not gated",
                r.cadence
            );
            continue;
        }
        let speedup = recompute_wall_seconds / r.wall_seconds;
        let identical = r.final_bandwidth.to_bits() == recompute_bandwidth.to_bits();
        let pass = speedup >= SPEEDUP_FLOOR && identical;
        println!(
            "streaming: {} — cadence {}: {speedup:.1}x vs per-arrival recompute \
             (floor {SPEEDUP_FLOOR}x); final h = {:.6} vs recompute h = {:.6} ({})",
            if pass { "PASS" } else { "FAIL" },
            r.cadence,
            r.final_bandwidth,
            recompute_bandwidth,
            if identical { "bit-identical" } else { "DIVERGED" },
        );
        ok &= pass;
    }

    if ok {
        println!("streaming: all checks hold; wrote results/streaming.csv");
        ExitCode::SUCCESS
    } else {
        println!("streaming: acceptance check(s) failed");
        ExitCode::FAILURE
    }
}
