//! Reproduces **Figure 1 — run times by program and sample size** as an
//! ASCII log-log chart plus a CSV series file.
//!
//! Usage: `cargo run -p kcv-bench --release --bin figure1 -- [--max-n N]
//! [--reps R] [--k K] [--nmulti M] [--out results/figure1.csv]`

use kcv_bench::chart::{render_loglog, Series};
use kcv_bench::programs::Program;
use kcv_bench::sweep::figure1_sweep;
use kcv_bench::table::{arg_parse, arg_value, write_csv};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_n = arg_parse(&args, "--max-n", 5_000usize);
    let reps = arg_parse(&args, "--reps", 3usize);
    let k = arg_parse(&args, "--k", 50usize);
    let nmulti = arg_parse(&args, "--nmulti", 2usize);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/figure1.csv".into());

    eprintln!("Figure 1 sweep: n ≤ {max_n}, k = {k}, {reps} reps, nmulti = {nmulti}");
    let rows = figure1_sweep(max_n, k, reps, nmulti);

    let mut series = Vec::new();
    let marks = [('r', Program::RacineHayfield), ('m', Program::MulticoreR),
                 ('s', Program::SequentialC), ('c', Program::MergedC),
                 ('p', Program::PrefixC), ('g', Program::CudaGpu),
                 ('w', Program::WindowedGpu), ('b', Program::Bagged),
                 ('f', Program::MultiFast)];
    for (mark, program) in marks {
        let points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.program == program)
            .map(|r| (r.n as f64, r.wall_seconds.max(1e-4)))
            .collect();
        series.push(Series { label: format!("{} (wall)", program.label()), mark, points });
    }
    // The simulated-GPU series: what the cost model says the Tesla takes.
    for (mark, program, label) in [
        ('G', Program::CudaGpu, "CUDA on GPU (simulated device time)"),
        ('W', Program::WindowedGpu, "Windowed GPU (simulated device time)"),
    ] {
        let sim_points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.program == program)
            .filter_map(|r| r.simulated_seconds.map(|s| (r.n as f64, s.max(1e-4))))
            .collect();
        series.push(Series { label: label.into(), mark, points: sim_points });
    }

    println!("\nFIGURE 1 (measured) — RUN TIMES BY PROGRAM AND SAMPLE SIZE\n");
    println!("{}", render_loglog(&series, 72, 24));

    let mut csv_rows = Vec::new();
    for r in &rows {
        csv_rows.push(vec![
            r.n as f64,
            match r.program {
                Program::RacineHayfield => 1.0,
                Program::MulticoreR => 2.0,
                Program::SequentialC => 3.0,
                Program::CudaGpu => 4.0,
                // Beyond the paper's four program codes.
                Program::MergedC => 5.0,
                Program::PrefixC => 6.0,
                Program::WindowedGpu => 7.0,
                Program::Bagged => 8.0,
                Program::MultiFast => 9.0,
                Program::Streaming => 10.0,
            },
            r.wall_seconds,
            r.simulated_seconds.unwrap_or(f64::NAN),
            r.bandwidth,
        ]);
    }
    let path = PathBuf::from(out);
    write_csv(&path, &["n", "program", "wall_seconds", "simulated_seconds", "bandwidth"], &csv_rows)
        .expect("write CSV");
    eprintln!("wrote {}", path.display());
}
