//! Reproduces **Table I — run times by program and sample size**.
//!
//! Usage: `cargo run -p kcv-bench --release --bin table1 -- [--max-n N]
//! [--reps R] [--k K] [--nmulti M] [--out results/table1.csv]`
//!
//! Defaults keep the run tractable on a laptop (`--max-n 5000`); pass
//! `--max-n 20000 --reps 5` for the paper's full protocol.

use kcv_bench::programs::Program;
use kcv_bench::sweep::{figure1_sweep, PAPER_TABLE1};
use kcv_bench::table::{arg_parse, arg_value, fmt_seconds, render, write_csv};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_n = arg_parse(&args, "--max-n", 5_000usize);
    let reps = arg_parse(&args, "--reps", 3usize);
    let k = arg_parse(&args, "--k", 50usize);
    let nmulti = arg_parse(&args, "--nmulti", 2usize);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/table1.csv".into());

    eprintln!(
        "Table I sweep: n ≤ {max_n}, k = {k}, {reps} reps, nmulti = {nmulti} \
         (wall-clock; GPU column also reports simulated Tesla-S10 seconds)"
    );
    let rows = figure1_sweep(max_n, k, reps, nmulti);

    let headers: Vec<String> = vec![
        "Sample Size".into(),
        "Racine & Hayfield".into(),
        "Multicore R".into(),
        "Sequential C".into(),
        "CUDA wall".into(),
        "CUDA simulated".into(),
    ];
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<f64>> = Vec::new();
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = rows.iter().map(|r| r.n).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for &n in &sizes {
        let get = |p: Program| rows.iter().find(|r| r.n == n && r.program == p);
        let cell = |p: Program| {
            get(p).map_or_else(|| "-".to_string(), |r| fmt_seconds(r.wall_seconds))
        };
        let sim = get(Program::CudaGpu)
            .and_then(|r| r.simulated_seconds)
            .map_or_else(|| "-".to_string(), fmt_seconds);
        table_rows.push(vec![
            n.to_string(),
            cell(Program::RacineHayfield),
            cell(Program::MulticoreR),
            cell(Program::SequentialC),
            cell(Program::CudaGpu),
            sim,
        ]);
        let wall = |p: Program| get(p).map_or(f64::NAN, |r| r.wall_seconds);
        csv_rows.push(vec![
            n as f64,
            wall(Program::RacineHayfield),
            wall(Program::MulticoreR),
            wall(Program::SequentialC),
            wall(Program::CudaGpu),
            get(Program::CudaGpu).and_then(|r| r.simulated_seconds).unwrap_or(f64::NAN),
        ]);
    }

    println!("\nTABLE I (measured) — RUN TIMES BY PROGRAM AND SAMPLE SIZE (seconds)\n");
    println!("{}", render(&headers, &table_rows));

    println!("TABLE I (paper, for comparison)\n");
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE1
        .iter()
        .map(|&(n, a, b, c, d)| {
            vec![
                n.to_string(),
                fmt_seconds(a),
                fmt_seconds(b),
                fmt_seconds(c),
                fmt_seconds(d),
                "-".into(),
            ]
        })
        .collect();
    println!("{}", render(&headers, &paper_rows));

    let path = PathBuf::from(out);
    write_csv(
        &path,
        &["n", "racine_hayfield", "multicore_r", "sequential_c", "cuda_wall", "cuda_simulated"],
        &csv_rows,
    )
    .expect("write CSV");
    eprintln!("wrote {}", path.display());
}
