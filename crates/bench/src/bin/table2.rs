//! Reproduces **Table II — run times by number of bandwidths calculated**:
//! panel A (sequential sorted grid search), panel B (the GPU program), and
//! panel W (beyond the paper: the O(n)-memory windowed GPU program).
//!
//! Usage: `cargo run -p kcv-bench --release --bin table2 -- [--panel
//! a|b|w|both] [--max-n N] [--reps R]`

use kcv_bench::programs::Program;
use kcv_bench::sweep::{table2_sweep, Table2Cell, TABLE2_BANDWIDTHS, TABLE2_SIZES};
use kcv_bench::table::{arg_parse, arg_value, fmt_seconds, render, write_csv};
use std::path::PathBuf;

fn panel(cells: &[Table2Cell], max_n: usize, simulated: bool) -> (String, Vec<Vec<f64>>) {
    let sizes: Vec<usize> = TABLE2_SIZES.iter().copied().filter(|&n| n <= max_n).collect();
    let mut headers: Vec<String> = vec!["Bandwidths".into()];
    headers.extend(sizes.iter().map(|n| n.to_string()));
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &k in &TABLE2_BANDWIDTHS {
        let mut row = vec![k.to_string()];
        let mut csv_row = vec![k as f64];
        for &n in &sizes {
            let cell = cells.iter().find(|c| c.n == n && c.k == k);
            let value = cell.map(|c| {
                if simulated {
                    c.simulated_seconds.unwrap_or(f64::NAN)
                } else {
                    c.wall_seconds
                }
            });
            row.push(value.map_or("".into(), fmt_seconds));
            csv_row.push(value.unwrap_or(f64::NAN));
        }
        rows.push(row);
        csv.push(csv_row);
    }
    (render(&headers, &rows), csv)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = arg_value(&args, "--panel").unwrap_or_else(|| "both".into());
    let max_n = arg_parse(&args, "--max-n", 5_000usize);
    let reps = arg_parse(&args, "--reps", 1usize);
    let sizes: Vec<usize> = TABLE2_SIZES.iter().copied().filter(|&n| n <= max_n).collect();
    let mut csv_headers: Vec<String> = vec!["bandwidths".into()];
    csv_headers.extend(sizes.iter().map(|n| format!("n{n}")));
    let csv_header_refs: Vec<&str> = csv_headers.iter().map(|s| s.as_str()).collect();

    if which == "a" || which == "both" {
        eprintln!("Table II panel A (Sequential C), n ≤ {max_n}, {reps} reps");
        let cells = table2_sweep(Program::SequentialC, max_n, reps);
        let (text, csv) = panel(&cells, max_n, false);
        println!("\nTABLE II — PANEL A: SEQUENTIAL PROGRAM (wall seconds)\n");
        println!("{text}");
        write_csv(&PathBuf::from("results/table2a.csv"), &csv_header_refs, &csv)
            .expect("write CSV");
        eprintln!("wrote results/table2a.csv");
    }
    if which == "b" || which == "both" {
        eprintln!("Table II panel B (CUDA on simulated GPU), n ≤ {max_n}, {reps} reps");
        let cells = table2_sweep(Program::CudaGpu, max_n, reps);
        let (text_sim, csv_sim) = panel(&cells, max_n, true);
        let (text_wall, csv_wall) = panel(&cells, max_n, false);
        println!("\nTABLE II — PANEL B: GPU PROGRAM (simulated Tesla-S10 seconds)\n");
        println!("{text_sim}");
        println!("TABLE II — PANEL B': GPU PROGRAM (host wall seconds for the simulation)\n");
        println!("{text_wall}");
        write_csv(&PathBuf::from("results/table2b_simulated.csv"), &csv_header_refs, &csv_sim)
            .expect("write CSV");
        write_csv(&PathBuf::from("results/table2b_wall.csv"), &csv_header_refs, &csv_wall)
            .expect("write CSV");
        eprintln!("wrote results/table2b_simulated.csv, results/table2b_wall.csv");
    }
    if which == "w" || which == "both" {
        eprintln!("Table II panel W (windowed GPU), n ≤ {max_n}, {reps} reps");
        let cells = table2_sweep(Program::WindowedGpu, max_n, reps);
        let (text_sim, csv_sim) = panel(&cells, max_n, true);
        println!(
            "\nTABLE II — PANEL W: WINDOWED GPU PROGRAM (simulated Tesla-S10 \
             seconds, O(n·(deg+2)+k) device bytes)\n"
        );
        println!("{text_sim}");
        write_csv(&PathBuf::from("results/table2w_simulated.csv"), &csv_header_refs, &csv_sim)
            .expect("write CSV");
        eprintln!("wrote results/table2w_simulated.csv");
    }
}
