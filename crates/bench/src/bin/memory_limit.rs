//! Reproduces the paper's two resource-ceiling claims, then breaks the
//! first one with the windowed program:
//!
//! 1. §V: the GPU program "cannot run at sample sizes greater than 20,000,
//!    because the memory requirements become prohibitive" — the two n×n
//!    f32 matrices (plus the n×k intermediates) exhaust the Tesla's 4 GB.
//!    With this port's allocation set the wall falls between n = 23,000 and
//!    n = 24,000; the paper's extra intermediates put theirs at 20,000.
//! 2. §IV-A: "no more than 2,048 bandwidth values can be considered" —
//!    the 8 KB constant-cache working set.
//! 3. Beyond the paper: the windowed program's O(n·(deg+2) + k) footprint
//!    never approaches the ceiling — this binary *runs* it (not a dry-run
//!    check) at every size the classic program refuses, up to n = 100,000
//!    on the same 4 GB device, and verifies the selected bandwidth against
//!    the f64 CPU prefix-moment reference at each size.
//!
//! Usage: `cargo run -p kcv-bench --release --bin memory_limit -- [--allocate]
//! [--max-windowed-n N]` (by default the classic capacity check is a dry
//! run; `--allocate` performs the real simulated-device allocations, which
//! back onto host RAM. `--max-windowed-n` caps the windowed demonstration,
//! default 100,000.)

use kcv_bench::table::{arg_flag, arg_parse, render};
use kcv_core::cv::cv_profile_prefix;
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_data::{Dgp, PaperDgp};
use kcv_gpu::{required_device_bytes, select_bandwidth_gpu_windowed, GpuConfig};
use kcv_gpu_sim::{ConstantMemory, DeviceSpec, MemoryPool};

fn allocation_plan(n: usize, k: usize) -> Vec<usize> {
    let f = std::mem::size_of::<f32>();
    vec![
        n * f,     // x
        n * f,     // y
        n * n * f, // |X_i − X_j| matrix
        n * n * f, // Y matrix
        n * k * f, // numerator sums
        n * k * f, // denominator sums
        n * k * f, // squared residuals (bandwidth-major, the §IV-B index switch)
        k * f,     // CV scores
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let allocate = arg_flag(&args, "--allocate");
    let max_windowed_n = arg_parse(&args, "--max-windowed-n", 100_000usize);
    let spec = DeviceSpec::tesla_s10();
    let k = 50usize;

    println!(
        "Device: {} ({} B global memory, {} B constant cache)\n",
        spec.name, spec.global_mem_bytes, spec.constant_cache_bytes
    );

    let headers: Vec<String> = vec![
        "n".into(),
        "required bytes (k=50)".into(),
        "fits 4 GB?".into(),
        if allocate { "real allocation".into() } else { "dry-run check".into() },
    ];
    let mut rows = Vec::new();
    for n in [1_000usize, 5_000, 10_000, 20_000, 23_000, 24_000, 25_000, 30_000] {
        let required = required_device_bytes(n, k);
        let fits = required <= spec.global_mem_bytes;
        let pool = MemoryPool::for_device(&spec);
        let outcome = if allocate {
            let attempt = (|| -> kcv_gpu_sim::Result<()> {
                let mut held = Vec::new();
                for bytes in allocation_plan(n, k) {
                    held.push(pool.alloc::<u8>(bytes)?);
                }
                Ok(())
            })();
            match attempt {
                Ok(()) => "allocated OK".to_string(),
                Err(e) => format!("FAILED: {e}"),
            }
        } else {
            match pool.check_fit(&allocation_plan(n, k)) {
                Ok(()) => "fits".to_string(),
                Err(e) => format!("FAILS: {e}"),
            }
        };
        rows.push(vec![
            n.to_string(),
            required.to_string(),
            if fits { "yes" } else { "NO" }.to_string(),
            outcome,
        ]);
    }
    println!("{}", render(&headers, &rows));
    println!(
        "Paper claim : the CUDA program runs at n = 20,000 and cannot allocate beyond it.\n\
         Measured    : this port's allocation set crosses the 4 GB ceiling between\n\
                       n = 23,000 and n = 24,000 (the paper's additional intermediate\n\
                       objects account for its earlier wall); the dominating term is\n\
                       the same two n×n f32 matrices the paper names.\n"
    );

    println!("Constant-memory ceiling ({} B cache working set):", spec.constant_cache_bytes);
    for k in [2_000usize, 2_048, 2_049, 4_096] {
        let values = vec![0.0f32; k];
        match ConstantMemory::new(&spec, &values) {
            Ok(_) => println!("  k = {k}: fits"),
            Err(e) => println!("  k = {k}: REJECTED ({e})"),
        }
    }
    println!("Paper claim : no more than 2,048 bandwidth values can be considered. Reproduced.");

    // --- beyond the wall: the windowed program, actually executed --------
    println!(
        "\nWindowed program on the same 4 GB device (REAL runs, k = {k}, not\n\
         dry-run checks — each row executes the full simulated pipeline and\n\
         compares the selected bandwidth against the f64 CPU prefix-moment\n\
         reference):\n"
    );
    let headers: Vec<String> = vec![
        "n".into(),
        "classic bytes".into(),
        "windowed peak (measured)".into(),
        "bandwidth".into(),
        "vs CPU f64 reference".into(),
    ];
    let mut rows = Vec::new();
    let config = GpuConfig::default();
    for n in [1_000usize, 5_000, 10_000, 20_000, 23_000, 24_000, 25_000, 30_000, 50_000, 100_000]
    {
        if n > max_windowed_n {
            continue;
        }
        let sample = PaperDgp.sample(n, 3_000 + n as u64);
        let grid = BandwidthGrid::paper_default(&sample.x, k).expect("grid");
        let step = grid.step();
        let row = match select_bandwidth_gpu_windowed(&sample.x, &sample.y, &grid, &config) {
            Ok(run) => {
                let reference = cv_profile_prefix(&sample.x, &sample.y, &grid, &Epanechnikov)
                    .expect("CPU reference")
                    .argmin()
                    .expect("argmin")
                    .bandwidth;
                let agrees = (run.bandwidth - reference).abs() <= step + 1e-9;
                vec![
                    n.to_string(),
                    required_device_bytes(n, k).to_string(),
                    run.report.device_bytes_peak.to_string(),
                    format!("{:.6}", run.bandwidth),
                    if agrees {
                        "agrees (within one grid step)".to_string()
                    } else {
                        format!("DISAGREES (CPU selected {reference:.6})")
                    },
                ]
            }
            Err(e) => vec![
                n.to_string(),
                required_device_bytes(n, k).to_string(),
                format!("FAILED: {e}"),
                String::new(),
                String::new(),
            ],
        };
        rows.push(row);
    }
    println!("{}", render(&headers, &rows));
    println!(
        "The classic program's requirement crosses 4 GB between n = 23,000 and\n\
         n = 24,000; the windowed program's measured peak stays linear in n\n\
         (O(n·(deg+2) + k) bytes) and completes n = 100,000 on the same device\n\
         while selecting the same bandwidth as the f64 CPU reference."
    );
}
