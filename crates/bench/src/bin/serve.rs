//! Sharded multi-stream serving benchmark: `kcv_serve::BandwidthService`
//! vs one global lock around a stream map.
//!
//! Replays `--streams` concurrent paper-DGP arrival streams (default 256,
//! each a distinct rotation of one `--arrivals`-long sample, default 10⁴)
//! through an `--shards`-shard [`BandwidthService`] (default 8) and then
//! through the [`GlobalLockService`] baseline on the identical per-stream
//! sequences. Both runs are driven by the same producer-thread pool, so
//! the baseline's lock convoy is measured, not assumed.
//!
//! What separates the two on a machine of any core count is re-selection
//! **conflation**: producers outpace a shard worker whenever a
//! re-selection runs, so arrivals pool in the bounded queues and each
//! drained burst crosses many cadence boundaries — funding *one*
//! `reselect()` where the baseline, re-selecting synchronously under its
//! lock at every boundary, pays one per boundary. On a multi-core host
//! the shards additionally run in parallel; the speedup floor below is
//! set so the check also holds on a single core, where conflation is the
//! whole effect.
//!
//! Outputs:
//!
//! * `results/serve.csv` — one row with the full measurement (CI uploads
//!   this);
//! * stdout — the rendered table (throughput, p50/p99 enqueue-to-select
//!   latency, re-selection counts) plus the perf-gate-22 acceptance
//!   checks: ≥ 4× throughput over the global lock, per-stream final
//!   bandwidths bit-identical to the baseline's, nothing shed, and — on
//!   a `--features metrics` build — zero kernel evaluations service-wide
//!   with coalescing observed.
//!
//! Exits non-zero if any check fails.
//!
//! Usage: `cargo run --release -p kcv-bench --bin serve --
//! [--streams 256] [--arrivals 10000] [--shards 8] [--window 256]
//! [--cadence 250] [--k 64] [--producers 4] [--seed 42]`

use kcv_bench::table::{arg_parse, fmt_seconds, render, write_csv};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_data::{Dgp, PaperDgp};
use kcv_serve::{BandwidthService, GlobalLockService, ServeConfig, StreamId};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Gate 22's wall-clock floor: the sharded service must beat the
/// global-lock baseline by at least this factor.
const SPEEDUP_FLOOR: f64 = 4.0;

/// The arrival fed to stream `s` at position `i`: the shared sample
/// rotated by `41·s`, so every stream carries a distinct sequence while
/// both services still see identical per-stream inputs.
fn arrival(x: &[f64], y: &[f64], s: usize, i: usize) -> (f64, f64) {
    let j = (i + 41 * s) % x.len();
    (x[j], y[j])
}

/// Nanosecond latency percentile over a sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let streams = arg_parse(&args, "--streams", 256usize).max(1);
    let arrivals = arg_parse(&args, "--arrivals", 10_000usize).max(2);
    let shards = arg_parse(&args, "--shards", 8usize).max(1);
    let window = arg_parse(&args, "--window", 256usize).max(2);
    let cadence = arg_parse(&args, "--cadence", 250usize).max(1);
    let k = arg_parse(&args, "--k", 64usize).max(2);
    let producers = arg_parse(&args, "--producers", 4usize).max(1).min(streams);
    let seed = arg_parse(&args, "--seed", 42u64);

    eprintln!("serve: sampling {arrivals} paper-DGP arrivals (seed {seed})…");
    let s = PaperDgp.sample(arrivals, seed);
    let (lo, hi) = s
        .x
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    let domain = hi - lo;
    let grid = match BandwidthGrid::log(domain * 1e-3, domain * 0.3, k) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("serve: log grid failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Queues deep enough that a drained burst spans many cadence
    // boundaries (a Request is ~48 bytes, so 8,192 per shard is still
    // only ~3 MB of buffer service-wide): conflation quality is bounded
    // by burst depth, and burst depth by queue capacity.
    let config = ServeConfig {
        queue_capacity: 8192,
        ..ServeConfig::new(shards, window, cadence)
    };

    // ---- sharded service run --------------------------------------------
    eprintln!(
        "serve: replaying {streams} streams x {arrivals} arrivals through \
         {shards} shards ({producers} producers)…"
    );
    let service = match BandwidthService::new(Epanechnikov, grid.clone(), config.clone()) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("serve: service construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in 0..streams {
        if let Err(e) = service.open(id as StreamId) {
            eprintln!("serve: open({id}) failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        // Producer p owns streams p, p+producers, p+2·producers, … so each
        // stream's arrival order is preserved end to end. Each stream is
        // replayed in one pass — the firehose shape: the producer outruns
        // the shard worker, the queue holds thousands of one stream's
        // arrivals, and every drain hands the worker a burst crossing many
        // cadence boundaries to conflate.
        for p in 0..producers {
            let service = &service;
            let (x, y) = (&s.x, &s.y);
            scope.spawn(move || {
                for id in (p..streams).step_by(producers) {
                    for i in 0..arrivals {
                        let (xi, yi) = arrival(x, y, id, i);
                        service
                            .send_blocking(id as StreamId, xi, yi)
                            .expect("blocking send only fails at shutdown");
                    }
                }
            });
        }
    });
    let report = service.shutdown();
    let wall_seconds = start.elapsed().as_secs_f64();

    // ---- global-lock baseline -------------------------------------------
    eprintln!("serve: global-lock baseline on the identical traffic…");
    let lock = match GlobalLockService::new(Epanechnikov, grid, config) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("serve: baseline construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in 0..streams {
        if let Err(e) = lock.open(id as StreamId) {
            eprintln!("serve: baseline open({id}) failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let lock_start = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let lock = &lock;
            let (x, y) = (&s.x, &s.y);
            scope.spawn(move || {
                for id in (p..streams).step_by(producers) {
                    for i in 0..arrivals {
                        let (xi, yi) = arrival(x, y, id, i);
                        lock.send(id as StreamId, xi, yi)
                            .expect("stream is open and finite data never errors");
                    }
                }
            });
        }
    });
    let lock_outcomes = lock.shutdown();
    let lock_wall_seconds = lock_start.elapsed().as_secs_f64();

    // ---- measurements ----------------------------------------------------
    let total_arrivals = (streams * arrivals) as f64;
    let throughput = total_arrivals / wall_seconds;
    let lock_throughput = total_arrivals / lock_wall_seconds;
    let speedup = lock_wall_seconds / wall_seconds;
    let mut latencies = report.latencies_nanos.clone();
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let reselects: u64 = report.streams.iter().map(|r| r.outcome.reselects).sum();
    let lock_reselects: u64 = lock_outcomes.iter().map(|(_, o)| o.reselects).sum();
    let coalesced = report.metrics.counter("coalesced_arrivals");
    let high_water = report.metrics.counter("queue_high_water");
    let shed = report.metrics.counter("shed_requests");
    let kernel_evals = report.metrics.counter("kernel_evals");

    let headers: Vec<String> = ["service", "wall", "arrivals/s", "p50 lat", "p99 lat", "reselects"]
        .iter()
        .map(|h| h.to_string())
        .collect();
    let t_rows = vec![
        vec![
            format!("sharded ({shards})"),
            fmt_seconds(wall_seconds),
            format!("{throughput:.0}"),
            format!("{:.1} us", p50 as f64 / 1e3),
            format!("{:.1} us", p99 as f64 / 1e3),
            reselects.to_string(),
        ],
        vec![
            "global lock".to_string(),
            fmt_seconds(lock_wall_seconds),
            format!("{lock_throughput:.0}"),
            "-".to_string(),
            "-".to_string(),
            lock_reselects.to_string(),
        ],
    ];
    println!(
        "SHARDED SERVING (S = {streams}, A = {arrivals}, W = {window}, \
         C = {cadence}, k = {k})\n{}",
        render(&headers, &t_rows)
    );
    if kcv_obs::enabled() {
        println!(
            "serve: shard counters — coalesced_arrivals {coalesced}, \
             queue_high_water {high_water}, shed_requests {shed}, \
             kernel_evals {kernel_evals}"
        );
    }

    if let Err(e) = write_csv(
        Path::new("results/serve.csv"),
        &[
            "streams",
            "arrivals_per_stream",
            "shards",
            "window",
            "cadence",
            "wall_seconds",
            "throughput",
            "lock_wall_seconds",
            "lock_throughput",
            "speedup",
            "p50_latency_us",
            "p99_latency_us",
            "reselects",
            "lock_reselects",
            "coalesced_arrivals",
            "queue_high_water",
        ],
        &[vec![
            streams as f64,
            arrivals as f64,
            shards as f64,
            window as f64,
            cadence as f64,
            wall_seconds,
            throughput,
            lock_wall_seconds,
            lock_throughput,
            speedup,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            reselects as f64,
            lock_reselects as f64,
            coalesced as f64,
            high_water as f64,
        ]],
    ) {
        eprintln!("serve: cannot write results/serve.csv: {e}");
        return ExitCode::FAILURE;
    }

    // ---- acceptance checks (gate 22's criteria at bench scale) -----------
    let mut ok = true;

    let pass = speedup >= SPEEDUP_FLOOR;
    println!(
        "serve: {} — {speedup:.1}x vs the global lock (floor {SPEEDUP_FLOOR}x)",
        if pass { "PASS" } else { "FAIL" },
    );
    ok &= pass;

    let mut diverged = 0usize;
    for (served, (oid, expected)) in report.streams.iter().zip(&lock_outcomes) {
        let a = served.outcome.final_optimum.map(|o| o.bandwidth.to_bits());
        let b = expected.final_optimum.map(|o| o.bandwidth.to_bits());
        if served.stream != *oid || a != b {
            diverged += 1;
        }
    }
    let identical = diverged == 0 && report.streams.len() == lock_outcomes.len();
    println!(
        "serve: {} — {} of {} per-stream final bandwidths bit-identical to \
         sequential replay",
        if identical { "PASS" } else { "FAIL" },
        report.streams.len() - diverged,
        report.streams.len(),
    );
    ok &= identical;

    let lossless = shed == 0 && report.unknown_arrivals == 0;
    println!(
        "serve: {} — lossless delivery (shed {shed}, unknown {})",
        if lossless { "PASS" } else { "FAIL" },
        report.unknown_arrivals,
    );
    ok &= lossless;

    if kcv_obs::enabled() {
        let engine = kernel_evals == 0 && coalesced > 0;
        println!(
            "serve: {} — zero kernel evals service-wide ({kernel_evals}) with \
             bursts coalesced ({coalesced})",
            if engine { "PASS" } else { "FAIL" },
        );
        ok &= engine;
    } else {
        println!("serve: info — counters disabled; rebuild with --features metrics to check them");
    }

    if ok {
        println!("serve: all checks hold; wrote results/serve.csv");
        ExitCode::SUCCESS
    } else {
        println!("serve: acceptance check(s) failed");
        ExitCode::FAILURE
    }
}
