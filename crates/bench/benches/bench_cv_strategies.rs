//! Ablation: the paper's central complexity claim. The naive grid search is
//! `O(k·n²)`; the sorted sweep is `O(n² log n)` (k nearly free); the
//! merge-sweep drops the per-observation sort for `O(n log n + n·(n + k))`;
//! the prefix-moment sweep drops the per-neighbour scan too, answering each
//! (obs, bandwidth) cell from global prefix sums in `O(log n + deg²)`; the
//! parallel variants divide the per-observation work across cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcv_core::cv::{
    cv_profile_merged, cv_profile_merged_par, cv_profile_naive, cv_profile_prefix,
    cv_profile_prefix_par, cv_profile_sorted, cv_profile_sorted_par,
};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_data::{Dgp, PaperDgp};
use kcv_gpu::{select_bandwidth_gpu, select_bandwidth_gpu_windowed, GpuConfig};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cv_strategies");
    group.sample_size(10);
    for &n in &[200usize, 500, 1_000, 2_000] {
        let s = PaperDgp.sample(n, 42);
        let grid = BandwidthGrid::paper_default(&s.x, 50).unwrap();
        // The naive search is O(k·n²): keep it off the largest size so the
        // suite stays fast while the sorted-vs-merged contrast at n = 2,000
        // (the acceptance point for the merge-sweep) is measured.
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| cv_profile_naive(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("sorted", n), &n, |b, _| {
            b.iter(|| cv_profile_sorted(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sorted_par", n), &n, |b, _| {
            b.iter(|| cv_profile_sorted_par(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("merged", n), &n, |b, _| {
            b.iter(|| cv_profile_merged(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("merged_par", n), &n, |b, _| {
            b.iter(|| cv_profile_merged_par(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prefix", n), &n, |b, _| {
            b.iter(|| cv_profile_prefix(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prefix_par", n), &n, |b, _| {
            b.iter(|| cv_profile_prefix_par(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
    }
    group.finish();

    // k-scaling at fixed n: naive grows linearly in k, sorted barely moves
    // (the Table II contrast).
    let mut group = c.benchmark_group("cv_k_scaling");
    group.sample_size(10);
    let s = PaperDgp.sample(500, 43);
    for &k in &[5usize, 50, 500] {
        let grid = BandwidthGrid::paper_default(&s.x, k).unwrap();
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            b.iter(|| cv_profile_naive(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sorted", k), &k, |b, _| {
            b.iter(|| cv_profile_sorted(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("merged", k), &k, |b, _| {
            b.iter(|| cv_profile_merged(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prefix", k), &k, |b, _| {
            b.iter(|| cv_profile_prefix(black_box(&s.x), &s.y, &grid, &Epanechnikov).unwrap())
        });
    }
    group.finish();

    // Simulated-GPU programs: the classic O(n²)-memory port vs the windowed
    // O(n·(deg+2)+k) program. Host wall time here measures the simulator,
    // not a device — the interesting axis is that windowed's host cost stays
    // proportional to n·k cells while classic pays for the n×n matrix fill.
    let mut group = c.benchmark_group("gpu_programs");
    group.sample_size(10);
    let config = GpuConfig::default();
    for &n in &[500usize, 2_000] {
        let s = PaperDgp.sample(n, 44);
        let grid = BandwidthGrid::paper_default(&s.x, 50).unwrap();
        group.bench_with_input(BenchmarkId::new("classic", n), &n, |b, _| {
            b.iter(|| select_bandwidth_gpu(black_box(&s.x), &s.y, &grid, &config).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("windowed", n), &n, |b, _| {
            b.iter(|| select_bandwidth_gpu_windowed(black_box(&s.x), &s.y, &grid, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
