//! Ablation: the simulated Harris tree reduction vs a direct host fold
//! (measures simulation overhead, and records the simulated-cycle counts
//! that the device-time claims rest on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcv_gpu_sim::{sum_reduction, CostModel, DeviceSpec};
use std::hint::black_box;

fn bench_reduction(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_s10();
    let cost = CostModel::default();
    let mut group = c.benchmark_group("reduction");
    group.sample_size(20);
    for &n in &[1_000usize, 20_000] {
        let values: Vec<f32> = (0..n).map(|i| (i % 97) as f32 * 0.01).collect();
        group.bench_with_input(BenchmarkId::new("simulated_harris", n), &n, |b, _| {
            b.iter(|| sum_reduction(&spec, &cost, 512, black_box(&values)).unwrap().0)
        });
        group.bench_with_input(BenchmarkId::new("direct_fold", n), &n, |b, _| {
            b.iter(|| black_box(&values).iter().sum::<f32>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
