//! Ablation: the per-thread iterative quicksort against the standard
//! library's sort (which the paper could not use on a GPU).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcv_core::sort::sort_with_aux;
use kcv_core::util::SplitMix64;
use std::hint::black_box;

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    for &n in &[1_000usize, 10_000] {
        let mut rng = SplitMix64::new(7);
        let keys: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let aux: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        group.bench_with_input(BenchmarkId::new("iterative_quicksort", n), &n, |b, _| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut a = aux.clone();
                sort_with_aux(black_box(&mut k), &mut a);
                k
            })
        });
        group.bench_with_input(BenchmarkId::new("std_sort_pairs", n), &n, |b, _| {
            b.iter(|| {
                let mut pairs: Vec<(f64, f64)> =
                    keys.iter().copied().zip(aux.iter().copied()).collect();
                pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
                black_box(pairs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
