//! Ablation: grid search vs numerical optimisation vs rule of thumb —
//! the selector-level view of Table I's Program 1 vs Program 3 contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcv_core::kernels::Epanechnikov;
use kcv_core::select::{
    BandwidthSelector, GridSpec, NumericCvSelector, NumericMethod, Rule, RuleOfThumbSelector,
    SortedGridSearch,
};
use kcv_data::{Dgp, PaperDgp};
use std::hint::black_box;

fn bench_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("selectors");
    group.sample_size(10);
    for &n in &[200usize, 1_000] {
        let s = PaperDgp.sample(n, 44);
        let grid = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50));
        group.bench_with_input(BenchmarkId::new("sorted_grid_50", n), &n, |b, _| {
            b.iter(|| grid.select(black_box(&s.x), &s.y).unwrap().bandwidth)
        });
        let numeric =
            NumericCvSelector::new(Epanechnikov, NumericMethod::NelderMead { restarts: 2 });
        group.bench_with_input(BenchmarkId::new("numeric_nm2", n), &n, |b, _| {
            b.iter(|| numeric.select(black_box(&s.x), &s.y).unwrap().bandwidth)
        });
        let rot = RuleOfThumbSelector::new(Epanechnikov, Rule::Silverman);
        group.bench_with_input(BenchmarkId::new("rule_of_thumb", n), &n, |b, _| {
            b.iter(|| rot.select(black_box(&s.x), &s.y).unwrap().bandwidth)
        });
        // The k-NN analogue: CV over 50 neighbour counts via prefix sums.
        group.bench_with_input(BenchmarkId::new("knn_cv_50", n), &n, |b, _| {
            b.iter(|| {
                kcv_core::estimate::knn_cv_profile(black_box(&s.x), &s.y, 50)
                    .unwrap()
                    .argmin()
                    .unwrap()
                    .0
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
