//! Ablation: sweep cost per kernel — higher polynomial degree means more
//! running power sums per absorbed neighbour.

use criterion::{criterion_group, criterion_main, Criterion};
use kcv_core::cv::cv_profile_sorted;
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::{Epanechnikov, Quartic, Triangular, Triweight, Uniform};
use kcv_data::{Dgp, PaperDgp};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let s = PaperDgp.sample(500, 45);
    let grid = BandwidthGrid::paper_default(&s.x, 50).unwrap();
    let mut group = c.benchmark_group("kernels_sorted_sweep");
    group.sample_size(20);
    macro_rules! bench {
        ($name:literal, $k:expr) => {
            group.bench_function($name, |b| {
                b.iter(|| cv_profile_sorted(black_box(&s.x), &s.y, &grid, &$k).unwrap())
            });
        };
    }
    bench!("uniform_deg0", Uniform);
    bench!("triangular_deg1", Triangular);
    bench!("epanechnikov_deg2", Epanechnikov);
    bench!("quartic_deg4", Quartic);
    bench!("triweight_deg6", Triweight);
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
