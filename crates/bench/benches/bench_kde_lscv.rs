//! Ablation for the KDE extension: sorted-sweep LSCV vs the naive double
//! sum (the paper's trick carried over to density estimation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcv_core::density::{lscv_profile_naive, lscv_profile_sorted};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::{Epanechnikov, EpanechnikovConvolution};
use kcv_data::{Dgp, PaperDgp};
use std::hint::black_box;

fn bench_lscv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde_lscv");
    group.sample_size(10);
    for &n in &[200usize, 1_000] {
        let s = PaperDgp.sample(n, 46);
        let grid = BandwidthGrid::paper_default(&s.x, 50).unwrap();
        group.bench_with_input(BenchmarkId::new("sorted", n), &n, |b, _| {
            b.iter(|| {
                lscv_profile_sorted(
                    black_box(&s.x),
                    &grid,
                    &Epanechnikov,
                    &EpanechnikovConvolution,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                lscv_profile_naive(
                    black_box(&s.x),
                    &grid,
                    &Epanechnikov,
                    &EpanechnikovConvolution,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lscv);
criterion_main!(benches);
