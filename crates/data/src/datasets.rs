//! Canned example datasets, generated deterministically.
//!
//! Real survey microdata cannot be redistributed with the repository, so
//! these are *synthetic lookalikes* of datasets classic in the
//! nonparametric-econometrics literature (the np package ships the real
//! ones): plausible marginals and conditional shapes, fixed seeds, small
//! sizes. They exist so examples and docs can speak in applied terms.

use crate::dgp::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A cps71-style dataset: log wage against age for prime-age workers
/// (n = 205, like the original Canadian cross-section). The conditional
/// mean rises steeply through the twenties, plateaus in middle age, and
/// dips toward retirement — the canonical kernel-regression illustration.
pub fn cps71_like() -> Sample {
    let mut rng = StdRng::seed_from_u64(1971);
    let n = 205;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let age = 21.0 + 44.0 * rng.random::<f64>(); // 21–65
        let peak = 13.2;
        let curve = peak - 0.4 * ((age - 47.0) / 10.0).powi(2) - 0.6 * (-((age - 21.0) / 6.0)).exp();
        let wage = curve + 0.45 * gaussian(&mut rng);
        x.push(age);
        y.push(wage);
    }
    Sample { x, y }
}

/// A motorcycle-style dataset: head acceleration against time after impact
/// (n = 133, like Silverman's motorcycle data) — sharply varying curvature
/// and heteroskedastic noise, a classic stress test for fixed bandwidths.
pub fn motorcycle_like() -> Sample {
    let mut rng = StdRng::seed_from_u64(1985);
    let n = 133;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let t = 60.0 * rng.random::<f64>(); // milliseconds
        let mean = if t < 14.0 {
            0.0
        } else {
            // Damped oscillation after impact.
            -120.0 * (-(t - 14.0) / 12.0).exp() * ((t - 14.0) / 5.5).sin()
        };
        let noise_sd = if t < 14.0 { 3.0 } else { 18.0 };
        x.push(t);
        y.push(mean + noise_sd * gaussian(&mut rng));
    }
    Sample { x, y }
}

/// An Italy-GDP-style panel slice: regional GDP growth proxy against a
/// year index (n = 150) with a gentle trend — a smooth, low-noise case
/// where wide bandwidths win.
pub fn gdp_like() -> Sample {
    let mut rng = StdRng::seed_from_u64(1951);
    let n = 150;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let year = 50.0 * rng.random::<f64>();
        let mean = 8.0 + 2.5 * (year / 50.0) + 1.2 * (year / 12.0).sin() * 0.2;
        x.push(year);
        y.push(mean + 0.35 * gaussian(&mut rng));
    }
    Sample { x, y }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_documented_sizes_and_are_deterministic() {
        assert_eq!(cps71_like().len(), 205);
        assert_eq!(motorcycle_like().len(), 133);
        assert_eq!(gdp_like().len(), 150);
        assert_eq!(cps71_like(), cps71_like());
        assert_eq!(motorcycle_like(), motorcycle_like());
    }

    #[test]
    fn cps71_shape_is_plausible() {
        let s = cps71_like();
        assert!(s.x.iter().all(|&a| (21.0..=65.0).contains(&a)));
        // Mean log-wage of the 40s cohort exceeds the early-20s cohort.
        let cohort_mean = |lo: f64, hi: f64| {
            let vals: Vec<f64> = s
                .x
                .iter()
                .zip(&s.y)
                .filter(|(&a, _)| a >= lo && a < hi)
                .map(|(_, &w)| w)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(cohort_mean(40.0, 50.0) > cohort_mean(21.0, 26.0));
    }

    #[test]
    fn motorcycle_is_quiet_before_impact() {
        let s = motorcycle_like();
        let pre: Vec<f64> = s
            .x
            .iter()
            .zip(&s.y)
            .filter(|(&t, _)| t < 13.0)
            .map(|(_, &a)| a.abs())
            .collect();
        let post: Vec<f64> = s
            .x
            .iter()
            .zip(&s.y)
            .filter(|(&t, _)| (16.0..30.0).contains(&t))
            .map(|(_, &a)| a.abs())
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&pre) < mean(&post), "{} vs {}", mean(&pre), mean(&post));
    }
}
