//! Data-generating processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A paired regression sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Regressor values.
    pub x: Vec<f64>,
    /// Response values.
    pub y: Vec<f64>,
}

impl Sample {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The sample as `f32` vectors (the paper's CUDA program is
    /// single-precision throughout).
    pub fn to_f32(&self) -> (Vec<f32>, Vec<f32>) {
        (
            self.x.iter().map(|&v| v as f32).collect(),
            self.y.iter().map(|&v| v as f32).collect(),
        )
    }
}

/// A reproducible data-generating process.
pub trait Dgp {
    /// Draws `n` observations with the given seed.
    fn sample(&self, n: usize, seed: u64) -> Sample;

    /// The true conditional mean `E[Y | X = x]`.
    fn truth(&self, x: f64) -> f64;

    /// Name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's §IV process: `X ~ U(0,1)`,
/// `Y = 0.5·X + 10·X² + u`, `u ~ U(0, 0.5)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperDgp;

impl Dgp for PaperDgp {
    fn sample(&self, n: usize, seed: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.random::<f64>())
            .collect();
        Sample { x, y }
    }

    fn truth(&self, x: f64) -> f64 {
        // E[u] = 0.25.
        0.5 * x + 10.0 * x * x + 0.25
    }

    fn name(&self) -> &'static str {
        "paper"
    }
}

/// Oscillating truth: `Y = sin(2π·f·X) + σ·ε`, `X ~ U(0,1)` —
/// small optimal bandwidths, stressing the fine end of the grid.
#[derive(Debug, Clone, Copy)]
pub struct SineDgp {
    /// Number of full periods over `[0, 1]`.
    pub frequency: f64,
    /// Gaussian noise standard deviation.
    pub noise: f64,
}

impl Default for SineDgp {
    fn default() -> Self {
        Self { frequency: 3.0, noise: 0.2 }
    }
}

impl Dgp for SineDgp {
    fn sample(&self, n: usize, seed: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| self.truth(v) + self.noise * gaussian(&mut rng))
            .collect();
        Sample { x, y }
    }

    fn truth(&self, x: f64) -> f64 {
        (2.0 * std::f64::consts::PI * self.frequency * x).sin()
    }

    fn name(&self) -> &'static str {
        "sine"
    }
}

/// Discontinuous truth: a step at `X = 0.5` — kernel smoothing's worst case,
/// where CV should pick a *small* bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct StepDgp {
    /// Jump height.
    pub jump: f64,
    /// Gaussian noise standard deviation.
    pub noise: f64,
}

impl Default for StepDgp {
    fn default() -> Self {
        Self { jump: 2.0, noise: 0.25 }
    }
}

impl Dgp for StepDgp {
    fn sample(&self, n: usize, seed: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| self.truth(v) + self.noise * gaussian(&mut rng))
            .collect();
        Sample { x, y }
    }

    fn truth(&self, x: f64) -> f64 {
        if x < 0.5 {
            0.0
        } else {
            self.jump
        }
    }

    fn name(&self) -> &'static str {
        "step"
    }
}

/// The Donoho–Johnstone doppler function: increasing oscillation towards
/// `x = 0`, a standard hard case for fixed-bandwidth smoothers.
#[derive(Debug, Clone, Copy)]
pub struct DopplerDgp {
    /// Gaussian noise standard deviation.
    pub noise: f64,
}

impl Default for DopplerDgp {
    fn default() -> Self {
        Self { noise: 0.1 }
    }
}

impl Dgp for DopplerDgp {
    fn sample(&self, n: usize, seed: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| self.truth(v) + self.noise * gaussian(&mut rng))
            .collect();
        Sample { x, y }
    }

    fn truth(&self, x: f64) -> f64 {
        let eps = 0.05;
        (x * (1.0 - x)).max(0.0).sqrt()
            * ((2.0 * std::f64::consts::PI * (1.0 + eps)) / (x + eps)).sin()
    }

    fn name(&self) -> &'static str {
        "doppler"
    }
}

/// Heteroskedastic noise: the paper DGP's mean with `σ(x) = σ₀·(1 + 3x)` —
/// exercises the variance-estimation parts of the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct HeteroskedasticDgp {
    /// Base noise level `σ₀`.
    pub base_noise: f64,
}

impl Default for HeteroskedasticDgp {
    fn default() -> Self {
        Self { base_noise: 0.1 }
    }
}

impl Dgp for HeteroskedasticDgp {
    fn sample(&self, n: usize, seed: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| self.truth(v) + self.base_noise * (1.0 + 3.0 * v) * gaussian(&mut rng))
            .collect();
        Sample { x, y }
    }

    fn truth(&self, x: f64) -> f64 {
        0.5 * x + 10.0 * x * x
    }

    fn name(&self) -> &'static str {
        "heteroskedastic"
    }
}

/// One standard normal draw via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_dgps() -> Vec<Box<dyn Dgp>> {
        vec![
            Box::new(PaperDgp),
            Box::new(SineDgp::default()),
            Box::new(StepDgp::default()),
            Box::new(DopplerDgp::default()),
            Box::new(HeteroskedasticDgp::default()),
        ]
    }

    #[test]
    fn samples_are_reproducible_and_sized() {
        for dgp in all_dgps() {
            let a = dgp.sample(200, 42);
            let b = dgp.sample(200, 42);
            assert_eq!(a, b, "{} not reproducible", dgp.name());
            assert_eq!(a.len(), 200);
            let c = dgp.sample(200, 43);
            assert_ne!(a, c, "{} ignores seed", dgp.name());
        }
    }

    #[test]
    fn paper_dgp_ranges_match_section_iv() {
        let s = PaperDgp.sample(20_000, 1);
        assert!(s.x.iter().all(|&v| (0.0..1.0).contains(&v)));
        for (&x, &y) in s.x.iter().zip(&s.y) {
            let base = 0.5 * x + 10.0 * x * x;
            assert!(y >= base && y <= base + 0.5, "u outside [0, 0.5]");
        }
    }

    #[test]
    fn paper_truth_includes_mean_noise() {
        assert!((PaperDgp.truth(0.0) - 0.25).abs() < 1e-15);
        assert!((PaperDgp.truth(1.0) - 10.75).abs() < 1e-15);
    }

    #[test]
    fn residuals_center_on_truth() {
        for dgp in all_dgps() {
            let s = dgp.sample(50_000, 7);
            let mean_resid: f64 = s
                .x
                .iter()
                .zip(&s.y)
                .map(|(&x, &y)| y - dgp.truth(x))
                .sum::<f64>()
                / s.len() as f64;
            assert!(
                mean_resid.abs() < 0.02,
                "{}: mean residual {mean_resid}",
                dgp.name()
            );
        }
    }

    #[test]
    fn step_dgp_actually_jumps() {
        let d = StepDgp::default();
        assert_eq!(d.truth(0.49), 0.0);
        assert_eq!(d.truth(0.51), 2.0);
    }

    #[test]
    fn f32_conversion_round_trips_approximately() {
        let s = PaperDgp.sample(100, 3);
        let (x32, y32) = s.to_f32();
        for (a, b) in s.x.iter().zip(&x32) {
            assert!((a - *b as f64).abs() < 1e-6);
        }
        assert_eq!(y32.len(), 100);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let var: f64 = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
