//! Minimal CSV I/O for regression samples and result tables — enough for
//! the example binaries and the benchmark harness, with no external
//! dependency.

use crate::dgp::Sample;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Writes a sample as a two-column `x,y` CSV with a header.
pub fn write_sample<W: Write>(mut out: W, sample: &Sample) -> io::Result<()> {
    out.write_all(b"x,y\n")?;
    let mut line = String::new();
    for (x, y) in sample.x.iter().zip(&sample.y) {
        line.clear();
        // 17 significant digits round-trips f64 exactly.
        let _ = writeln!(line, "{x:.17e},{y:.17e}");
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Writes a sample to a file path.
pub fn write_sample_file<P: AsRef<Path>>(path: P, sample: &Sample) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_sample(io::BufWriter::new(file), sample)
}

/// Reads a two-column `x,y` CSV (header optional).
pub fn read_sample<R: BufRead>(input: R) -> io::Result<Sample> {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split(',');
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(bad_line(lineno, trimmed));
        };
        match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
            (Ok(xv), Ok(yv)) => {
                x.push(xv);
                y.push(yv);
            }
            _ if lineno == 0 => continue, // header
            _ => return Err(bad_line(lineno, trimmed)),
        }
    }
    Ok(Sample { x, y })
}

/// Reads a sample from a file path.
pub fn read_sample_file<P: AsRef<Path>>(path: P) -> io::Result<Sample> {
    let file = std::fs::File::open(path)?;
    read_sample(io::BufReader::new(file))
}

/// Writes a generic numeric table: header row plus rows of f64 columns.
pub fn write_table<W: Write>(
    mut out: W,
    header: &[&str],
    rows: &[Vec<f64>],
) -> io::Result<()> {
    out.write_all(header.join(",").as_bytes())?;
    out.write_all(b"\n")?;
    let mut line = String::new();
    for row in rows {
        line.clear();
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{v}");
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

fn bad_line(lineno: usize, content: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed CSV at line {}: {content:?}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgp::{Dgp, PaperDgp};

    #[test]
    fn sample_round_trips_exactly() {
        let sample = PaperDgp.sample(100, 5);
        let mut buf = Vec::new();
        write_sample(&mut buf, &sample).unwrap();
        let back = read_sample(io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(sample, back);
    }

    #[test]
    fn reader_accepts_headerless_input() {
        let input = "1.0,2.0\n3.0,4.0\n";
        let s = read_sample(io::BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(s.x, vec![1.0, 3.0]);
        assert_eq!(s.y, vec![2.0, 4.0]);
    }

    #[test]
    fn reader_skips_blank_lines() {
        let input = "x,y\n1.0,2.0\n\n3.0,4.0\n";
        let s = read_sample(io::BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn reader_rejects_garbage_after_header() {
        let input = "x,y\n1.0,2.0\nnot,numbers\n";
        assert!(read_sample(io::BufReader::new(input.as_bytes())).is_err());
        let input = "justonecolumn\n";
        assert!(read_sample(io::BufReader::new(input.as_bytes())).is_err());
    }

    #[test]
    fn table_writer_formats_rows() {
        let mut buf = Vec::new();
        write_table(&mut buf, &["n", "time"], &[vec![100.0, 0.5], vec![200.0, 1.25]]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "n,time\n100,0.5\n200,1.25\n");
    }

    #[test]
    fn file_round_trip() {
        let sample = PaperDgp.sample(10, 9);
        let dir = std::env::temp_dir().join("kcv_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        write_sample_file(&path, &sample).unwrap();
        let back = read_sample_file(&path).unwrap();
        assert_eq!(sample, back);
        let _ = std::fs::remove_file(path);
    }
}
