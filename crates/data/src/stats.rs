//! Summary statistics for samples (used by examples and the harness).

use crate::dgp::Sample;

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Observation count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl SampleStats {
    /// Computes the summary of a slice; `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Self> {
        let n = values.len();
        if n == 0 {
            return None;
        }
        let mut min = values[0];
        let mut max = values[0];
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        };
        Some(Self { n, min, max, mean, std_dev: var.sqrt() })
    }

    /// The domain (max − min).
    pub fn domain(&self) -> f64 {
        self.max - self.min
    }
}

/// Summaries of both variables of a regression sample.
pub fn describe(sample: &Sample) -> Option<(SampleStats, SampleStats)> {
    Some((SampleStats::of(&sample.x)?, SampleStats::of(&sample.y)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgp::{Dgp, PaperDgp};

    #[test]
    fn stats_of_known_values() {
        let s = SampleStats::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-15);
        assert!((s.std_dev - 1.0).abs() < 1e-15);
        assert!((s.domain() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(SampleStats::of(&[]).is_none());
    }

    #[test]
    fn paper_sample_statistics_are_plausible() {
        let sample = PaperDgp.sample(50_000, 2);
        let (xs, ys) = describe(&sample).unwrap();
        // X ~ U(0,1): mean ≈ 0.5, sd ≈ 1/√12 ≈ 0.2887.
        assert!((xs.mean - 0.5).abs() < 0.01);
        assert!((xs.std_dev - 0.2887).abs() < 0.01);
        // E[Y] = 0.5·0.5 + 10/3 + 0.25 ≈ 3.833.
        assert!((ys.mean - (0.25 + 10.0 / 3.0 + 0.25)).abs() < 0.05);
    }
}
