//! # kcv-data — synthetic data for the kernelcv workspace
//!
//! The paper evaluates on randomly generated data: `X ~ U(0,1)` and
//! `Y = 0.5·X + 10·X² + u` with `u ~ U(0, 0.5)` (§IV). [`PaperDgp`]
//! reproduces that process exactly; additional processes exercise shapes
//! (discontinuities, oscillation, heteroskedasticity) the paper's smooth
//! DGP does not.
//!
//! ```
//! use kcv_data::{Dgp, PaperDgp};
//!
//! let sample = PaperDgp.sample(1_000, 42);
//! assert_eq!(sample.len(), 1_000);
//! // X ~ U(0,1); Y bounded by the DGP's construction.
//! assert!(sample.x.iter().all(|&v| (0.0..1.0).contains(&v)));
//! assert!((PaperDgp.truth(0.5) - (0.25 + 2.5 + 0.25)).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod datasets;
pub mod dgp;
pub mod stats;

pub use dgp::{Dgp, DopplerDgp, HeteroskedasticDgp, PaperDgp, Sample, SineDgp, StepDgp};
pub use stats::SampleStats;
