//! # kcv-gpu-sim — a software SPMD GPU simulator
//!
//! The paper runs its bandwidth search as a CUDA program on a Tesla S10.
//! Rust GPU compute support is immature, so this crate substitutes a
//! *simulated* device that preserves the properties the paper's results
//! hinge on:
//!
//! * **the programming model** — grids of blocks of threads; independent
//!   SPMD kernels ([`launch::launch_independent`]) and barrier-synchronised
//!   cooperative blocks ([`cooperative::CooperativeBlock`]) with
//!   `__syncthreads`-style phases (plus intra-phase race *detection*);
//! * **the resource ceilings** — a capacity-enforcing global-memory pool
//!   (the paper's n ≤ 20 000 wall on 4 GB) and the 8 KB constant-cache
//!   working set (the ≤ 2 048-bandwidth grid limit);
//! * **the execution economics** — instrumented device code reports
//!   operation counts per thread; a warp-lockstep, SM-scheduled cost model
//!   converts them into simulated cycles/seconds, while rayon executes the
//!   threads truly in parallel on host cores.
//!
//! The building blocks the paper's program needs are included: Harris-style
//! sum and min-with-payload reductions ([`reduce`]) and the per-thread
//! iterative quicksort ([`device_sort`]). The actual port of the paper's
//! program lives in the `kcv-gpu` crate.
//!
//! ```
//! use kcv_gpu_sim::{launch_map, CostModel, DeviceSpec, LaunchConfig};
//!
//! // Square 1000 numbers, one simulated GPU thread each, and get the
//! // warp-lockstep cost report.
//! let spec = DeviceSpec::tesla_s10();
//! let cost = CostModel::default();
//! let (squares, report) = launch_map(
//!     &spec,
//!     &cost,
//!     LaunchConfig::new(1000, 512),
//!     |tid, counters| {
//!         counters.flop(1);
//!         (tid * tid) as u64
//!     },
//! ).unwrap();
//! assert_eq!(squares[31], 961);
//! assert_eq!(report.totals.flops, 1000);
//! assert!(report.simulated_seconds > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cooperative;
pub mod cost;
pub mod device;
pub mod device_search;
pub mod device_sort;
pub mod error;
pub mod launch;
pub mod memory;
pub mod reduce;

pub use cooperative::{CooperativeBlock, SharedWrites};
pub use cost::{CostModel, LaunchReport, ThreadCounters};
pub use device::DeviceSpec;
pub use device_search::device_support_window;
pub use device_sort::device_sort_with_aux;
pub use error::{Result, SimError};
pub use launch::{launch_independent, launch_independent_map, launch_map, LaunchConfig};
pub use memory::{ConstantMemory, DeviceBuffer, MemoryPool};
pub use reduce::{min_payload_reduction, sum_reduction, sum_reduction_strided};
