//! Device memory: a capacity-enforcing global-memory pool, typed device
//! buffers, constant memory with the 8 KB cache-working-set limit, and
//! host↔device transfer accounting.
//!
//! The pool is what reproduces the paper's scaling wall: its program
//! allocates two `n×n` f32 matrices plus two `n×k` matrices, and "beyond
//! [n = 20 000], the GPU could not allocate the memory required for the
//! intermediate matrices" on a 4 GB part.

use crate::device::DeviceSpec;
use crate::error::{Result, SimError};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Host↔device copies move in 128-byte bus segments; a copy of `bytes`
/// therefore costs `ceil(bytes / 128)` simulated memory transactions.
fn transfer_transactions(bytes: usize) -> u64 {
    bytes.div_ceil(128).max(1) as u64
}

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
}

/// A shared global-memory pool with a hard byte capacity.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    inner: Arc<PoolInner>,
}

impl MemoryPool {
    /// Creates a pool with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                capacity,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                h2d_bytes: AtomicU64::new(0),
                d2h_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Creates the pool for a device spec.
    pub fn for_device(spec: &DeviceSpec) -> Self {
        Self::new(spec.global_mem_bytes)
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Total host→device bytes copied.
    pub fn h2d_bytes(&self) -> u64 {
        self.inner.h2d_bytes.load(Ordering::Relaxed)
    }

    /// Total device→host bytes copied.
    pub fn d2h_bytes(&self) -> u64 {
        self.inner.d2h_bytes.load(Ordering::Relaxed)
    }

    fn reserve(&self, bytes: usize) -> Result<()> {
        let mut current = self.inner.used.load(Ordering::Relaxed);
        loop {
            let new = current.checked_add(bytes).ok_or(SimError::OutOfMemory {
                requested: bytes,
                available: self.inner.capacity.saturating_sub(current),
                capacity: self.inner.capacity,
            })?;
            if new > self.inner.capacity {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available: self.inner.capacity - current,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.used.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    fn release(&self, bytes: usize) {
        self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Allocates a zero-initialised device buffer of `len` elements.
    pub fn alloc<T: Copy + Default>(&self, len: usize) -> Result<DeviceBuffer<T>> {
        let bytes = len * std::mem::size_of::<T>();
        self.reserve(bytes)?;
        Ok(DeviceBuffer { data: vec![T::default(); len], bytes, pool: self.clone() })
    }

    /// Dry-run capacity check: would the byte amounts in `plan`, allocated
    /// in order on an otherwise-empty device, all fit? Returns the first
    /// failing request as an error without backing any host memory.
    pub fn check_fit(&self, plan: &[usize]) -> Result<()> {
        let mut used = self.used();
        for &bytes in plan {
            let new = used.saturating_add(bytes);
            if new > self.inner.capacity {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available: self.inner.capacity - used,
                    capacity: self.inner.capacity,
                });
            }
            used = new;
        }
        Ok(())
    }
}

/// A typed buffer living in (simulated) device global memory.
///
/// Dropping the buffer returns its bytes to the pool — `cudaFree`.
#[derive(Debug)]
pub struct DeviceBuffer<T: Copy + Default> {
    data: Vec<T>,
    bytes: usize,
    pool: MemoryPool,
}

impl<T: Copy + Default> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// `cudaMemcpyHostToDevice`: fills the buffer from a host slice of the
    /// same length, counting the transferred bytes.
    pub fn copy_from_host(&mut self, host: &[T]) -> Result<()> {
        if host.len() != self.data.len() {
            return Err(SimError::CopyLengthMismatch {
                device_len: self.data.len(),
                host_len: host.len(),
            });
        }
        self.data.copy_from_slice(host);
        self.pool.inner.h2d_bytes.fetch_add(self.bytes as u64, Ordering::Relaxed);
        kcv_obs::add(kcv_obs::Counter::MemTransactions, transfer_transactions(self.bytes));
        Ok(())
    }

    /// `cudaMemcpyDeviceToHost`: copies the buffer into a host slice of the
    /// same length, counting the transferred bytes.
    pub fn copy_to_host(&self, host: &mut [T]) -> Result<()> {
        if host.len() != self.data.len() {
            return Err(SimError::CopyLengthMismatch {
                device_len: self.data.len(),
                host_len: host.len(),
            });
        }
        host.copy_from_slice(&self.data);
        self.pool.inner.d2h_bytes.fetch_add(self.bytes as u64, Ordering::Relaxed);
        kcv_obs::add(kcv_obs::Counter::MemTransactions, transfer_transactions(self.bytes));
        Ok(())
    }

    /// Device-side view (for kernels; accesses should be counted through
    /// [`crate::cost::ThreadCounters`] by instrumented code).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable device-side view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Copy + Default> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

/// Read-only constant memory, limited to the device's constant-cache
/// working set (8 KB on the paper's hardware ⇒ at most 2 048 f32 values —
/// the paper's bandwidth-grid ceiling).
#[derive(Debug, Clone)]
pub struct ConstantMemory<T: Copy> {
    data: Vec<T>,
}

impl<T: Copy> ConstantMemory<T> {
    /// Places `values` in constant memory, enforcing the cache limit.
    pub fn new(spec: &DeviceSpec, values: &[T]) -> Result<Self> {
        let bytes = std::mem::size_of_val(values);
        if bytes > spec.constant_cache_bytes {
            return Err(SimError::ConstantMemoryExceeded {
                requested: bytes,
                capacity: spec.constant_cache_bytes,
            });
        }
        Ok(Self { data: values.to_vec() })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i` (instrumented code should also count a
    /// constant-memory read).
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// The whole constant array.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary interleavings of allocations and frees never exceed
        /// capacity, and freeing everything returns usage to zero.
        #[test]
        fn pool_usage_invariants(
            ops in proptest::collection::vec((0usize..2, 1usize..600), 1..60)
        ) {
            let pool = MemoryPool::new(2_000);
            let mut held: Vec<DeviceBuffer<u8>> = Vec::new();
            for (op, size) in ops {
                if op == 0 {
                    if let Ok(buf) = pool.alloc::<u8>(size) {
                        held.push(buf);
                    }
                } else if !held.is_empty() {
                    held.pop();
                }
                prop_assert!(pool.used() <= pool.capacity());
                let held_bytes: usize = held.iter().map(|b| b.size_bytes()).sum();
                prop_assert_eq!(pool.used(), held_bytes);
                prop_assert!(pool.peak() >= pool.used());
            }
            drop(held);
            prop_assert_eq!(pool.used(), 0);
        }

        /// Failed allocations leave usage untouched.
        #[test]
        fn failed_alloc_is_a_noop(first in 1usize..1000, second in 1usize..2000) {
            let pool = MemoryPool::new(1_000);
            let kept = pool.alloc::<u8>(first);
            let used_before = pool.used();
            if used_before + second > 1_000 {
                prop_assert!(pool.alloc::<u8>(second).is_err());
                prop_assert_eq!(pool.used(), used_before);
            }
            drop(kept);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_usage_and_frees_on_drop() {
        let pool = MemoryPool::new(1024);
        {
            let buf = pool.alloc::<f32>(100).unwrap();
            assert_eq!(buf.len(), 100);
            assert_eq!(pool.used(), 400);
            let _buf2 = pool.alloc::<f32>(100).unwrap();
            assert_eq!(pool.used(), 800);
        }
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 800);
    }

    #[test]
    fn over_allocation_fails_with_details() {
        let pool = MemoryPool::new(1000);
        let _keep = pool.alloc::<u8>(600).unwrap();
        let err = pool.alloc::<u8>(500).unwrap_err();
        assert_eq!(
            err,
            SimError::OutOfMemory { requested: 500, available: 400, capacity: 1000 }
        );
        // A fitting allocation still succeeds afterwards.
        assert!(pool.alloc::<u8>(400).is_ok());
    }

    #[test]
    fn paper_memory_wall_two_nxn_matrices_in_4gb() {
        // n = 20 000 fits (2 × n² × 4 B = 3.2 GB); n = 25 000 does not (5 GB).
        let spec = DeviceSpec::tesla_s10();
        let pool = MemoryPool::for_device(&spec);
        let n_ok = 20_000usize;
        let a = pool.alloc::<f32>(n_ok * n_ok).unwrap();
        let b = pool.alloc::<f32>(n_ok * n_ok).unwrap();
        drop((a, b));
        let n_bad = 25_000usize;
        let a = pool.alloc::<f32>(n_bad * n_bad).unwrap();
        assert!(pool.alloc::<f32>(n_bad * n_bad).is_err());
        drop(a);
    }

    #[test]
    fn copies_validate_lengths_and_count_bytes() {
        let pool = MemoryPool::new(1024);
        let mut buf = pool.alloc::<f32>(4).unwrap();
        assert!(buf.copy_from_host(&[1.0, 2.0, 3.0]).is_err());
        buf.copy_from_host(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(pool.h2d_bytes(), 16);
        let mut out = [0.0f32; 4];
        buf.copy_to_host(&mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pool.d2h_bytes(), 16);
    }

    #[test]
    fn constant_memory_enforces_2048_f32_limit() {
        let spec = DeviceSpec::tesla_s10();
        let ok = vec![0.0f32; 2048];
        assert!(ConstantMemory::new(&spec, &ok).is_ok());
        let too_many = vec![0.0f32; 2049];
        let err = ConstantMemory::new(&spec, &too_many).unwrap_err();
        assert_eq!(
            err,
            SimError::ConstantMemoryExceeded { requested: 2049 * 4, capacity: 8192 }
        );
    }

    #[test]
    fn constant_memory_reads_back() {
        let spec = DeviceSpec::tesla_s10();
        let c = ConstantMemory::new(&spec, &[1.5f32, 2.5]).unwrap();
        assert_eq!(c.get(1), 2.5);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn check_fit_matches_real_allocation_sequences() {
        let pool = MemoryPool::new(1_000);
        assert!(pool.check_fit(&[400, 400, 200]).is_ok());
        assert!(pool.check_fit(&[400, 400, 201]).is_err());
        // check_fit accounts for what is already allocated.
        let _held = pool.alloc::<u8>(500).unwrap();
        assert!(pool.check_fit(&[500]).is_ok());
        assert!(pool.check_fit(&[501]).is_err());
    }

    #[test]
    fn concurrent_allocation_never_exceeds_capacity() {
        use rayon::prelude::*;
        let pool = MemoryPool::new(10_000);
        let results: Vec<bool> = (0..64)
            .into_par_iter()
            .map(|_| pool.alloc::<u8>(400).map(std::mem::forget).is_ok())
            .collect();
        let succeeded = results.iter().filter(|&&ok| ok).count();
        // 25 allocations of 400 B fit in 10 000 B.
        assert_eq!(succeeded, 25);
        assert!(pool.used() <= pool.capacity());
    }
}
