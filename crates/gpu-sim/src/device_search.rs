//! Costed device-side binary search: support-window resolution on the
//! globally sorted sample.
//!
//! The windowed GPU program (in `kcv-gpu`) answers each
//! `(observation, bandwidth)` cell from global prefix-moment tables, so the
//! only data-dependent device work per cell is finding the support window
//! `[lo, hi)` — two bisections over the sorted `x` with the workspace's
//! standard predicate `d·(1/h) ≤ r`. This module provides that device
//! function with its cost accounting: every probe is **one divergent
//! global-memory read** (threads in a warp bisect different regions, so
//! probes cannot coalesce), one comparison flop, and one branch.
//!
//! The search narrows monotonically across an ascending bandwidth sweep:
//! the support only grows with `h`, so `lo` is bisected in `[0, lo_prev]`
//! and `hi` in `[hi_prev, n]` — at most `~2·⌈log₂ n⌉` probes per cell, and
//! far fewer on average once the window stabilises.

use crate::cost::ThreadCounters;

/// Resolves the support window `[lo, hi)` of the observation at `x = xi`
/// for bandwidth `1/inv_h`, narrowing from the previous (smaller-bandwidth)
/// window `[lo_prev, hi_prev)`: `lo` is bisected in `[0, lo_prev]`, `hi` in
/// `[hi_prev, xs.len()]`.
///
/// The predicate is the bit-identical `(xi − xs[mid])·inv_h ≤ radius` (and
/// its mirror) every CPU strategy uses, evaluated on the original sorted
/// coordinates, so the returned membership set matches them exactly at
/// equal precision. Charges one divergent global read, one flop, and one
/// branch per probe to `c`; returns `(lo, hi, probes)` so the caller can
/// batch the probe count into its observability counters.
pub fn device_support_window(
    xs: &[f32],
    xi: f32,
    inv_h: f32,
    radius: f32,
    lo_prev: usize,
    hi_prev: usize,
    c: &mut ThreadCounters,
) -> (usize, usize, u32) {
    let mut probes = 0u32;
    // Leftmost l with (xi − xs[l])·inv_h ≤ r; the self position trivially
    // qualifies, so the previous lo is a valid upper bisection bound.
    let (mut a, mut b) = (0usize, lo_prev);
    while a < b {
        let mid = (a + b) / 2;
        c.global_read(1);
        c.flop(1);
        c.branch(1);
        probes += 1;
        if (xi - xs[mid]) * inv_h <= radius {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    let lo = a;
    // One past the rightmost l with (xs[l] − xi)·inv_h ≤ r.
    let (mut a, mut b) = (hi_prev, xs.len());
    while a < b {
        let mid = (a + b) / 2;
        c.global_read(1);
        c.flop(1);
        c.branch(1);
        probes += 1;
        if (xs[mid] - xi) * inv_h <= radius {
            a = mid + 1;
        } else {
            b = mid;
        }
    }
    (lo, a, probes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scan reference: the inclusive support of `xi` under the same f32
    /// predicate.
    fn scan_window(xs: &[f32], xi: f32, inv_h: f32, radius: f32) -> (usize, usize) {
        let lo = xs
            .iter()
            .position(|&v| (xi - v) * inv_h <= radius)
            .unwrap_or(xs.len());
        let hi = xs
            .iter()
            .rposition(|&v| (v - xi) * inv_h <= radius)
            .map_or(lo, |p| p + 1);
        (lo, hi)
    }

    fn sorted_sample(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        let mut xs: Vec<f32> = (0..n)
            .map(|_| {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32
            })
            .collect();
        xs.sort_by(f32::total_cmp);
        xs
    }

    #[test]
    fn matches_scan_reference_over_an_ascending_sweep() {
        let xs = sorted_sample(257, 9);
        let n = xs.len();
        for si in [0usize, 1, 100, 255, 256] {
            let xi = xs[si];
            let (mut lo, mut hi) = (si, si + 1);
            let mut c = ThreadCounters::default();
            for step in 1..=40 {
                let h = step as f32 * 0.03;
                let probes;
                (lo, hi, probes) =
                    device_support_window(&xs, xi, 1.0 / h, 1.0, lo, hi, &mut c);
                let (want_lo, want_hi) = scan_window(&xs, xi, 1.0 / h, 1.0);
                assert_eq!((lo, hi), (want_lo, want_hi), "si={si} h={h}");
                assert!(
                    probes as usize <= 2 * n.ilog2() as usize + 4,
                    "si={si} h={h}: {probes} probes"
                );
            }
        }
    }

    #[test]
    fn charges_one_divergent_read_flop_and_branch_per_probe() {
        let xs = sorted_sample(100, 4);
        let mut c = ThreadCounters::default();
        let (_, _, probes) = device_support_window(&xs, xs[50], 1.0 / 0.2, 1.0, 50, 51, &mut c);
        assert!(probes > 0);
        assert_eq!(c.global_reads, probes as u64);
        assert_eq!(c.flops, probes as u64);
        assert_eq!(c.global_coalesced, 0, "probes must not coalesce");
    }

    #[test]
    fn duplicate_values_resolve_to_the_full_tie_run() {
        let xs = vec![0.0f32, 0.25, 0.5, 0.5, 0.5, 0.75, 1.0];
        let mut c = ThreadCounters::default();
        // All three ties sit inside any window around 0.5.
        let (lo, hi, _) = device_support_window(&xs, 0.5, 1.0 / 0.1, 1.0, 3, 4, &mut c);
        assert_eq!((lo, hi), (2, 5));
    }

    #[test]
    fn degenerate_window_stays_empty_at_tiny_bandwidth() {
        let xs = vec![0.0f32, 10.0, 20.0];
        let mut c = ThreadCounters::default();
        let (lo, hi, _) = device_support_window(&xs, 10.0, 1.0 / 0.5, 1.0, 1, 2, &mut c);
        assert_eq!((lo, hi), (1, 2), "only the observation itself is in support");
    }
}
