//! Harris-style tree reductions, as the paper's §IV-B describes: a single
//! block of `T` threads, shared memory, each thread first folding the
//! elements congruent to its id modulo `T`, then a log₂(T) halving tree
//! with a barrier between levels.
//!
//! Two variants are provided — the two the paper needs:
//! * [`sum_reduction`] — total of the squared residuals for one bandwidth;
//! * [`min_payload_reduction`] — minimum cross-validation score *and* the
//!   bandwidth it belongs to (the payload travels in the upper half of the
//!   shared array, exactly as §IV-B lays it out).

use crate::cooperative::CooperativeBlock;
use crate::cost::{CostModel, LaunchReport};
use crate::device::DeviceSpec;
use crate::error::{Result, SimError};

fn validate_threads(spec: &DeviceSpec, threads: usize) -> Result<()> {
    if threads == 0 || !threads.is_power_of_two() {
        return Err(SimError::InvalidLaunch(format!(
            "reduction needs a power-of-two thread count, got {threads}"
        )));
    }
    if threads > spec.max_threads_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "block size {threads} exceeds device maximum {}",
            spec.max_threads_per_block
        )));
    }
    Ok(())
}

/// Sums `values` with a `threads`-wide tree reduction. Returns the sum and
/// the launch cost report.
///
/// The grid-stride fold reads `values[tid]`, `values[tid + T]`, … — the
/// warp's lanes hit consecutive addresses, so the reads are charged as
/// coalesced. Use [`sum_reduction_strided`] when the source layout makes
/// them scattered (the paper's §IV-B index switch exists to avoid that).
pub fn sum_reduction(
    spec: &DeviceSpec,
    cost: &CostModel,
    threads: usize,
    values: &[f32],
) -> Result<(f32, LaunchReport)> {
    sum_reduction_impl(spec, cost, threads, values, true)
}

/// [`sum_reduction`] over a layout whose reads are *not* coalesced (each
/// lane's access is charged at the full uncoalesced cost). Numerically
/// identical; only the cost accounting differs.
pub fn sum_reduction_strided(
    spec: &DeviceSpec,
    cost: &CostModel,
    threads: usize,
    values: &[f32],
) -> Result<(f32, LaunchReport)> {
    sum_reduction_impl(spec, cost, threads, values, false)
}

fn sum_reduction_impl(
    spec: &DeviceSpec,
    cost: &CostModel,
    threads: usize,
    values: &[f32],
    coalesced: bool,
) -> Result<(f32, LaunchReport)> {
    validate_threads(spec, threads)?;
    let _reduce = kcv_obs::phase("gpu.reduce");
    let mut block = CooperativeBlock::new(spec, cost, threads, threads)?;

    // Phase 1: thread t folds values[t], values[t+T], values[t+2T], …
    block.step(|tid, _shared, c, w| {
        let mut acc = 0.0f32;
        let mut j = tid;
        while j < values.len() {
            acc += values[j];
            if coalesced {
                c.global_coalesced(1);
            } else {
                c.global_read(1);
            }
            c.flop(1);
            j += threads;
        }
        w.write(tid, acc);
        c.shared_access(1);
    })?;

    // Tree phases: stride halves each barrier.
    let mut stride = threads / 2;
    while stride >= 1 {
        block.step(move |tid, shared, c, w| {
            if tid < stride {
                let sum = shared[tid] + shared[tid + stride];
                c.shared_access(3);
                c.flop(1);
                w.write(tid, sum);
            }
            c.branch(1);
        })?;
        stride /= 2;
    }

    let (shared, report) = block.finish();
    Ok((shared[0], report))
}

/// Finds the minimum of `scores` and returns it together with the matching
/// element of `payloads` (same length). Exact score ties resolve to the
/// *smaller payload* — for a bandwidth grid, the smaller bandwidth — which
/// keeps the result deterministic regardless of tree shape.
pub fn min_payload_reduction(
    spec: &DeviceSpec,
    cost: &CostModel,
    threads: usize,
    scores: &[f32],
    payloads: &[f32],
) -> Result<((f32, f32), LaunchReport)> {
    validate_threads(spec, threads)?;
    if scores.is_empty() || scores.len() != payloads.len() {
        return Err(SimError::InvalidLaunch(format!(
            "min reduction over {} scores with {} payloads",
            scores.len(),
            payloads.len()
        )));
    }
    // 2T shared cells: scores in [0, T), payloads in [T, 2T).
    let _reduce = kcv_obs::phase("gpu.reduce");
    let mut block = CooperativeBlock::new(spec, cost, threads, 2 * threads)?;

    block.step(|tid, _shared, c, w| {
        let mut best = f32::INFINITY;
        let mut best_payload = f32::NAN;
        let mut j = tid;
        while j < scores.len() {
            c.global_read(2);
            c.branch(1);
            if scores[j] < best || (scores[j] == best && payloads[j] < best_payload) {
                best = scores[j];
                best_payload = payloads[j];
            }
            j += threads;
        }
        w.write(tid, best);
        w.write(tid + threads, best_payload);
        c.shared_access(2);
    })?;

    let mut stride = threads / 2;
    while stride >= 1 {
        block.step(move |tid, shared, c, w| {
            if tid < stride {
                c.shared_access(2);
                c.branch(1);
                let (s_other, s_mine) = (shared[tid + stride], shared[tid]);
                let take_other = s_other < s_mine
                    || (s_other == s_mine
                        && shared[tid + threads + stride] < shared[tid + threads]);
                if take_other {
                    w.write(tid, s_other);
                    w.write(tid + threads, shared[tid + threads + stride]);
                    c.shared_access(4);
                }
            }
            c.branch(1);
        })?;
        stride /= 2;
    }

    let (shared, report) = block.finish();
    Ok(((shared[0], shared[threads]), report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tesla() -> (DeviceSpec, CostModel) {
        (DeviceSpec::tesla_s10(), CostModel::default())
    }

    #[test]
    fn sum_matches_direct_fold() {
        let (spec, cost) = tesla();
        for n in [1usize, 7, 64, 1000, 4097] {
            let values: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.25).collect();
            let (sum, _) = sum_reduction(&spec, &cost, 128, &values).unwrap();
            let direct: f32 = values.iter().sum();
            assert!(
                (sum - direct).abs() <= 1e-3 * direct.abs().max(1.0),
                "n={n}: {sum} vs {direct}"
            );
        }
    }

    #[test]
    fn sum_of_empty_is_zero() {
        let (spec, cost) = tesla();
        let (sum, _) = sum_reduction(&spec, &cost, 64, &[]).unwrap();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn sum_with_single_thread_block() {
        let (spec, cost) = tesla();
        let (sum, _) = sum_reduction(&spec, &cost, 1, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(sum, 6.0);
    }

    #[test]
    fn min_payload_finds_global_minimum() {
        let (spec, cost) = tesla();
        let scores: Vec<f32> = (0..500).map(|i| ((i as f32) - 271.0).powi(2) + 3.0).collect();
        let payloads: Vec<f32> = (0..500).map(|i| i as f32 * 0.01).collect();
        let ((min, payload), _) =
            min_payload_reduction(&spec, &cost, 256, &scores, &payloads).unwrap();
        assert_eq!(min, 3.0);
        assert!((payload - 2.71).abs() < 1e-6);
    }

    #[test]
    fn min_payload_ties_resolve_to_smaller_payload() {
        let (spec, cost) = tesla();
        let scores = [5.0f32, 1.0, 1.0, 7.0];
        let payloads = [10.0f32, 20.0, 30.0, 40.0];
        let ((min, payload), _) =
            min_payload_reduction(&spec, &cost, 4, &scores, &payloads).unwrap();
        assert_eq!(min, 1.0);
        assert_eq!(payload, 20.0);
        // Same data, payload order reversed between the tied entries.
        let payloads2 = [10.0f32, 30.0, 20.0, 40.0];
        let ((_, payload2), _) =
            min_payload_reduction(&spec, &cost, 4, &scores, &payloads2).unwrap();
        assert_eq!(payload2, 20.0);
    }

    #[test]
    fn min_payload_handles_fewer_elements_than_threads() {
        let (spec, cost) = tesla();
        let ((min, payload), _) =
            min_payload_reduction(&spec, &cost, 512, &[2.0, 1.0], &[0.5, 0.7]).unwrap();
        assert_eq!(min, 1.0);
        assert_eq!(payload, 0.7);
    }

    #[test]
    fn rejects_non_power_of_two_threads() {
        let (spec, cost) = tesla();
        assert!(sum_reduction(&spec, &cost, 100, &[1.0]).is_err());
        assert!(sum_reduction(&spec, &cost, 0, &[1.0]).is_err());
        assert!(min_payload_reduction(&spec, &cost, 100, &[1.0], &[1.0]).is_err());
    }

    #[test]
    fn rejects_mismatched_payloads() {
        let (spec, cost) = tesla();
        assert!(min_payload_reduction(&spec, &cost, 4, &[1.0, 2.0], &[1.0]).is_err());
        assert!(min_payload_reduction(&spec, &cost, 4, &[], &[]).is_err());
    }

    #[test]
    fn reduction_cost_scales_logarithmically_in_threads() {
        // The tree section adds log2(T) barriers; check syncs count.
        let (spec, cost) = tesla();
        let values = vec![1.0f32; 1024];
        let (_, r64) = sum_reduction(&spec, &cost, 64, &values).unwrap();
        // 1 fold phase + log2(64) = 6 tree phases → 7 barriers per thread.
        assert_eq!(r64.totals.syncs, 64 * 7);
        let (_, r256) = sum_reduction(&spec, &cost, 256, &values).unwrap();
        assert_eq!(r256.totals.syncs, 256 * 9);
    }
}
