//! The device-side iterative quicksort.
//!
//! Each GPU thread in the paper's main kernel sorts its own row of the
//! `n×n` distance matrix (with the `Y` row co-sorted) using a non-recursive
//! QuickSort adapted from Finley's C implementation — recursion was
//! unavailable on early CUDA and an explicit small stack avoids per-thread
//! stack growth. This is that routine, in `f32` (the paper uses single
//! precision throughout) and instrumented for the cost model: the rows live
//! in global memory, so comparisons and swaps are charged as global traffic.

use crate::cost::ThreadCounters;

/// Insertion-sort cutoff for small partitions.
const INSERTION_CUTOFF: usize = 12;

/// Maximum explicit-stack depth (smaller-side-first bounds depth by log₂ n).
const MAX_STACK: usize = 64;

/// Sorts `keys` ascending with `aux` co-sorted, charging operations to
/// `counters` (2 global reads + 1 branch per comparison; 4 global accesses
/// per element swap).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn device_sort_with_aux(keys: &mut [f32], aux: &mut [f32], counters: &mut ThreadCounters) {
    assert_eq!(keys.len(), aux.len(), "key and auxiliary arrays must match");
    if keys.len() < 2 {
        return;
    }
    // Every comparison in this routine charges exactly one branch (via
    // `cmp`), so the branch delta across the call is the comparison count —
    // reported to the observability layer alongside the host sort's tally.
    let branches_before = counters.branches;
    let mut stack = [(0usize, 0usize); MAX_STACK];
    let mut top = 0usize;
    stack[top] = (0, keys.len() - 1);
    top += 1;

    while top > 0 {
        top -= 1;
        let (mut lo, mut hi) = stack[top];
        loop {
            if hi - lo < INSERTION_CUTOFF {
                insertion_sort_range(keys, aux, lo, hi, counters);
                break;
            }
            let p = partition(keys, aux, lo, hi, counters);
            let left_len = p - lo;
            let right_len = hi - p;
            if left_len < right_len {
                if p + 1 < hi {
                    stack[top] = (p + 1, hi);
                    top += 1;
                }
                if p <= lo {
                    break;
                }
                hi = p - 1;
            } else {
                if p > lo {
                    stack[top] = (lo, p - 1);
                    top += 1;
                }
                if p >= hi {
                    break;
                }
                lo = p + 1;
            }
        }
    }
    kcv_obs::add(
        kcv_obs::Counter::SortComparisons,
        counters.branches - branches_before,
    );
}

#[inline]
fn cmp(counters: &mut ThreadCounters) {
    counters.global_read(2);
    counters.branch(1);
}

#[inline]
fn swap_both(
    keys: &mut [f32],
    aux: &mut [f32],
    i: usize,
    j: usize,
    counters: &mut ThreadCounters,
) {
    keys.swap(i, j);
    aux.swap(i, j);
    counters.global_read(4);
    counters.global_write(4);
}

fn partition(
    keys: &mut [f32],
    aux: &mut [f32],
    lo: usize,
    hi: usize,
    counters: &mut ThreadCounters,
) -> usize {
    let mid = lo + (hi - lo) / 2;
    cmp(counters);
    if keys[mid] < keys[lo] {
        swap_both(keys, aux, mid, lo, counters);
    }
    cmp(counters);
    if keys[hi] < keys[lo] {
        swap_both(keys, aux, hi, lo, counters);
    }
    cmp(counters);
    if keys[hi] < keys[mid] {
        swap_both(keys, aux, hi, mid, counters);
    }
    swap_both(keys, aux, mid, hi - 1, counters);
    let pivot = keys[hi - 1];
    counters.global_read(1);

    let mut i = lo;
    let mut j = hi - 1;
    loop {
        loop {
            i += 1;
            cmp(counters);
            if keys[i] >= pivot {
                break;
            }
        }
        loop {
            j -= 1;
            cmp(counters);
            if keys[j] <= pivot {
                break;
            }
        }
        counters.branch(1);
        if i >= j {
            break;
        }
        swap_both(keys, aux, i, j, counters);
    }
    swap_both(keys, aux, i, hi - 1, counters);
    i
}

fn insertion_sort_range(
    keys: &mut [f32],
    aux: &mut [f32],
    lo: usize,
    hi: usize,
    counters: &mut ThreadCounters,
) {
    for i in (lo + 1)..=hi {
        let k = keys[i];
        let a = aux[i];
        counters.global_read(2);
        let mut j = i;
        while j > lo {
            cmp(counters);
            if keys[j - 1] <= k {
                break;
            }
            keys[j] = keys[j - 1];
            aux[j] = aux[j - 1];
            counters.global_read(2);
            counters.global_write(2);
            j -= 1;
        }
        keys[j] = k;
        aux[j] = a;
        counters.global_write(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(keys_in: &[f32], aux_in: &[f32]) -> ThreadCounters {
        let mut keys = keys_in.to_vec();
        let mut aux = aux_in.to_vec();
        let mut c = ThreadCounters::default();
        device_sort_with_aux(&mut keys, &mut aux, &mut c);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "not sorted: {keys:?}");
        let mut before: Vec<(u32, u32)> = keys_in
            .iter()
            .zip(aux_in)
            .map(|(k, a)| (k.to_bits(), a.to_bits()))
            .collect();
        let mut after: Vec<(u32, u32)> =
            keys.iter().zip(&aux).map(|(k, a)| (k.to_bits(), a.to_bits())).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "pairs not preserved");
        c
    }

    #[test]
    fn sorts_and_counts() {
        let keys: Vec<f32> = (0..200).map(|i| ((i * 7919) % 541) as f32).collect();
        let aux: Vec<f32> = (0..200).map(|i| i as f32).collect();
        let c = check(&keys, &aux);
        assert!(c.global_reads > 0 && c.branches > 0);
    }

    #[test]
    fn sorts_edge_shapes() {
        check(&[], &[]);
        check(&[1.0], &[2.0]);
        check(&[2.0, 1.0], &[1.0, 2.0]);
        check(&vec![3.0; 100], &(0..100).map(|i| i as f32).collect::<Vec<_>>());
        let descending: Vec<f32> = (0..300).rev().map(|i| i as f32).collect();
        check(&descending, &vec![0.0; 300]);
    }

    #[test]
    fn cost_grows_superlinearly_slower_than_quadratic() {
        // Average-case n log n: doubling n should much less than 4× the cost
        // on random data.
        let mk = |n: usize| -> Vec<f32> {
            (0..n).map(|i| (((i as u64).wrapping_mul(2654435761)) % 100_000) as f32).collect()
        };
        let c1 = check(&mk(2_000), &vec![0.0; 2_000]);
        let c2 = check(&mk(4_000), &vec![0.0; 4_000]);
        let ratio = c2.branches as f64 / c1.branches as f64;
        assert!(ratio < 3.0, "comparison ratio {ratio} suggests quadratic behaviour");
    }

    proptest! {
        #[test]
        fn prop_device_sort_matches_std(
            pairs in proptest::collection::vec((-1e6f32..1e6, -1e6f32..1e6), 0..300)
        ) {
            let keys: Vec<f32> = pairs.iter().map(|p| p.0).collect();
            let aux: Vec<f32> = pairs.iter().map(|p| p.1).collect();
            check(&keys, &aux);
            let mut ours = keys.clone();
            let mut aux2 = aux;
            let mut c = ThreadCounters::default();
            device_sort_with_aux(&mut ours, &mut aux2, &mut c);
            let mut std_sorted = keys;
            std_sorted.sort_by(|a, b| a.total_cmp(b));
            prop_assert_eq!(ours, std_sorted);
        }
    }
}
