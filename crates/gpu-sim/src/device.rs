//! Device specifications.

/// Static properties of a simulated GPU.
///
/// The default preset, [`DeviceSpec::tesla_s10`], mirrors the paper's
/// testbed: a Tesla S10-class part with 240 streaming cores, 4 GB of device
/// memory, an 8 KB constant-cache working set, and a 512-thread block limit.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Global (device) memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Constant-memory *cache working set* in bytes (the paper's 8 KB limit
    /// that caps the bandwidth grid at 2 048 f32 values).
    pub constant_cache_bytes: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Streaming-processor cores per multiprocessor.
    pub cores_per_sm: usize,
    /// Number of multiprocessors.
    pub num_sms: usize,
    /// SIMT warp width.
    pub warp_size: usize,
    /// Maximum threads resident on one SM at a time (occupancy limit).
    pub max_resident_threads_per_sm: usize,
    /// Maximum blocks resident on one SM at a time (occupancy limit).
    pub max_resident_blocks_per_sm: usize,
    /// Warps an SM needs resident to fully hide memory latency; with fewer,
    /// throughput degrades proportionally (0 disables the occupancy model).
    /// This is what makes small blocks slow — and why the paper found 512
    /// threads per block fastest.
    pub latency_hiding_warps: usize,
    /// Core clock in Hz (used to convert simulated cycles to seconds).
    pub clock_hz: f64,
    /// Host↔device transfer bandwidth in bytes/second (PCIe-era figure).
    pub transfer_bytes_per_sec: f64,
}

impl DeviceSpec {
    /// The paper's GPU: Tesla S10-class, 240 cores (30 SMs × 8 SPs), 4 GB,
    /// 8 KB constant cache, 512 threads/block, ~1.3 GHz shader clock,
    /// PCIe-2 x16 (~6 GB/s effective).
    pub fn tesla_s10() -> Self {
        Self {
            name: "Tesla S10 (simulated)",
            global_mem_bytes: 4 * 1024 * 1024 * 1024,
            constant_cache_bytes: 8 * 1024,
            max_threads_per_block: 512,
            cores_per_sm: 8,
            num_sms: 30,
            warp_size: 32,
            max_resident_threads_per_sm: 1024,
            max_resident_blocks_per_sm: 8,
            latency_hiding_warps: 24,
            clock_hz: 1.3e9,
            transfer_bytes_per_sec: 6.0e9,
        }
    }

    /// A modern-GPU preset (for the "later versions of this study" scaling
    /// discussion): more memory, larger blocks, more cores.
    pub fn modern() -> Self {
        Self {
            name: "Modern GPU (simulated)",
            global_mem_bytes: 24 * 1024 * 1024 * 1024,
            constant_cache_bytes: 64 * 1024,
            max_threads_per_block: 1024,
            cores_per_sm: 128,
            num_sms: 80,
            warp_size: 32,
            max_resident_threads_per_sm: 2048,
            max_resident_blocks_per_sm: 32,
            latency_hiding_warps: 48,
            clock_hz: 1.7e9,
            transfer_bytes_per_sec: 25.0e9,
        }
    }

    /// Total streaming cores (`cores_per_sm × num_sms`).
    pub fn total_cores(&self) -> usize {
        self.cores_per_sm * self.num_sms
    }

    /// Maximum number of f32 elements that fit in the constant-cache
    /// working set — the paper's 2 048-bandwidth ceiling.
    pub fn max_constant_f32(&self) -> usize {
        self.constant_cache_bytes / std::mem::size_of::<f32>()
    }

    /// Occupancy efficiency in `(0, 1]` for a given block size: how much of
    /// full throughput the SM reaches once residency limits cap the number
    /// of warps available to hide memory latency.
    pub fn occupancy_efficiency(&self, threads_per_block: usize) -> f64 {
        if self.latency_hiding_warps == 0 {
            return 1.0;
        }
        let tpb = threads_per_block.max(1);
        let resident_blocks = (self.max_resident_threads_per_sm / tpb)
            .min(self.max_resident_blocks_per_sm)
            .max(1);
        let warps_per_block = tpb.div_ceil(self.warp_size);
        let resident_warps = resident_blocks * warps_per_block;
        (resident_warps as f64 / self.latency_hiding_warps as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tesla_matches_paper_figures() {
        let d = DeviceSpec::tesla_s10();
        assert_eq!(d.total_cores(), 240);
        assert_eq!(d.global_mem_bytes, 4 << 30);
        assert_eq!(d.max_constant_f32(), 2048);
        assert_eq!(d.max_threads_per_block, 512);
        assert_eq!(d.warp_size, 32);
    }

    #[test]
    fn occupancy_full_at_512_on_tesla() {
        let d = DeviceSpec::tesla_s10();
        assert_eq!(d.occupancy_efficiency(512), 1.0);
        // 2 resident 256-thread blocks… no: 1024/256 = 4, capped at 8 → 4
        // blocks × 8 warps = 32 warps → still full.
        assert_eq!(d.occupancy_efficiency(256), 1.0);
        // 64-thread blocks: 8 resident × 2 warps = 16 < 24 → degraded.
        let e64 = d.occupancy_efficiency(64);
        assert!((e64 - 16.0 / 24.0).abs() < 1e-12);
        // 32-thread blocks: 8 × 1 = 8 warps.
        let e32 = d.occupancy_efficiency(32);
        assert!((e32 - 8.0 / 24.0).abs() < 1e-12);
        assert!(e32 < e64);
    }

    #[test]
    fn occupancy_disabled_when_hiding_warps_zero() {
        let mut d = DeviceSpec::tesla_s10();
        d.latency_hiding_warps = 0;
        assert_eq!(d.occupancy_efficiency(1), 1.0);
        assert_eq!(d.occupancy_efficiency(512), 1.0);
    }

    #[test]
    fn modern_is_strictly_bigger() {
        let t = DeviceSpec::tesla_s10();
        let m = DeviceSpec::modern();
        assert!(m.global_mem_bytes > t.global_mem_bytes);
        assert!(m.total_cores() > t.total_cores());
        assert!(m.max_constant_f32() > t.max_constant_f32());
    }
}
