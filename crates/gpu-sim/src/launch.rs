//! Independent-kernel launches: SPMD execution with no intra-block
//! coordination — the model for the paper's main bandwidth kernel ("this
//! main kernel does not use shared memory or coordination across threads").
//!
//! Each simulated thread receives its thread id, a caller-prepared private
//! workspace (typically the thread's rows of the global-memory matrices),
//! and a [`ThreadCounters`] to report its operations. Threads run truly in
//! parallel on host cores via rayon; the cost model then replays the counts
//! through the warp/SM schedule of the target [`DeviceSpec`].

use crate::cost::{aggregate_cycles, CostModel, LaunchReport, ThreadCounters};
use crate::device::DeviceSpec;
use crate::error::{Result, SimError};
use rayon::prelude::*;
use std::time::Instant;

/// Grid configuration for a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Total threads in the grid (the paper sets this to `n`).
    pub threads: usize,
    /// Threads per block (the paper found 512 — the device maximum — best).
    pub threads_per_block: usize,
}

impl LaunchConfig {
    /// One thread per work item with the given block size.
    pub fn new(threads: usize, threads_per_block: usize) -> Self {
        Self { threads, threads_per_block }
    }

    fn validate(&self, spec: &DeviceSpec) -> Result<()> {
        if self.threads == 0 {
            return Err(SimError::InvalidLaunch("grid has zero threads".into()));
        }
        if self.threads_per_block == 0 {
            return Err(SimError::InvalidLaunch("block has zero threads".into()));
        }
        if self.threads_per_block > spec.max_threads_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "block size {} exceeds device maximum {}",
                self.threads_per_block, spec.max_threads_per_block
            )));
        }
        Ok(())
    }
}

/// Launches an independent (no shared memory, no synchronisation) kernel:
/// one invocation of `kernel` per thread, each owning one workspace.
///
/// `workspaces.len()` must equal `config.threads`. Returns the launch cost
/// report; side effects happen through the workspaces (which typically hold
/// `&mut` rows of device buffers).
pub fn launch_independent<W, F>(
    spec: &DeviceSpec,
    cost: &CostModel,
    config: LaunchConfig,
    workspaces: Vec<W>,
    kernel: F,
) -> Result<LaunchReport>
where
    W: Send,
    F: Fn(usize, &mut W, &mut ThreadCounters) + Sync,
{
    config.validate(spec)?;
    if workspaces.len() != config.threads {
        return Err(SimError::InvalidLaunch(format!(
            "{} workspaces for {} threads",
            workspaces.len(),
            config.threads
        )));
    }
    let _launch = kcv_obs::phase("gpu.launch");
    // Simulated kernels may emit observability events (e.g. the device
    // sort's comparisons); re-install the caller's recorder scope on each
    // worker so those land in the launching run's recorder.
    let scope = kcv_obs::scope();
    let start = Instant::now();
    let counters: Vec<ThreadCounters> = workspaces
        .into_par_iter()
        .enumerate()
        .map(|(tid, mut ws)| {
            let _in_scope = scope.enter();
            let mut c = ThreadCounters::default();
            kernel(tid, &mut ws, &mut c);
            c
        })
        .collect();
    let host_seconds = start.elapsed().as_secs_f64();
    Ok(build_report(&counters, config, spec, cost, host_seconds))
}

/// Launches an independent kernel that *returns* a value per thread
/// (convenience for gather-style kernels); returns the outputs in thread
/// order plus the cost report.
pub fn launch_map<R, F>(
    spec: &DeviceSpec,
    cost: &CostModel,
    config: LaunchConfig,
    kernel: F,
) -> Result<(Vec<R>, LaunchReport)>
where
    R: Send,
    F: Fn(usize, &mut ThreadCounters) -> R + Sync,
{
    config.validate(spec)?;
    let _launch = kcv_obs::phase("gpu.launch");
    let scope = kcv_obs::scope();
    let start = Instant::now();
    let pairs: Vec<(R, ThreadCounters)> = (0..config.threads)
        .into_par_iter()
        .map(|tid| {
            let _in_scope = scope.enter();
            let mut c = ThreadCounters::default();
            let r = kernel(tid, &mut c);
            (r, c)
        })
        .collect();
    let host_seconds = start.elapsed().as_secs_f64();
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut counters = Vec::with_capacity(pairs.len());
    for (r, c) in pairs {
        outputs.push(r);
        counters.push(c);
    }
    let report = build_report(&counters, config, spec, cost, host_seconds);
    Ok((outputs, report))
}

/// Launches an independent kernel that both mutates a per-thread workspace
/// *and* returns a value per thread — the shape of a kernel whose stores
/// land in device buffers while its register-resident results are gathered
/// by the host-side simulation driver (e.g. per-thread partial sums handed
/// to a block reduction). Outputs come back in thread order.
pub fn launch_independent_map<W, R, F>(
    spec: &DeviceSpec,
    cost: &CostModel,
    config: LaunchConfig,
    workspaces: Vec<W>,
    kernel: F,
) -> Result<(Vec<R>, LaunchReport)>
where
    W: Send,
    R: Send,
    F: Fn(usize, &mut W, &mut ThreadCounters) -> R + Sync,
{
    config.validate(spec)?;
    if workspaces.len() != config.threads {
        return Err(SimError::InvalidLaunch(format!(
            "{} workspaces for {} threads",
            workspaces.len(),
            config.threads
        )));
    }
    let _launch = kcv_obs::phase("gpu.launch");
    let scope = kcv_obs::scope();
    let start = Instant::now();
    let pairs: Vec<(R, ThreadCounters)> = workspaces
        .into_par_iter()
        .enumerate()
        .map(|(tid, mut ws)| {
            let _in_scope = scope.enter();
            let mut c = ThreadCounters::default();
            let r = kernel(tid, &mut ws, &mut c);
            (r, c)
        })
        .collect();
    let host_seconds = start.elapsed().as_secs_f64();
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut counters = Vec::with_capacity(pairs.len());
    for (r, c) in pairs {
        outputs.push(r);
        counters.push(c);
    }
    let report = build_report(&counters, config, spec, cost, host_seconds);
    Ok((outputs, report))
}

pub(crate) fn build_report(
    counters: &[ThreadCounters],
    config: LaunchConfig,
    spec: &DeviceSpec,
    cost: &CostModel,
    host_seconds: f64,
) -> LaunchReport {
    let mut totals = ThreadCounters::default();
    for c in counters {
        totals.absorb(c);
    }
    let per_thread: Vec<f64> = counters.iter().map(|c| c.cycles(cost)).collect();
    let simulated_cycles = aggregate_cycles(&per_thread, config.threads_per_block, spec);
    // Fold the launch totals into the workspace-wide observability counters
    // so BENCH_report.json sees device traffic next to host-side op counts.
    kcv_obs::add(
        kcv_obs::Counter::MemTransactions,
        totals.global_reads + totals.global_writes + totals.global_coalesced,
    );
    kcv_obs::add(kcv_obs::Counter::GpuSimCycles, simulated_cycles as u64);
    LaunchReport {
        threads: config.threads,
        threads_per_block: config.threads_per_block,
        totals,
        simulated_cycles,
        simulated_seconds: simulated_cycles / spec.clock_hz,
        host_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tesla() -> (DeviceSpec, CostModel) {
        (DeviceSpec::tesla_s10(), CostModel::default())
    }

    #[test]
    fn kernel_mutates_workspaces_in_parallel() {
        let (spec, cost) = tesla();
        let mut data = vec![0.0f32; 1000];
        let workspaces: Vec<&mut [f32]> = data.chunks_mut(10).collect();
        let cfg = LaunchConfig::new(100, 32);
        let report = launch_independent(&spec, &cost, cfg, workspaces, |tid, row, c| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (tid * 10 + j) as f32;
                c.global_write(1);
            }
        })
        .unwrap();
        assert_eq!(report.totals.global_writes, 1000);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn launch_map_collects_in_thread_order() {
        let (spec, cost) = tesla();
        let cfg = LaunchConfig::new(64, 64);
        let (out, report) = launch_map(&spec, &cost, cfg, |tid, c| {
            c.flop(tid as u64);
            tid * 2
        })
        .unwrap();
        assert_eq!(out, (0..64).map(|t| t * 2).collect::<Vec<_>>());
        assert_eq!(report.totals.flops, (0..64).sum::<usize>() as u64);
        assert!(report.simulated_seconds > 0.0);
    }

    #[test]
    fn launch_independent_map_mutates_and_returns() {
        let (spec, cost) = tesla();
        let mut data = vec![0.0f32; 64];
        let workspaces: Vec<&mut f32> = data.iter_mut().collect();
        let cfg = LaunchConfig::new(64, 32);
        let (out, report) =
            launch_independent_map(&spec, &cost, cfg, workspaces, |tid, slot, c| {
                **slot = tid as f32;
                c.global_write(1);
                tid * 3
            })
            .unwrap();
        assert_eq!(out, (0..64).map(|t| t * 3).collect::<Vec<_>>());
        assert_eq!(report.totals.global_writes, 64);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
        // Workspace-count mismatch is rejected like launch_independent.
        let r = launch_independent_map(
            &spec,
            &cost,
            LaunchConfig::new(4, 4),
            vec![(), ()],
            |_, _, _| 0u32,
        );
        assert!(r.is_err());
    }

    #[test]
    fn launch_validation() {
        let (spec, cost) = tesla();
        // Zero threads.
        let r = launch_independent(&spec, &cost, LaunchConfig::new(0, 32), Vec::<()>::new(), |_, _, _| {});
        assert!(r.is_err());
        // Oversized block.
        let r = launch_map(&spec, &cost, LaunchConfig::new(10, 1024), |_, _| ());
        assert!(r.is_err());
        // Workspace mismatch.
        let r = launch_independent(&spec, &cost, LaunchConfig::new(4, 4), vec![(), ()], |_, _, _| {});
        assert!(r.is_err());
    }

    #[test]
    fn divergent_thread_raises_simulated_time() {
        let (spec, cost) = tesla();
        let cfg = LaunchConfig::new(32, 32);
        let (_, uniform) = launch_map(&spec, &cost, cfg, |_, c| c.flop(100)).unwrap();
        let (_, divergent) = launch_map(&spec, &cost, cfg, |tid, c| {
            c.flop(if tid == 0 { 3200 } else { 100 })
        })
        .unwrap();
        assert!(divergent.simulated_cycles > uniform.simulated_cycles * 10.0);
    }

    #[test]
    fn simulated_time_scales_down_with_more_parallelism_than_work() {
        // Same total work split over many blocks beats one serial block
        // chain on a multi-SM device.
        let (spec, cost) = tesla();
        let many_blocks =
            launch_map(&spec, &cost, LaunchConfig::new(960, 32), |_, c| c.flop(1000))
                .unwrap()
                .1;
        let one_block =
            launch_map(&spec, &cost, LaunchConfig::new(960, 512), |_, c| c.flop(1000))
                .unwrap()
                .1;
        // 30 blocks of one warp spread over 30 SMs; 2 blocks of 16 warps
        // pile onto 2 SMs.
        assert!(many_blocks.simulated_cycles < one_block.simulated_cycles);
    }
}
