//! Cooperative (single-block, barrier-synchronised) kernels.
//!
//! CUDA reductions interleave shared-memory phases with `__syncthreads()`.
//! The simulator models this with *barrier phases*: [`CooperativeBlock::step`]
//! runs one closure per thread against a snapshot of shared memory taken at
//! the last barrier, buffers every shared-memory write, and applies the
//! writes when all threads finish — which is exactly the semantics a
//! *correct* CUDA program (no intra-phase races) relies on. As a bonus the
//! simulator detects intra-phase write conflicts and reports them as
//! [`SimError::SharedMemoryRace`] instead of silently producing one of the
//! racy outcomes.

use crate::cost::{CostModel, LaunchReport, ThreadCounters};
use crate::device::DeviceSpec;
use crate::error::{Result, SimError};
use crate::launch::{build_report, LaunchConfig};
use rayon::prelude::*;
use std::time::Instant;

/// Buffered shared-memory writes from one thread within one phase.
#[derive(Debug, Default)]
pub struct SharedWrites {
    writes: Vec<(usize, f32)>,
}

impl SharedWrites {
    /// Schedules `shared[index] = value` to take effect at the next barrier.
    pub fn write(&mut self, index: usize, value: f32) {
        self.writes.push((index, value));
    }
}

/// A single thread block executing barrier-separated phases over a shared
/// memory array.
#[derive(Debug)]
pub struct CooperativeBlock<'a> {
    spec: &'a DeviceSpec,
    cost: &'a CostModel,
    threads: usize,
    shared: Vec<f32>,
    counters: Vec<ThreadCounters>,
    started: Instant,
}

impl<'a> CooperativeBlock<'a> {
    /// Creates a block of `threads` threads with `shared_len` f32 cells of
    /// shared memory (zero-initialised).
    pub fn new(
        spec: &'a DeviceSpec,
        cost: &'a CostModel,
        threads: usize,
        shared_len: usize,
    ) -> Result<Self> {
        if threads == 0 {
            return Err(SimError::InvalidLaunch("block has zero threads".into()));
        }
        if threads > spec.max_threads_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "block size {threads} exceeds device maximum {}",
                spec.max_threads_per_block
            )));
        }
        Ok(Self {
            spec,
            cost,
            threads,
            shared: vec![0.0; shared_len],
            counters: vec![ThreadCounters::default(); threads],
            started: Instant::now(),
        })
    }

    /// Number of threads in the block.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Read-only view of shared memory as of the last barrier.
    pub fn shared(&self) -> &[f32] {
        &self.shared
    }

    /// Runs one barrier phase: `body(tid, shared, counters, writes)` for
    /// every thread against the current shared snapshot, then applies the
    /// buffered writes and charges one `__syncthreads` per thread.
    ///
    /// Returns an error if two different threads wrote the same cell (data
    /// race) or any write was out of bounds.
    pub fn step<F>(&mut self, body: F) -> Result<()>
    where
        F: Fn(usize, &[f32], &mut ThreadCounters, &mut SharedWrites) + Sync,
    {
        let shared = &self.shared;
        // Re-install the caller's recorder scope on each worker so any
        // observability events the body emits land in the caller's run.
        let scope = kcv_obs::scope();
        let results: Vec<(ThreadCounters, SharedWrites)> = (0..self.threads)
            .into_par_iter()
            .map(|tid| {
                let _in_scope = scope.enter();
                let mut c = ThreadCounters::default();
                let mut w = SharedWrites::default();
                body(tid, shared, &mut c, &mut w);
                c.sync();
                (c, w)
            })
            .collect();

        // Apply writes in thread order, detecting cross-thread conflicts.
        let mut writer: Vec<Option<usize>> = vec![None; self.shared.len()];
        for (tid, (c, w)) in results.into_iter().enumerate() {
            self.counters[tid].absorb(&c);
            for (idx, val) in w.writes {
                if idx >= self.shared.len() {
                    return Err(SimError::SharedMemoryOutOfBounds {
                        index: idx,
                        len: self.shared.len(),
                    });
                }
                match writer[idx] {
                    Some(prev) if prev != tid => {
                        return Err(SimError::SharedMemoryRace { index: idx, threads: (prev, tid) });
                    }
                    _ => writer[idx] = Some(tid),
                }
                self.shared[idx] = val;
            }
        }
        Ok(())
    }

    /// Finishes the block, returning the final shared memory and the cost
    /// report (single block ⇒ `threads_per_block = threads`).
    pub fn finish(self) -> (Vec<f32>, LaunchReport) {
        let config = LaunchConfig::new(self.threads, self.threads);
        let host_seconds = self.started.elapsed().as_secs_f64();
        let report = build_report(&self.counters, config, self.spec, self.cost, host_seconds);
        (self.shared, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tesla() -> (DeviceSpec, CostModel) {
        (DeviceSpec::tesla_s10(), CostModel::default())
    }

    #[test]
    fn phases_see_previous_phase_writes() {
        let (spec, cost) = tesla();
        let mut block = CooperativeBlock::new(&spec, &cost, 4, 4).unwrap();
        block
            .step(|tid, _s, c, w| {
                c.shared_access(1);
                w.write(tid, tid as f32);
            })
            .unwrap();
        assert_eq!(block.shared(), &[0.0, 1.0, 2.0, 3.0]);
        block
            .step(|tid, s, c, w| {
                c.shared_access(2);
                w.write(tid, s[tid] * 10.0);
            })
            .unwrap();
        assert_eq!(block.shared(), &[0.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn intra_phase_snapshot_semantics() {
        // Thread 0 writes cell 1; thread 1 reads cell 1 in the SAME phase
        // and must see the pre-phase value (0), not the new one.
        let (spec, cost) = tesla();
        let mut block = CooperativeBlock::new(&spec, &cost, 2, 3).unwrap();
        block
            .step(|tid, s, _c, w| {
                if tid == 0 {
                    w.write(1, 42.0);
                } else {
                    w.write(2, s[1] + 1.0);
                }
            })
            .unwrap();
        assert_eq!(block.shared(), &[0.0, 42.0, 1.0]);
    }

    #[test]
    fn cross_thread_write_conflict_is_a_race() {
        let (spec, cost) = tesla();
        let mut block = CooperativeBlock::new(&spec, &cost, 2, 1).unwrap();
        let err = block.step(|_tid, _s, _c, w| w.write(0, 1.0)).unwrap_err();
        assert!(matches!(err, SimError::SharedMemoryRace { index: 0, .. }));
    }

    #[test]
    fn same_thread_may_rewrite_a_cell() {
        let (spec, cost) = tesla();
        let mut block = CooperativeBlock::new(&spec, &cost, 1, 1).unwrap();
        block
            .step(|_tid, _s, _c, w| {
                w.write(0, 1.0);
                w.write(0, 2.0);
            })
            .unwrap();
        assert_eq!(block.shared(), &[2.0]);
    }

    #[test]
    fn out_of_bounds_write_is_reported() {
        let (spec, cost) = tesla();
        let mut block = CooperativeBlock::new(&spec, &cost, 1, 2).unwrap();
        let err = block.step(|_t, _s, _c, w| w.write(5, 0.0)).unwrap_err();
        assert_eq!(err, SimError::SharedMemoryOutOfBounds { index: 5, len: 2 });
    }

    #[test]
    fn sync_cost_charged_per_phase() {
        let (spec, cost) = tesla();
        let mut block = CooperativeBlock::new(&spec, &cost, 8, 8).unwrap();
        block.step(|_t, _s, _c, _w| {}).unwrap();
        block.step(|_t, _s, _c, _w| {}).unwrap();
        let (_, report) = block.finish();
        assert_eq!(report.totals.syncs, 16); // 8 threads × 2 barriers
    }

    #[test]
    fn oversized_block_rejected() {
        let (spec, cost) = tesla();
        assert!(CooperativeBlock::new(&spec, &cost, 513, 1).is_err());
        assert!(CooperativeBlock::new(&spec, &cost, 0, 1).is_err());
    }
}
