//! The first-order cost model: per-thread operation counters, warp-level
//! lockstep aggregation, and SM scheduling into simulated cycles.
//!
//! Device code is *instrumented*, CUDA-profiler style: kernels report their
//! operations through [`ThreadCounters`] and the model converts counts into
//! cycles. The model is deliberately first-order — it captures the
//! magnitudes that drive the paper's results (arithmetic volume, global
//! traffic, warp lockstep, core count) without simulating pipelines.

use crate::device::DeviceSpec;
use crate::error::{Result, SimError};

/// Cycle costs per operation class (loosely Tesla-era figures).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cycles per floating-point operation.
    pub flop: f64,
    /// Cycles per *uncoalesced* global-memory access: the warp's lanes hit
    /// scattered addresses, so each lane pays a full transaction.
    pub global_access: f64,
    /// Cycles per *coalesced* global-memory access: the warp's lanes hit
    /// consecutive addresses and share transactions (Tesla-era hardware
    /// made this an order-of-magnitude difference — the reason for the
    /// paper's §IV-B index switch).
    pub global_access_coalesced: f64,
    /// Cycles per shared-memory access.
    pub shared_access: f64,
    /// Cycles per constant-memory access (cache-resident).
    pub constant_access: f64,
    /// Cycles per branch/compare.
    pub branch: f64,
    /// Cycles per `__syncthreads` barrier.
    pub sync: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            flop: 1.0,
            global_access: 200.0,
            global_access_coalesced: 25.0,
            shared_access: 2.0,
            constant_access: 1.0,
            branch: 1.0,
            sync: 20.0,
        }
    }
}

/// Per-thread operation counts, filled in by instrumented device code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadCounters {
    /// Floating-point operations.
    pub flops: u64,
    /// Global-memory reads (uncoalesced).
    pub global_reads: u64,
    /// Global-memory writes (uncoalesced).
    pub global_writes: u64,
    /// Coalesced global-memory accesses (reads or writes where the warp's
    /// lanes touch consecutive addresses).
    pub global_coalesced: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// Constant-memory reads.
    pub constant_reads: u64,
    /// Branches / comparisons.
    pub branches: u64,
    /// Barrier synchronisations.
    pub syncs: u64,
}

impl ThreadCounters {
    /// Records `n` floating-point operations.
    #[inline]
    pub fn flop(&mut self, n: u64) {
        self.flops += n;
    }
    /// Records `n` global-memory reads.
    #[inline]
    pub fn global_read(&mut self, n: u64) {
        self.global_reads += n;
    }
    /// Records `n` global-memory writes.
    #[inline]
    pub fn global_write(&mut self, n: u64) {
        self.global_writes += n;
    }
    /// Records `n` coalesced global-memory accesses.
    #[inline]
    pub fn global_coalesced(&mut self, n: u64) {
        self.global_coalesced += n;
    }
    /// Records `n` shared-memory accesses.
    #[inline]
    pub fn shared_access(&mut self, n: u64) {
        self.shared_accesses += n;
    }
    /// Records `n` constant-memory reads.
    #[inline]
    pub fn constant_read(&mut self, n: u64) {
        self.constant_reads += n;
    }
    /// Records `n` branches/comparisons.
    #[inline]
    pub fn branch(&mut self, n: u64) {
        self.branches += n;
    }
    /// Records a barrier synchronisation.
    #[inline]
    pub fn sync(&mut self) {
        self.syncs += 1;
    }

    /// Merges another counter set into this one.
    pub fn absorb(&mut self, other: &ThreadCounters) {
        self.flops += other.flops;
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.global_coalesced += other.global_coalesced;
        self.shared_accesses += other.shared_accesses;
        self.constant_reads += other.constant_reads;
        self.branches += other.branches;
        self.syncs += other.syncs;
    }

    /// Converts the counts to cycles under `model`.
    pub fn cycles(&self, model: &CostModel) -> f64 {
        self.flops as f64 * model.flop
            + (self.global_reads + self.global_writes) as f64 * model.global_access
            + self.global_coalesced as f64 * model.global_access_coalesced
            + self.shared_accesses as f64 * model.shared_access
            + self.constant_reads as f64 * model.constant_access
            + self.branches as f64 * model.branch
            + self.syncs as f64 * model.sync
    }
}

/// Cost summary for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Threads launched.
    pub threads: usize,
    /// Threads per block used.
    pub threads_per_block: usize,
    /// Aggregate operation counts over all threads.
    pub totals: ThreadCounters,
    /// Simulated device cycles for the launch (warp-lockstep, SM-scheduled).
    pub simulated_cycles: f64,
    /// Simulated seconds (`cycles / clock`).
    pub simulated_seconds: f64,
    /// Host wall-clock seconds the simulation itself took (for harness
    /// bookkeeping; not a device-time estimate).
    pub host_seconds: f64,
}

impl std::fmt::Display for ThreadCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flops={} global_r={} global_w={} coalesced={} shared={} constant={} branches={} syncs={}",
            self.flops,
            self.global_reads,
            self.global_writes,
            self.global_coalesced,
            self.shared_accesses,
            self.constant_reads,
            self.branches,
            self.syncs
        )
    }
}

impl std::fmt::Display for LaunchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "launch: {} threads × {} per block",
            self.threads, self.threads_per_block
        )?;
        writeln!(f, "  ops     : {}", self.totals)?;
        writeln!(
            f,
            "  device  : {:.3e} cycles = {:.6} s simulated",
            self.simulated_cycles, self.simulated_seconds
        )?;
        write!(f, "  host    : {:.3} s to simulate", self.host_seconds)
    }
}

/// Aggregates per-thread cycle counts into device cycles:
///
/// 1. threads are grouped into warps of `warp_size` consecutive ids; a warp
///    executes in lockstep, so its cost is the *maximum* over its threads
///    (divergent threads make the whole warp wait — the SIMT penalty);
/// 2. warps are grouped into blocks of `threads_per_block`;
/// 3. blocks are distributed round-robin over the SMs; each SM issues one
///    warp's lanes over `warp_size / cores_per_sm` passes (8 cores per SM on
///    Tesla ⇒ 4 passes per 32-wide warp);
/// 4. device time is the busiest SM.
pub fn aggregate_cycles(
    per_thread_cycles: &[f64],
    threads_per_block: usize,
    spec: &DeviceSpec,
) -> f64 {
    if per_thread_cycles.is_empty() {
        return 0.0;
    }
    let warp = spec.warp_size.max(1);
    let lane_passes = (warp as f64 / spec.cores_per_sm as f64).max(1.0);

    // Warp cost = max over member threads.
    let warp_cycles: Vec<f64> = per_thread_cycles
        .chunks(warp)
        .map(|c| c.iter().copied().fold(0.0_f64, f64::max) * lane_passes)
        .collect();

    // Group warps into blocks.
    let warps_per_block = threads_per_block.div_ceil(warp).max(1);
    let block_cycles: Vec<f64> = warp_cycles
        .chunks(warps_per_block)
        .map(|ws| ws.iter().sum::<f64>())
        .collect();

    // Round-robin blocks over SMs; device time = busiest SM, degraded by
    // the occupancy efficiency of the chosen block size (few resident
    // warps → exposed memory latency; the paper's 512-thread tuning).
    let num_sms = spec.num_sms.max(1);
    let mut sm_loads = vec![0.0_f64; num_sms];
    for (b, &cycles) in block_cycles.iter().enumerate() {
        sm_loads[b % num_sms] += cycles;
    }
    let busiest = sm_loads.into_iter().fold(0.0_f64, f64::max);
    busiest / spec.occupancy_efficiency(threads_per_block)
}

/// The fastest entry of a `(threads_per_block, simulated_time)` tuning
/// table: minimal time, ties resolved to the **larger** block size (the
/// paper's §IV-B preference for "the maximum possible on the GPU being
/// used").
///
/// # Errors
/// [`SimError::InvalidLaunch`] when the table is empty — callers sweeping a
/// configurable block-size list must not assume it is populated.
pub fn fastest_timing(times: &[(usize, f64)]) -> Result<(usize, f64)> {
    times
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        .ok_or_else(|| SimError::InvalidLaunch("empty block-size timing table".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_convert_to_cycles() {
        let model = CostModel::default();
        let mut c = ThreadCounters::default();
        c.flop(10);
        c.global_read(2);
        c.global_write(1);
        c.global_coalesced(4);
        c.shared_access(5);
        c.constant_read(3);
        c.branch(4);
        c.sync();
        let expected = 10.0 + 3.0 * 200.0 + 4.0 * 25.0 + 5.0 * 2.0 + 3.0 + 4.0 + 20.0;
        assert!((c.cycles(&model) - expected).abs() < 1e-12);
    }

    #[test]
    fn coalesced_access_is_much_cheaper() {
        let model = CostModel::default();
        let mut strided = ThreadCounters::default();
        strided.global_read(100);
        let mut coalesced = ThreadCounters::default();
        coalesced.global_coalesced(100);
        assert!(strided.cycles(&model) >= 4.0 * coalesced.cycles(&model));
    }

    #[test]
    fn absorb_sums_counts() {
        let mut a = ThreadCounters { flops: 1, ..Default::default() };
        let b = ThreadCounters { flops: 2, global_reads: 5, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.flops, 3);
        assert_eq!(a.global_reads, 5);
    }

    #[test]
    fn warp_lockstep_takes_the_max() {
        // One slow thread in a warp dominates the whole warp.
        let spec = DeviceSpec::tesla_s10();
        let mut cycles = vec![1.0; 32];
        let uniform = aggregate_cycles(&cycles, 32, &spec);
        cycles[7] = 100.0;
        let divergent = aggregate_cycles(&cycles, 32, &spec);
        assert!((divergent / uniform - 100.0).abs() < 1e-9);
    }

    #[test]
    fn more_sms_reduce_device_time() {
        // 60 blocks of one warp each, uniform cost.
        let cycles = vec![1.0; 60 * 32];
        let tesla = aggregate_cycles(&cycles, 32, &DeviceSpec::tesla_s10());
        let modern = aggregate_cycles(&cycles, 32, &DeviceSpec::modern());
        assert!(modern < tesla, "modern {modern} vs tesla {tesla}");
    }

    #[test]
    fn lane_passes_model_quarter_warp_issue() {
        // Tesla: 8 cores/SM → a 32-wide warp needs 4 passes (raw 40 cycles);
        // a 32-thread block reaches only 8 resident warps of the 24 needed
        // to hide latency, so the occupancy model triples the time.
        let spec = DeviceSpec::tesla_s10();
        let cycles = vec![10.0; 32];
        let t = aggregate_cycles(&cycles, 32, &spec);
        assert!((t - 120.0).abs() < 1e-9, "got {t}");
        // At the paper's 512-thread blocks, occupancy is full: raw cost.
        let cycles512 = vec![10.0; 512];
        let t512 = aggregate_cycles(&cycles512, 512, &spec);
        assert!((t512 - 16.0 * 40.0).abs() < 1e-9, "got {t512}");
    }

    #[test]
    fn paper_block_size_tuning_512_is_fastest() {
        // §IV-B: "The fastest performance was found with threads per block
        // set to 512, the maximum possible on the GPU being used." At the
        // paper's scale (one thread per observation, n in the tens of
        // thousands) every SM is saturated with blocks, so the occupancy
        // effect — small blocks leave too few resident warps to hide
        // memory latency — is what differentiates block sizes.
        let spec = DeviceSpec::tesla_s10();
        let cycles = vec![100.0; 30 * 1024];
        let times: Vec<(usize, f64)> = [32usize, 64, 128, 256, 512]
            .iter()
            .map(|&tpb| (tpb, aggregate_cycles(&cycles, tpb, &spec)))
            .collect();
        let (best_tpb, t512) = fastest_timing(&times).expect("non-empty sweep");
        assert_eq!(best_tpb, 512, "fastest block size should be 512: {times:?}");
        for &(tpb, t) in &times {
            assert!(t512 <= t + 1e-9, "512 should be no slower than {tpb}: {times:?}");
        }
        let t64 = times[1].1;
        assert!(t512 < t64, "512 should strictly beat 64: {times:?}");
        // And the ranking is monotone in block size here.
        for w in times.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "times: {times:?}");
        }
    }

    #[test]
    fn empty_launch_costs_nothing() {
        assert_eq!(aggregate_cycles(&[], 32, &DeviceSpec::tesla_s10()), 0.0);
    }

    #[test]
    fn fastest_timing_rejects_an_empty_table_and_breaks_ties_upward() {
        assert!(matches!(fastest_timing(&[]), Err(SimError::InvalidLaunch(_))));
        // Exact tie between 128 and 512: the paper's "maximum possible"
        // preference picks the larger block size.
        let tied = [(64usize, 3.0), (128, 1.0), (512, 1.0)];
        assert_eq!(fastest_timing(&tied).unwrap(), (512, 1.0));
    }

    #[test]
    fn reports_render_for_humans() {
        let mut totals = ThreadCounters::default();
        totals.flop(5);
        totals.global_coalesced(3);
        let report = LaunchReport {
            threads: 64,
            threads_per_block: 32,
            totals,
            simulated_cycles: 1234.5,
            simulated_seconds: 9.5e-7,
            host_seconds: 0.01,
        };
        let text = report.to_string();
        assert!(text.contains("64 threads"));
        assert!(text.contains("flops=5"));
        assert!(text.contains("coalesced=3"));
        assert!(text.contains("simulated"));
    }

    #[test]
    fn blocks_balance_across_sms() {
        let spec = DeviceSpec::tesla_s10(); // 30 SMs
        // 30 blocks of one warp → one block per SM → device time = 1 block.
        let one_per_sm = vec![1.0; 30 * 32];
        let t1 = aggregate_cycles(&one_per_sm, 32, &spec);
        // 31 blocks → one SM gets two.
        let uneven = vec![1.0; 31 * 32];
        let t2 = aggregate_cycles(&uneven, 32, &spec);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
