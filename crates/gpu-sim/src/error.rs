//! Error types for the SPMD GPU simulator.

use std::fmt;

/// Errors produced by device memory management and kernel launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A global-memory allocation exceeded the device's remaining capacity.
    ///
    /// This is exactly the failure mode that caps the paper's CUDA program
    /// at n = 20 000 (two n×n f32 matrices no longer fit in 4 GB).
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
        /// Total device capacity in bytes.
        capacity: usize,
    },
    /// Data placed in constant memory exceeded the constant-cache working
    /// set (8 KB on the paper's hardware → at most 2 048 f32 bandwidths).
    ConstantMemoryExceeded {
        /// Bytes requested.
        requested: usize,
        /// Constant-cache capacity in bytes.
        capacity: usize,
    },
    /// A host↔device copy had mismatched lengths.
    CopyLengthMismatch {
        /// Device buffer length (elements).
        device_len: usize,
        /// Host slice length (elements).
        host_len: usize,
    },
    /// Launch configuration invalid (zero threads, block size above the
    /// device maximum, workspace count mismatch, …).
    InvalidLaunch(String),
    /// Two threads wrote the same shared-memory cell within one barrier
    /// phase — a data race the simulator detects and reports.
    SharedMemoryRace {
        /// The contended shared-memory index.
        index: usize,
        /// The two racing thread ids.
        threads: (usize, usize),
    },
    /// A shared-memory access was out of bounds.
    SharedMemoryOutOfBounds {
        /// The offending index.
        index: usize,
        /// Shared-memory length.
        len: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested, available, capacity } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B of {capacity} B available"
            ),
            SimError::ConstantMemoryExceeded { requested, capacity } => write!(
                f,
                "constant-cache working set exceeded: {requested} B requested, {capacity} B cache"
            ),
            SimError::CopyLengthMismatch { device_len, host_len } => write!(
                f,
                "copy length mismatch: device buffer has {device_len} elements, host slice {host_len}"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::SharedMemoryRace { index, threads } => write!(
                f,
                "shared-memory data race at index {index} between threads {} and {}",
                threads.0, threads.1
            ),
            SimError::SharedMemoryOutOfBounds { index, len } => {
                write!(f, "shared-memory access at {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let errs: Vec<SimError> = vec![
            SimError::OutOfMemory { requested: 10, available: 5, capacity: 100 },
            SimError::ConstantMemoryExceeded { requested: 9000, capacity: 8192 },
            SimError::CopyLengthMismatch { device_len: 3, host_len: 4 },
            SimError::InvalidLaunch("zero threads".into()),
            SimError::SharedMemoryRace { index: 7, threads: (1, 2) },
            SimError::SharedMemoryOutOfBounds { index: 99, len: 10 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
