//! Error types for the `kcv-core` crate.

use std::fmt;

/// Errors produced by estimation and bandwidth-selection routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// `x` and `y` have different lengths.
    LengthMismatch {
        /// Length of the regressor vector.
        x_len: usize,
        /// Length of the response vector.
        y_len: usize,
    },
    /// The input sample is too small for the requested operation.
    SampleTooSmall {
        /// Number of observations supplied.
        n: usize,
        /// Minimum number required.
        required: usize,
    },
    /// A supplied bandwidth was zero, negative, or non-finite.
    InvalidBandwidth(f64),
    /// The bandwidth grid is empty or not strictly increasing.
    InvalidGrid(&'static str),
    /// Input data contained a NaN or infinity.
    NonFiniteData {
        /// Name of the offending input ("x" or "y").
        which: &'static str,
        /// Index of the first non-finite value.
        index: usize,
    },
    /// Every candidate bandwidth produced an all-excluded (`M(X_i) = 0` for
    /// all `i`) cross-validation score, so no optimum exists.
    NoValidBandwidth,
    /// A numerical optimiser failed to converge within its iteration budget.
    OptimiserDiverged {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A degenerate regressor (zero domain: all `x` equal) was supplied.
    DegenerateDomain,
    /// Dimension mismatch in multivariate input.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// A constructor or configuration parameter was out of its documented
    /// range (e.g. a zero window capacity or re-selection cadence).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The requirement it violated.
        requirement: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LengthMismatch { x_len, y_len } => {
                write!(f, "x has {x_len} observations but y has {y_len}")
            }
            Error::SampleTooSmall { n, required } => {
                write!(f, "sample of {n} observations is below the required {required}")
            }
            Error::InvalidBandwidth(h) => {
                write!(f, "bandwidth {h} is not a finite positive number")
            }
            Error::InvalidGrid(msg) => write!(f, "invalid bandwidth grid: {msg}"),
            Error::NonFiniteData { which, index } => {
                write!(f, "non-finite value in {which} at index {index}")
            }
            Error::NoValidBandwidth => {
                write!(f, "no bandwidth produced a valid cross-validation score")
            }
            Error::OptimiserDiverged { iterations } => {
                write!(f, "numerical optimiser failed to converge after {iterations} iterations")
            }
            Error::DegenerateDomain => {
                write!(f, "regressor is degenerate: all x values are identical")
            }
            Error::DimensionMismatch { expected, found } => {
                write!(f, "expected dimension {expected}, found {found}")
            }
            Error::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter {name}: must be {requirement}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Validates a paired regression sample, returning its length.
///
/// Checks equal lengths, a minimum size, and that every value is finite.
pub fn validate_sample(x: &[f64], y: &[f64], min_n: usize) -> Result<usize> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch { x_len: x.len(), y_len: y.len() });
    }
    if x.len() < min_n {
        return Err(Error::SampleTooSmall { n: x.len(), required: min_n });
    }
    if let Some(i) = x.iter().position(|v| !v.is_finite()) {
        return Err(Error::NonFiniteData { which: "x", index: i });
    }
    if let Some(i) = y.iter().position(|v| !v.is_finite()) {
        return Err(Error::NonFiniteData { which: "y", index: i });
    }
    Ok(x.len())
}

/// Validates a bandwidth value.
pub fn validate_bandwidth(h: f64) -> Result<f64> {
    if h.is_finite() && h > 0.0 {
        Ok(h)
    } else {
        Err(Error::InvalidBandwidth(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_sample_accepts_good_input() {
        assert_eq!(validate_sample(&[1.0, 2.0], &[3.0, 4.0], 2), Ok(2));
    }

    #[test]
    fn validate_sample_rejects_length_mismatch() {
        let err = validate_sample(&[1.0], &[1.0, 2.0], 1).unwrap_err();
        assert_eq!(err, Error::LengthMismatch { x_len: 1, y_len: 2 });
    }

    #[test]
    fn validate_sample_rejects_small_samples() {
        let err = validate_sample(&[1.0], &[1.0], 2).unwrap_err();
        assert_eq!(err, Error::SampleTooSmall { n: 1, required: 2 });
    }

    #[test]
    fn validate_sample_rejects_nan_x() {
        let err = validate_sample(&[1.0, f64::NAN], &[1.0, 2.0], 1).unwrap_err();
        assert_eq!(err, Error::NonFiniteData { which: "x", index: 1 });
    }

    #[test]
    fn validate_sample_rejects_infinite_y() {
        let err = validate_sample(&[1.0, 2.0], &[f64::INFINITY, 2.0], 1).unwrap_err();
        assert_eq!(err, Error::NonFiniteData { which: "y", index: 0 });
    }

    #[test]
    fn validate_bandwidth_accepts_positive() {
        assert_eq!(validate_bandwidth(0.5), Ok(0.5));
    }

    #[test]
    fn validate_bandwidth_rejects_zero_negative_nan() {
        assert!(validate_bandwidth(0.0).is_err());
        assert!(validate_bandwidth(-1.0).is_err());
        assert!(validate_bandwidth(f64::NAN).is_err());
    }

    #[test]
    fn errors_display_without_panicking() {
        let errors = [
            Error::LengthMismatch { x_len: 1, y_len: 2 },
            Error::SampleTooSmall { n: 1, required: 2 },
            Error::InvalidBandwidth(-1.0),
            Error::InvalidGrid("empty"),
            Error::NonFiniteData { which: "x", index: 0 },
            Error::NoValidBandwidth,
            Error::OptimiserDiverged { iterations: 100 },
            Error::DegenerateDomain,
            Error::DimensionMismatch { expected: 2, found: 3 },
            Error::InvalidParameter { name: "capacity", requirement: "at least 2" },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
