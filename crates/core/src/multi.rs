//! Multivariate kernel regression with product kernels — a forward-looking
//! extension ("an evenly-spaced grid or matrix in multivariate contexts",
//! §I). The weight of observation `l` at point `x` is
//! `Π_j K((x_j − X_lj)/h_j)` with one bandwidth per regressor.
//!
//! Full per-dimension grid search is `O(kᵈ·n²)`; following common practice
//! the selector here searches over a *scalar multiplier* of a per-dimension
//! rule-of-thumb base vector, which keeps the grid one-dimensional while
//! still adapting every coordinate's scale.

use crate::error::{Error, Result};
use crate::kernels::Kernel;
use crate::select::rule_of_thumb::silverman_bandwidth;

/// Multivariate product-kernel Nadaraya–Watson estimator.
#[derive(Debug, Clone)]
pub struct MultiNadarayaWatson<'a, K: Kernel> {
    columns: &'a [Vec<f64>],
    y: &'a [f64],
    kernel: K,
    bandwidths: Vec<f64>,
}

impl<'a, K: Kernel> MultiNadarayaWatson<'a, K> {
    /// Constructs the estimator from `d` regressor columns (each of length
    /// `n`), responses, and a per-dimension bandwidth vector.
    pub fn new(
        columns: &'a [Vec<f64>],
        y: &'a [f64],
        kernel: K,
        bandwidths: Vec<f64>,
    ) -> Result<Self> {
        if columns.is_empty() {
            return Err(Error::DimensionMismatch { expected: 1, found: 0 });
        }
        let n = y.len();
        if n < 2 {
            return Err(Error::SampleTooSmall { n, required: 2 });
        }
        for col in columns {
            if col.len() != n {
                return Err(Error::LengthMismatch { x_len: col.len(), y_len: n });
            }
            if let Some(i) = col.iter().position(|v| !v.is_finite()) {
                return Err(Error::NonFiniteData { which: "x", index: i });
            }
        }
        if bandwidths.len() != columns.len() {
            return Err(Error::DimensionMismatch {
                expected: columns.len(),
                found: bandwidths.len(),
            });
        }
        for &h in &bandwidths {
            crate::error::validate_bandwidth(h)?;
        }
        Ok(Self { columns, y, kernel, bandwidths })
    }

    /// Number of regressors `d`.
    pub fn dim(&self) -> usize {
        self.columns.len()
    }

    /// Number of observations `n`.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the sample is empty (cannot occur through the constructor).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Product-kernel weight of observation `l` at `point`.
    fn weight(&self, point: &[f64], l: usize) -> f64 {
        let mut w = 1.0;
        for (j, col) in self.columns.iter().enumerate() {
            w *= self.kernel.eval((point[j] - col[l]) / self.bandwidths[j]);
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// Predicts `E[Y | X = point]`; `None` on zero weight mass.
    pub fn predict(&self, point: &[f64]) -> Result<Option<f64>> {
        if point.len() != self.dim() {
            return Err(Error::DimensionMismatch { expected: self.dim(), found: point.len() });
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for l in 0..self.len() {
            let w = self.weight(point, l);
            num += self.y[l] * w;
            den += w;
        }
        Ok((den > 0.0).then(|| num / den))
    }

    /// Leave-one-out prediction at sample point `i`.
    pub fn loo_predict(&self, i: usize) -> Option<f64> {
        assert!(i < self.len(), "loo index {i} out of bounds");
        let point: Vec<f64> = self.columns.iter().map(|c| c[i]).collect();
        let mut num = 0.0;
        let mut den = 0.0;
        for l in 0..self.len() {
            if l == i {
                continue;
            }
            let w = self.weight(&point, l);
            num += self.y[l] * w;
            den += w;
        }
        (den > 0.0).then(|| num / den)
    }

    /// The CV score `(1/n) Σ (Y_i − ĝ_{-i})² M_i` for this bandwidth vector.
    pub fn cv_score(&self) -> f64 {
        let n = self.len();
        let mut sum = 0.0;
        for i in 0..n {
            if let Some(g) = self.loo_predict(i) {
                let r = self.y[i] - g;
                sum += r * r;
            }
        }
        sum / n as f64
    }
}

/// Result of the scalar-multiplier multivariate bandwidth search.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSelection {
    /// The selected per-dimension bandwidths.
    pub bandwidths: Vec<f64>,
    /// The scalar multiplier applied to the base vector.
    pub multiplier: f64,
    /// The CV score at the optimum.
    pub score: f64,
}

/// Selects per-dimension bandwidths by grid-searching a scalar multiplier
/// `c ∈ [c_min, c_max]` of the per-dimension Silverman base vector.
pub fn select_multiplier_grid<K: Kernel + Clone>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    multipliers: &[f64],
) -> Result<MultiSelection> {
    if multipliers.is_empty() {
        return Err(Error::InvalidGrid("empty multiplier grid"));
    }
    let base: Vec<f64> = columns
        .iter()
        .map(|col| silverman_bandwidth(col, kernel))
        .collect::<Result<_>>()?;
    let mut best: Option<MultiSelection> = None;
    for &c in multipliers {
        if !(c.is_finite() && c > 0.0) {
            return Err(Error::InvalidGrid("multipliers must be finite and positive"));
        }
        let hs: Vec<f64> = base.iter().map(|&b| b * c).collect();
        let est = MultiNadarayaWatson::new(columns, y, kernel.clone(), hs.clone())?;
        let score = est.cv_score();
        // Skip multipliers that exclude everyone (score exactly 0 with no
        // included observations would otherwise win spuriously).
        let included = (0..y.len()).filter(|&i| est.loo_predict(i).is_some()).count();
        if included == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|b| score < b.score) {
            best = Some(MultiSelection { bandwidths: hs, multiplier: c, score });
        }
    }
    best.ok_or(Error::NoValidBandwidth)
}

/// Selects per-dimension bandwidths over the *full* Cartesian grid — the
/// "evenly-spaced grid or matrix in multivariate contexts" of the paper's
/// §I. Cost is `O(kᵈ·n²)`, so this is practical for small `d` and `k`;
/// the grid points are evaluated in parallel with rayon.
pub fn select_full_grid<K: Kernel + Clone + Sync>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    per_dim_grids: &[Vec<f64>],
) -> Result<MultiSelection> {
    use rayon::prelude::*;
    if per_dim_grids.len() != columns.len() {
        return Err(Error::DimensionMismatch {
            expected: columns.len(),
            found: per_dim_grids.len(),
        });
    }
    let mut total = 1usize;
    for g in per_dim_grids {
        if g.is_empty() {
            return Err(Error::InvalidGrid("empty per-dimension grid"));
        }
        if g.iter().any(|&h| !(h.is_finite() && h > 0.0)) {
            return Err(Error::InvalidGrid("bandwidths must be finite and positive"));
        }
        total = total
            .checked_mul(g.len())
            .ok_or(Error::InvalidGrid("grid product overflows"))?;
    }
    if total > 1_000_000 {
        return Err(Error::InvalidGrid("full grid exceeds 1e6 points; use the multiplier search"));
    }

    // Enumerate the Cartesian product by mixed-radix decoding of an index.
    let decode = |mut idx: usize| -> Vec<f64> {
        let mut hs = Vec::with_capacity(per_dim_grids.len());
        for g in per_dim_grids {
            hs.push(g[idx % g.len()]);
            idx /= g.len();
        }
        hs
    };

    let best = (0..total)
        .into_par_iter()
        .map(|idx| {
            let hs = decode(idx);
            let est = MultiNadarayaWatson::new(columns, y, kernel.clone(), hs.clone())
                .expect("validated inputs");
            let included = (0..y.len()).filter(|&i| est.loo_predict(i).is_some()).count();
            (hs, est.cv_score(), included)
        })
        .filter(|(_, _, included)| *included > 0)
        .min_by(|a, b| a.1.total_cmp(&b.1));

    match best {
        Some((bandwidths, score, _)) => Ok(MultiSelection { bandwidths, multiplier: f64::NAN, score }),
        None => Err(Error::NoValidBandwidth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    fn dgp2(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x1: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let x2: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x1
            .iter()
            .zip(&x2)
            .map(|(&a, &b)| a + 2.0 * b * b + 0.1 * rng.next_f64())
            .collect();
        (vec![x1, x2], y)
    }

    #[test]
    fn constant_response_recovered() {
        let (cols, _) = dgp2(50, 101);
        let y = vec![7.0; 50];
        let est = MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.3, 0.3]).unwrap();
        let g = est.predict(&[0.5, 0.5]).unwrap().unwrap();
        assert!((g - 7.0).abs() < 1e-10);
    }

    #[test]
    fn univariate_case_matches_scalar_estimator() {
        use crate::estimate::{NadarayaWatson, RegressionEstimator};
        let mut rng = SplitMix64::new(102);
        let x: Vec<f64> = (0..60).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x.iter().map(|&v| v * v + rng.next_f64() * 0.1).collect();
        let cols = vec![x.clone()];
        let multi = MultiNadarayaWatson::new(&cols, &y, Epanechnikov, vec![0.2]).unwrap();
        let scalar = NadarayaWatson::new(&x, &y, Epanechnikov, 0.2).unwrap();
        for &p in &[0.1, 0.5, 0.9] {
            let a = multi.predict(&[p]).unwrap();
            let b = scalar.predict(p);
            match (a, b) {
                (Some(ga), Some(gb)) => assert!((ga - gb).abs() < 1e-12),
                (None, None) => {}
                other => panic!("disagreement at {p}: {other:?}"),
            }
        }
        assert!((multi.cv_score() - scalar.cv_score()).abs() < 1e-12);
    }

    #[test]
    fn prediction_tracks_truth_on_smooth_surface() {
        let (cols, y) = dgp2(800, 103);
        let est = MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.07, 0.07]).unwrap();
        let truth = |a: f64, b: f64| a + 2.0 * b * b + 0.05;
        for &(a, b) in &[(0.3, 0.3), (0.5, 0.7), (0.7, 0.2)] {
            let g = est.predict(&[a, b]).unwrap().unwrap();
            assert!((g - truth(a, b)).abs() < 0.15, "at ({a},{b}): {g} vs {}", truth(a, b));
        }
    }

    #[test]
    fn multiplier_search_finds_interior_optimum() {
        let (cols, y) = dgp2(200, 104);
        let multipliers: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let sel = select_multiplier_grid(&cols, &y, &Epanechnikov, &multipliers).unwrap();
        assert_eq!(sel.bandwidths.len(), 2);
        assert!(sel.score.is_finite() && sel.score >= 0.0);
        // The optimum should beat the extremes of the multiplier grid.
        let at = |c: f64| {
            let base: Vec<f64> = cols
                .iter()
                .map(|col| silverman_bandwidth(col, &Epanechnikov).unwrap() * c)
                .collect();
            MultiNadarayaWatson::new(&cols, &y, Epanechnikov, base).unwrap().cv_score()
        };
        assert!(sel.score <= at(0.25) + 1e-12);
        assert!(sel.score <= at(5.0) + 1e-12);
    }

    #[test]
    fn full_grid_beats_or_matches_the_multiplier_search() {
        // The full Cartesian grid explores strictly more bandwidth vectors
        // than the scalar-multiplier path built on the same values.
        let (cols, y) = dgp2(120, 106);
        let g1: Vec<f64> = (1..=6).map(|i| i as f64 * 0.05).collect();
        let g2 = g1.clone();
        let full = select_full_grid(&cols, &y, &Gaussian, &[g1.clone(), g2]).unwrap();
        assert_eq!(full.bandwidths.len(), 2);
        // Any single point of the grid can't beat the full-grid optimum.
        for &h1 in &g1 {
            for &h2 in &g1 {
                let est =
                    MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![h1, h2]).unwrap();
                assert!(full.score <= est.cv_score() + 1e-12);
            }
        }
    }

    #[test]
    fn full_grid_can_pick_anisotropic_bandwidths() {
        // Truth varies fast in x2 (quadratic ×2) and slowly in x1: the
        // selected h2 should not exceed h1.
        let (cols, y) = dgp2(400, 107);
        let grid: Vec<f64> = (1..=8).map(|i| i as f64 * 0.04).collect();
        let sel = select_full_grid(&cols, &y, &Gaussian, &[grid.clone(), grid]).unwrap();
        assert!(
            sel.bandwidths[1] <= sel.bandwidths[0] + 0.04,
            "expected tighter smoothing along the curved dimension: {:?}",
            sel.bandwidths
        );
    }

    #[test]
    fn full_grid_validates_inputs() {
        let (cols, y) = dgp2(30, 108);
        assert!(select_full_grid(&cols, &y, &Gaussian, &[vec![0.1]]).is_err());
        assert!(select_full_grid(&cols, &y, &Gaussian, &[vec![0.1], vec![]]).is_err());
        assert!(select_full_grid(&cols, &y, &Gaussian, &[vec![0.1], vec![-0.1]]).is_err());
        let huge: Vec<f64> = (1..=1_001).map(|i| i as f64 * 1e-3).collect();
        assert!(select_full_grid(&cols, &y, &Gaussian, &[huge.clone(), huge]).is_err());
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let (cols, y) = dgp2(30, 105);
        assert!(MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.1]).is_err());
        let est = MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.1, 0.1]).unwrap();
        assert!(est.predict(&[0.5]).is_err());
    }

    #[test]
    fn empty_columns_rejected() {
        let y = vec![1.0, 2.0];
        let cols: Vec<Vec<f64>> = vec![];
        assert!(MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![]).is_err());
    }
}
