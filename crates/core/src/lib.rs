//! # kcv-core — optimal bandwidth selection for kernel regression
//!
//! Core library of the `kernelcv` workspace: a Rust reproduction of
//! *"Optimal Bandwidth Selection for Kernel Regression Using a Fast Grid
//! Search and a GPU"* (Rohlfs & Zahran, IPPS 2017).
//!
//! The paper's problem: pick the smoothing bandwidth `h` of a
//! Nadaraya–Watson kernel regression by minimising the leave-one-out
//! cross-validation score
//!
//! ```text
//! CV_lc(h) = (1/n) Σ_i (Y_i − ĝ_{-i}(X_i))² M(X_i)
//! ```
//!
//! over a grid of candidates — reliably (no numerical optimisation on a
//! non-concave surface) and fast (a sorting trick turns the `O(k·n²)` grid
//! search into `O(n² log n)`, and the per-observation work is SPMD-parallel).
//!
//! ## Paper notation → public API
//!
//! * `CV_lc(h)` — the local-constant leave-one-out objective above;
//!   computed for a whole grid by [`cv::cv_profile_naive`] /
//!   [`cv::cv_profile_sorted`] / [`cv::cv_profile_merged`] (one
//!   [`cv::CvProfile`] entry per `h`), and
//!   point-wise by the numerical selector's objective. The local-linear
//!   variant `CV_ll(h)` lives in [`cv::cv_profile_sorted_ll`].
//! * `ĝ_{-i}(X_i)` — the leave-one-out Nadaraya–Watson fit at `X_i`
//!   ([`estimate::RegressionEstimator::loo_predict`]).
//! * `M(X_i)` — the indicator that observation `i` has a defined
//!   leave-one-out fit at this bandwidth (some neighbour inside the kernel
//!   support). `CvProfile::included` counts `Σ_i M(X_i)` per bandwidth,
//!   and [`cv::CvProfile::argmin_with_min_included`] guards against
//!   bandwidths so small that `M` discards the sample.
//! * **Sorted-sweep invariant** — for a compactly supported polynomial
//!   kernel, every leave-one-out term inside the support at bandwidth `h₁`
//!   is inside it at every `h₂ > h₁`; after sorting each observation's
//!   neighbour distances ([`sort::sort_with_aux`]) one ascending pass over
//!   the grid maintains running power sums `Σ dⱼ^p`, `Σ Yⱼ dⱼ^p`, absorbing
//!   each neighbour **at most once** regardless of the grid size `k`. This
//!   is the paper's `O(k·n²) → O(n² log n)` saving; the `metrics` feature
//!   (below) counts it.
//!
//! ## Quick start
//!
//! ```
//! use kcv_core::prelude::*;
//!
//! // The paper's data-generating process.
//! let mut rng = kcv_core::util::SplitMix64::new(7);
//! let x: Vec<f64> = (0..200).map(|_| rng.next_f64()).collect();
//! let y: Vec<f64> = x.iter()
//!     .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
//!     .collect();
//!
//! // Sorted grid search over 50 bandwidths (paper defaults), in parallel.
//! let selector = SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(50));
//! let selection = selector.select(&x, &y).unwrap();
//! assert!(selection.bandwidth > 0.0 && selection.bandwidth <= 1.0);
//!
//! // Fit the regression at the selected bandwidth.
//! let fit = NadarayaWatson::new(&x, &y, Epanechnikov, selection.bandwidth).unwrap();
//! let g_half = fit.predict(0.5).unwrap();
//! assert!((g_half - (0.5 * 0.5 + 10.0 * 0.25 + 0.25)).abs() < 0.5);
//! ```
//!
//! ## Module map
//!
//! * [`kernels`] — Epanechnikov (the paper's), Uniform, Triangular,
//!   Quartic, Triweight, Cosine, Gaussian; convolution kernels for KDE-LSCV.
//! * [`sort`] — the iterative quicksort (explicit stack, co-sorted
//!   auxiliary array) the paper runs per GPU thread.
//! * [`grid`] — bandwidth grids with the paper's defaults and the §IV-A
//!   zoom refinement.
//! * [`estimate`] — Nadaraya–Watson and local-linear estimators with
//!   leave-one-out variants; plus the k-NN baseline (§II's Creel & Zubair
//!   contrast) and a linear-binning accelerator.
//! * [`cv`] — the CV profile: naive `O(k·n²)`, sorted `O(n² log n)`,
//!   merged `O(n log n + n·(n + k))` (one global argsort, no
//!   per-observation sort), and rayon-parallel (SPMD) strategies;
//!   local-constant and local-linear.
//! * [`select`] — grid-search, numerical-optimisation (np-style), and
//!   rule-of-thumb selectors behind one trait.
//! * [`density`] — KDE + least-squares CV bandwidths (paper's named
//!   extension) using the same sorted sweep.
//! * [`ci`] — leave-one-out cross-validated confidence bands (paper's named
//!   extension).
//! * [`multi`] — multivariate product-kernel regression (paper's §I grid
//!   "or matrix" remark), selected by the dimension-recursive
//!   fast-sum-updating CV engine in [`multi::fast`] (zero kernel
//!   evaluations at d ≤ 2).
//! * [`bootstrap`] — pairs-bootstrap bands and bandwidth-stability
//!   diagnostics.
//! * [`diagnostics`] — fit quality summaries used by tests and benches.
//!
//! ## Feature `metrics`
//!
//! Builds the `kcv-obs` observability layer in live mode: the CV
//! strategies, the sort, and the selectors then count kernel evaluations,
//! sort comparisons, and compact-support skips, and time their phases
//! (`cv.sort`, `cv.sweep`, `select.argmin`, …). Off by default and
//! genuinely zero-cost when off — every counter call compiles to an empty
//! inline stub. See the `kcv-obs` crate docs and
//! `results/BENCH_report.json` (written by `kcv-bench`'s `experiments`
//! binary) for the consumption side.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod ci;
pub mod cv;
pub mod density;
pub mod diagnostics;
pub mod error;
pub mod estimate;
pub mod grid;
pub mod kernels;
pub mod multi;
pub mod select;
pub mod sort;
pub mod util;

pub mod prelude;

pub use error::{Error, Result};
