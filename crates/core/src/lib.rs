//! # kcv-core — optimal bandwidth selection for kernel regression
//!
//! Core library of the `kernelcv` workspace: a Rust reproduction of
//! *"Optimal Bandwidth Selection for Kernel Regression Using a Fast Grid
//! Search and a GPU"* (Rohlfs & Zahran, IPPS 2017).
//!
//! The paper's problem: pick the smoothing bandwidth `h` of a
//! Nadaraya–Watson kernel regression by minimising the leave-one-out
//! cross-validation score
//!
//! ```text
//! CV_lc(h) = (1/n) Σ_i (Y_i − ĝ_{-i}(X_i))² M(X_i)
//! ```
//!
//! over a grid of candidates — reliably (no numerical optimisation on a
//! non-concave surface) and fast (a sorting trick turns the `O(k·n²)` grid
//! search into `O(n² log n)`, and the per-observation work is SPMD-parallel).
//!
//! ## Quick start
//!
//! ```
//! use kcv_core::prelude::*;
//!
//! // The paper's data-generating process.
//! let mut rng = kcv_core::util::SplitMix64::new(7);
//! let x: Vec<f64> = (0..200).map(|_| rng.next_f64()).collect();
//! let y: Vec<f64> = x.iter()
//!     .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
//!     .collect();
//!
//! // Sorted grid search over 50 bandwidths (paper defaults), in parallel.
//! let selector = SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(50));
//! let selection = selector.select(&x, &y).unwrap();
//! assert!(selection.bandwidth > 0.0 && selection.bandwidth <= 1.0);
//!
//! // Fit the regression at the selected bandwidth.
//! let fit = NadarayaWatson::new(&x, &y, Epanechnikov, selection.bandwidth).unwrap();
//! let g_half = fit.predict(0.5).unwrap();
//! assert!((g_half - (0.5 * 0.5 + 10.0 * 0.25 + 0.25)).abs() < 0.5);
//! ```
//!
//! ## Module map
//!
//! * [`kernels`] — Epanechnikov (the paper's), Uniform, Triangular,
//!   Quartic, Triweight, Cosine, Gaussian; convolution kernels for KDE-LSCV.
//! * [`sort`] — the iterative quicksort (explicit stack, co-sorted
//!   auxiliary array) the paper runs per GPU thread.
//! * [`grid`] — bandwidth grids with the paper's defaults and the §IV-A
//!   zoom refinement.
//! * [`estimate`] — Nadaraya–Watson and local-linear estimators with
//!   leave-one-out variants; plus the k-NN baseline (§II's Creel & Zubair
//!   contrast) and a linear-binning accelerator.
//! * [`cv`] — the CV profile: naive `O(k·n²)`, sorted `O(n² log n)`, and
//!   rayon-parallel (SPMD) strategies; local-constant and local-linear.
//! * [`select`] — grid-search, numerical-optimisation (np-style), and
//!   rule-of-thumb selectors behind one trait.
//! * [`density`] — KDE + least-squares CV bandwidths (paper's named
//!   extension) using the same sorted sweep.
//! * [`ci`] — leave-one-out cross-validated confidence bands (paper's named
//!   extension).
//! * [`multi`] — multivariate product-kernel regression (paper's §I grid
//!   "or matrix" remark).
//! * [`bootstrap`] — pairs-bootstrap bands and bandwidth-stability
//!   diagnostics.
//! * [`diagnostics`] — fit quality summaries used by tests and benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod ci;
pub mod cv;
pub mod density;
pub mod diagnostics;
pub mod error;
pub mod estimate;
pub mod grid;
pub mod kernels;
pub mod multi;
pub mod select;
pub mod sort;
pub mod util;

pub mod prelude;

pub use error::{Error, Result};
