//! Rule-of-thumb bandwidths — the ad hoc shortcuts the paper's introduction
//! says practitioners use *instead of* optimal cross-validation (citing
//! Sheather–Jones and Silverman for the density case).
//!
//! These never evaluate the CV objective; they plug sample spread into an
//! asymptotic formula derived for Gaussian data. They are provided both as
//! baselines and as cheap initialisers for the numerical optimisers.

use super::{BandwidthSelector, Selection};
use crate::error::{validate_sample, Error, Result};
use crate::kernels::Kernel;
use crate::util::{interquartile_range, std_dev};

/// Silverman's rule of thumb:
/// `h = 0.9 · min(σ̂, IQR/1.34) · n^{-1/5}`,
/// rescaled by the kernel's canonical bandwidth ratio relative to the
/// Gaussian (`δ₀(K)/δ₀(φ)`), so it is usable with any kernel.
pub fn silverman_bandwidth<K: Kernel>(x: &[f64], kernel: &K) -> Result<f64> {
    spread_rule(x, kernel, 0.9, true)
}

/// Scott's rule of thumb: `h = 1.06 · σ̂ · n^{-1/5}`, similarly rescaled.
pub fn scott_bandwidth<K: Kernel>(x: &[f64], kernel: &K) -> Result<f64> {
    spread_rule(x, kernel, 1.06, false)
}

fn spread_rule<K: Kernel>(x: &[f64], kernel: &K, c: f64, robust: bool) -> Result<f64> {
    if x.len() < 2 {
        return Err(Error::SampleTooSmall { n: x.len(), required: 2 });
    }
    let sigma = std_dev(x);
    let spread = if robust {
        let iqr = interquartile_range(x) / 1.34;
        if iqr > 0.0 {
            sigma.min(iqr)
        } else {
            sigma
        }
    } else {
        sigma
    };
    if spread <= 0.0 {
        return Err(Error::DegenerateDomain);
    }
    // δ₀(Gaussian) = (R/κ₂²)^{1/5} = (1/(2√π))^{1/5}.
    let gaussian_delta = (0.5 / std::f64::consts::PI.sqrt()).powf(0.2);
    let ratio = kernel.canonical_bandwidth() / gaussian_delta;
    Ok(c * spread * (x.len() as f64).powf(-0.2) * ratio)
}

/// Which rule the [`RuleOfThumbSelector`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Silverman's `0.9·min(σ, IQR/1.34)·n^{-1/5}`.
    Silverman,
    /// Scott's `1.06·σ·n^{-1/5}`.
    Scott,
}

/// A [`BandwidthSelector`] wrapping the plug-in rules. Its `score` field is
/// `NaN`: rules of thumb never look at the objective — that is precisely the
/// shortcoming the paper's fast grid search removes the excuse for.
#[derive(Debug, Clone)]
pub struct RuleOfThumbSelector<K: Kernel> {
    kernel: K,
    rule: Rule,
}

impl<K: Kernel> RuleOfThumbSelector<K> {
    /// Creates a selector applying `rule` with `kernel`'s canonical rescale.
    pub fn new(kernel: K, rule: Rule) -> Self {
        Self { kernel, rule }
    }
}

impl<K: Kernel> BandwidthSelector for RuleOfThumbSelector<K> {
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection> {
        validate_sample(x, y, 2)?;
        let h = match self.rule {
            Rule::Silverman => silverman_bandwidth(x, &self.kernel)?,
            Rule::Scott => scott_bandwidth(x, &self.kernel)?,
        };
        Ok(Selection { bandwidth: h, score: f64::NAN, evaluations: 0, profile: None })
    }

    fn name(&self) -> String {
        let r = match self.rule {
            Rule::Silverman => "silverman",
            Rule::Scott => "scott",
        };
        format!("rot-{r}-{}", self.kernel.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    fn uniform_x(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64()).collect()
    }

    #[test]
    fn silverman_gaussian_matches_textbook_formula() {
        let x = uniform_x(500, 51);
        let h = silverman_bandwidth(&x, &Gaussian).unwrap();
        let sigma = std_dev(&x);
        let iqr = interquartile_range(&x) / 1.34;
        let expected = 0.9 * sigma.min(iqr) * 500f64.powf(-0.2);
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn epanechnikov_rule_is_wider_than_gaussian() {
        // δ₀(Epa)/δ₀(Gauss) ≈ 1.7188/0.7764 ≈ 2.214 > 1.
        let x = uniform_x(200, 52);
        let hg = silverman_bandwidth(&x, &Gaussian).unwrap();
        let he = silverman_bandwidth(&x, &Epanechnikov).unwrap();
        assert!(he > 2.0 * hg && he < 2.5 * hg, "ratio {}", he / hg);
    }

    #[test]
    fn bandwidth_shrinks_with_sample_size() {
        let small = silverman_bandwidth(&uniform_x(100, 53), &Gaussian).unwrap();
        let large = silverman_bandwidth(&uniform_x(10_000, 53), &Gaussian).unwrap();
        assert!(large < small);
        // n^{-1/5} scaling: factor ≈ 100^{-0.2} ≈ 0.398.
        let ratio = large / small;
        assert!(ratio > 0.3 && ratio < 0.5, "ratio {ratio}");
    }

    #[test]
    fn scott_exceeds_silverman_on_gaussian_like_data() {
        // 1.06σ ≥ 0.9·min(σ, IQR/1.34) always when IQR/1.34 ≈ σ.
        let x = uniform_x(300, 54);
        let scott = scott_bandwidth(&x, &Gaussian).unwrap();
        let silv = silverman_bandwidth(&x, &Gaussian).unwrap();
        assert!(scott > silv);
    }

    #[test]
    fn selector_wrapper_reports_nan_score() {
        let x = uniform_x(100, 55);
        let y: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let sel = RuleOfThumbSelector::new(Epanechnikov, Rule::Silverman)
            .select(&x, &y)
            .unwrap();
        assert!(sel.score.is_nan());
        assert_eq!(sel.evaluations, 0);
        assert!(sel.bandwidth > 0.0);
    }

    #[test]
    fn degenerate_data_is_rejected() {
        let x = [2.0, 2.0, 2.0, 2.0];
        assert!(silverman_bandwidth(&x, &Gaussian).is_err());
    }
}
