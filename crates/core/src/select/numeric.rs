//! Numerical-optimisation bandwidth selection — the approach the paper
//! argues against.
//!
//! Li & Racine note the CV minimisation "can be solved using any standard
//! numerical optimization procedure", but the objective is not concave, so
//! optimisers converge to whatever local minimum their start (or bracket)
//! leads them to. The R `np` package (the paper's Program 1 benchmark) uses
//! derivative-free search with optional random restarts (`nmulti`). This
//! module reimplements that behaviour; `kcv-np` wraps it in an R-like API.

use super::{BandwidthSelector, Selection};
use crate::cv::cv_score_single;
use crate::error::{Error, Result};
use crate::kernels::Kernel;
use crate::util::{min_max, SplitMix64};

/// Penalty returned when a candidate bandwidth leaves every observation
/// without a defined leave-one-out fit (mirrors np's large-value penalty).
const DEGENERATE_PENALTY: f64 = f64::MAX / 4.0;

/// Which derivative-free optimiser to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericMethod {
    /// Golden-section search over the full `[h_min, h_max]` bracket.
    /// Deterministic, but only guaranteed for unimodal objectives.
    GoldenSection,
    /// One-dimensional Nelder–Mead (reflect/expand/contract on a two-point
    /// simplex) from `restarts` random starting values — the np default
    /// shape (`nmulti` restarts).
    NelderMead {
        /// Number of random restarts.
        restarts: usize,
    },
}

/// Result of a scalar minimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMin {
    /// Argmin found.
    pub x: f64,
    /// Objective value at the argmin.
    pub fx: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Golden-section search for the minimum of `f` on `[lo, hi]`.
///
/// Converges to a local minimum for any continuous `f`; to the global
/// minimum only when `f` is unimodal on the bracket.
pub fn golden_section_min(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> ScalarMin {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut a = lo;
    let mut b = hi;
    let mut evals = 0usize;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    evals += 2;
    for _ in 0..max_iter {
        if (b - a).abs() <= tol {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        evals += 1;
    }
    if fc < fd {
        ScalarMin { x: c, fx: fc, evaluations: evals }
    } else {
        ScalarMin { x: d, fx: fd, evaluations: evals }
    }
}

/// One-dimensional Nelder–Mead on `[lo, hi]` from starting point `x0` with
/// initial step `step`. Out-of-bounds proposals are clamped to the bracket.
pub fn nelder_mead_1d(
    mut f: impl FnMut(f64) -> f64,
    x0: f64,
    step: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> ScalarMin {
    let clamp = |v: f64| v.clamp(lo, hi);
    let mut best = clamp(x0);
    let mut second = clamp(x0 + step);
    let mut fb = f(best);
    let mut fs = f(second);
    let mut evals = 2usize;
    if fs < fb {
        std::mem::swap(&mut best, &mut second);
        std::mem::swap(&mut fb, &mut fs);
    }
    for _ in 0..max_iter {
        if (second - best).abs() <= tol {
            break;
        }
        // Reflect the worst point through the best.
        let reflected = clamp(best + (best - second));
        let fr = f(reflected);
        evals += 1;
        if fr < fb {
            // Try expanding further.
            let expanded = clamp(best + 2.0 * (best - second));
            let fe = f(expanded);
            evals += 1;
            second = best;
            fs = fb;
            if fe < fr {
                best = expanded;
                fb = fe;
            } else {
                best = reflected;
                fb = fr;
            }
        } else if fr < fs {
            second = reflected;
            fs = fr;
        } else {
            // Contract towards the best point.
            let contracted = clamp(best + 0.5 * (second - best));
            let fc = f(contracted);
            evals += 1;
            if fc < fs {
                second = contracted;
                fs = fc;
            } else {
                // Shrink.
                second = clamp(best + 0.25 * (second - best));
                fs = f(second);
                evals += 1;
            }
        }
        if fs < fb {
            std::mem::swap(&mut best, &mut second);
            std::mem::swap(&mut fb, &mut fs);
        }
    }
    ScalarMin { x: best, fx: fb, evaluations: evals }
}

/// Bandwidth selector that numerically minimises the naive `O(n²)`-per-
/// evaluation CV objective — the algorithmic content of the paper's
/// Programs 1 and 2 (`kcv-np` adds the R-flavoured interface on top).
#[derive(Debug, Clone)]
pub struct NumericCvSelector<K: Kernel> {
    kernel: K,
    method: NumericMethod,
    tol: f64,
    max_iter: usize,
    seed: u64,
}

impl<K: Kernel> NumericCvSelector<K> {
    /// Creates a selector with the given optimiser.
    pub fn new(kernel: K, method: NumericMethod) -> Self {
        Self { kernel, method, tol: 1e-6, max_iter: 200, seed: 0x5EED }
    }

    /// Sets the convergence tolerance (bracket / simplex width).
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the per-start iteration budget.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Seeds the random restarts (Nelder–Mead only).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The bracket `[domain/1000, domain]` used for the search.
    fn bracket(x: &[f64]) -> Result<(f64, f64)> {
        let (lo, hi) = min_max(x).ok_or(Error::SampleTooSmall { n: 0, required: 2 })?;
        let domain = hi - lo;
        if domain <= 0.0 {
            return Err(Error::DegenerateDomain);
        }
        Ok((domain / 1000.0, domain))
    }
}

impl<K: Kernel> BandwidthSelector for NumericCvSelector<K> {
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection> {
        crate::error::validate_sample(x, y, 2)?;
        let (lo, hi) = Self::bracket(x)?;
        let _select = kcv_obs::phase("select.numeric");
        let mut total_evals = 0usize;
        let objective = |h: f64, evals: &mut usize| {
            *evals += 1;
            kcv_obs::add(kcv_obs::Counter::ObjectiveEvals, 1);
            let (score, included) = cv_score_single(x, y, h, &self.kernel);
            if included == 0 {
                DEGENERATE_PENALTY
            } else {
                score
            }
        };

        let best = match self.method {
            NumericMethod::GoldenSection => {
                let r = golden_section_min(
                    |h| objective(h, &mut total_evals),
                    lo,
                    hi,
                    self.tol * (hi - lo),
                    self.max_iter,
                );
                ScalarMin { evaluations: total_evals, ..r }
            }
            NumericMethod::NelderMead { restarts } => {
                let mut rng = SplitMix64::new(self.seed);
                let mut best: Option<ScalarMin> = None;
                for _ in 0..restarts.max(1) {
                    // Log-uniform start, np-style.
                    let t = rng.next_f64();
                    let x0 = (lo.ln() + t * (hi.ln() - lo.ln())).exp();
                    let r = nelder_mead_1d(
                        |h| objective(h, &mut total_evals),
                        x0,
                        (hi - lo) * 0.1,
                        lo,
                        hi,
                        self.tol * (hi - lo),
                        self.max_iter,
                    );
                    best = Some(match best {
                        Some(b) if b.fx <= r.fx => b,
                        _ => r,
                    });
                }
                let mut b = best.expect("at least one restart");
                b.evaluations = total_evals;
                b
            }
        };

        if best.fx >= DEGENERATE_PENALTY {
            return Err(Error::NoValidBandwidth);
        }
        Ok(Selection {
            bandwidth: best.x,
            score: best.fx,
            evaluations: best.evaluations,
            profile: None,
        })
    }

    fn name(&self) -> String {
        let m = match self.method {
            NumericMethod::GoldenSection => "golden".to_string(),
            NumericMethod::NelderMead { restarts } => format!("neldermead{restarts}"),
        };
        format!("numeric-{m}-{}", self.kernel.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::select::grid_search::{GridSpec, SortedGridSearch};
    use crate::util::SplitMix64;

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let r = golden_section_min(|x| (x - 2.0) * (x - 2.0) + 1.0, 0.0, 5.0, 1e-10, 200);
        assert!((r.x - 2.0).abs() < 1e-6);
        assert!((r.fx - 1.0).abs() < 1e-10);
        assert!(r.evaluations > 2);
    }

    #[test]
    fn golden_section_respects_bracket() {
        // Minimum outside the bracket → converges to the bracket edge.
        let r = golden_section_min(|x| x * x, 1.0, 3.0, 1e-9, 200);
        assert!((r.x - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_finds_parabola_minimum() {
        let r = nelder_mead_1d(|x| (x + 1.0) * (x + 1.0), 3.0, 0.5, -10.0, 10.0, 1e-10, 500);
        assert!((r.x + 1.0).abs() < 1e-5, "got {}", r.x);
    }

    #[test]
    fn nelder_mead_is_start_dependent_on_multimodal_objective() {
        // f has local minima at x = 1 (f = 0.5) and x = 4 (f = 0).
        let f = |x: f64| {
            let a = (x - 1.0) * (x - 1.0) + 0.5;
            let b = (x - 4.0) * (x - 4.0);
            a.min(b)
        };
        let from_left = nelder_mead_1d(f, 0.5, 0.2, 0.0, 6.0, 1e-10, 500);
        let from_right = nelder_mead_1d(f, 4.5, 0.2, 0.0, 6.0, 1e-10, 500);
        assert!((from_left.x - 1.0).abs() < 0.1, "left start → {}", from_left.x);
        assert!((from_right.x - 4.0).abs() < 0.1, "right start → {}", from_right.x);
        // The paper's point: the local optimiser's answer depends on the
        // start, and one of them is not the global minimum.
        assert!(from_left.fx > from_right.fx);
    }

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn numeric_selection_lands_near_grid_optimum_on_smooth_data() {
        let (x, y) = paper_dgp(150, 41);
        let grid_sel = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(200))
            .select(&x, &y)
            .unwrap();
        let numeric = NumericCvSelector::new(Epanechnikov, NumericMethod::NelderMead { restarts: 5 })
            .select(&x, &y)
            .unwrap();
        // The CV surface for this DGP is well-behaved: the optimisers should
        // land in similar ranges (the paper's §IV-C sanity check).
        assert!(
            (numeric.bandwidth - grid_sel.bandwidth).abs() < 0.1,
            "numeric {} vs grid {}",
            numeric.bandwidth,
            grid_sel.bandwidth
        );
        assert!(numeric.evaluations > 0);
    }

    #[test]
    fn golden_section_also_works_with_gaussian() {
        let (x, y) = paper_dgp(80, 42);
        let sel = NumericCvSelector::new(Gaussian, NumericMethod::GoldenSection)
            .select(&x, &y)
            .unwrap();
        assert!(sel.bandwidth > 0.0 && sel.bandwidth < 1.0);
        assert!(sel.score.is_finite());
    }

    #[test]
    fn degenerate_domain_is_rejected() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        let sel = NumericCvSelector::new(Epanechnikov, NumericMethod::GoldenSection);
        assert!(sel.select(&x, &y).is_err());
    }

    #[test]
    fn restarts_only_improve_the_objective() {
        let (x, y) = paper_dgp(100, 43);
        let few = NumericCvSelector::new(Epanechnikov, NumericMethod::NelderMead { restarts: 1 })
            .with_seed(7)
            .select(&x, &y)
            .unwrap();
        let many = NumericCvSelector::new(Epanechnikov, NumericMethod::NelderMead { restarts: 8 })
            .with_seed(7)
            .select(&x, &y)
            .unwrap();
        assert!(many.score <= few.score + 1e-15);
    }
}
