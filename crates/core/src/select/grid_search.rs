//! Grid-search bandwidth selectors built on the CV profile strategies.

use super::{BandwidthSelector, Selection};
use crate::cv::{
    cv_profile_merged, cv_profile_merged_par, cv_profile_naive, cv_profile_naive_par,
    cv_profile_prefix, cv_profile_prefix_par, cv_profile_sorted, cv_profile_sorted_par, CvProfile,
};
use crate::error::Result;
use crate::grid::BandwidthGrid;
use crate::kernels::{Kernel, PolynomialKernel};

/// Which sweep implementation a [`SortedGridSearch`] runs.
///
/// All strategies compute the same `CV_lc` profile under the bit-identical
/// support predicate `d/h ≤ r`, so they agree exactly on which neighbours
/// participate at every bandwidth; they differ in how the windowed power
/// sums are obtained, and (for [`Strategy::PrefixMoments`]) in the rounding
/// path the scores take — see `kcv_core::cv::prefix` for the documented
/// tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The paper's per-observation distance sort + ascending grid sweep:
    /// `O(n² log n)` total. The general-position fallback — it is the form
    /// that extends to multivariate regressors, where no global ordering of
    /// `x` exists.
    #[default]
    SortedSweep,
    /// One global `O(n log n)` argsort of `x`, then a two-cursor merge per
    /// observation: `O(n log n + n·(n + k))` total, no per-observation
    /// sort. Requires a one-dimensional regressor (the only case the CV
    /// profile currently covers).
    MergedSweep,
    /// One global argsort plus compensated prefix sums of `x^m`/`y·x^m`,
    /// then per `(observation, bandwidth)` cell a binary-search support
    /// window and an `O(deg²)` binomial assembly:
    /// `O(n log n + n·k·(log n + deg²))` total — no per-neighbour scan at
    /// all. Requires a one-dimensional regressor.
    PrefixMoments,
}

/// How the selector derives its candidate grid from the data.
#[derive(Debug, Clone)]
pub enum GridSpec {
    /// The paper's default: `k` evenly spaced bandwidths with
    /// `max = domain(x)`, `min = domain(x)/k`.
    PaperDefault(usize),
    /// A fixed, caller-supplied grid.
    Explicit(BandwidthGrid),
}

impl GridSpec {
    pub(crate) fn resolve(&self, x: &[f64]) -> Result<BandwidthGrid> {
        match self {
            GridSpec::PaperDefault(k) => BandwidthGrid::paper_default(x, *k),
            GridSpec::Explicit(g) => Ok(g.clone()),
        }
    }
}

/// Grid search with the paper's sorted sweep (`O(n² log n)` total) for
/// polynomial kernels. `parallel = true` uses the rayon SPMD execution.
///
/// The sweep relies on the sorted-sweep invariant: with a compactly
/// supported polynomial kernel, every leave-one-out term inside the
/// support at bandwidth `h₁` stays inside it at every `h₂ > h₁`, so after
/// one per-observation sort a single ascending pass absorbs each neighbour
/// into the running power sums at most once — the whole `k`-point grid
/// costs barely more than one `CV_lc` evaluation.
///
/// # Examples
///
/// ```
/// use kcv_core::prelude::*;
///
/// // Paper DGP: X ~ U(0,1), Y = 0.5X + 10X² + u.
/// let mut rng = kcv_core::util::SplitMix64::new(42);
/// let x: Vec<f64> = (0..300).map(|_| rng.next_f64()).collect();
/// let y: Vec<f64> = x.iter()
///     .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
///     .collect();
///
/// // Sequential Program 3 and SPMD Program 4 select identically.
/// let seq = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
///     .select(&x, &y)
///     .unwrap();
/// let par = SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(50))
///     .select(&x, &y)
///     .unwrap();
/// assert_eq!(seq.bandwidth, par.bandwidth);
/// assert_eq!(seq.evaluations, 50);
/// ```
#[derive(Debug, Clone)]
pub struct SortedGridSearch<K: PolynomialKernel> {
    kernel: K,
    grid: GridSpec,
    strategy: Strategy,
    parallel: bool,
    min_included: usize,
}

impl<K: PolynomialKernel> SortedGridSearch<K> {
    /// Sequential sorted grid search (the paper's Program 3).
    pub fn new(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, strategy: Strategy::SortedSweep, parallel: false, min_included: 1 }
    }

    /// Parallel (SPMD) sorted grid search (the algorithm of Program 4).
    pub fn parallel(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, strategy: Strategy::SortedSweep, parallel: true, min_included: 1 }
    }

    /// Sequential merge-sweep grid search ([`Strategy::MergedSweep`]): the
    /// per-observation sort replaced by one global argsort and a two-cursor
    /// merge — `O(n log n + n·(n + k))` instead of `O(n² log n)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use kcv_core::prelude::*;
    /// use kcv_core::select::Strategy;
    ///
    /// // Paper DGP: X ~ U(0,1), Y = 0.5X + 10X² + u.
    /// let mut rng = kcv_core::util::SplitMix64::new(42);
    /// let x: Vec<f64> = (0..300).map(|_| rng.next_f64()).collect();
    /// let y: Vec<f64> = x.iter()
    ///     .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
    ///     .collect();
    ///
    /// // The merge-sweep selects the same bandwidth as the paper's sorted
    /// // sweep — it computes the same objective, minus the n sorts.
    /// let sorted = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
    ///     .select(&x, &y)
    ///     .unwrap();
    /// let merged = SortedGridSearch::merged(Epanechnikov, GridSpec::PaperDefault(50))
    ///     .select(&x, &y)
    ///     .unwrap();
    /// assert_eq!(sorted.bandwidth, merged.bandwidth);
    ///
    /// // The builder form reaches the same path.
    /// let built = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
    ///     .with_strategy(Strategy::MergedSweep)
    ///     .select(&x, &y)
    ///     .unwrap();
    /// assert_eq!(built.bandwidth, merged.bandwidth);
    /// ```
    pub fn merged(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, strategy: Strategy::MergedSweep, parallel: false, min_included: 1 }
    }

    /// Parallel merge-sweep grid search (rayon over observations after the
    /// shared global argsort).
    pub fn merged_parallel(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, strategy: Strategy::MergedSweep, parallel: true, min_included: 1 }
    }

    /// Sequential prefix-moment grid search ([`Strategy::PrefixMoments`]):
    /// the per-neighbour scan replaced by window queries over global
    /// compensated moment prefix sums — `O(n log n + n·k·(log n + deg²))`
    /// instead of the merge-sweep's `O(n log n + n·(n + k·deg))`.
    ///
    /// # Examples
    ///
    /// ```
    /// use kcv_core::prelude::*;
    ///
    /// // Paper DGP: X ~ U(0,1), Y = 0.5X + 10X² + u.
    /// let mut rng = kcv_core::util::SplitMix64::new(42);
    /// let x: Vec<f64> = (0..300).map(|_| rng.next_f64()).collect();
    /// let y: Vec<f64> = x.iter()
    ///     .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
    ///     .collect();
    ///
    /// // The prefix sweep selects the same bandwidth as the paper's sorted
    /// // sweep: support classification is bit-identical, and the documented
    /// // score tolerance never moves the argmin on this DGP.
    /// let sorted = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(50))
    ///     .select(&x, &y)
    ///     .unwrap();
    /// let prefix = SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(50))
    ///     .select(&x, &y)
    ///     .unwrap();
    /// assert_eq!(sorted.bandwidth, prefix.bandwidth);
    /// ```
    pub fn prefix(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, strategy: Strategy::PrefixMoments, parallel: false, min_included: 1 }
    }

    /// Parallel prefix-moment grid search (rayon over observations against
    /// the shared read-only prefix tables).
    pub fn prefix_par(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, strategy: Strategy::PrefixMoments, parallel: true, min_included: 1 }
    }

    /// Selects the sweep implementation (see [`Strategy`]).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Requires at least `count` observations to have a defined leave-one-out
    /// fit for a bandwidth to be eligible (guards against degenerate tiny
    /// bandwidths on sparse designs; see [`CvProfile::argmin_with_min_included`]).
    pub fn with_min_included(mut self, count: usize) -> Self {
        self.min_included = count.max(1);
        self
    }

    /// Computes the full CV profile without selecting.
    pub fn profile(&self, x: &[f64], y: &[f64]) -> Result<CvProfile> {
        let grid = self.grid.resolve(x)?;
        match (self.strategy, self.parallel) {
            (Strategy::SortedSweep, false) => cv_profile_sorted(x, y, &grid, &self.kernel),
            (Strategy::SortedSweep, true) => cv_profile_sorted_par(x, y, &grid, &self.kernel),
            (Strategy::MergedSweep, false) => cv_profile_merged(x, y, &grid, &self.kernel),
            (Strategy::MergedSweep, true) => cv_profile_merged_par(x, y, &grid, &self.kernel),
            (Strategy::PrefixMoments, false) => cv_profile_prefix(x, y, &grid, &self.kernel),
            (Strategy::PrefixMoments, true) => cv_profile_prefix_par(x, y, &grid, &self.kernel),
        }
    }
}

impl<K: PolynomialKernel> BandwidthSelector for SortedGridSearch<K> {
    /// Runs the sweep and returns the grid argmin of `CV_lc(h)`.
    ///
    /// The returned [`Selection`] carries the full [`CvProfile`] so callers
    /// can inspect the whole objective curve, not just the optimum.
    ///
    /// # Examples
    ///
    /// ```
    /// use kcv_core::grid::BandwidthGrid;
    /// use kcv_core::prelude::*;
    ///
    /// let x = vec![0.0, 0.1, 0.25, 0.4, 0.6, 0.75, 0.9, 1.0];
    /// let y = vec![0.1, 0.2, 0.6, 1.4, 3.7, 6.0, 8.4, 10.4];
    /// let grid = BandwidthGrid::from_values(vec![0.2, 0.4, 0.8]).unwrap();
    ///
    /// let sel = SortedGridSearch::new(Epanechnikov, GridSpec::Explicit(grid))
    ///     .select(&x, &y)
    ///     .unwrap();
    /// assert!([0.2, 0.4, 0.8].contains(&sel.bandwidth));
    /// // The profile records CV_lc at all three candidates.
    /// assert_eq!(sel.profile.unwrap().len(), 3);
    /// ```
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection> {
        let profile = self.profile(x, y)?;
        let _argmin = kcv_obs::phase("select.argmin");
        let opt = profile.argmin_with_min_included(self.min_included)?;
        Ok(Selection {
            bandwidth: opt.bandwidth,
            score: opt.score,
            evaluations: profile.len(),
            profile: Some(profile),
        })
    }

    fn name(&self) -> String {
        format!(
            "{}-grid-{}-{}",
            match self.strategy {
                Strategy::SortedSweep => "sorted",
                Strategy::MergedSweep => "merged",
                Strategy::PrefixMoments => "prefix",
            },
            if self.parallel { "par" } else { "seq" },
            self.kernel.name()
        )
    }
}

/// Grid search with the naive `O(k·n²)` profile — works with any kernel
/// (Gaussian, Cosine, …).
#[derive(Debug, Clone)]
pub struct NaiveGridSearch<K: Kernel> {
    kernel: K,
    grid: GridSpec,
    parallel: bool,
    min_included: usize,
}

impl<K: Kernel> NaiveGridSearch<K> {
    /// Sequential naive grid search.
    pub fn new(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, parallel: false, min_included: 1 }
    }

    /// Parallel naive grid search.
    pub fn parallel(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, parallel: true, min_included: 1 }
    }

    /// See [`SortedGridSearch::with_min_included`].
    pub fn with_min_included(mut self, count: usize) -> Self {
        self.min_included = count.max(1);
        self
    }

    /// Computes the full CV profile without selecting.
    pub fn profile(&self, x: &[f64], y: &[f64]) -> Result<CvProfile> {
        let grid = self.grid.resolve(x)?;
        if self.parallel {
            cv_profile_naive_par(x, y, &grid, &self.kernel)
        } else {
            cv_profile_naive(x, y, &grid, &self.kernel)
        }
    }
}

impl<K: Kernel> BandwidthSelector for NaiveGridSearch<K> {
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection> {
        let profile = self.profile(x, y)?;
        let _argmin = kcv_obs::phase("select.argmin");
        let opt = profile.argmin_with_min_included(self.min_included)?;
        Ok(Selection {
            bandwidth: opt.bandwidth,
            score: opt.score,
            evaluations: profile.len(),
            profile: Some(profile),
        })
    }

    fn name(&self) -> String {
        format!(
            "naive-grid-{}-{}",
            if self.parallel { "par" } else { "seq" },
            self.kernel.name()
        )
    }
}

/// Iteratively refined ("zoom") grid search: run the sorted grid search,
/// then re-grid around the optimum with progressively smaller ranges —
/// §IV-A's recipe for exceeding the 2 048-bandwidth constant-memory limit
/// without a larger grid.
#[derive(Debug, Clone)]
pub struct ZoomGridSearch<K: PolynomialKernel> {
    kernel: K,
    initial: usize,
    rounds: usize,
    parallel: bool,
}

impl<K: PolynomialKernel> ZoomGridSearch<K> {
    /// `initial` bandwidths per round, `rounds` refinement rounds (≥ 1).
    pub fn new(kernel: K, initial: usize, rounds: usize) -> Self {
        Self { kernel, initial, rounds: rounds.max(1), parallel: false }
    }

    /// Uses the parallel sweep inside each round.
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }
}

impl<K: PolynomialKernel> BandwidthSelector for ZoomGridSearch<K> {
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection> {
        let mut grid = BandwidthGrid::paper_default(x, self.initial)?;
        let mut evaluations = 0usize;
        let mut last: Option<(CvProfile, crate::cv::CvOptimum)> = None;
        for _ in 0..self.rounds {
            let profile = if self.parallel {
                cv_profile_sorted_par(x, y, &grid, &self.kernel)?
            } else {
                cv_profile_sorted(x, y, &grid, &self.kernel)?
            };
            evaluations += profile.len();
            let opt = profile.argmin()?;
            grid = grid.refine_around(opt.bandwidth, self.initial)?;
            last = Some((profile, opt));
        }
        let (profile, opt) = last.expect("rounds >= 1");
        Ok(Selection {
            bandwidth: opt.bandwidth,
            score: opt.score,
            evaluations,
            profile: Some(profile),
        })
    }

    fn name(&self) -> String {
        format!("zoom-grid-{}x{}-{}", self.initial, self.rounds, self.kernel.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn sorted_and_naive_grid_searches_agree() {
        let (x, y) = paper_dgp(150, 31);
        let spec = GridSpec::PaperDefault(50);
        let a = SortedGridSearch::new(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let b = NaiveGridSearch::new(Epanechnikov, spec).select(&x, &y).unwrap();
        assert!((a.bandwidth - b.bandwidth).abs() < 1e-12);
        assert_eq!(a.evaluations, 50);
    }

    #[test]
    fn parallel_variants_agree_with_sequential() {
        let (x, y) = paper_dgp(200, 32);
        let spec = GridSpec::PaperDefault(50);
        let seq = SortedGridSearch::new(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let par = SortedGridSearch::parallel(Epanechnikov, spec).select(&x, &y).unwrap();
        assert!((seq.bandwidth - par.bandwidth).abs() < 1e-12);
    }

    #[test]
    fn merged_strategy_agrees_with_sorted_and_naive() {
        let (x, y) = paper_dgp(180, 37);
        let spec = GridSpec::PaperDefault(50);
        let sorted = SortedGridSearch::new(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let merged = SortedGridSearch::merged(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let merged_par =
            SortedGridSearch::merged_parallel(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let naive = NaiveGridSearch::new(Epanechnikov, spec).select(&x, &y).unwrap();
        assert!((merged.bandwidth - sorted.bandwidth).abs() < 1e-12);
        assert!((merged.bandwidth - naive.bandwidth).abs() < 1e-12);
        assert!((merged.bandwidth - merged_par.bandwidth).abs() < 1e-12);
        assert_eq!(merged.evaluations, 50);
    }

    #[test]
    fn with_strategy_builder_switches_the_sweep() {
        let (x, y) = paper_dgp(120, 38);
        let spec = GridSpec::PaperDefault(30);
        let direct = SortedGridSearch::merged(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let built = SortedGridSearch::new(Epanechnikov, spec)
            .with_strategy(Strategy::MergedSweep)
            .select(&x, &y)
            .unwrap();
        assert_eq!(direct.bandwidth, built.bandwidth);
        assert_eq!(direct.score, built.score);
    }

    #[test]
    fn prefix_strategy_agrees_with_sorted_and_naive() {
        let (x, y) = paper_dgp(180, 37);
        let spec = GridSpec::PaperDefault(50);
        let sorted = SortedGridSearch::new(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let prefix = SortedGridSearch::prefix(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let prefix_par =
            SortedGridSearch::prefix_par(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let naive = NaiveGridSearch::new(Epanechnikov, spec).select(&x, &y).unwrap();
        assert_eq!(prefix.bandwidth, sorted.bandwidth);
        assert_eq!(prefix.bandwidth, naive.bandwidth);
        assert_eq!(prefix.bandwidth, prefix_par.bandwidth);
        assert_eq!(prefix.evaluations, 50);
    }

    #[test]
    fn prefix_strategy_via_builder_matches_constructor() {
        let (x, y) = paper_dgp(120, 39);
        let spec = GridSpec::PaperDefault(30);
        let direct = SortedGridSearch::prefix(Epanechnikov, spec.clone()).select(&x, &y).unwrap();
        let built = SortedGridSearch::new(Epanechnikov, spec)
            .with_strategy(Strategy::PrefixMoments)
            .select(&x, &y)
            .unwrap();
        assert_eq!(direct.bandwidth, built.bandwidth);
        assert_eq!(direct.score, built.score);
    }

    #[test]
    fn explicit_grid_is_respected() {
        let (x, y) = paper_dgp(80, 33);
        let grid = BandwidthGrid::from_values(vec![0.2, 0.3, 0.4]).unwrap();
        let sel = SortedGridSearch::new(Epanechnikov, GridSpec::Explicit(grid))
            .select(&x, &y)
            .unwrap();
        assert!([0.2, 0.3, 0.4].iter().any(|&h| (h - sel.bandwidth).abs() < 1e-12));
        assert_eq!(sel.evaluations, 3);
    }

    #[test]
    fn naive_grid_search_supports_gaussian() {
        let (x, y) = paper_dgp(60, 34);
        let sel = NaiveGridSearch::new(Gaussian, GridSpec::PaperDefault(20))
            .select(&x, &y)
            .unwrap();
        assert!(sel.bandwidth > 0.0);
        let profile = sel.profile.unwrap();
        assert!(profile.included.iter().all(|&c| c == 60));
    }

    #[test]
    fn zoom_refines_beyond_initial_grid_resolution() {
        let (x, y) = paper_dgp(150, 35);
        let coarse = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(10))
            .select(&x, &y)
            .unwrap();
        let zoomed = ZoomGridSearch::new(Epanechnikov, 10, 4).select(&x, &y).unwrap();
        // The zoom's final score can only be ≤ the coarse grid's optimum
        // (it starts from the same grid and only ever narrows around minima).
        assert!(zoomed.score <= coarse.score + 1e-12);
        assert_eq!(zoomed.evaluations, 40);
    }

    #[test]
    fn min_included_guards_against_degenerate_selection() {
        // A sparse design where tiny bandwidths exclude most points.
        let mut rng = SplitMix64::new(36);
        let x: Vec<f64> = (0..30).map(|_| rng.next_f64() * 10.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| v.sin() + 0.1 * rng.next_f64()).collect();
        let grid = BandwidthGrid::linear(0.001, 5.0, 200).unwrap();
        let strict = SortedGridSearch::new(Epanechnikov, GridSpec::Explicit(grid.clone()))
            .with_min_included(30)
            .select(&x, &y)
            .unwrap();
        let lax = SortedGridSearch::new(Epanechnikov, GridSpec::Explicit(grid))
            .select(&x, &y)
            .unwrap();
        // The strict selector can never pick a bandwidth that excluded anyone.
        assert!(strict.profile.as_ref().unwrap().included[..].iter().max().unwrap() >= &30);
        assert!(strict.bandwidth >= lax.bandwidth);
    }

    #[test]
    fn selector_names_are_informative() {
        assert_eq!(
            SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(5)).name(),
            "sorted-grid-seq-epanechnikov"
        );
        assert_eq!(
            NaiveGridSearch::parallel(Gaussian, GridSpec::PaperDefault(5)).name(),
            "naive-grid-par-gaussian"
        );
        assert_eq!(
            SortedGridSearch::merged(Epanechnikov, GridSpec::PaperDefault(5)).name(),
            "merged-grid-seq-epanechnikov"
        );
        assert_eq!(
            SortedGridSearch::merged_parallel(Epanechnikov, GridSpec::PaperDefault(5)).name(),
            "merged-grid-par-epanechnikov"
        );
        assert_eq!(
            SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(5)).name(),
            "prefix-grid-seq-epanechnikov"
        );
        assert_eq!(
            SortedGridSearch::prefix_par(Epanechnikov, GridSpec::PaperDefault(5)).name(),
            "prefix-grid-par-epanechnikov"
        );
    }
}
