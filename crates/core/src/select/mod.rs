//! Bandwidth selectors.
//!
//! * [`grid_search`] — the paper's reliable approach: evaluate `CV_lc(h)` on
//!   a grid (sorted sweep or naive, sequential or parallel) and take the
//!   minimum. Guaranteed to return the *grid* optimum.
//! * [`bagged`] — Barreiro-Ures et al.'s subsampled bagging: run any grid
//!   strategy on `B` seeded subsamples of size `r ≪ n`, combine, and
//!   rescale by `(r/n)^{1/5}` — cost independent of `n` at fixed `(B, r)`.
//! * [`numeric`] — the approach the paper criticises and the R `np` package
//!   uses: derivative-free numerical minimisation of the (non-concave) CV
//!   objective, which can land in non-global local minima depending on the
//!   starting point.
//! * [`incremental`] — the streaming engine's batch face: build the Fenwick
//!   moment tree once, answer the whole grid with a single `reselect()` —
//!   bit-identical selection to the prefix strategy, zero kernel
//!   evaluations.
//! * [`rule_of_thumb`] — the ad hoc shortcuts practitioners fall back on to
//!   avoid CV entirely (Silverman/Scott style plug-ins).

pub mod bagged;
pub mod grid_search;
pub mod incremental;
pub mod numeric;
pub mod rule_of_thumb;

pub use bagged::{BagCombiner, BagEngine, BaggedSelection, BaggedSelector, BagOutcome};
pub use grid_search::{GridSpec, NaiveGridSearch, SortedGridSearch, Strategy, ZoomGridSearch};
pub use incremental::IncrementalGridSearch;
pub use numeric::{golden_section_min, nelder_mead_1d, NumericCvSelector, NumericMethod, ScalarMin};
pub use rule_of_thumb::{scott_bandwidth, silverman_bandwidth, Rule, RuleOfThumbSelector};

use crate::cv::CvProfile;
use crate::error::Result;

/// The outcome of a bandwidth selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The selected bandwidth.
    pub bandwidth: f64,
    /// The CV score at the selected bandwidth (`NaN` for rule-of-thumb
    /// selectors, which never evaluate the objective).
    pub score: f64,
    /// How many single-bandwidth objective evaluations the selector spent.
    /// For grid searches this is the grid size `k`; for numerical optimisers
    /// it is the iteration-dependent count the paper's complexity argument
    /// is about.
    pub evaluations: usize,
    /// The full CV profile, when the selector computed one (grid searches).
    pub profile: Option<CvProfile>,
}

/// Anything that can pick a bandwidth for a regression sample.
pub trait BandwidthSelector {
    /// Selects a bandwidth for the sample `(x, y)`.
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection>;

    /// Human-readable selector name (used by the benchmark harness).
    fn name(&self) -> String;
}

/// One-call bandwidth selection with the paper's recommended machinery:
/// parallel sorted grid search, Epanechnikov kernel, a 200-point
/// paper-default grid, and the degenerate-bandwidth guard enabled
/// (every observation must keep a defined leave-one-out fit).
///
/// ```
/// let mut rng = kcv_core::util::SplitMix64::new(3);
/// let x: Vec<f64> = (0..200).map(|_| rng.next_f64()).collect();
/// let y: Vec<f64> = x.iter().map(|&v| v * v + 0.1 * rng.next_f64()).collect();
/// let h = kcv_core::select::select_bandwidth(&x, &y).unwrap();
/// assert!(h > 0.0 && h <= 1.0);
/// ```
pub fn select_bandwidth(x: &[f64], y: &[f64]) -> Result<f64> {
    use crate::kernels::Epanechnikov;
    let selection = SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(200))
        .with_min_included(x.len())
        .select(x, y)
        .or_else(|err| match err {
            // On sparse designs even the widest grid bandwidth may exclude
            // an isolated observation; fall back to the raw objective.
            crate::error::Error::NoValidBandwidth => {
                SortedGridSearch::parallel(Epanechnikov, GridSpec::PaperDefault(200))
                    .select(x, y)
            }
            other => Err(other),
        })?;
    Ok(selection.bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    #[test]
    fn one_call_selection_on_paper_dgp() {
        let mut rng = SplitMix64::new(71);
        let x: Vec<f64> = (0..300).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        let h = select_bandwidth(&x, &y).unwrap();
        assert!(h > 0.0 && h <= 1.0);
    }

    #[test]
    fn one_call_selection_handles_isolated_points() {
        // A far-away outlier only joins the fit at near-domain bandwidths;
        // selection must still succeed (via the guard or the raw fallback).
        let x = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 1_000.0];
        let y = [1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 5.0];
        let h = select_bandwidth(&x, &y).unwrap();
        assert!(h > 0.0);
    }

    #[test]
    fn one_call_selection_rejects_junk() {
        assert!(select_bandwidth(&[1.0], &[1.0]).is_err());
        assert!(select_bandwidth(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }
}
