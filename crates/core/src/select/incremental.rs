//! Batch adapter for the incremental Fenwick moment-tree engine.
//!
//! [`IncrementalGridSearch`] presents [`crate::cv::IncrementalSelector`]
//! through the common [`BandwidthSelector`] interface: it inserts the whole
//! sample (one pool fold), runs a single `reselect()`, and takes the grid
//! argmin. This is how the bench harness exercises the streaming engine on
//! a static dataset — the selected bandwidth is bit-identical to the prefix
//! strategy's, with zero kernel evaluations, and the insert/reselect path
//! is exactly the one the sliding-window service drives.

use super::{BandwidthSelector, GridSpec, Selection};
use crate::cv::IncrementalSelector;
use crate::error::{validate_sample, Result};
use crate::kernels::PolynomialKernel;

/// Grid search over the incremental engine: build the Fenwick moment tree
/// from the sample, then answer the whole grid with one `reselect()`.
#[derive(Debug, Clone)]
pub struct IncrementalGridSearch<K> {
    kernel: K,
    grid: GridSpec,
    min_included: usize,
}

impl<K: PolynomialKernel + Clone> IncrementalGridSearch<K> {
    /// Creates the adapter for `kernel` over `grid`.
    pub fn new(kernel: K, grid: GridSpec) -> Self {
        Self { kernel, grid, min_included: 1 }
    }

    /// Requires at least `count` observations to keep a defined
    /// leave-one-out fit for a bandwidth to be eligible (see
    /// [`crate::cv::CvProfile::argmin_with_min_included`]).
    pub fn with_min_included(mut self, count: usize) -> Self {
        self.min_included = count.max(1);
        self
    }
}

impl<K: PolynomialKernel + Clone> BandwidthSelector for IncrementalGridSearch<K> {
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection> {
        validate_sample(x, y, 2)?;
        let grid = self.grid.resolve(x)?;
        // Midrange centring, as the prefix tables use: pure conditioning,
        // affordable here because the batch adapter sees the whole sample.
        let (min, max) = crate::util::min_max(x).expect("validated non-empty sample");
        let mut selector = IncrementalSelector::new(self.kernel.clone(), grid)
            .with_center(0.5 * (min + max));
        for (&xi, &yi) in x.iter().zip(y) {
            selector.insert(xi, yi)?;
        }
        let profile = selector.reselect()?;
        let _argmin = kcv_obs::phase("select.argmin");
        let opt = profile.argmin_with_min_included(self.min_included)?;
        Ok(Selection {
            bandwidth: opt.bandwidth,
            score: opt.score,
            evaluations: profile.len(),
            profile: Some(profile),
        })
    }

    fn name(&self) -> String {
        format!("incremental-grid-{}", self.kernel.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Epanechnikov;
    use crate::select::SortedGridSearch;
    use crate::util::SplitMix64;

    #[test]
    fn batch_adapter_matches_the_prefix_strategy() {
        let mut rng = SplitMix64::new(91);
        let x: Vec<f64> = (0..400).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        let inc = IncrementalGridSearch::new(Epanechnikov, GridSpec::PaperDefault(60))
            .select(&x, &y)
            .unwrap();
        let pre = SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(60))
            .select(&x, &y)
            .unwrap();
        assert_eq!(inc.bandwidth.to_bits(), pre.bandwidth.to_bits());
        assert_eq!(
            inc.profile.as_ref().unwrap().included,
            pre.profile.as_ref().unwrap().included
        );
    }

    #[test]
    fn name_is_informative() {
        let s = IncrementalGridSearch::new(Epanechnikov, GridSpec::PaperDefault(10));
        assert_eq!(s.name(), "incremental-grid-epanechnikov");
    }
}
