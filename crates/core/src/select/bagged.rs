//! Bagged cross-validated bandwidth selection for samples far past the
//! paper's ceiling (Barreiro-Ures, Cao & Francisco-Fernández).
//!
//! Every strategy in this crate — even the `O(n log n + n·k·(log n + deg²))`
//! prefix-moment sweep — still touches all `n` observations per selection,
//! so at `n` in the millions a single full-data CV pass dominates the run.
//! Barreiro-Ures et al. ("Bagging cross-validated bandwidth selection in
//! nonparametric regression estimation with applications to large-sized
//! samples", PAPERS.md) break that dependence: select on subsamples and
//! *rescale*.
//!
//! # Paper notation
//!
//! In their notation, with `n` the full sample size:
//!
//! * draw `N` subsamples of size `r ≪ n` without replacement — here
//!   [`BaggedSelector`]'s `bags` is their `N` and `bag_size` is their `r`;
//! * on each subsample compute the cross-validated bandwidth
//!   `ĥ_CV(r)` — here one per-bag grid search with any existing engine
//!   ([`BagEngine`]: naive / sorted / merged / prefix sweep);
//! * combine the per-bag selections (their `\bar h(r, N)` is the mean;
//!   a median combiner is provided as a robust alternative —
//!   [`BagCombiner`]);
//! * rescale by `(r/n)^{1/5}`.
//!
//! # Why the exponent is 1/5
//!
//! For a second-order kernel the AMISE-optimal bandwidth of a univariate
//! kernel regression is `h_opt(m) = C_h · m^{−1/5}`, where the constant
//! `C_h` depends on the design density, the error variance, and the
//! curvature of the regression function — but **not** on the sample size
//! `m`. A bandwidth selected on `r` observations therefore estimates
//! `C_h · r^{−1/5}`; multiplying by
//!
//! ```text
//! (r/n)^{1/5}  =  n^{−1/5} / r^{−1/5}
//! ```
//!
//! converts it into an estimate of `C_h · n^{−1/5}`, the bandwidth the full
//! sample wants. Averaging over `N` bags shrinks the subsample noise of the
//! `C_h` estimate by `≈ 1/√N` (the bags overlap, so not exactly), which is
//! the "bagging" part.
//!
//! # Cost
//!
//! Each bag costs one `r`-point selection; the whole run costs at most
//! `B ×` the single-bag bound **independent of `n`** (the only `O(n)` work
//! is the `O(B·r)` index draws — the sparse partial Fisher–Yates in
//! `vendor/rand` never materialises `0..n`). Bags are embarrassingly
//! parallel and run on the rayon pool; peak memory is one bag's footprint
//! times the worker count (see [`bag_footprint_bound_bytes`]), both
//! enforced by `perf_gate`.

use super::grid_search::{GridSpec, Strategy};
use super::{BandwidthSelector, Selection};
use crate::cv::{
    cv_profile_merged, cv_profile_naive, cv_profile_prefix, cv_profile_sorted, CvProfile,
};
use crate::error::{validate_sample, Error, Result};
use crate::grid::BandwidthGrid;
use crate::kernels::PolynomialKernel;
use rand::rngs::StdRng;
use rand::{seq, SeedableRng};
use rayon::prelude::*;

/// Which CV engine runs inside each bag.
///
/// Mirrors [`Strategy`] plus the naive profile; per-bag engines always run
/// their *sequential* variant — the parallelism budget is spent across
/// bags, not inside them, so `B` bags never spawn nested thread pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BagEngine {
    /// The naive `O(k·r²)` profile.
    Naive,
    /// The paper's per-observation sort + ascending sweep, `O(r² log r)`.
    SortedSweep,
    /// One global argsort + two-cursor merge, `O(r log r + r·(r + k))`.
    MergedSweep,
    /// Window queries over compensated moment prefix sums,
    /// `O(r log r + r·k·(log r + deg²))` — the default: it keeps each bag
    /// at the Langrené & Warin fast-sum-updating cost, so the whole bagged
    /// run is `O(B·r·k·polylog r)`.
    #[default]
    PrefixMoments,
}

impl BagEngine {
    fn label(self) -> &'static str {
        match self {
            BagEngine::Naive => "naive",
            BagEngine::SortedSweep => "sorted",
            BagEngine::MergedSweep => "merged",
            BagEngine::PrefixMoments => "prefix",
        }
    }
}

impl From<Strategy> for BagEngine {
    fn from(s: Strategy) -> Self {
        match s {
            Strategy::SortedSweep => BagEngine::SortedSweep,
            Strategy::MergedSweep => BagEngine::MergedSweep,
            Strategy::PrefixMoments => BagEngine::PrefixMoments,
        }
    }
}

/// How per-bag bandwidths are aggregated before rescaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BagCombiner {
    /// The arithmetic mean — Barreiro-Ures et al.'s `\bar h(r, N)`.
    #[default]
    Mean,
    /// The median (midpoint of the two central values for even `N`):
    /// robust to the occasional bag whose subsample lands a degenerate
    /// optimum at a grid edge.
    Median,
}

impl BagCombiner {
    /// The snake_case name used in reports and selector names.
    pub fn label(self) -> &'static str {
        match self {
            BagCombiner::Mean => "mean",
            BagCombiner::Median => "median",
        }
    }

    fn combine(self, values: &[f64]) -> f64 {
        debug_assert!(!values.is_empty());
        match self {
            BagCombiner::Mean => values.iter().sum::<f64>() / values.len() as f64,
            BagCombiner::Median => {
                let mut sorted = values.to_vec();
                sorted.sort_by(f64::total_cmp);
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    sorted[mid]
                } else {
                    0.5 * (sorted[mid - 1] + sorted[mid])
                }
            }
        }
    }
}

/// One bag's selection outcome.
#[derive(Debug, Clone)]
pub struct BagOutcome {
    /// Bag index in `0..bags`.
    pub bag: usize,
    /// The bandwidth `ĥ_CV(r)` the bag's grid search selected — **before**
    /// the `(r/n)^{1/5}` rescaling.
    pub bandwidth: f64,
    /// The CV score at that bandwidth, on the bag's subsample.
    pub score: f64,
}

/// The full outcome of a bagged selection — everything
/// [`BaggedSelector::select`] folds into a [`Selection`], plus the per-bag
/// detail the scaling study and the convergence tests inspect.
#[derive(Debug, Clone)]
pub struct BaggedSelection {
    /// The final bandwidth: `combined × rescale`.
    pub bandwidth: f64,
    /// The combined per-bag bandwidth `\bar h(r, N)` before rescaling.
    pub combined: f64,
    /// The `(r/n)^{1/5}` factor applied to `combined` (exactly `1.0` when
    /// `bag_size == n`).
    pub rescale: f64,
    /// Per-bag outcomes, in bag order (deterministic: bag `b`'s subsample
    /// depends only on the selector seed and `b`, never on scheduling).
    pub bags: Vec<BagOutcome>,
    /// Total single-bandwidth objective evaluations across bags (`B · k`).
    pub evaluations: usize,
}

/// Bagged CV bandwidth selector: `bags` seeded without-replacement
/// subsamples of `bag_size`, one grid search per bag (any [`BagEngine`]),
/// combined and rescaled by `(bag_size/n)^{1/5}` — see the
/// [module docs](self) for the derivation and the Barreiro-Ures et al.
/// notation map.
///
/// Bags run in parallel on the vendored rayon pool by default; each bag
/// executes under a `cv.bag` phase scope and bumps the `bags_run` counter,
/// attributed to the caller's `kcv-obs` recorder.
///
/// # Examples
///
/// Bagged selection tracks the full-data answer at a fraction of the cost:
///
/// ```
/// use kcv_core::prelude::*;
///
/// // Paper DGP: X ~ U(0,1), Y = 0.5X + 10X² + u.
/// let mut rng = kcv_core::util::SplitMix64::new(42);
/// let x: Vec<f64> = (0..4000).map(|_| rng.next_f64()).collect();
/// let y: Vec<f64> = x.iter()
///     .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
///     .collect();
///
/// // N = 8 bags of r = 500 (their notation), prefix engine, mean combiner.
/// let bagged = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(50), 8, 500)
///     .select(&x, &y)
///     .unwrap();
/// let full = SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(50))
///     .select(&x, &y)
///     .unwrap();
/// assert!((bagged.bandwidth - full.bandwidth).abs() < 0.04);
/// ```
///
/// With `bags = 1` and `bag_size = n` the "subsample" is the full sample in
/// original order and the rescale factor is exactly `1`, so the selection
/// is bit-identical to the underlying engine's:
///
/// ```
/// use kcv_core::prelude::*;
///
/// let mut rng = kcv_core::util::SplitMix64::new(7);
/// let x: Vec<f64> = (0..300).map(|_| rng.next_f64()).collect();
/// let y: Vec<f64> = x.iter().map(|&v| v * v + 0.1 * rng.next_f64()).collect();
///
/// let degenerate = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(40), 1, x.len())
///     .select(&x, &y)
///     .unwrap();
/// let direct = SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(40))
///     .select(&x, &y)
///     .unwrap();
/// assert_eq!(degenerate.bandwidth, direct.bandwidth);
/// assert_eq!(degenerate.score, direct.score);
/// ```
#[derive(Debug, Clone)]
pub struct BaggedSelector<K: PolynomialKernel> {
    kernel: K,
    grid: GridSpec,
    engine: BagEngine,
    bags: usize,
    bag_size: usize,
    seed: u64,
    combiner: BagCombiner,
    parallel: bool,
    min_included: usize,
}

impl<K: PolynomialKernel> BaggedSelector<K> {
    /// Creates a bagged selector with `bags` subsamples of `bag_size`
    /// (their `N` and `r`), the prefix-moment engine, the mean combiner,
    /// seed `0`, and parallel bags. `bags` is clamped to ≥ 1 and
    /// `bag_size` to ≥ 2. The grid spec is resolved **once from the full
    /// sample** and the resulting grid is shared by every bag — a
    /// [`GridSpec::PaperDefault`] therefore spans the full sample's
    /// domain (not each subsample's), which saves `B − 1` grid
    /// resolutions and makes per-bag CV profiles directly comparable:
    /// every bag scores the same candidate bandwidths.
    pub fn new(kernel: K, grid: GridSpec, bags: usize, bag_size: usize) -> Self {
        Self {
            kernel,
            grid,
            engine: BagEngine::default(),
            bags: bags.max(1),
            bag_size: bag_size.max(2),
            seed: 0,
            combiner: BagCombiner::default(),
            parallel: true,
            min_included: 1,
        }
    }

    /// Selects the per-bag CV engine.
    pub fn with_engine(mut self, engine: BagEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the per-bag engine from a [`Strategy`] (convenience for
    /// callers already holding the grid-search enum).
    pub fn with_strategy(self, strategy: Strategy) -> Self {
        self.with_engine(strategy.into())
    }

    /// Selects the per-bag aggregation rule.
    pub fn with_combiner(mut self, combiner: BagCombiner) -> Self {
        self.combiner = combiner;
        self
    }

    /// Sets the subsampling seed. Bag `b` draws its indices from a
    /// generator seeded with a SplitMix-style mix of `seed` and `b`, so the
    /// whole selection is a pure function of `(seed, x, y)` — independent
    /// of thread scheduling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs bags sequentially on the calling thread (identical output —
    /// useful for tracing a single bag or benchmarking the parallel win).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// See [`super::SortedGridSearch::with_min_included`]; applied within
    /// each bag (against the bag's `bag_size`-point subsample).
    pub fn with_min_included(mut self, count: usize) -> Self {
        self.min_included = count.max(1);
        self
    }

    /// The subsample for bag `b`: `bag_size` observations drawn without
    /// replacement via the seeded sparse partial Fisher–Yates. When
    /// `bag_size == n` the "subsample" is the full sample in original
    /// order (sampling `n` of `n` without replacement is the full sample
    /// as a set; keeping the original order makes `bags = 1,
    /// bag_size = n` bit-identical to the underlying engine).
    fn bag_sample(&self, x: &[f64], y: &[f64], bag: usize) -> (Vec<f64>, Vec<f64>) {
        let n = x.len();
        if self.bag_size == n {
            return (x.to_vec(), y.to_vec());
        }
        // Decorrelate per-bag streams: the raw seed+index sum would give
        // adjacent bags adjacent SplitMix states one increment apart.
        let bag_seed = self
            .seed
            .wrapping_add((bag as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(bag_seed);
        let idx = seq::index::sample(&mut rng, n, self.bag_size);
        let bx: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
        let by: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
        (bx, by)
    }

    fn bag_profile(&self, x: &[f64], y: &[f64], grid: &BandwidthGrid) -> Result<CvProfile> {
        match self.engine {
            BagEngine::Naive => cv_profile_naive(x, y, grid, &self.kernel),
            BagEngine::SortedSweep => cv_profile_sorted(x, y, grid, &self.kernel),
            BagEngine::MergedSweep => cv_profile_merged(x, y, grid, &self.kernel),
            BagEngine::PrefixMoments => cv_profile_prefix(x, y, grid, &self.kernel),
        }
    }

    fn run_bag(
        &self,
        x: &[f64],
        y: &[f64],
        grid: &BandwidthGrid,
        bag: usize,
    ) -> Result<(BagOutcome, usize)> {
        let _bag_phase = kcv_obs::phase("cv.bag");
        let (bx, by) = self.bag_sample(x, y, bag);
        let profile = self.bag_profile(&bx, &by, grid)?;
        let opt = profile.argmin_with_min_included(self.min_included)?;
        kcv_obs::add(kcv_obs::Counter::BagsRun, 1);
        Ok((
            BagOutcome { bag, bandwidth: opt.bandwidth, score: opt.score },
            profile.len(),
        ))
    }

    /// Runs the full bagged selection and returns the per-bag detail.
    ///
    /// Errors if the sample is invalid, if `bag_size > n`
    /// ([`Error::SampleTooSmall`]), or if any bag's grid search fails.
    pub fn select_bagged(&self, x: &[f64], y: &[f64]) -> Result<BaggedSelection> {
        let n = validate_sample(x, y, 2)?;
        if self.bag_size > n {
            return Err(Error::SampleTooSmall { n, required: self.bag_size });
        }
        // One grid resolution from the full sample, shared by every bag —
        // every bag then scores the same candidate bandwidths, so per-bag
        // profiles are directly comparable.
        let grid = self.grid.resolve(x)?;

        let outcomes: Vec<Result<(BagOutcome, usize)>> = if self.parallel && self.bags > 1 {
            let scope = kcv_obs::scope();
            (0..self.bags)
                .into_par_iter()
                .map(|b| {
                    let _in_scope = scope.enter();
                    self.run_bag(x, y, &grid, b)
                })
                .collect()
        } else {
            (0..self.bags).map(|b| self.run_bag(x, y, &grid, b)).collect()
        };

        let mut bags = Vec::with_capacity(self.bags);
        let mut evaluations = 0usize;
        for outcome in outcomes {
            let (bag, evals) = outcome?;
            bags.push(bag);
            evaluations += evals;
        }

        let per_bag: Vec<f64> = bags.iter().map(|b| b.bandwidth).collect();
        let combined = self.combiner.combine(&per_bag);
        // h_opt(m) = C_h · m^{−1/5}: converts the r-sample estimate of
        // C_h · r^{−1/5} into the n-sample target C_h · n^{−1/5}.
        let rescale = (self.bag_size as f64 / n as f64).powf(0.2);
        Ok(BaggedSelection {
            bandwidth: combined * rescale,
            combined,
            rescale,
            bags,
            evaluations,
        })
    }
}

impl<K: PolynomialKernel> BandwidthSelector for BaggedSelector<K> {
    /// Runs [`BaggedSelector::select_bagged`] and returns the rescaled
    /// combined bandwidth. `score` is the combiner applied to the per-bag
    /// CV scores — a diagnostic (each score is `CV_lc` on its own
    /// subsample at the *unrescaled* bag bandwidth), not the objective at
    /// the returned bandwidth. No single profile exists, so `profile` is
    /// `None`.
    fn select(&self, x: &[f64], y: &[f64]) -> Result<Selection> {
        let bagged = self.select_bagged(x, y)?;
        let scores: Vec<f64> = bagged.bags.iter().map(|b| b.score).collect();
        Ok(Selection {
            bandwidth: bagged.bandwidth,
            score: self.combiner.combine(&scores),
            evaluations: bagged.evaluations,
            profile: None,
        })
    }

    fn name(&self) -> String {
        format!(
            "bagged-{}x{}-{}-{}-{}",
            self.bags,
            self.bag_size,
            self.engine.label(),
            self.combiner.label(),
            self.kernel.name()
        )
    }
}

/// Documented upper bound, in bytes, on one bag's transient heap
/// allocation with the default [`BagEngine::PrefixMoments`] engine at
/// kernel degree ≤ 2.
///
/// Accounting (`r = bag_size`, `k` grid points, 8-byte floats): subsample
/// copies `2·8r`, the sparse Fisher–Yates index map and index vector
/// `≈ 28r`, the engine's argsort permutation `8r`, permuted copies `2·8r`,
/// the centred copy `8r`, two `(deg+1)×(r+1)` prefix-moment tables `48r`,
/// and `≈ 24k` of profile vectors — about `124r + 24k` live at peak. The
/// bound doubles that and adds a fixed 64 KiB allowance for allocator and
/// scheduling slop, so it stays safely above real peaks while remaining
/// `O(r + k)` — **independent of the full sample size `n`**, which is the
/// invariant the bagged memory perf gate divides the measured peak into
/// (one bag's bound × worker count ≥ whole-run peak).
pub fn bag_footprint_bound_bytes(bag_size: usize, k: usize) -> u64 {
    256 * bag_size as u64 + 64 * k as u64 + (1 << 16)
}

/// The number of rayon workers a `bags`-bag run can occupy at once: bags
/// are chunked over `available_parallelism` threads, and at most one bag
/// per worker is live at any instant (each bag's subsample and tables drop
/// before the worker starts its next bag).
pub fn bag_workers(bags: usize) -> u64 {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(bags.max(1)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Epanechnikov;
    use crate::select::SortedGridSearch;
    use crate::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn bagged_selection_is_deterministic_and_schedule_independent() {
        let (x, y) = paper_dgp(1_200, 11);
        let selector = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(30), 6, 300)
            .with_seed(9);
        let parallel = selector.select_bagged(&x, &y).unwrap();
        let sequential = selector.clone().sequential().select_bagged(&x, &y).unwrap();
        let again = selector.select_bagged(&x, &y).unwrap();
        assert_eq!(parallel.bandwidth, sequential.bandwidth);
        assert_eq!(parallel.bandwidth, again.bandwidth);
        for (a, b) in parallel.bags.iter().zip(&sequential.bags) {
            assert_eq!(a.bag, b.bag);
            assert_eq!(a.bandwidth, b.bandwidth);
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn different_seeds_draw_different_bags() {
        let (x, y) = paper_dgp(800, 12);
        let a = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(40), 4, 200)
            .with_seed(1)
            .select_bagged(&x, &y)
            .unwrap();
        let b = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(40), 4, 200)
            .with_seed(2)
            .select_bagged(&x, &y)
            .unwrap();
        // Same DGP, different subsamples: per-bag selections should differ
        // somewhere even if the combined answers land close.
        assert!(
            a.bags.iter().zip(&b.bags).any(|(p, q)| p.bandwidth != q.bandwidth),
            "seeds 1 and 2 produced identical per-bag selections"
        );
    }

    #[test]
    fn full_size_single_bag_is_bit_identical_to_the_engine() {
        let (x, y) = paper_dgp(400, 13);
        for (engine, reference) in [
            (BagEngine::SortedSweep, SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(30))),
            (BagEngine::MergedSweep, SortedGridSearch::merged(Epanechnikov, GridSpec::PaperDefault(30))),
            (BagEngine::PrefixMoments, SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(30))),
        ] {
            let bagged = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(30), 1, x.len())
                .with_engine(engine)
                .select(&x, &y)
                .unwrap();
            let direct = reference.select(&x, &y).unwrap();
            assert_eq!(bagged.bandwidth, direct.bandwidth, "{engine:?}");
            assert_eq!(bagged.score, direct.score, "{engine:?}");
        }
    }

    #[test]
    fn bags_score_the_shared_full_sample_grid() {
        // The grid is resolved once from the full sample: every bag's
        // selected bandwidth must be bitwise a member of that grid, even
        // though each subsample spans a narrower domain.
        let (x, y) = paper_dgp(1_000, 18);
        let grid = GridSpec::PaperDefault(30).resolve(&x).unwrap();
        let sel = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(30), 6, 250)
            .with_seed(3)
            .select_bagged(&x, &y)
            .unwrap();
        for bag in &sel.bags {
            assert!(
                grid.values().contains(&bag.bandwidth),
                "bag {} selected {} outside the shared full-sample grid",
                bag.bag,
                bag.bandwidth
            );
        }
    }

    #[test]
    fn rescale_factor_follows_the_one_fifth_law() {
        let (x, y) = paper_dgp(1_000, 14);
        let sel = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(25), 3, 250)
            .select_bagged(&x, &y)
            .unwrap();
        assert_eq!(sel.rescale, 0.25f64.powf(0.2));
        assert_eq!(sel.bandwidth, sel.combined * sel.rescale);
        assert_eq!(sel.bags.len(), 3);
        assert_eq!(sel.evaluations, 3 * 25);
    }

    #[test]
    fn combiners_aggregate_as_documented() {
        assert_eq!(BagCombiner::Mean.combine(&[1.0, 2.0, 6.0]), 3.0);
        assert_eq!(BagCombiner::Median.combine(&[6.0, 1.0, 2.0]), 2.0);
        assert_eq!(BagCombiner::Median.combine(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(BagCombiner::Median.combine(&[5.0]), 5.0);
    }

    #[test]
    fn median_combiner_shrugs_off_an_outlier_bag() {
        let (x, y) = paper_dgp(900, 15);
        let median = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(30), 9, 300)
            .with_combiner(BagCombiner::Median)
            .select_bagged(&x, &y)
            .unwrap();
        let mean = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(30), 9, 300)
            .select_bagged(&x, &y)
            .unwrap();
        // Both land in the plausible range for the paper DGP; identical bag
        // sets, different aggregation.
        assert!(median.bandwidth > 0.0 && median.bandwidth < 1.0);
        assert!((median.combined - mean.combined).abs() < 0.1);
    }

    #[test]
    fn oversized_bags_are_rejected() {
        let (x, y) = paper_dgp(50, 16);
        let err = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(10), 2, 100)
            .select_bagged(&x, &y)
            .unwrap_err();
        assert_eq!(err, Error::SampleTooSmall { n: 50, required: 100 });
    }

    #[test]
    fn selector_name_is_informative() {
        let name = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(10), 25, 2_000)
            .with_combiner(BagCombiner::Median)
            .name();
        assert_eq!(name, "bagged-25x2000-prefix-median-epanechnikov");
    }

    #[test]
    fn footprint_bound_is_independent_of_n() {
        // The bound is a function of (r, k) only — the memory gate's point.
        assert_eq!(bag_footprint_bound_bytes(2_000, 50), 256 * 2_000 + 64 * 50 + 65_536);
        assert!(bag_workers(25) >= 1);
        assert!(bag_workers(1) == 1);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn bags_run_counter_and_phase_attribute_to_the_caller_scope() {
        let (x, y) = paper_dgp(600, 17);
        let recorder = kcv_obs::Recorder::new();
        {
            let _scope = recorder.install();
            BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(20), 5, 150)
                .select_bagged(&x, &y)
                .unwrap();
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("bags_run"), 5);
        let bag_phase = snap.phases.iter().find(|p| p.name == "cv.bag").unwrap();
        assert_eq!(bag_phase.calls, 5);
        // Prefix engine: one window query per (obs, bandwidth) cell per
        // bag, zero kernel evals — the B × single-bag work bound.
        assert_eq!(snap.counter("window_queries"), 5 * 150 * 20);
        assert_eq!(snap.counter("kernel_evals"), 0);
    }
}
