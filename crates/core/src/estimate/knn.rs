//! k-nearest-neighbour regression — the estimator the paper's §II
//! literature review contrasts with fixed-bandwidth kernels: Creel & Zubair
//! "use the k-nearest neighbor approach to nonparametric estimation — which
//! is more amenable to SIMD parallelism — rather than the more common
//! fixed-bandwidth kernel approach".
//!
//! Provided both as a baseline estimator and to show that the paper's
//! incremental-sums idea transfers: after sorting each observation's
//! leave-one-out distances once, the LOO prediction for *every* neighbour
//! count `k` is a prefix mean of the co-sorted responses, so the full CV
//! profile over `k = 1..n−1` costs `O(n log n)` per observation — the
//! exact analogue of the bandwidth sweep.

use crate::error::{validate_sample, Error, Result};
use crate::sort::sort_with_aux;

/// A k-nearest-neighbour regression estimator (uniform weights over the k
/// nearest sample points by |x − Xᵢ|).
#[derive(Debug, Clone)]
pub struct KnnRegression<'a> {
    x: &'a [f64],
    y: &'a [f64],
    k: usize,
}

impl<'a> KnnRegression<'a> {
    /// Constructs the estimator with `k` neighbours (`1 ≤ k ≤ n`).
    pub fn new(x: &'a [f64], y: &'a [f64], k: usize) -> Result<Self> {
        let n = validate_sample(x, y, 1)?;
        if k == 0 || k > n {
            return Err(Error::InvalidGrid("k must be in 1..=n"));
        }
        Ok(Self { x, y, k })
    }

    /// The neighbour count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Predicts `E[Y | X = x0]` as the mean response of the k nearest
    /// observations. Always defined (k-NN never has an empty window — the
    /// property that makes it attractive on sparse designs).
    pub fn predict(&self, x0: f64) -> f64 {
        // Partial selection of the k smallest distances.
        let mut dist: Vec<f64> = self.x.iter().map(|&xl| (x0 - xl).abs()).collect();
        let mut yv = self.y.to_vec();
        sort_with_aux(&mut dist, &mut yv);
        yv[..self.k].iter().sum::<f64>() / self.k as f64
    }

    /// Leave-one-out prediction at sample point `i`.
    pub fn loo_predict(&self, i: usize) -> Option<f64> {
        let n = self.x.len();
        if n < 2 || self.k > n - 1 {
            return None;
        }
        let xi = self.x[i];
        let mut dist = Vec::with_capacity(n - 1);
        let mut yv = Vec::with_capacity(n - 1);
        for (l, (&xl, &yl)) in self.x.iter().zip(self.y).enumerate() {
            if l != i {
                dist.push((xi - xl).abs());
                yv.push(yl);
            }
        }
        sort_with_aux(&mut dist, &mut yv);
        Some(yv[..self.k].iter().sum::<f64>() / self.k as f64)
    }
}

/// The leave-one-out CV profile over *all* neighbour counts `k = 1..=k_max`
/// at once: per observation, one sort plus prefix sums of the co-sorted
/// responses — the k-NN analogue of the paper's bandwidth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnCvProfile {
    /// Neighbour counts `1..=k_max`.
    pub ks: Vec<usize>,
    /// `CV(k) = (1/n) Σ (Yᵢ − ȳ_{k nearest})²`.
    pub scores: Vec<f64>,
    /// Sample size.
    pub n: usize,
}

impl KnnCvProfile {
    /// The CV-optimal neighbour count (ties → smaller k).
    pub fn argmin(&self) -> Result<(usize, f64)> {
        self.ks
            .iter()
            .zip(&self.scores)
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&k, &s)| (k, s))
            .ok_or(Error::NoValidBandwidth)
    }
}

/// Computes the k-NN CV profile for `k = 1..=k_max` in
/// `O(n·(n log n + k_max))` total.
pub fn knn_cv_profile(x: &[f64], y: &[f64], k_max: usize) -> Result<KnnCvProfile> {
    let n = validate_sample(x, y, 2)?;
    let k_max = k_max.min(n - 1).max(1);
    let mut sq_sums = vec![0.0; k_max];

    let mut dist = Vec::with_capacity(n - 1);
    let mut yv = Vec::with_capacity(n - 1);
    for i in 0..n {
        let xi = x[i];
        let yi = y[i];
        dist.clear();
        yv.clear();
        for (l, (&xl, &yl)) in x.iter().zip(y).enumerate() {
            if l != i {
                dist.push((xi - xl).abs());
                yv.push(yl);
            }
        }
        sort_with_aux(&mut dist, &mut yv);
        // Prefix means of the sorted responses give ĝ_{-i} for every k.
        let mut prefix = 0.0;
        for (k_idx, sq) in sq_sums.iter_mut().enumerate() {
            prefix += yv[k_idx];
            let g = prefix / (k_idx + 1) as f64;
            let r = yi - g;
            *sq += r * r;
        }
    }
    Ok(KnnCvProfile {
        ks: (1..=k_max).collect(),
        scores: sq_sums.into_iter().map(|s| s / n as f64).collect(),
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn one_nearest_neighbour_interpolates() {
        let x = [0.0, 1.0, 2.0];
        let y = [10.0, 20.0, 30.0];
        let knn = KnnRegression::new(&x, &y, 1).unwrap();
        assert_eq!(knn.predict(0.1), 10.0);
        assert_eq!(knn.predict(1.9), 30.0);
    }

    #[test]
    fn full_k_averages_everything() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 6.0];
        let knn = KnnRegression::new(&x, &y, 4).unwrap();
        assert!((knn.predict(1.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn loo_excludes_self() {
        let x = [0.0, 0.01, 5.0];
        let y = [100.0, 7.0, 3.0];
        let knn = KnnRegression::new(&x, &y, 1).unwrap();
        // LOO at index 0: nearest other point is index 1.
        assert_eq!(knn.loo_predict(0), Some(7.0));
        // k = n − 1 = 2 is the LOO maximum; k = 3 is undefined LOO.
        let knn3 = KnnRegression::new(&x, &y, 3).unwrap();
        assert_eq!(knn3.loo_predict(0), None);
    }

    #[test]
    fn profile_matches_direct_loo_evaluation() {
        let (x, y) = paper_dgp(60, 601);
        let profile = knn_cv_profile(&x, &y, 20).unwrap();
        for &k in &[1usize, 5, 13, 20] {
            let knn = KnnRegression::new(&x, &y, k).unwrap();
            let direct: f64 = (0..x.len())
                .map(|i| {
                    let r = y[i] - knn.loo_predict(i).unwrap();
                    r * r
                })
                .sum::<f64>()
                / x.len() as f64;
            let profiled = profile.scores[k - 1];
            assert!(
                (profiled - direct).abs() < 1e-10 * direct.max(1.0),
                "k={k}: {profiled} vs {direct}"
            );
        }
    }

    #[test]
    fn cv_picks_interior_k_on_noisy_data() {
        let (x, y) = paper_dgp(400, 602);
        let profile = knn_cv_profile(&x, &y, 200).unwrap();
        let (k_opt, _) = profile.argmin().unwrap();
        assert!(k_opt > 1, "k = 1 overfits noise");
        assert!(k_opt < 200, "k = 200 oversmooths this curvature");
    }

    #[test]
    fn knn_never_degenerates_unlike_fixed_bandwidth() {
        // The property Creel & Zubair exploit: isolated points still get
        // predictions.
        let x = [0.0, 0.1, 100.0];
        let y = [1.0, 2.0, 3.0];
        let knn = KnnRegression::new(&x, &y, 2).unwrap();
        assert!(knn.predict(50.0).is_finite());
        assert!(knn.loo_predict(2).is_some());
    }

    #[test]
    fn validates_k() {
        let (x, y) = paper_dgp(10, 603);
        assert!(KnnRegression::new(&x, &y, 0).is_err());
        assert!(KnnRegression::new(&x, &y, 11).is_err());
        assert!(knn_cv_profile(&x, &y, 0).is_ok()); // clamped to 1
    }
}
