//! Kernel regression estimators.
//!
//! * [`NadarayaWatson`] — the local-constant estimator the paper uses
//!   (its §IV: "the most commonly used kernel regression estimator and the
//!   default in the common R package np").
//! * [`LocalLinear`] — the local-linear estimator, provided because the `np`
//!   baseline exposes both regression types.
//!
//! Both expose plain prediction and the leave-one-out variant that the
//! cross-validation objective is built on.

mod binning;
mod derivative;
mod knn;
pub(crate) mod local_linear;
mod nw;

pub use binning::BinnedNadarayaWatson;
pub use derivative::{local_fit, marginal_effects, LocalFit};
pub use knn::{knn_cv_profile, KnnCvProfile, KnnRegression};
pub use local_linear::LocalLinear;
pub use nw::NadarayaWatson;

use crate::error::Result;

/// Common interface of the regression estimators.
pub trait RegressionEstimator {
    /// Predicts `E[Y | X = x0]`, or `None` when the local weight mass is
    /// zero/degenerate at `x0` (the `M(X_i) = 0` case of the paper's Eq. 1).
    fn predict(&self, x0: f64) -> Option<f64>;

    /// Leave-one-out prediction at sample point `i`: the fit at `X_i` with
    /// observation `i` removed (the `ĝ_{-i}(X_i)` of the paper's Eq. 2).
    fn loo_predict(&self, i: usize) -> Option<f64>;

    /// Number of observations.
    fn len(&self) -> usize;

    /// True when the sample is empty (cannot occur through constructors).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predictions at each of `points`.
    fn predict_many(&self, points: &[f64]) -> Vec<Option<f64>> {
        points.iter().map(|&p| self.predict(p)).collect()
    }

    /// In-sample fitted values `ĝ(X_i)`.
    fn fitted(&self) -> Vec<Option<f64>>;

    /// Leave-one-out residuals `Y_i − ĝ_{-i}(X_i)`; `None` where the
    /// leave-one-out denominator vanishes.
    fn loo_residuals(&self) -> Vec<Option<f64>>;

    /// The leave-one-out cross-validation score
    /// `CV = (1/n) Σ (Y_i − ĝ_{-i}(X_i))² M(X_i)` — a direct (slow)
    /// reference implementation of the paper's Eq. 1 for one bandwidth.
    fn cv_score(&self) -> f64;
}

/// A fitted curve: evaluation points paired with estimates, convenient for
/// plotting and for example binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedCurve {
    /// Evaluation points.
    pub points: Vec<f64>,
    /// Estimates; `None` where the estimator was degenerate.
    pub estimates: Vec<Option<f64>>,
}

impl FittedCurve {
    /// Evaluates `estimator` over `count` evenly spaced points spanning
    /// `[lo, hi]`.
    pub fn evaluate<E: RegressionEstimator>(
        estimator: &E,
        lo: f64,
        hi: f64,
        count: usize,
    ) -> Result<Self> {
        let points: Vec<f64> = if count <= 1 {
            vec![lo]
        } else {
            let step = (hi - lo) / (count - 1) as f64;
            (0..count).map(|i| lo + step * i as f64).collect()
        };
        let estimates = estimator.predict_many(&points);
        Ok(Self { points, estimates })
    }

    /// Fraction of evaluation points where the estimate was defined.
    pub fn coverage(&self) -> f64 {
        if self.estimates.is_empty() {
            return 0.0;
        }
        self.estimates.iter().filter(|e| e.is_some()).count() as f64
            / self.estimates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Epanechnikov;

    #[test]
    fn fitted_curve_spans_and_covers() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v).collect();
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.2).unwrap();
        let curve = FittedCurve::evaluate(&fit, 0.0, 1.0, 21).unwrap();
        assert_eq!(curve.points.len(), 21);
        assert_eq!(curve.points[0], 0.0);
        assert_eq!(*curve.points.last().unwrap(), 1.0);
        assert_eq!(curve.coverage(), 1.0);
    }

    #[test]
    fn fitted_curve_reports_partial_coverage() {
        let x = [0.0, 0.1, 1.0];
        let y = [1.0, 2.0, 3.0];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.15).unwrap();
        // Points around 0.5 have empty windows.
        let curve = FittedCurve::evaluate(&fit, 0.0, 1.0, 11).unwrap();
        assert!(curve.coverage() < 1.0);
        assert!(curve.coverage() > 0.0);
    }

    #[test]
    fn single_point_curve() {
        let x = [0.0, 1.0];
        let y = [1.0, 2.0];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 2.0).unwrap();
        let curve = FittedCurve::evaluate(&fit, 0.5, 0.9, 1).unwrap();
        assert_eq!(curve.points, vec![0.5]);
    }
}
