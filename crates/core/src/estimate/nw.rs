//! The Nadaraya–Watson (local-constant) estimator.

use super::RegressionEstimator;
use crate::error::{validate_bandwidth, validate_sample, Result};
use crate::kernels::Kernel;

/// The Nadaraya–Watson estimator
/// `ĝ(x) = Σ_l Y_l K((x − X_l)/h) / Σ_l K((x − X_l)/h)`.
///
/// Borrowed data; the struct is cheap to construct per bandwidth.
///
/// ```
/// use kcv_core::estimate::{NadarayaWatson, RegressionEstimator};
/// use kcv_core::kernels::Epanechnikov;
///
/// let x = [0.0, 0.25, 0.5, 0.75, 1.0];
/// let y = [0.0, 0.5, 1.0, 1.5, 2.0];
/// let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.6).unwrap();
/// let g = fit.predict(0.5).unwrap();
/// assert!((g - 1.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct NadarayaWatson<'a, K: Kernel> {
    x: &'a [f64],
    y: &'a [f64],
    kernel: K,
    bandwidth: f64,
}

impl<'a, K: Kernel> NadarayaWatson<'a, K> {
    /// Constructs the estimator, validating data and bandwidth.
    pub fn new(x: &'a [f64], y: &'a [f64], kernel: K, bandwidth: f64) -> Result<Self> {
        validate_sample(x, y, 1)?;
        validate_bandwidth(bandwidth)?;
        Ok(Self { x, y, kernel, bandwidth })
    }

    /// The bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Weighted sums `(Σ Y_l K, Σ K)` at `x0`, optionally skipping one index.
    fn sums(&self, x0: f64, skip: Option<usize>) -> (f64, f64) {
        let inv_h = 1.0 / self.bandwidth;
        let mut num = 0.0;
        let mut den = 0.0;
        for (l, (&xl, &yl)) in self.x.iter().zip(self.y).enumerate() {
            if Some(l) == skip {
                continue;
            }
            let w = self.kernel.eval((x0 - xl) * inv_h);
            num += yl * w;
            den += w;
        }
        (num, den)
    }
}

impl<K: Kernel> RegressionEstimator for NadarayaWatson<'_, K> {
    fn predict(&self, x0: f64) -> Option<f64> {
        let (num, den) = self.sums(x0, None);
        (den > 0.0).then(|| num / den)
    }

    fn loo_predict(&self, i: usize) -> Option<f64> {
        assert!(i < self.x.len(), "loo index {i} out of bounds");
        let (num, den) = self.sums(self.x[i], Some(i));
        (den > 0.0).then(|| num / den)
    }

    fn len(&self) -> usize {
        self.x.len()
    }

    fn fitted(&self) -> Vec<Option<f64>> {
        self.x.iter().map(|&p| self.predict(p)).collect()
    }

    fn loo_residuals(&self) -> Vec<Option<f64>> {
        (0..self.len())
            .map(|i| self.loo_predict(i).map(|g| self.y[i] - g))
            .collect()
    }

    fn cv_score(&self) -> f64 {
        let n = self.len() as f64;
        self.loo_residuals()
            .iter()
            .map(|r| r.map_or(0.0, |e| e * e))
            .sum::<f64>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian, Uniform};

    #[test]
    fn constant_response_is_recovered_exactly() {
        let x = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        let y = [3.0; 6];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.5).unwrap();
        for &p in &x {
            assert!((fit.predict(p).unwrap() - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn prediction_is_local_average_with_uniform_kernel() {
        // With the box kernel and h = 0.3, predicting at 0.5 averages the
        // y-values of x in [0.2, 0.8].
        let x = [0.0, 0.3, 0.5, 0.7, 1.0];
        let y = [100.0, 1.0, 2.0, 3.0, 100.0];
        let fit = NadarayaWatson::new(&x, &y, Uniform, 0.3).unwrap();
        assert!((fit.predict(0.5).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_neighbourhood_yields_none() {
        let x = [0.0, 1.0];
        let y = [1.0, 2.0];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.1).unwrap();
        assert_eq!(fit.predict(0.5), None);
    }

    #[test]
    fn loo_excludes_own_observation() {
        // Two points within bandwidth of each other: the LOO prediction at
        // point 0 must equal y[1].
        let x = [0.0, 0.05];
        let y = [10.0, 20.0];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.2).unwrap();
        assert!((fit.loo_predict(0).unwrap() - 20.0).abs() < 1e-12);
        assert!((fit.loo_predict(1).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn loo_none_when_isolated() {
        let x = [0.0, 10.0, 20.0];
        let y = [1.0, 2.0, 3.0];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 1.0).unwrap();
        assert_eq!(fit.loo_predict(0), None);
        assert_eq!(
            fit.loo_residuals(),
            vec![None, None, None]
        );
        // CV treats excluded points as contributing zero (M(X_i) = 0).
        assert_eq!(fit.cv_score(), 0.0);
    }

    #[test]
    fn gaussian_kernel_rarely_degenerate() {
        // With infinite support the denominator is positive wherever the
        // kernel has not underflowed to 0 in f64 (|u| ≲ 38).
        let x = [0.0, 5.0];
        let y = [1.0, 5.0];
        let fit = NadarayaWatson::new(&x, &y, Gaussian, 0.5).unwrap();
        assert!(fit.predict(2.5).is_some());
        assert!(fit.loo_predict(0).is_some());
        // Far beyond underflow range the estimate genuinely degenerates.
        assert_eq!(fit.predict(1.0e6), None);
    }

    #[test]
    fn cv_score_matches_hand_calculation() {
        // x evenly spaced, h small enough that each LOO fit sees only the
        // two adjacent points (uniform kernel, h = 0.15, spacing 0.1).
        let x = [0.0, 0.1, 0.2, 0.3];
        let y = [1.0, 2.0, 4.0, 8.0];
        let fit = NadarayaWatson::new(&x, &y, Uniform, 0.15).unwrap();
        // LOO fits: g-0 = y1 = 2; g-1 = (1+4)/2 = 2.5; g-2 = (2+8)/2 = 5; g-3 = y2 = 4.
        let expected = ((1.0f64 - 2.0).powi(2)
            + (2.0f64 - 2.5).powi(2)
            + (4.0f64 - 5.0).powi(2)
            + (8.0f64 - 4.0).powi(2))
            / 4.0;
        assert!((fit.cv_score() - expected).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(NadarayaWatson::new(&[1.0], &[1.0, 2.0], Epanechnikov, 0.5).is_err());
        assert!(NadarayaWatson::new(&[1.0], &[1.0], Epanechnikov, 0.0).is_err());
        assert!(NadarayaWatson::new(&[1.0], &[1.0], Epanechnikov, -2.0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn loo_out_of_range_panics() {
        let x = [0.0, 1.0];
        let y = [0.0, 1.0];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.5).unwrap();
        let _ = fit.loo_predict(5);
    }
}
