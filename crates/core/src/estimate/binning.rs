//! Linear-binning acceleration for kernel regression.
//!
//! A standard approximation (Fan & Marron's "fast implementations"): spread
//! each observation's mass linearly over the two nearest points of a
//! uniform grid of `G` bins, then evaluate the Nadaraya–Watson sums over
//! bins instead of observations — `O(G · window)` per prediction
//! independent of `n`. For smooth designs a few hundred bins reproduce the
//! exact estimator to several digits; accuracy is measured against the
//! exact fit in this module's tests.
//!
//! This is a complementary speed/accuracy trade-off to the paper's exact
//! sorted sweep: binning approximates, the sweep is exact.

use super::RegressionEstimator;
use crate::error::{validate_bandwidth, validate_sample, Error, Result};
use crate::kernels::Kernel;
use crate::util::min_max;

/// A Nadaraya–Watson estimator over linearly binned data.
#[derive(Debug, Clone)]
pub struct BinnedNadarayaWatson<K: Kernel> {
    /// Bin centres (uniform grid).
    centres: Vec<f64>,
    /// Total binned weight (count mass) per bin.
    weight: Vec<f64>,
    /// Binned response mass per bin (`Σ wᵢ·Yᵢ`).
    response: Vec<f64>,
    kernel: K,
    bandwidth: f64,
    bin_width: f64,
    n: usize,
}

impl<K: Kernel> BinnedNadarayaWatson<K> {
    /// Bins `(x, y)` onto `bins` uniform grid points spanning the data and
    /// prepares the estimator at bandwidth `h`.
    pub fn new(x: &[f64], y: &[f64], kernel: K, bandwidth: f64, bins: usize) -> Result<Self> {
        let n = validate_sample(x, y, 2)?;
        validate_bandwidth(bandwidth)?;
        if bins < 2 {
            return Err(Error::InvalidGrid("need at least 2 bins"));
        }
        let (lo, hi) = min_max(x).expect("validated non-empty");
        if hi <= lo {
            return Err(Error::DegenerateDomain);
        }
        let bin_width = (hi - lo) / (bins - 1) as f64;
        let centres: Vec<f64> = (0..bins).map(|g| lo + g as f64 * bin_width).collect();
        let mut weight = vec![0.0; bins];
        let mut response = vec![0.0; bins];
        for (&xi, &yi) in x.iter().zip(y) {
            // Linear binning: split mass between the straddling grid points.
            let pos = (xi - lo) / bin_width;
            let g = (pos.floor() as usize).min(bins - 2);
            let frac = (pos - g as f64).clamp(0.0, 1.0);
            weight[g] += 1.0 - frac;
            weight[g + 1] += frac;
            response[g] += (1.0 - frac) * yi;
            response[g + 1] += frac * yi;
        }
        Ok(Self { centres, weight, response, kernel, bandwidth, bin_width, n })
    }

    /// The bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of grid bins.
    pub fn bins(&self) -> usize {
        self.centres.len()
    }

    /// Predicts `E[Y | X = x0]` from the binned sums; `None` on zero mass.
    pub fn predict(&self, x0: f64) -> Option<f64> {
        let inv_h = 1.0 / self.bandwidth;
        // Restrict to the kernel window when the support is compact.
        let (g_lo, g_hi) = match self.kernel.support() {
            Some(r) => {
                let lo = self.centres[0];
                let span = r * self.bandwidth;
                let a = ((x0 - span - lo) / self.bin_width).floor().max(0.0) as usize;
                let b = (((x0 + span - lo) / self.bin_width).ceil() as usize)
                    .min(self.centres.len() - 1);
                if a > b {
                    return None;
                }
                (a, b)
            }
            None => (0, self.centres.len() - 1),
        };
        let mut num = 0.0;
        let mut den = 0.0;
        for g in g_lo..=g_hi {
            if self.weight[g] == 0.0 {
                continue;
            }
            let w = self.kernel.eval((x0 - self.centres[g]) * inv_h);
            num += self.response[g] * w;
            den += self.weight[g] * w;
        }
        (den > 0.0).then(|| num / den)
    }

    /// Predictions at each of `points`.
    pub fn predict_many(&self, points: &[f64]) -> Vec<Option<f64>> {
        points.iter().map(|&p| self.predict(p)).collect()
    }

    /// Maximum absolute deviation from the exact estimator over `points`
    /// (skipping points where either estimate is undefined) — a cheap
    /// accuracy certificate for a chosen bin count.
    pub fn max_deviation_from_exact(
        &self,
        x: &[f64],
        y: &[f64],
        points: &[f64],
    ) -> Result<f64>
    where
        K: Clone,
    {
        let exact =
            super::NadarayaWatson::new(x, y, self.kernel.clone(), self.bandwidth)?;
        let mut worst = 0.0f64;
        for &p in points {
            if let (Some(a), Some(b)) = (self.predict(p), exact.predict(p)) {
                worst = worst.max((a - b).abs());
            }
        }
        Ok(worst)
    }

    /// Number of original observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when constructed from an empty sample (impossible by
    /// construction; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::NadarayaWatson;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn binned_tracks_exact_estimator() {
        let (x, y) = paper_dgp(2_000, 301);
        let h = 0.08;
        let binned = BinnedNadarayaWatson::new(&x, &y, Epanechnikov, h, 400).unwrap();
        let points: Vec<f64> = (5..=95).map(|i| i as f64 / 100.0).collect();
        let worst = binned.max_deviation_from_exact(&x, &y, &points).unwrap();
        assert!(worst < 0.01, "max deviation {worst}");
    }

    #[test]
    fn accuracy_improves_with_bin_count() {
        let (x, y) = paper_dgp(1_000, 302);
        let points: Vec<f64> = (10..=90).map(|i| i as f64 / 100.0).collect();
        let dev = |bins: usize| {
            BinnedNadarayaWatson::new(&x, &y, Epanechnikov, 0.1, bins)
                .unwrap()
                .max_deviation_from_exact(&x, &y, &points)
                .unwrap()
        };
        let coarse = dev(25);
        let fine = dev(800);
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
        assert!(fine < 2e-3, "fine grid should be accurate: {fine}");
    }

    #[test]
    fn binned_mass_is_conserved() {
        let (x, y) = paper_dgp(500, 303);
        let binned = BinnedNadarayaWatson::new(&x, &y, Epanechnikov, 0.1, 100).unwrap();
        let total_w: f64 = binned.weight.iter().sum();
        let total_r: f64 = binned.response.iter().sum();
        assert!((total_w - 500.0).abs() < 1e-9);
        assert!((total_r - y.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn gaussian_kernel_scans_all_bins() {
        let (x, y) = paper_dgp(300, 304);
        let binned = BinnedNadarayaWatson::new(&x, &y, Gaussian, 0.1, 100).unwrap();
        let exact = NadarayaWatson::new(&x, &y, Gaussian, 0.1).unwrap();
        use crate::estimate::RegressionEstimator;
        let a = binned.predict(0.5).unwrap();
        let b = exact.predict(0.5).unwrap();
        assert!((a - b).abs() < 0.01, "{a} vs {b}");
    }

    #[test]
    fn empty_window_gives_none() {
        let x = [0.0, 0.1, 1.0];
        let y = [1.0, 2.0, 3.0];
        let binned = BinnedNadarayaWatson::new(&x, &y, Epanechnikov, 0.05, 50).unwrap();
        assert_eq!(binned.predict(0.5), None);
    }

    #[test]
    fn validates_inputs() {
        let (x, y) = paper_dgp(10, 305);
        assert!(BinnedNadarayaWatson::new(&x, &y, Epanechnikov, 0.1, 1).is_err());
        assert!(BinnedNadarayaWatson::new(&x, &y, Epanechnikov, 0.0, 10).is_err());
        assert!(BinnedNadarayaWatson::new(&[1.0, 1.0], &[1.0, 2.0], Epanechnikov, 0.1, 10)
            .is_err());
    }
}
