//! Derivative (marginal-effect) estimation.
//!
//! The local-linear fit at `x0` estimates both the level `a = ĝ(x0)` and
//! the slope `b = ĝ′(x0)` — the *marginal effect*, which is what applied
//! econometrics usually wants from a nonparametric regression (np exposes
//! it as `gradients(npreg(...))`). This module returns the slope from the
//! same weighted least-squares system the level comes from.

use crate::error::{validate_bandwidth, validate_sample, Result};
use crate::kernels::Kernel;

/// Local-linear level-and-slope estimates at a point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalFit {
    /// The level estimate `ĝ(x0)`.
    pub level: f64,
    /// The slope estimate `ĝ′(x0)` (the marginal effect).
    pub slope: f64,
}

/// Estimates `(ĝ(x0), ĝ′(x0))` by a local-linear fit at `x0`; `None` when
/// the window is empty or the design is locally degenerate (a slope needs
/// two distinct regressor values in the window).
pub fn local_fit<K: Kernel>(
    x: &[f64],
    y: &[f64],
    kernel: &K,
    h: f64,
    x0: f64,
) -> Result<Option<LocalFit>> {
    validate_sample(x, y, 2)?;
    validate_bandwidth(h)?;
    let inv_h = 1.0 / h;
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut t0 = 0.0;
    let mut t1 = 0.0;
    for (&xl, &yl) in x.iter().zip(y) {
        let d = xl - x0;
        let w = kernel.eval(d * inv_h);
        if w == 0.0 {
            continue;
        }
        s0 += w;
        s1 += w * d;
        s2 += w * d * d;
        t0 += w * yl;
        t1 += w * yl * d;
    }
    if s0 <= 0.0 {
        return Ok(None);
    }
    let det = s0 * s2 - s1 * s1;
    if det <= 1e-12 * s0 * s0 * h * h {
        return Ok(None); // level would exist, but no identifiable slope
    }
    Ok(Some(LocalFit {
        level: (s2 * t0 - s1 * t1) / det,
        slope: (s0 * t1 - s1 * t0) / det,
    }))
}

/// Marginal effects over a set of evaluation points: `ĝ′(p)` for each `p`
/// (`None` where not identified).
pub fn marginal_effects<K: Kernel>(
    x: &[f64],
    y: &[f64],
    kernel: &K,
    h: f64,
    points: &[f64],
) -> Result<Vec<Option<f64>>> {
    points
        .iter()
        .map(|&p| Ok(local_fit(x, y, kernel, h, p)?.map(|f| f.slope)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    #[test]
    fn slope_is_exact_on_lines() {
        let x: Vec<f64> = (0..60).map(|i| i as f64 / 59.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 4.0 - 3.0 * v).collect();
        for &p in &[0.1, 0.5, 0.9] {
            let fit = local_fit(&x, &y, &Epanechnikov, 0.25, p).unwrap().unwrap();
            assert!((fit.slope + 3.0).abs() < 1e-10, "slope at {p}: {}", fit.slope);
            assert!((fit.level - (4.0 - 3.0 * p)).abs() < 1e-10);
        }
    }

    #[test]
    fn slope_tracks_the_derivative_of_the_paper_dgp() {
        // g(x) = 0.5x + 10x² + E[u] → g′(x) = 0.5 + 20x.
        let mut rng = SplitMix64::new(801);
        let x: Vec<f64> = (0..3_000).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        for &p in &[0.3, 0.5, 0.7] {
            let truth = 0.5 + 20.0 * p;
            let fit = local_fit(&x, &y, &Gaussian, 0.05, p).unwrap().unwrap();
            assert!(
                (fit.slope - truth).abs() < 0.8,
                "g'({p}) = {} vs truth {truth}",
                fit.slope
            );
        }
    }

    #[test]
    fn marginal_effects_increase_along_a_convex_curve() {
        let mut rng = SplitMix64::new(802);
        let x: Vec<f64> = (0..2_000).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x.iter().map(|&v| v * v + 0.05 * rng.next_f64()).collect();
        let points = [0.2, 0.5, 0.8];
        let effects = marginal_effects(&x, &y, &Epanechnikov, 0.1, &points).unwrap();
        let slopes: Vec<f64> = effects.into_iter().map(|e| e.unwrap()).collect();
        assert!(slopes[0] < slopes[1] && slopes[1] < slopes[2], "{slopes:?}");
    }

    #[test]
    fn degenerate_windows_yield_none() {
        let x = [0.0, 0.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        // Window around 0 sees two identical x values → no slope.
        assert_eq!(local_fit(&x, &y, &Epanechnikov, 0.2, 0.0).unwrap(), None);
        // Empty window.
        assert_eq!(local_fit(&x, &y, &Epanechnikov, 0.2, 0.5).unwrap(), None);
    }

    #[test]
    fn validates_inputs() {
        assert!(local_fit(&[1.0], &[1.0], &Epanechnikov, 0.1, 0.5).is_err());
        assert!(local_fit(&[1.0, 2.0], &[1.0, 2.0], &Epanechnikov, 0.0, 0.5).is_err());
    }
}
