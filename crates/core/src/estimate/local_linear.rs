//! The local-linear estimator.

use super::RegressionEstimator;
use crate::error::{validate_bandwidth, validate_sample, Result};
use crate::kernels::Kernel;

/// Threshold below which the weighted-design determinant is treated as
/// degenerate, relative to `S0² · h²` scaling.
const DEGENERACY_REL_TOL: f64 = 1e-12;

/// The local-linear estimator: at each evaluation point `x0` it fits the
/// weighted least-squares line `Y ≈ a + b(X − x0)` with weights
/// `K((x0 − X_l)/h)` and reports `a`.
///
/// Provided because the R `np` baseline (`regtype = "ll"`) exposes it; it
/// removes the boundary bias of Nadaraya–Watson at the cost of possible
/// degeneracy when all in-window regressors coincide.
#[derive(Debug, Clone)]
pub struct LocalLinear<'a, K: Kernel> {
    x: &'a [f64],
    y: &'a [f64],
    kernel: K,
    bandwidth: f64,
}

impl<'a, K: Kernel> LocalLinear<'a, K> {
    /// Constructs the estimator, validating data and bandwidth.
    pub fn new(x: &'a [f64], y: &'a [f64], kernel: K, bandwidth: f64) -> Result<Self> {
        validate_sample(x, y, 2)?;
        validate_bandwidth(bandwidth)?;
        Ok(Self { x, y, kernel, bandwidth })
    }

    /// The bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Weighted moment sums at `x0`:
    /// `S_j = Σ K (X−x0)^j` (j = 0,1,2), `T_j = Σ K Y (X−x0)^j` (j = 0,1),
    /// optionally skipping one index.
    fn moments(&self, x0: f64, skip: Option<usize>) -> [f64; 5] {
        let inv_h = 1.0 / self.bandwidth;
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut t0 = 0.0;
        let mut t1 = 0.0;
        for (l, (&xl, &yl)) in self.x.iter().zip(self.y).enumerate() {
            if Some(l) == skip {
                continue;
            }
            let d = xl - x0;
            let w = self.kernel.eval(d * inv_h);
            if w == 0.0 {
                continue;
            }
            s0 += w;
            s1 += w * d;
            s2 += w * d * d;
            t0 += w * yl;
            t1 += w * yl * d;
        }
        [s0, s1, s2, t0, t1]
    }

    /// Solves the 2×2 weighted least-squares system; `None` on degeneracy.
    fn solve(m: [f64; 5], h: f64) -> Option<f64> {
        solve_local_linear(m, h)
    }
}

/// Solves the local-linear system given the weighted moments
/// `[S0, S1, S2, T0, T1]` (see [`LocalLinear`]); `None` when the weight
/// mass is zero, local-constant fallback when the design is degenerate.
///
/// Shared with the sorted-sweep cross-validation path so both agree exactly
/// on degeneracy decisions.
pub(crate) fn solve_local_linear(m: [f64; 5], h: f64) -> Option<f64> {
    let [s0, s1, s2, t0, t1] = m;
    if s0 <= 0.0 {
        return None;
    }
    let det = s0 * s2 - s1 * s1;
    // Scale-aware degeneracy check: det has units of K²·x², compare
    // against S0²h² (the natural magnitude when points are spread).
    if det <= DEGENERACY_REL_TOL * s0 * s0 * h * h {
        // Fall back to the local-constant estimate when only one
        // distinct x is in the window (standard practice).
        return Some(t0 / s0);
    }
    Some((s2 * t0 - s1 * t1) / det)
}

impl<K: Kernel> RegressionEstimator for LocalLinear<'_, K> {
    fn predict(&self, x0: f64) -> Option<f64> {
        Self::solve(self.moments(x0, None), self.bandwidth)
    }

    fn loo_predict(&self, i: usize) -> Option<f64> {
        assert!(i < self.x.len(), "loo index {i} out of bounds");
        Self::solve(self.moments(self.x[i], Some(i)), self.bandwidth)
    }

    fn len(&self) -> usize {
        self.x.len()
    }

    fn fitted(&self) -> Vec<Option<f64>> {
        self.x.iter().map(|&p| self.predict(p)).collect()
    }

    fn loo_residuals(&self) -> Vec<Option<f64>> {
        (0..self.len())
            .map(|i| self.loo_predict(i).map(|g| self.y[i] - g))
            .collect()
    }

    fn cv_score(&self) -> f64 {
        let n = self.len() as f64;
        self.loo_residuals()
            .iter()
            .map(|r| r.map_or(0.0, |e| e * e))
            .sum::<f64>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};

    #[test]
    fn recovers_exact_lines() {
        // Local-linear is exact for linear truth regardless of design.
        let x: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 + 3.0 * v).collect();
        let fit = LocalLinear::new(&x, &y, Epanechnikov, 0.2).unwrap();
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let g = fit.predict(p).unwrap();
            assert!((g - (2.0 + 3.0 * p)).abs() < 1e-10, "at {p}: {g}");
        }
    }

    #[test]
    fn no_boundary_bias_on_lines_unlike_nw() {
        use crate::estimate::NadarayaWatson;
        let x: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 10.0 * v).collect();
        let ll = LocalLinear::new(&x, &y, Epanechnikov, 0.3).unwrap();
        let nw = NadarayaWatson::new(&x, &y, Epanechnikov, 0.3).unwrap();
        let ll_err = (ll.predict(0.0).unwrap() - 0.0).abs();
        let nw_err = (nw.predict(0.0).unwrap() - 0.0).abs();
        assert!(ll_err < 1e-10);
        assert!(nw_err > 0.1, "NW should be biased at the boundary: {nw_err}");
    }

    #[test]
    fn degenerate_window_falls_back_to_local_constant() {
        // All in-window x identical → determinant 0 → local average.
        let x = [0.5, 0.5, 0.5, 5.0];
        let y = [1.0, 2.0, 3.0, 100.0];
        let fit = LocalLinear::new(&x, &y, Epanechnikov, 0.2).unwrap();
        assert!((fit.predict(0.5).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_yields_none() {
        let x = [0.0, 1.0];
        let y = [1.0, 2.0];
        let fit = LocalLinear::new(&x, &y, Epanechnikov, 0.05).unwrap();
        assert_eq!(fit.predict(0.5), None);
    }

    #[test]
    fn loo_excludes_own_observation_on_lines() {
        let x: Vec<f64> = (0..30).map(|i| i as f64 / 29.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 1.0 - 2.0 * v).collect();
        let fit = LocalLinear::new(&x, &y, Gaussian, 0.2).unwrap();
        // On exact lines, LOO residuals are ~0 everywhere.
        for r in fit.loo_residuals() {
            assert!(r.unwrap().abs() < 1e-9);
        }
        assert!(fit.cv_score() < 1e-18);
    }

    #[test]
    fn requires_at_least_two_points() {
        assert!(LocalLinear::new(&[1.0], &[1.0], Epanechnikov, 0.5).is_err());
    }
}
