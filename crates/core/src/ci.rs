//! Leave-one-out cross-validated confidence intervals for kernel
//! regression — the second extension the paper names ("the estimation of
//! leave-one-out cross-validated confidence intervals for kernel density
//! estimates and kernel regressions").
//!
//! The pointwise asymptotic variance of the Nadaraya–Watson estimate is
//! `Var(ĝ(x)) ≈ σ²(x) R(K) / (n h f(x))`; we estimate the residual variance
//! `σ²` from the leave-one-out residuals at the selected bandwidth (which
//! is exactly what the CV machinery already produces) and `f(x)` with a KDE
//! at the same bandwidth.

use crate::density::Kde;
use crate::error::{Error, Result};
use crate::estimate::{NadarayaWatson, RegressionEstimator};
use crate::kernels::Kernel;

/// A pointwise confidence band over a set of evaluation points.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceBand {
    /// Evaluation points.
    pub points: Vec<f64>,
    /// Point estimates `ĝ(x)`; `NaN` where undefined.
    pub estimates: Vec<f64>,
    /// Lower band limits.
    pub lower: Vec<f64>,
    /// Upper band limits.
    pub upper: Vec<f64>,
    /// The residual variance estimate used.
    pub sigma_sq: f64,
    /// The normal critical value used.
    pub z: f64,
}

/// Normal quantile via the Acklam rational approximation (|error| < 1.2e-9),
/// sufficient for critical values.
#[allow(clippy::excessive_precision)]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Estimates `σ²` as the mean squared leave-one-out residual at bandwidth
/// `h` (observations with undefined LOO fits are skipped).
pub fn loo_residual_variance<K: Kernel + Clone>(
    x: &[f64],
    y: &[f64],
    kernel: &K,
    h: f64,
) -> Result<f64> {
    let fit = NadarayaWatson::new(x, y, kernel.clone(), h)?;
    let residuals = fit.loo_residuals();
    let mut sum = 0.0;
    let mut count = 0usize;
    for r in residuals.into_iter().flatten() {
        sum += r * r;
        count += 1;
    }
    if count == 0 {
        return Err(Error::NoValidBandwidth);
    }
    Ok(sum / count as f64)
}

/// Builds the pointwise `level` (e.g. 0.95) confidence band for the
/// Nadaraya–Watson fit at bandwidth `h`, over `points`.
pub fn confidence_band<K: Kernel + Clone>(
    x: &[f64],
    y: &[f64],
    kernel: &K,
    h: f64,
    points: &[f64],
    level: f64,
) -> Result<ConfidenceBand> {
    if !(0.0 < level && level < 1.0) {
        return Err(Error::InvalidGrid("confidence level must be in (0,1)"));
    }
    let n = x.len() as f64;
    let sigma_sq = loo_residual_variance(x, y, kernel, h)?;
    let z = normal_quantile(0.5 + level / 2.0);
    let roughness = kernel.roughness();

    let fit = NadarayaWatson::new(x, y, kernel.clone(), h)?;
    let kde = Kde::new(x, kernel.clone(), h)?;

    let mut estimates = Vec::with_capacity(points.len());
    let mut lower = Vec::with_capacity(points.len());
    let mut upper = Vec::with_capacity(points.len());
    for &p in points {
        match fit.predict(p) {
            Some(g) => {
                let f_hat = kde.evaluate(p).max(f64::MIN_POSITIVE);
                let se = (sigma_sq * roughness / (n * h * f_hat)).sqrt();
                estimates.push(g);
                lower.push(g - z * se);
                upper.push(g + z * se);
            }
            None => {
                estimates.push(f64::NAN);
                lower.push(f64::NAN);
                upper.push(f64::NAN);
            }
        }
    }
    Ok(ConfidenceBand { points: points.to_vec(), estimates, lower, upper, sigma_sq, z })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Epanechnikov;
    use crate::util::SplitMix64;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.995) - 2.575_829_3).abs() < 1e-5);
        // Tail region branch.
        assert!((normal_quantile(0.001) + 3.090_232_3).abs() < 1e-4);
    }

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn residual_variance_close_to_noise_variance() {
        // u ~ U(0, 0.5) has variance 0.25/12 ≈ 0.0208.
        let (x, y) = paper_dgp(2_000, 81);
        let v = loo_residual_variance(&x, &y, &Epanechnikov, 0.05).unwrap();
        assert!(
            (v - 0.25 / 12.0).abs() < 0.01,
            "variance estimate {v} vs true {}",
            0.25 / 12.0
        );
    }

    #[test]
    fn band_contains_point_estimate_and_orders_correctly() {
        let (x, y) = paper_dgp(300, 82);
        let points: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();
        let band = confidence_band(&x, &y, &Epanechnikov, 0.1, &points, 0.95).unwrap();
        for i in 0..points.len() {
            assert!(band.lower[i] <= band.estimates[i]);
            assert!(band.estimates[i] <= band.upper[i]);
        }
        assert!((band.z - 1.96).abs() < 0.001);
    }

    #[test]
    fn band_mostly_covers_true_function() {
        // With n = 1000 and a sensible h, the 95% band should cover the true
        // conditional mean g(x) = 0.5x + 10x² + 0.25 at the large majority
        // of interior evaluation points.
        // h is chosen on the undersmoothed side (standard for inference: it
        // shrinks the smoothing bias the first-order band ignores).
        let (x, y) = paper_dgp(1_000, 83);
        let points: Vec<f64> = (5..=95).map(|i| i as f64 / 100.0).collect();
        let band = confidence_band(&x, &y, &Epanechnikov, 0.04, &points, 0.95).unwrap();
        let mut covered = 0usize;
        for (i, &p) in points.iter().enumerate() {
            let truth = 0.5 * p + 10.0 * p * p + 0.25;
            if band.lower[i] <= truth && truth <= band.upper[i] {
                covered += 1;
            }
        }
        let rate = covered as f64 / points.len() as f64;
        // Smoothing bias makes exact nominal coverage unattainable; require
        // a solid majority.
        assert!(rate > 0.6, "coverage {rate} too low");
    }

    #[test]
    fn wider_level_gives_wider_band() {
        let (x, y) = paper_dgp(200, 84);
        let points = [0.5];
        let b90 = confidence_band(&x, &y, &Epanechnikov, 0.1, &points, 0.90).unwrap();
        let b99 = confidence_band(&x, &y, &Epanechnikov, 0.1, &points, 0.99).unwrap();
        assert!(b99.upper[0] - b99.lower[0] > b90.upper[0] - b90.lower[0]);
    }

    #[test]
    fn undefined_points_are_nan() {
        let x = [0.0, 0.1, 0.2];
        let y = [1.0, 2.0, 3.0];
        let band = confidence_band(&x, &y, &Epanechnikov, 0.15, &[5.0], 0.95).unwrap();
        assert!(band.estimates[0].is_nan());
        assert!(band.lower[0].is_nan());
    }

    #[test]
    fn invalid_level_rejected() {
        let (x, y) = paper_dgp(50, 85);
        assert!(confidence_band(&x, &y, &Epanechnikov, 0.1, &[0.5], 0.0).is_err());
        assert!(confidence_band(&x, &y, &Epanechnikov, 0.1, &[0.5], 1.0).is_err());
    }
}
