//! Iterative (explicit-stack) quicksort co-sorting an auxiliary array.
//!
//! The paper sorts, per observation, the vector of absolute distances
//! `|X_i − X_l|` together with the matching responses `Y_l`, using an
//! iterative variant of QuickSort (adapted from Finley's non-recursive C
//! implementation) because early CUDA devices disallowed recursion and the
//! recursive call tree would bloat each thread's stack. This module is the
//! host-side reference implementation of that routine; the device-side port
//! (with operation counting) lives in `kcv-gpu-sim::device_sort`.

/// Below this length a partition is finished with insertion sort, which is
/// faster than further partitioning for tiny runs.
const INSERTION_CUTOFF: usize = 12;

/// Maximum explicit-stack depth. Because we always push the larger partition
/// and iterate on the smaller one, depth is bounded by `log2(len)`; 64 covers
/// any address space.
const MAX_STACK: usize = 64;

/// Sorts `keys` ascending, applying every swap to `aux` as well.
///
/// `keys` must contain no NaN (the comparison used is `<`, which would leave
/// NaN-containing input in unspecified — though memory-safe — order).
///
/// # Panics
///
/// Panics if `keys` and `aux` have different lengths.
pub fn sort_with_aux(keys: &mut [f64], aux: &mut [f64]) {
    assert_eq!(keys.len(), aux.len(), "key and auxiliary arrays must match");
    if keys.len() < 2 {
        return;
    }
    // Key-comparison tally for the observability layer; with `metrics` off
    // the final `add` is a no-op and the increments fold away.
    let mut cmps = 0u64;
    // Explicit stack of (lo, hi) inclusive ranges, mirroring the device code.
    let mut stack = [(0usize, 0usize); MAX_STACK];
    let mut top = 0usize;
    stack[top] = (0, keys.len() - 1);
    top += 1;

    while top > 0 {
        top -= 1;
        let (mut lo, mut hi) = stack[top];
        // Iterate on the smaller side, push the larger: bounded stack.
        loop {
            if hi - lo < INSERTION_CUTOFF {
                insertion_sort_range(keys, aux, lo, hi, &mut cmps);
                break;
            }
            let p = partition(keys, aux, lo, hi, &mut cmps);
            let left_len = p - lo; // elements strictly left of p
            let right_len = hi - p; // elements strictly right of p
            if left_len < right_len {
                if p + 1 < hi {
                    stack[top] = (p + 1, hi);
                    top += 1;
                }
                if p <= lo {
                    break;
                }
                hi = p - 1;
            } else {
                if p > lo {
                    stack[top] = (lo, p - 1);
                    top += 1;
                }
                if p >= hi {
                    break;
                }
                lo = p + 1;
            }
        }
    }
    kcv_obs::add(kcv_obs::Counter::SortComparisons, cmps);
}

/// Hoare-style partition with median-of-three pivot selection.
///
/// Returns the final index of the pivot; everything left of it is `<=` pivot
/// and everything right is `>=` pivot.
fn partition(keys: &mut [f64], aux: &mut [f64], lo: usize, hi: usize, cmps: &mut u64) -> usize {
    let mid = lo + (hi - lo) / 2;
    // Order (lo, mid, hi) so keys[mid] is the median of the three.
    *cmps += 3;
    if keys[mid] < keys[lo] {
        swap_both(keys, aux, mid, lo);
    }
    if keys[hi] < keys[lo] {
        swap_both(keys, aux, hi, lo);
    }
    if keys[hi] < keys[mid] {
        swap_both(keys, aux, hi, mid);
    }
    // Stash the pivot just before hi (hi is already >= pivot).
    swap_both(keys, aux, mid, hi - 1);
    let pivot = keys[hi - 1];

    let mut i = lo;
    let mut j = hi - 1;
    loop {
        loop {
            i += 1;
            *cmps += 1;
            if keys[i] >= pivot {
                break;
            }
        }
        loop {
            j -= 1;
            *cmps += 1;
            if keys[j] <= pivot {
                break;
            }
        }
        if i >= j {
            break;
        }
        swap_both(keys, aux, i, j);
    }
    // Restore pivot into its final slot.
    swap_both(keys, aux, i, hi - 1);
    i
}

/// Insertion sort over the inclusive range `[lo, hi]`.
fn insertion_sort_range(keys: &mut [f64], aux: &mut [f64], lo: usize, hi: usize, cmps: &mut u64) {
    for i in (lo + 1)..=hi {
        let k = keys[i];
        let a = aux[i];
        let mut j = i;
        while j > lo {
            *cmps += 1;
            if keys[j - 1] <= k {
                break;
            }
            keys[j] = keys[j - 1];
            aux[j] = aux[j - 1];
            j -= 1;
        }
        keys[j] = k;
        aux[j] = a;
    }
}

#[inline]
fn swap_both(keys: &mut [f64], aux: &mut [f64], i: usize, j: usize) {
    keys.swap(i, j);
    aux.swap(i, j);
}

/// Returns the permutation that sorts `keys` ascending (stable for ties).
pub fn argsort(keys: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    let mut cmps = 0u64;
    idx.sort_by(|&a, &b| {
        cmps += 1;
        keys[a].total_cmp(&keys[b])
    });
    kcv_obs::add(kcv_obs::Counter::SortComparisons, cmps);
    idx
}

/// Applies a permutation (as produced by [`argsort`]) to a slice, returning
/// the reordered copy.
pub fn apply_permutation<T: Copy>(values: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&i| values[i]).collect()
}

/// True when the slice is sorted in non-decreasing order.
pub fn is_sorted(keys: &[f64]) -> bool {
    keys.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;
    use proptest::prelude::*;

    fn check_sorted_and_paired(original_k: &[f64], original_a: &[f64]) {
        let mut k = original_k.to_vec();
        let mut a = original_a.to_vec();
        sort_with_aux(&mut k, &mut a);
        assert!(is_sorted(&k), "keys not sorted: {k:?}");
        // Pairing preserved: the multiset of (k, a) pairs must be unchanged.
        let mut before: Vec<(u64, u64)> = original_k
            .iter()
            .zip(original_a)
            .map(|(x, y)| (x.to_bits(), y.to_bits()))
            .collect();
        let mut after: Vec<(u64, u64)> =
            k.iter().zip(&a).map(|(x, y)| (x.to_bits(), y.to_bits())).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "pairs were not preserved");
    }

    #[test]
    fn sorts_empty_and_singleton() {
        check_sorted_and_paired(&[], &[]);
        check_sorted_and_paired(&[3.5], &[1.0]);
    }

    #[test]
    fn sorts_small_arrays() {
        check_sorted_and_paired(&[3.0, 1.0, 2.0], &[30.0, 10.0, 20.0]);
        check_sorted_and_paired(&[2.0, 1.0], &[20.0, 10.0]);
        check_sorted_and_paired(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let ascending: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let aux: Vec<f64> = (0..100).map(|i| (i * 7) as f64).collect();
        check_sorted_and_paired(&ascending, &aux);
        let descending: Vec<f64> = (0..100).rev().map(|i| i as f64).collect();
        check_sorted_and_paired(&descending, &aux);
    }

    #[test]
    fn sorts_all_equal_keys() {
        let keys = vec![5.0; 257];
        let aux: Vec<f64> = (0..257).map(|i| i as f64).collect();
        check_sorted_and_paired(&keys, &aux);
    }

    #[test]
    fn sorts_organ_pipe_input() {
        // Worst-ish case for naive pivots: up then down.
        let mut keys: Vec<f64> = (0..500).map(|i| i as f64).collect();
        keys.extend((0..500).rev().map(|i| i as f64));
        let aux: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        check_sorted_and_paired(&keys, &aux);
    }

    #[test]
    fn sorts_large_random_arrays() {
        let mut rng = SplitMix64::new(0xDEAD_BEEF);
        for n in [100, 1_000, 10_000] {
            let keys: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let aux: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            check_sorted_and_paired(&keys, &aux);
        }
    }

    #[test]
    fn sorts_few_distinct_values() {
        let mut rng = SplitMix64::new(17);
        let keys: Vec<f64> = (0..5_000).map(|_| (rng.next_index(4)) as f64).collect();
        let aux: Vec<f64> = (0..5_000).map(|_| rng.next_f64()).collect();
        check_sorted_and_paired(&keys, &aux);
    }

    #[test]
    fn aux_follows_keys() {
        let mut k = vec![3.0, 1.0, 2.0];
        let mut a = vec![30.0, 10.0, 20.0];
        sort_with_aux(&mut k, &mut a);
        assert_eq!(k, vec![1.0, 2.0, 3.0]);
        assert_eq!(a, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "auxiliary arrays must match")]
    fn mismatched_lengths_panic() {
        let mut k = vec![1.0, 2.0];
        let mut a = vec![1.0];
        sort_with_aux(&mut k, &mut a);
    }

    #[test]
    fn argsort_matches_manual_sort() {
        let keys = [0.3, -1.0, 2.5, 0.0];
        let perm = argsort(&keys);
        assert_eq!(perm, vec![1, 3, 0, 2]);
        let sorted = apply_permutation(&keys, &perm);
        assert!(is_sorted(&sorted));
    }

    #[test]
    fn argsort_is_stable_for_ties() {
        let keys = [1.0, 0.5, 1.0, 0.5];
        assert_eq!(argsort(&keys), vec![1, 3, 0, 2]);
    }

    proptest! {
        #[test]
        fn prop_sort_with_aux_sorts_and_preserves_pairs(
            pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 0..400)
        ) {
            let keys: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let aux: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            check_sorted_and_paired(&keys, &aux);
        }

        #[test]
        fn prop_sort_agrees_with_std_sort(
            keys in proptest::collection::vec(-1e9f64..1e9, 0..300)
        ) {
            let mut ours = keys.clone();
            let mut aux = vec![0.0; keys.len()];
            sort_with_aux(&mut ours, &mut aux);
            let mut std_sorted = keys;
            std_sorted.sort_by(|a, b| a.total_cmp(b));
            prop_assert_eq!(ours, std_sorted);
        }

        #[test]
        fn prop_argsort_permutation_is_valid(
            keys in proptest::collection::vec(-1e9f64..1e9, 0..200)
        ) {
            let perm = argsort(&keys);
            let mut seen = vec![false; keys.len()];
            for &p in &perm {
                prop_assert!(!seen[p], "index repeated");
                seen[p] = true;
            }
            prop_assert!(is_sorted(&apply_permutation(&keys, &perm)));
        }
    }
}
