//! Convenience re-exports of the most commonly used items.

pub use crate::ci::{confidence_band, ConfidenceBand};
pub use crate::cv::{
    cv_profile_merged, cv_profile_merged_par, cv_profile_naive, cv_profile_naive_par,
    cv_profile_prefix, cv_profile_prefix_par, cv_profile_sorted, cv_profile_sorted_par, CvOptimum,
    CvProfile, IncrementalSelector, SlidingWindowSelector,
};
pub use crate::density::{Kde, LscvSelector};
pub use crate::error::{Error, Result};
pub use crate::estimate::{
    BinnedNadarayaWatson, FittedCurve, KnnRegression, LocalLinear, NadarayaWatson,
    RegressionEstimator,
};
pub use crate::grid::BandwidthGrid;
pub use crate::kernels::{
    Cosine, Epanechnikov, Gaussian, Kernel, PolynomialKernel, Quartic, Triangular, Triweight,
    Uniform,
};
pub use crate::select::{
    select_bandwidth, BagCombiner, BagEngine, BaggedSelection, BaggedSelector, BagOutcome,
    BandwidthSelector, GridSpec, IncrementalGridSearch, NaiveGridSearch, NumericCvSelector,
    NumericMethod, RuleOfThumbSelector, Selection, SortedGridSearch, Strategy, ZoomGridSearch,
};
