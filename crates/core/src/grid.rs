//! Bandwidth grids for the grid search.
//!
//! The paper considers an evenly spaced array of `k` candidate bandwidths.
//! By default the largest is the domain of `X` (max − min) and the smallest
//! is that domain divided by `k`. Section IV-A also suggests running the
//! optimisation "multiple times with progressively smaller ranges" when more
//! precision is needed than the constant-memory limit of 2 048 bandwidths
//! allows; [`BandwidthGrid::refine_around`] implements that zoom step.

use crate::error::{Error, Result};
use crate::util::min_max;

/// An ascending array of candidate bandwidths.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthGrid {
    values: Vec<f64>,
}

impl BandwidthGrid {
    /// Builds an evenly spaced grid of `count` bandwidths on `[min, max]`
    /// (inclusive of both endpoints; `count == 1` yields just `min`).
    pub fn linear(min: f64, max: f64, count: usize) -> Result<Self> {
        if count == 0 {
            return Err(Error::InvalidGrid("count must be positive"));
        }
        if !(min.is_finite() && max.is_finite()) || min <= 0.0 || max < min {
            return Err(Error::InvalidGrid("need 0 < min <= max, both finite"));
        }
        if count == 1 {
            return Ok(Self { values: vec![min] });
        }
        let step = (max - min) / (count - 1) as f64;
        let mut values: Vec<f64> =
            (0..count).map(|i| min + step * i as f64).collect();
        // `min + step·(count−1)` can drift an ulp away from (and past) `max`;
        // the grid promises inclusive endpoints, so pin the last value.
        values[count - 1] = max;
        Ok(Self { values })
    }

    /// Builds a log-spaced grid of `count` bandwidths on `[min, max]` —
    /// useful when the plausible bandwidths span orders of magnitude.
    pub fn log(min: f64, max: f64, count: usize) -> Result<Self> {
        if count == 0 {
            return Err(Error::InvalidGrid("count must be positive"));
        }
        if !(min.is_finite() && max.is_finite()) || min <= 0.0 || max < min {
            return Err(Error::InvalidGrid("need 0 < min <= max, both finite"));
        }
        if count == 1 {
            return Ok(Self { values: vec![min] });
        }
        let (lmin, lmax) = (min.ln(), max.ln());
        let step = (lmax - lmin) / (count - 1) as f64;
        let mut values: Vec<f64> =
            (0..count).map(|i| (lmin + step * i as f64).exp()).collect();
        // exp(ln(max)) need not round-trip; pin the endpoint like `linear`.
        values[count - 1] = max;
        Ok(Self { values })
    }

    /// The paper's default grid for a regressor sample: `count` evenly spaced
    /// bandwidths with `max = max(x) − min(x)` (the domain) and
    /// `min = domain / count`.
    pub fn paper_default(x: &[f64], count: usize) -> Result<Self> {
        // Reject non-finite regressors up front: a NaN would flow through
        // `min_max` into a misleading "need 0 < min <= max" grid error.
        if let Some(index) = x.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteData { which: "x", index });
        }
        let (lo, hi) = min_max(x).ok_or(Error::InvalidGrid("empty sample"))?;
        let domain = hi - lo;
        if domain <= 0.0 {
            return Err(Error::DegenerateDomain);
        }
        Self::linear(domain / count as f64, domain, count)
    }

    /// Wraps an explicit, strictly increasing, positive bandwidth array.
    pub fn from_values(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::InvalidGrid("empty grid"));
        }
        if values.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            return Err(Error::InvalidGrid("bandwidths must be finite and positive"));
        }
        if values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::InvalidGrid("bandwidths must be strictly increasing"));
        }
        Ok(Self { values })
    }

    /// The candidate bandwidths, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of candidates `k`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the grid is empty (never, by construction, but included for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest candidate.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest candidate.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("grid is never empty")
    }

    /// Grid spacing between the first two candidates (0 for a single-point
    /// grid). For linear grids this is the uniform step.
    pub fn step(&self) -> f64 {
        if self.values.len() < 2 {
            0.0
        } else {
            self.values[1] - self.values[0]
        }
    }

    /// Produces a finer grid of `count` points spanning ± one current step
    /// around `center` (clamped to stay positive) — the "progressively
    /// smaller ranges" zoom of §IV-A.
    pub fn refine_around(&self, center: f64, count: usize) -> Result<Self> {
        // The zoom target must be a usable bandwidth; a NaN/∞/non-positive
        // center would otherwise surface as an opaque grid-construction
        // error (or, for subnormal spans, silently clamp to nonsense).
        if !center.is_finite() || center <= 0.0 {
            return Err(Error::InvalidBandwidth(center));
        }
        let span = if self.values.len() < 2 {
            center * 0.5
        } else {
            self.step()
        };
        let lo = (center - span).max(f64::MIN_POSITIVE.sqrt()).max(center * 1e-6);
        let hi = center + span;
        Self::linear(lo, hi, count)
    }
}

impl<'a> IntoIterator for &'a BandwidthGrid {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_grid_endpoints_and_count() {
        let g = BandwidthGrid::linear(0.1, 1.0, 10).unwrap();
        assert_eq!(g.len(), 10);
        assert!((g.min() - 0.1).abs() < 1e-15);
        assert!((g.max() - 1.0).abs() < 1e-15);
        assert!((g.step() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn linear_grid_is_evenly_spaced() {
        let g = BandwidthGrid::linear(0.02, 1.0, 50).unwrap();
        let diffs: Vec<f64> = g.values().windows(2).map(|w| w[1] - w[0]).collect();
        for d in &diffs {
            assert!((d - diffs[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn single_point_grid() {
        let g = BandwidthGrid::linear(0.5, 1.0, 1).unwrap();
        assert_eq!(g.values(), &[0.5]);
        assert_eq!(g.step(), 0.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(BandwidthGrid::linear(0.1, 1.0, 0).is_err());
        assert!(BandwidthGrid::linear(0.0, 1.0, 5).is_err());
        assert!(BandwidthGrid::linear(-0.1, 1.0, 5).is_err());
        assert!(BandwidthGrid::linear(2.0, 1.0, 5).is_err());
        assert!(BandwidthGrid::linear(f64::NAN, 1.0, 5).is_err());
    }

    #[test]
    fn linear_grid_last_element_is_exactly_max() {
        // Awkward (min, max, count) triples where min + step·(count−1)
        // drifts an ulp off max (upward or downward) without the pin.
        let cases: &[(f64, f64, usize)] = &[
            (0.1, 0.3, 3),
            (0.1, 1.0, 7),
            (1e-9, 1.0, 49),
            (0.02, 0.9999999999999999, 1000),
            (0.3333333333333333, 2.7081828459, 11),
            (f64::MIN_POSITIVE.sqrt(), 1e-100, 17),
            (0.1, 1e300, 23),
        ];
        for &(min, max, count) in cases {
            let g = BandwidthGrid::linear(min, max, count).unwrap();
            assert_eq!(
                g.max().to_bits(),
                max.to_bits(),
                "linear({min}, {max}, {count}) last element drifted"
            );
            assert_eq!(g.min().to_bits(), min.to_bits());
            assert!(
                g.values().windows(2).all(|w| w[0] < w[1]),
                "linear({min}, {max}, {count}) not ascending"
            );
        }
    }

    #[test]
    fn log_grid_last_element_is_exactly_max() {
        let g = BandwidthGrid::log(0.007, 3.15149, 9).unwrap();
        assert_eq!(g.max().to_bits(), 3.15149f64.to_bits());
    }

    #[test]
    fn paper_default_matches_section_iv() {
        // X uniform on [0,1] → domain 1, min = 1/k, max = 1.
        let x = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        let g = BandwidthGrid::paper_default(&x, 50).unwrap();
        assert_eq!(g.len(), 50);
        assert!((g.min() - 1.0 / 50.0).abs() < 1e-15);
        assert!((g.max() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn paper_default_rejects_degenerate_domain() {
        assert_eq!(
            BandwidthGrid::paper_default(&[2.0, 2.0, 2.0], 10).unwrap_err(),
            Error::DegenerateDomain
        );
    }

    #[test]
    fn paper_default_rejects_non_finite_x_precisely() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                BandwidthGrid::paper_default(&[0.0, bad, 1.0], 10).unwrap_err(),
                Error::NonFiniteData { which: "x", index: 1 }
            );
        }
    }

    #[test]
    fn refine_around_rejects_bad_center() {
        let g = BandwidthGrid::linear(0.02, 1.0, 50).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.3] {
            match g.refine_around(bad, 20) {
                Err(Error::InvalidBandwidth(c)) => {
                    assert!(c.is_nan() && bad.is_nan() || c == bad);
                }
                other => panic!("refine_around({bad}) returned {other:?}"),
            }
        }
    }

    #[test]
    fn log_grid_endpoints() {
        let g = BandwidthGrid::log(0.01, 1.0, 5).unwrap();
        assert!((g.min() - 0.01).abs() < 1e-12);
        assert!((g.max() - 1.0).abs() < 1e-12);
        // Multiplicative spacing is constant.
        let ratios: Vec<f64> = g.values().windows(2).map(|w| w[1] / w[0]).collect();
        for r in &ratios {
            assert!((r - ratios[0]).abs() < 1e-10);
        }
    }

    #[test]
    fn from_values_validates() {
        assert!(BandwidthGrid::from_values(vec![]).is_err());
        assert!(BandwidthGrid::from_values(vec![0.2, 0.1]).is_err());
        assert!(BandwidthGrid::from_values(vec![0.1, 0.1]).is_err());
        assert!(BandwidthGrid::from_values(vec![-0.1, 0.5]).is_err());
        let g = BandwidthGrid::from_values(vec![0.1, 0.5, 2.0]).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn refine_around_zooms_in() {
        let g = BandwidthGrid::linear(0.02, 1.0, 50).unwrap();
        let fine = g.refine_around(0.3, 50).unwrap();
        assert!(fine.min() > 0.0);
        assert!(fine.max() - fine.min() < g.max() - g.min());
        assert!(fine.min() <= 0.3 && 0.3 <= fine.max());
        assert!(fine.step() < g.step());
    }

    #[test]
    fn refine_around_stays_positive_near_zero() {
        let g = BandwidthGrid::linear(0.02, 1.0, 50).unwrap();
        let fine = g.refine_around(0.01, 20).unwrap();
        assert!(fine.min() > 0.0);
    }

    #[test]
    fn iterates_in_ascending_order() {
        let g = BandwidthGrid::linear(0.1, 1.0, 7).unwrap();
        let collected: Vec<f64> = (&g).into_iter().copied().collect();
        assert_eq!(collected, g.values());
    }
}
