//! The Gaussian kernel.

use super::Kernel;

/// The Gaussian kernel `K(u) = φ(u) = exp(−u²/2)/√(2π)`.
///
/// Infinite support: every observation receives positive weight at every
/// bandwidth, so the leave-one-out denominator never vanishes and `M(X_i)`
/// is always 1. As the paper's footnote 1 notes, no sort is needed — but no
/// sorted-sweep saving is available either, so cross-validation uses the
/// naive `O(k·n²)` path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gaussian;

impl Kernel for Gaussian {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
        INV_SQRT_2PI * (-0.5 * u * u).exp()
    }
    fn support(&self) -> Option<f64> {
        None
    }
    fn roughness(&self) -> f64 {
        // ∫φ² = 1/(2√π)
        0.5 / std::f64::consts::PI.sqrt()
    }
    fn second_moment(&self) -> f64 {
        1.0
    }
    fn name(&self) -> &'static str {
        "gaussian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_standard_normal_density() {
        // φ(1) ≈ 0.24197072451914337
        assert!((Gaussian.eval(1.0) - 0.241_970_724_519_143_37).abs() < 1e-15);
        // φ(2) ≈ 0.05399096651318806
        assert!((Gaussian.eval(2.0) - 0.053_990_966_513_188_06).abs() < 1e-15);
    }

    #[test]
    fn positive_far_from_origin() {
        assert!(Gaussian.eval(8.0) > 0.0);
    }
}
