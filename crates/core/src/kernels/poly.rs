//! Compactly supported kernels: the five polynomial kernels that admit the
//! sorted-sweep grid search, plus the (non-polynomial) Cosine kernel.

use super::{horner, Kernel, PolynomialKernel};

/// The Epanechnikov kernel `K(u) = 0.75 (1 − u²) 1{|u| ≤ 1}` — the kernel the
/// paper implements (its Eq. 3), and the AMISE-optimal second-order kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Epanechnikov;

const EPANECHNIKOV_COEFFS: [f64; 3] = [0.75, 0.0, -0.75];

impl Kernel for Epanechnikov {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        if u.abs() > 1.0 {
            0.0
        } else {
            0.75 * (1.0 - u * u)
        }
    }
    fn support(&self) -> Option<f64> {
        Some(1.0)
    }
    fn roughness(&self) -> f64 {
        0.6
    }
    fn second_moment(&self) -> f64 {
        0.2
    }
    fn name(&self) -> &'static str {
        "epanechnikov"
    }
}

impl PolynomialKernel for Epanechnikov {
    fn coeffs(&self) -> &'static [f64] {
        &EPANECHNIKOV_COEFFS
    }
}

/// The Uniform (box) kernel `K(u) = 0.5 · 1{|u| ≤ 1}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Uniform;

const UNIFORM_COEFFS: [f64; 1] = [0.5];

impl Kernel for Uniform {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        if u.abs() > 1.0 {
            0.0
        } else {
            0.5
        }
    }
    fn support(&self) -> Option<f64> {
        Some(1.0)
    }
    fn roughness(&self) -> f64 {
        0.5
    }
    fn second_moment(&self) -> f64 {
        1.0 / 3.0
    }
    fn name(&self) -> &'static str {
        "uniform"
    }
}

impl PolynomialKernel for Uniform {
    fn coeffs(&self) -> &'static [f64] {
        &UNIFORM_COEFFS
    }
}

/// The Triangular kernel `K(u) = (1 − |u|) 1{|u| ≤ 1}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Triangular;

const TRIANGULAR_COEFFS: [f64; 2] = [1.0, -1.0];

impl Kernel for Triangular {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        let a = u.abs();
        if a > 1.0 {
            0.0
        } else {
            1.0 - a
        }
    }
    fn support(&self) -> Option<f64> {
        Some(1.0)
    }
    fn roughness(&self) -> f64 {
        2.0 / 3.0
    }
    fn second_moment(&self) -> f64 {
        1.0 / 6.0
    }
    fn name(&self) -> &'static str {
        "triangular"
    }
}

impl PolynomialKernel for Triangular {
    fn coeffs(&self) -> &'static [f64] {
        &TRIANGULAR_COEFFS
    }
}

/// The Quartic (biweight) kernel `K(u) = (15/16)(1 − u²)² 1{|u| ≤ 1}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quartic;

const QUARTIC_COEFFS: [f64; 5] = [15.0 / 16.0, 0.0, -30.0 / 16.0, 0.0, 15.0 / 16.0];

impl Kernel for Quartic {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        if u.abs() > 1.0 {
            return 0.0;
        }
        let t = 1.0 - u * u;
        15.0 / 16.0 * t * t
    }
    fn support(&self) -> Option<f64> {
        Some(1.0)
    }
    fn roughness(&self) -> f64 {
        5.0 / 7.0
    }
    fn second_moment(&self) -> f64 {
        1.0 / 7.0
    }
    fn name(&self) -> &'static str {
        "quartic"
    }
}

impl PolynomialKernel for Quartic {
    fn coeffs(&self) -> &'static [f64] {
        &QUARTIC_COEFFS
    }
}

/// The Triweight kernel `K(u) = (35/32)(1 − u²)³ 1{|u| ≤ 1}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Triweight;

const TRIWEIGHT_COEFFS: [f64; 7] = [
    35.0 / 32.0,
    0.0,
    -105.0 / 32.0,
    0.0,
    105.0 / 32.0,
    0.0,
    -35.0 / 32.0,
];

impl Kernel for Triweight {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        if u.abs() > 1.0 {
            return 0.0;
        }
        let t = 1.0 - u * u;
        35.0 / 32.0 * t * t * t
    }
    fn support(&self) -> Option<f64> {
        Some(1.0)
    }
    fn roughness(&self) -> f64 {
        350.0 / 429.0
    }
    fn second_moment(&self) -> f64 {
        1.0 / 9.0
    }
    fn name(&self) -> &'static str {
        "triweight"
    }
}

impl PolynomialKernel for Triweight {
    fn coeffs(&self) -> &'static [f64] {
        &TRIWEIGHT_COEFFS
    }
}

/// The Cosine kernel `K(u) = (π/4) cos(πu/2) 1{|u| ≤ 1}`.
///
/// Compactly supported but *not* a polynomial in `|u|`, so it uses the naive
/// cross-validation path (a useful stress case for the generic fallback).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Kernel for Cosine {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        if u.abs() > 1.0 {
            0.0
        } else {
            std::f64::consts::FRAC_PI_4 * (std::f64::consts::FRAC_PI_2 * u).cos()
        }
    }
    fn support(&self) -> Option<f64> {
        Some(1.0)
    }
    fn roughness(&self) -> f64 {
        std::f64::consts::PI * std::f64::consts::PI / 16.0
    }
    fn second_moment(&self) -> f64 {
        1.0 - 8.0 / (std::f64::consts::PI * std::f64::consts::PI)
    }
    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Evaluates any polynomial kernel through its coefficient representation —
/// a convenience for generic code paths and tests.
pub fn eval_via_coeffs<K: PolynomialKernel>(kernel: &K, u: f64) -> f64 {
    let a = u.abs();
    if a > kernel.radius() {
        0.0
    } else {
        horner(kernel.coeffs(), a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_via_coeffs_agrees_for_epanechnikov() {
        for i in 0..=100 {
            let u = -1.2 + i as f64 * 0.024;
            assert!((eval_via_coeffs(&Epanechnikov, u) - Epanechnikov.eval(u)).abs() < 1e-15);
        }
    }

    #[test]
    fn triweight_peak_value() {
        assert!((Triweight.eval(0.0) - 35.0 / 32.0).abs() < 1e-15);
    }

    #[test]
    fn quartic_zero_at_support_edge() {
        assert_eq!(Quartic.eval(1.0), 0.0);
        assert_eq!(Quartic.eval(-1.0), 0.0);
    }

    #[test]
    fn cosine_peak_and_edge() {
        assert!((Cosine.eval(0.0) - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!(Cosine.eval(1.0).abs() < 1e-15);
    }
}
