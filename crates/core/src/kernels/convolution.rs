//! Convolution kernels `K̄(u) = ∫ K(t) K(u − t) dt`.
//!
//! Least-squares cross-validation for kernel *density* bandwidths — the
//! extension the paper names as a direct application of its method — needs
//! `∫ f̂² = (1/n²h) Σ_i Σ_j K̄((X_i − X_j)/h)`. The Epanechnikov convolution
//! is itself a polynomial in `|u|` on `|u| ≤ 2`, so the same sorted sweep
//! applies with support radius 2.

use super::{Kernel, PolynomialKernel};

/// Convolution of the Epanechnikov kernel with itself:
///
/// `K̄(u) = (3/160)(2 − |u|)³(u² + 6|u| + 4)` for `|u| ≤ 2`,
/// which expands to `0.6 − 0.75|u|² + 0.375|u|³ − (3/160)|u|⁵`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpanechnikovConvolution;

const EPA_CONV_COEFFS: [f64; 6] = [0.6, 0.0, -0.75, 0.375, 0.0, -3.0 / 160.0];

impl Kernel for EpanechnikovConvolution {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        let a = u.abs();
        if a > 2.0 {
            return 0.0;
        }
        let t = 2.0 - a;
        3.0 / 160.0 * t * t * t * (a * a + 6.0 * a + 4.0)
    }
    fn support(&self) -> Option<f64> {
        Some(2.0)
    }
    fn roughness(&self) -> f64 {
        // ∫ K̄² = 167/385, by direct integration of the quintic.
        167.0 / 385.0
    }
    fn second_moment(&self) -> f64 {
        // Var of sum of two independent Epanechnikov draws: 2·κ₂ = 0.4.
        0.4
    }
    fn name(&self) -> &'static str {
        "epanechnikov-convolution"
    }
}

impl PolynomialKernel for EpanechnikovConvolution {
    fn coeffs(&self) -> &'static [f64] {
        &EPA_CONV_COEFFS
    }
    fn radius(&self) -> f64 {
        2.0
    }
}

/// Convolution of the Gaussian kernel with itself: the `N(0, 2)` density
/// `K̄(u) = exp(−u²/4)/√(4π)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaussianConvolution;

impl Kernel for GaussianConvolution {
    #[inline]
    fn eval(&self, u: f64) -> f64 {
        (-0.25 * u * u).exp() / (4.0 * std::f64::consts::PI).sqrt()
    }
    fn support(&self) -> Option<f64> {
        None
    }
    fn roughness(&self) -> f64 {
        // ∫ N(0,2)² = 1/(4√π) · ∫… = 1/(2√(4π)) — density of N(0,4) at 0 … :
        // for N(0,σ²), ∫φ² = 1/(2σ√π); here σ = √2.
        1.0 / (2.0 * std::f64::consts::SQRT_2 * std::f64::consts::PI.sqrt())
    }
    fn second_moment(&self) -> f64 {
        2.0
    }
    fn name(&self) -> &'static str {
        "gaussian-convolution"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};

    /// Numerically convolves `k` with itself at `u`.
    fn numeric_self_convolution(k: &dyn Kernel, u: f64) -> f64 {
        let lo = -9.0;
        let hi = 9.0;
        let steps = 180_000;
        let w = (hi - lo) / steps as f64;
        let f = |t: f64| k.eval(t) * k.eval(u - t);
        let mut acc = 0.5 * (f(lo) + f(hi));
        for s in 1..steps {
            acc += f(lo + w * s as f64);
        }
        acc * w
    }

    #[test]
    fn epanechnikov_convolution_matches_numeric() {
        for &u in &[0.0, 0.3, 0.9, 1.5, 1.99, 2.5] {
            let closed = EpanechnikovConvolution.eval(u);
            let numeric = numeric_self_convolution(&Epanechnikov, u);
            assert!(
                (closed - numeric).abs() < 1e-6,
                "at u={u}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn epanechnikov_convolution_at_zero_equals_roughness_of_epanechnikov() {
        // K̄(0) = ∫K² = R(K) = 0.6.
        assert!((EpanechnikovConvolution.eval(0.0) - 0.6).abs() < 1e-15);
    }

    #[test]
    fn epanechnikov_convolution_polynomial_matches_closed_form() {
        for i in 0..=250 {
            let u = i as f64 * 0.01;
            let closed = EpanechnikovConvolution.eval(u);
            let poly = EpanechnikovConvolution.eval_poly(u);
            assert!((closed - poly).abs() < 1e-14, "mismatch at u={u}");
        }
    }

    #[test]
    fn gaussian_convolution_matches_numeric() {
        for &u in &[0.0, 0.5, 1.0, 2.0, 3.0] {
            let closed = GaussianConvolution.eval(u);
            let numeric = numeric_self_convolution(&Gaussian, u);
            assert!(
                (closed - numeric).abs() < 1e-6,
                "at u={u}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gaussian_convolution_at_zero() {
        // N(0,2) density at 0 = 1/√(4π) ≈ 0.28209479
        assert!((GaussianConvolution.eval(0.0) - 0.282_094_791_773_878_14).abs() < 1e-12);
    }
}
