//! Kernel weighting functions.
//!
//! Two traits organise the kernels:
//!
//! * [`Kernel`] — anything that can be evaluated pointwise. All estimators
//!   and the naive `O(k·n²)` cross-validation path accept any `Kernel`.
//! * [`PolynomialKernel`] — kernels expressible as a polynomial in `|u|` on a
//!   compact support `|u| ≤ r`. These admit the paper's sorted-sweep trick:
//!   because `K(d/h) = Σ_j c_j d^j / h^j`, the leave-one-out sums for *all*
//!   bandwidths in an ascending grid can be produced from running power sums
//!   `Σ d^j` and `Σ Y·d^j` maintained over distance-sorted neighbours.
//!
//! The paper implements only the Epanechnikov kernel and notes that the same
//! sorting strategy extends to the Uniform and Triangular kernels while the
//! Gaussian needs no sort at all (footnote 1). We implement all of those
//! plus Quartic (biweight), Triweight, and Cosine, and the *convolution*
//! kernels needed by the KDE least-squares-CV extension.

mod convolution;
mod gaussian;
mod poly;

pub use convolution::{EpanechnikovConvolution, GaussianConvolution};
pub use gaussian::Gaussian;
pub use poly::{eval_via_coeffs, Cosine, Epanechnikov, Quartic, Triangular, Triweight, Uniform};

/// A symmetric, non-negative kernel weighting function `K(u)`.
///
/// Implementations must satisfy `∫K = 1`, `K(u) = K(−u)`, and `K(u) ≥ 0`
/// (these are checked numerically by the test-suite, not by the trait).
pub trait Kernel: Send + Sync + std::fmt::Debug {
    /// Evaluates `K(u)`.
    fn eval(&self, u: f64) -> f64;

    /// Support radius: `Some(r)` when `K(u) = 0` for `|u| > r`, `None` for
    /// infinite support (Gaussian).
    fn support(&self) -> Option<f64>;

    /// Roughness `R(K) = ∫ K(u)² du`, used by plug-in rules and confidence
    /// intervals.
    fn roughness(&self) -> f64;

    /// Second moment `κ₂(K) = ∫ u² K(u) du`.
    fn second_moment(&self) -> f64;

    /// Human-readable kernel name.
    fn name(&self) -> &'static str;

    /// Silverman-style canonical bandwidth constant `δ₀` relating this
    /// kernel's AMISE-optimal KDE bandwidth to the Gaussian one:
    /// `δ₀ = (R(K) / κ₂²)^{1/5}`.
    fn canonical_bandwidth(&self) -> f64 {
        (self.roughness() / (self.second_moment() * self.second_moment())).powf(0.2)
    }
}

/// A kernel of the form `K(u) = Σ_j c_j |u|^j` for `|u| ≤ r`, zero outside.
///
/// The coefficient vector (with the normalising constant folded in) is what
/// the sorted-sweep cross-validation consumes. Coefficients are indexed by
/// power: `coeffs()[j]` multiplies `|u|^j`.
pub trait PolynomialKernel: Kernel {
    /// Polynomial coefficients `c_0, c_1, …, c_deg` in `|u|`.
    fn coeffs(&self) -> &'static [f64];

    /// Support radius `r` (1 for the standard kernels, 2 for convolution
    /// kernels).
    fn radius(&self) -> f64 {
        1.0
    }

    /// Evaluates the polynomial directly (Horner in `|u|`), used to
    /// cross-check `Kernel::eval`.
    fn eval_poly(&self, u: f64) -> f64 {
        let a = u.abs();
        if a > self.radius() {
            return 0.0;
        }
        horner(self.coeffs(), a)
    }
}

impl<K: PolynomialKernel + ?Sized> PolynomialKernel for &K {
    fn coeffs(&self) -> &'static [f64] {
        (**self).coeffs()
    }
    fn radius(&self) -> f64 {
        (**self).radius()
    }
    fn eval_poly(&self, u: f64) -> f64 {
        (**self).eval_poly(u)
    }
}

impl<K: Kernel + ?Sized> Kernel for &K {
    fn eval(&self, u: f64) -> f64 {
        (**self).eval(u)
    }
    fn support(&self) -> Option<f64> {
        (**self).support()
    }
    fn roughness(&self) -> f64 {
        (**self).roughness()
    }
    fn second_moment(&self) -> f64 {
        (**self).second_moment()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn canonical_bandwidth(&self) -> f64 {
        (**self).canonical_bandwidth()
    }
}

/// Evaluates `Σ_j c_j a^j` by Horner's rule.
#[inline]
pub fn horner(coeffs: &[f64], a: f64) -> f64 {
    let mut acc = 0.0;
    for &c in coeffs.iter().rev() {
        acc = acc * a + c;
    }
    acc
}

/// The kernels shipped with the crate, as trait objects, for iteration in
/// tests and benchmarks.
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Epanechnikov),
        Box::new(Uniform),
        Box::new(Triangular),
        Box::new(Quartic),
        Box::new(Triweight),
        Box::new(Cosine),
        Box::new(Gaussian),
    ]
}

/// The polynomial (sorted-sweep-capable) kernels, as trait objects.
pub fn polynomial_kernels() -> Vec<Box<dyn PolynomialKernel>> {
    vec![
        Box::new(Epanechnikov),
        Box::new(Uniform),
        Box::new(Triangular),
        Box::new(Quartic),
        Box::new(Triweight),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trapezoid-rule integral of `f` over `[lo, hi]`.
    fn integrate(f: impl Fn(f64) -> f64, lo: f64, hi: f64, steps: usize) -> f64 {
        let w = (hi - lo) / steps as f64;
        let mut acc = 0.5 * (f(lo) + f(hi));
        for s in 1..steps {
            acc += f(lo + w * s as f64);
        }
        acc * w
    }

    fn integration_range(k: &dyn Kernel) -> (f64, f64) {
        match k.support() {
            Some(r) => (-r, r),
            None => (-12.0, 12.0),
        }
    }

    #[test]
    fn kernels_integrate_to_one() {
        for k in all_kernels() {
            let (lo, hi) = integration_range(k.as_ref());
            let total = integrate(|u| k.eval(u), lo, hi, 200_000);
            assert!((total - 1.0).abs() < 1e-6, "{} integrates to {total}", k.name());
        }
    }

    #[test]
    fn kernels_are_symmetric_and_nonnegative() {
        for k in all_kernels() {
            for i in 0..=400 {
                let u = -2.0 + i as f64 * 0.01;
                let v = k.eval(u);
                assert!(v >= 0.0, "{} negative at {u}: {v}", k.name());
                assert!(
                    (v - k.eval(-u)).abs() < 1e-14,
                    "{} asymmetric at {u}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn kernels_vanish_outside_support() {
        for k in all_kernels() {
            if let Some(r) = k.support() {
                assert_eq!(k.eval(r + 1e-9), 0.0, "{} nonzero past support", k.name());
                assert_eq!(k.eval(-r - 1e-9), 0.0);
                assert_eq!(k.eval(10.0 * r), 0.0);
            }
        }
    }

    #[test]
    fn stated_roughness_matches_numeric_integral() {
        for k in all_kernels() {
            let (lo, hi) = integration_range(k.as_ref());
            let num = integrate(|u| k.eval(u) * k.eval(u), lo, hi, 200_000);
            assert!(
                (num - k.roughness()).abs() < 1e-6,
                "{}: R(K) stated {} vs numeric {num}",
                k.name(),
                k.roughness()
            );
        }
    }

    #[test]
    fn stated_second_moment_matches_numeric_integral() {
        for k in all_kernels() {
            let (lo, hi) = integration_range(k.as_ref());
            let num = integrate(|u| u * u * k.eval(u), lo, hi, 400_000);
            assert!(
                (num - k.second_moment()).abs() < 1e-5,
                "{}: κ₂ stated {} vs numeric {num}",
                k.name(),
                k.second_moment()
            );
        }
    }

    #[test]
    fn polynomial_eval_matches_kernel_eval() {
        for k in polynomial_kernels() {
            for i in 0..=300 {
                let u = -1.5 + i as f64 * 0.01;
                assert!(
                    (k.eval(u) - k.eval_poly(u)).abs() < 1e-14,
                    "{} poly/eval mismatch at {u}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn polynomial_radius_matches_support() {
        for k in polynomial_kernels() {
            assert_eq!(Some(k.radius()), k.support(), "{}", k.name());
        }
    }

    #[test]
    fn epanechnikov_matches_paper_formula() {
        // Eq. (3): K(u) = 0.75 (1 − u²) 1{|u| ≤ 1}
        let k = Epanechnikov;
        assert_eq!(k.eval(0.0), 0.75);
        assert!((k.eval(0.5) - 0.75 * 0.75).abs() < 1e-15);
        assert_eq!(k.eval(1.0), 0.0);
        assert_eq!(k.eval(1.0001), 0.0);
    }

    #[test]
    fn canonical_bandwidth_epanechnikov_known_value() {
        // δ₀ = (R/κ₂²)^{1/5} = (0.6 / 0.04)^{0.2} = 15^{0.2} ≈ 1.7188
        let d = Epanechnikov.canonical_bandwidth();
        assert!((d - 15f64.powf(0.2)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_known_values() {
        let g = Gaussian;
        assert!((g.eval(0.0) - 1.0 / (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-15);
        assert!((g.roughness() - 1.0 / (2.0 * std::f64::consts::PI.sqrt())).abs() < 1e-15);
        assert_eq!(g.second_moment(), 1.0);
        assert!(g.support().is_none());
    }

    #[test]
    fn horner_evaluates_polynomials() {
        // 2 + 3a + a²  at a = 2 → 12
        assert_eq!(horner(&[2.0, 3.0, 1.0], 2.0), 12.0);
        assert_eq!(horner(&[], 5.0), 0.0);
        assert_eq!(horner(&[7.0], 5.0), 7.0);
    }

    #[test]
    fn references_and_trait_objects_are_kernels_too() {
        fn takes_kernel<K: Kernel>(k: K) -> f64 {
            k.eval(0.0)
        }
        let e = Epanechnikov;
        let e_ref: &Epanechnikov = &e;
        assert_eq!(takes_kernel(e_ref), 0.75);
        let dynamic: &dyn Kernel = &Gaussian;
        assert!((takes_kernel(dynamic) - Gaussian.eval(0.0)).abs() < 1e-15);
        assert_eq!(Kernel::name(&e_ref), "epanechnikov");
        assert_eq!(Kernel::support(&e_ref), Some(1.0));
    }

    #[test]
    fn kernel_names_are_distinct() {
        let mut names: Vec<&str> = all_kernels().iter().map(|k| k.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
