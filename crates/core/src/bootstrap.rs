//! Pairs-bootstrap inference for kernel regression.
//!
//! Complements the asymptotic bands in [`crate::ci`]: resample `(Xᵢ, Yᵢ)`
//! pairs with replacement, refit at the same bandwidth, and take pointwise
//! percentile intervals. Distribution-free (no variance formula), at
//! `O(B·n²)` cost; replicates run in parallel with rayon. (The paper's §II
//! literature review cites GPU-accelerated bootstrapping as a neighbouring
//! application of the same SPMD parallelism.)

use crate::error::{Error, Result};
use crate::estimate::{NadarayaWatson, RegressionEstimator};
use crate::kernels::Kernel;
use crate::util::{quantile_sorted, SplitMix64};
use rayon::prelude::*;

/// A pointwise percentile-bootstrap band.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapBand {
    /// Evaluation points.
    pub points: Vec<f64>,
    /// The full-sample point estimates (`NaN` where undefined).
    pub estimates: Vec<f64>,
    /// Lower percentile limits.
    pub lower: Vec<f64>,
    /// Upper percentile limits.
    pub upper: Vec<f64>,
    /// Bootstrap replicates drawn.
    pub replicates: usize,
    /// Replicates with a defined estimate, per evaluation point.
    pub defined_counts: Vec<usize>,
}

/// Builds a `level` (e.g. 0.95) pairs-bootstrap band for the
/// Nadaraya–Watson fit at bandwidth `h` with `replicates` resamples.
#[allow(clippy::too_many_arguments)]
pub fn bootstrap_band<K: Kernel + Clone + Sync>(
    x: &[f64],
    y: &[f64],
    kernel: &K,
    h: f64,
    points: &[f64],
    level: f64,
    replicates: usize,
    seed: u64,
) -> Result<BootstrapBand> {
    if !(0.0 < level && level < 1.0) {
        return Err(Error::InvalidGrid("confidence level must be in (0,1)"));
    }
    if replicates < 10 {
        return Err(Error::InvalidGrid("need at least 10 bootstrap replicates"));
    }
    let n = crate::error::validate_sample(x, y, 2)?;
    let base = NadarayaWatson::new(x, y, kernel.clone(), h)?;
    let estimates: Vec<f64> = points
        .iter()
        .map(|&p| base.predict(p).unwrap_or(f64::NAN))
        .collect();

    // One replicate: resample indices, refit, evaluate at all points.
    let replicate_rows: Vec<Vec<f64>> = (0..replicates)
        .into_par_iter()
        .map(|b| {
            let mut rng = SplitMix64::new(seed ^ (b as u64).wrapping_mul(0x9E37_79B9));
            let mut xb = Vec::with_capacity(n);
            let mut yb = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = rng.next_index(n);
                xb.push(x[idx]);
                yb.push(y[idx]);
            }
            match NadarayaWatson::new(&xb, &yb, kernel.clone(), h) {
                Ok(fit) => points
                    .iter()
                    .map(|&p| fit.predict(p).unwrap_or(f64::NAN))
                    .collect(),
                Err(_) => vec![f64::NAN; points.len()],
            }
        })
        .collect();

    let alpha = (1.0 - level) / 2.0;
    let mut lower = Vec::with_capacity(points.len());
    let mut upper = Vec::with_capacity(points.len());
    let mut defined_counts = Vec::with_capacity(points.len());
    for (j, _) in points.iter().enumerate() {
        let mut column: Vec<f64> = replicate_rows
            .iter()
            .map(|row| row[j])
            .filter(|v| v.is_finite())
            .collect();
        defined_counts.push(column.len());
        if column.is_empty() {
            lower.push(f64::NAN);
            upper.push(f64::NAN);
            continue;
        }
        column.sort_by(|a, b| a.total_cmp(b));
        lower.push(quantile_sorted(&column, alpha));
        upper.push(quantile_sorted(&column, 1.0 - alpha));
    }

    Ok(BootstrapBand {
        points: points.to_vec(),
        estimates,
        lower,
        upper,
        replicates,
        defined_counts,
    })
}

/// Bootstrap distribution of the *selected bandwidth* itself: reselects via
/// the sorted grid search on each resample, quantifying how stable the
/// CV choice is (a diagnostic the numerical-optimisation baseline cannot
/// honestly provide, since its answer also varies with its restarts).
pub fn bootstrap_bandwidth_distribution(
    x: &[f64],
    y: &[f64],
    grid_size: usize,
    replicates: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    use crate::kernels::Epanechnikov;
    let n = crate::error::validate_sample(x, y, 2)?;
    if replicates == 0 {
        return Err(Error::InvalidGrid("need at least 1 replicate"));
    }
    let draws: Vec<Option<f64>> = (0..replicates)
        .into_par_iter()
        .map(|b| {
            let mut rng = SplitMix64::new(seed ^ (b as u64).wrapping_mul(0xBF58_476D));
            let mut xb = Vec::with_capacity(n);
            let mut yb = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = rng.next_index(n);
                xb.push(x[idx]);
                yb.push(y[idx]);
            }
            let grid = crate::grid::BandwidthGrid::paper_default(&xb, grid_size).ok()?;
            let profile =
                crate::cv::cv_profile_sorted(&xb, &yb, &grid, &Epanechnikov).ok()?;
            profile.argmin().ok().map(|o| o.bandwidth)
        })
        .collect();
    let mut hs: Vec<f64> = draws.into_iter().flatten().collect();
    if hs.is_empty() {
        return Err(Error::NoValidBandwidth);
    }
    hs.sort_by(|a, b| a.total_cmp(b));
    Ok(hs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Epanechnikov;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn band_brackets_the_point_estimate() {
        let (x, y) = paper_dgp(300, 401);
        let points = [0.25, 0.5, 0.75];
        let band =
            bootstrap_band(&x, &y, &Epanechnikov, 0.1, &points, 0.95, 200, 7).unwrap();
        for j in 0..points.len() {
            assert!(band.lower[j] <= band.estimates[j] + 1e-9, "point {j}");
            assert!(band.estimates[j] <= band.upper[j] + 1e-9, "point {j}");
            assert!(band.defined_counts[j] > 150);
        }
    }

    #[test]
    fn band_mostly_covers_the_truth() {
        let (x, y) = paper_dgp(600, 402);
        let points: Vec<f64> = (2..=18).map(|i| i as f64 / 20.0).collect();
        let band =
            bootstrap_band(&x, &y, &Epanechnikov, 0.06, &points, 0.95, 250, 8).unwrap();
        let truth = |v: f64| 0.5 * v + 10.0 * v * v + 0.25;
        let covered = points
            .iter()
            .enumerate()
            .filter(|&(j, &p)| band.lower[j] <= truth(p) && truth(p) <= band.upper[j])
            .count();
        assert!(
            covered as f64 / points.len() as f64 > 0.6,
            "covered {covered}/{}",
            points.len()
        );
    }

    #[test]
    fn reproducible_for_a_seed() {
        let (x, y) = paper_dgp(150, 403);
        let a = bootstrap_band(&x, &y, &Epanechnikov, 0.1, &[0.5], 0.9, 64, 5).unwrap();
        let b = bootstrap_band(&x, &y, &Epanechnikov, 0.1, &[0.5], 0.9, 64, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bandwidth_distribution_concentrates() {
        let (x, y) = paper_dgp(250, 404);
        let hs = bootstrap_bandwidth_distribution(&x, &y, 50, 60, 11).unwrap();
        assert!(hs.len() >= 55);
        // The interquartile spread of the reselected bandwidths should be
        // a small fraction of the domain.
        let q1 = hs[hs.len() / 4];
        let q3 = hs[3 * hs.len() / 4];
        assert!(q3 - q1 < 0.2, "IQR {} too wide", q3 - q1);
    }

    #[test]
    fn validates_parameters() {
        let (x, y) = paper_dgp(50, 405);
        assert!(bootstrap_band(&x, &y, &Epanechnikov, 0.1, &[0.5], 1.5, 100, 1).is_err());
        assert!(bootstrap_band(&x, &y, &Epanechnikov, 0.1, &[0.5], 0.9, 5, 1).is_err());
        assert!(bootstrap_bandwidth_distribution(&x, &y, 20, 0, 1).is_err());
    }
}
