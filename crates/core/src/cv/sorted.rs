//! The sorting-based grid sweep — the paper's first contribution (§III).
//!
//! For a kernel `K(u) = Σ_j c_j |u|^j` on `|u| ≤ r`, the leave-one-out
//! numerator and denominator at bandwidth `h` are
//!
//! ```text
//! N_i(h) = Σ_j (c_j / h^j) · Σ_{l≠i, d_il ≤ r·h} Y_l · d_il^j
//! D_i(h) = Σ_j (c_j / h^j) · Σ_{l≠i, d_il ≤ r·h} d_il^j
//! ```
//!
//! with `d_il = |X_i − X_l|`. For `h₂ > h₁` every term of the `h₁` sums
//! appears in the `h₂` sums, so after sorting each observation's distances
//! once (`O(n log n)`), one ascending pass over the bandwidth grid maintains
//! the inner power sums incrementally: per observation the whole grid costs
//! `O(n log n + (n + k)·deg)` instead of the naive `O(k·n)`.
//!
//! The Epanechnikov case (`c = [0.75, 0, −0.75]`, the paper's) reduces to
//! exactly the three running sums the paper describes: `Σ Y_l`,
//! `Σ Y_l·d²` and `Σ d²`.
//!
//! ## Numerical note
//!
//! The monomial expansion trades accuracy for speed at high degree: a
//! neighbour sitting near the support edge has a tiny true weight (e.g.
//! `(1−u²)³ ≈ 0` for the Triweight) that the sweep reconstructs by
//! cancelling `O(1)` monomial terms, so when a window contains only a few
//! near-edge neighbours the leave-one-out denominator can lose several
//! digits relative to direct evaluation. For the degree ≤ 2 kernels the
//! paper uses this is negligible (≲1e-8 relative on the CV score); for
//! Quartic (degree 4) and Triweight (degree 6) expect up to ~1e-4 / ~1e-2
//! relative drift in the sparse-window regime. The naive profile remains
//! the arbitrarily-accurate reference.

use super::CvProfile;
use crate::error::{validate_sample, Result};
use crate::grid::BandwidthGrid;
use crate::kernels::PolynomialKernel;
use crate::sort::sort_with_aux;

/// Reusable per-observation workspace for the sweep (distance and response
/// buffers plus the running power sums), so the hot loop never allocates.
#[derive(Debug, Clone)]
pub struct SweepScratch {
    dist: Vec<f64>,
    yval: Vec<f64>,
    /// Running `Σ d^j` for `j = 0..=deg`.
    s: Vec<f64>,
    /// Running `Σ Y·d^j` for `j = 0..=deg`.
    sy: Vec<f64>,
}

impl SweepScratch {
    /// Creates a workspace for samples of at most `n` observations and a
    /// kernel polynomial of degree `deg`.
    pub fn new(n: usize, deg: usize) -> Self {
        Self {
            dist: Vec::with_capacity(n.saturating_sub(1)),
            yval: Vec::with_capacity(n.saturating_sub(1)),
            s: vec![0.0; deg + 1],
            sy: vec![0.0; deg + 1],
        }
    }
}

/// Adds observation `i`'s contribution — `(Y_i − ĝ_{-i}(X_i))² M(X_i)` at
/// every grid bandwidth — into `sq_sums`/`included`.
///
/// This is the per-thread body of the paper's main GPU kernel, in host form.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_observation(
    i: usize,
    x: &[f64],
    y: &[f64],
    coeffs: &[f64],
    radius: f64,
    hs: &[f64],
    scratch: &mut SweepScratch,
    sq_sums: &mut [f64],
    included: &mut [usize],
) {
    let deg = coeffs.len() - 1;
    let xi = x[i];
    let yi = y[i];

    // Fill the leave-one-out distance / response arrays. Two branch-free
    // passes over `x[..i]` and `x[i+1..]` instead of one pass testing
    // `l == i` on every element.
    scratch.dist.clear();
    scratch.yval.clear();
    for (&xl, &yl) in x[..i].iter().zip(&y[..i]) {
        scratch.dist.push((xi - xl).abs());
        scratch.yval.push(yl);
    }
    for (&xl, &yl) in x[i + 1..].iter().zip(&y[i + 1..]) {
        scratch.dist.push((xi - xl).abs());
        scratch.yval.push(yl);
    }

    // The paper's per-thread sort: distances ascending, responses co-sorted.
    {
        let _sort = kcv_obs::phase("cv.sort");
        sort_with_aux(&mut scratch.dist, &mut scratch.yval);
    }

    // Reset running power sums.
    scratch.s[..=deg].fill(0.0);
    scratch.sy[..=deg].fill(0.0);

    let m_count = scratch.dist.len();
    let mut p = 0usize;
    // Each neighbour enters the running sums exactly once across the whole
    // grid — that is the sweep's saving versus the naive k·(n−1) kernel
    // evaluations per observation; terms beyond the support are never read.
    let mut absorbed = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
    let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
    for (m, &h) in hs.iter().enumerate() {
        let inv_h = 1.0 / h;
        // Absorb every not-yet-seen neighbour within the kernel support.
        // The predicate `d·(1/h) ≤ r` is bitwise-identical to the one the
        // pointwise kernel evaluation uses (`|u| > r → 0` with
        // `u = (x_i − x_l)·(1/h)`), so boundary observations — which carry a
        // discrete weight for the Uniform kernel — are classified the same
        // way by every CV strategy. Monotone in h, so the pointer never
        // needs to retreat.
        let p_before = p;
        while p < m_count && scratch.dist[p] * inv_h <= radius {
            let d = scratch.dist[p];
            let yl = scratch.yval[p];
            let mut pw = 1.0;
            for j in 0..=deg {
                scratch.s[j] += pw;
                scratch.sy[j] += yl * pw;
                pw *= d;
            }
            p += 1;
        }
        absorbed.incr((p - p_before) as u64);
        skipped.incr((m_count - p) as u64);
        // Assemble N and D from the power sums: Σ_j c_j h^{-j} · S_j.
        let mut hp = 1.0;
        let mut num = 0.0;
        let mut den = 0.0;
        for ((&cf, &s_j), &sy_j) in coeffs.iter().zip(&scratch.s).zip(&scratch.sy) {
            num += cf * hp * sy_j;
            den += cf * hp * s_j;
            hp *= inv_h;
        }
        if den > 0.0 {
            let resid = yi - num / den;
            sq_sums[m] += resid * resid;
            included[m] += 1;
        }
    }
}

/// Computes the CV profile with the sorted sweep, sequentially — the
/// algorithm of the paper's "Sequential C" Program 3.
pub fn cv_profile_sorted<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();

    let mut sq_sums = vec![0.0; k];
    let mut included = vec![0usize; k];
    let mut scratch = SweepScratch::new(n, coeffs.len() - 1);

    let _sweep = kcv_obs::phase("cv.sweep");
    for i in 0..n {
        accumulate_observation(
            i, x, y, coeffs, radius, hs, &mut scratch, &mut sq_sums, &mut included,
        );
    }

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::cv_profile_naive;
    use crate::kernels::{polynomial_kernels, Epanechnikov, Quartic, Triangular, Triweight, Uniform};
    use crate::util::{approx_eq, SplitMix64};
    use proptest::prelude::*;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    fn assert_profiles_agree(a: &CvProfile, b: &CvProfile, tol: f64) {
        assert_eq!(a.len(), b.len());
        for m in 0..a.len() {
            assert_eq!(
                a.included[m], b.included[m],
                "included mismatch at h={}",
                a.bandwidths[m]
            );
            assert!(
                approx_eq(a.scores[m], b.scores[m], tol, tol),
                "score mismatch at h={}: {} vs {}",
                a.bandwidths[m],
                a.scores[m],
                b.scores[m]
            );
        }
    }

    #[test]
    fn sorted_matches_naive_epanechnikov() {
        let (x, y) = paper_dgp(150, 11);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let sorted = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&sorted, &naive, 1e-9);
    }

    #[test]
    fn sorted_matches_naive_for_every_polynomial_kernel() {
        let (x, y) = paper_dgp(80, 12);
        let grid = BandwidthGrid::paper_default(&x, 23).unwrap();
        macro_rules! check {
            ($k:expr) => {{
                let sorted = cv_profile_sorted(&x, &y, &grid, &$k).unwrap();
                let naive = cv_profile_naive(&x, &y, &grid, &$k).unwrap();
                assert_profiles_agree(&sorted, &naive, 1e-9);
            }};
        }
        check!(Epanechnikov);
        check!(Uniform);
        check!(Triangular);
        check!(Quartic);
        check!(Triweight);
    }

    #[test]
    fn sorted_matches_naive_on_clustered_design() {
        // Clusters + outliers: exercises empty windows and M(X_i) = 0.
        let mut rng = SplitMix64::new(13);
        let mut x = Vec::new();
        for c in [0.0, 0.1, 5.0] {
            for _ in 0..20 {
                x.push(c + 0.01 * rng.next_f64());
            }
        }
        x.push(100.0); // isolated point
        let y: Vec<f64> = x.iter().map(|&v| v.sin() + rng.next_f64()).collect();
        let grid = BandwidthGrid::linear(0.005, 2.0, 40).unwrap();
        let sorted = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&sorted, &naive, 1e-9);
        // The isolated point must be excluded at every grid bandwidth.
        assert!(sorted.included.iter().all(|&c| c < x.len()));
    }

    #[test]
    fn argmin_identical_between_strategies() {
        for seed in 0..5 {
            let (x, y) = paper_dgp(120, 100 + seed);
            let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
            let a = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
            let b = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
            assert_eq!(a.argmin().unwrap().index, b.argmin().unwrap().index);
        }
    }

    #[test]
    fn convolution_kernel_radius_two_supported() {
        use crate::kernels::EpanechnikovConvolution;
        let (x, y) = paper_dgp(60, 15);
        let grid = BandwidthGrid::linear(0.02, 0.5, 12).unwrap();
        let sorted = cv_profile_sorted(&x, &y, &grid, &EpanechnikovConvolution).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &EpanechnikovConvolution).unwrap();
        assert_profiles_agree(&sorted, &naive, 1e-9);
    }

    #[test]
    fn works_with_two_observations() {
        let x = [0.0, 0.5];
        let y = [1.0, 3.0];
        let grid = BandwidthGrid::linear(0.1, 1.0, 5).unwrap();
        let profile = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        // Below h = 0.5 nothing is included; at h ≥ 0.5 LOO fit is the other y.
        for (m, &h) in grid.values().iter().enumerate() {
            if h < 0.5 {
                assert_eq!(profile.included[m], 0);
            } else {
                assert_eq!(profile.included[m], 2);
                // residuals ±2 → CV = (4 + 4)/2 = 4.
                assert!((profile.scores[m] - 4.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unsorted_input_data_is_handled() {
        // x is deliberately unsorted; results must match a sorted copy.
        let (mut x, mut y) = paper_dgp(90, 16);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let unsorted = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        // Co-sort (x, y) by x and recompute: scores are order-independent.
        let perm = crate::sort::argsort(&x);
        x = crate::sort::apply_permutation(&x, &perm);
        y = crate::sort::apply_permutation(&y, &perm);
        let sorted_input = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            assert!(approx_eq(unsorted.scores[m], sorted_input.scores[m], 1e-10, 1e-12));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sorted_equals_naive(
            seed in 0u64..10_000,
            n in 5usize..60,
            k in 1usize..30,
        ) {
            let (x, y) = paper_dgp(n, seed);
            let grid = BandwidthGrid::paper_default(&x, k).unwrap();
            for kernel in polynomial_kernels() {
                let sorted_scores: Vec<f64> = {
                    let mut sq = vec![0.0; k];
                    let mut inc = vec![0usize; k];
                    let mut scratch = SweepScratch::new(n, kernel.coeffs().len() - 1);
                    for i in 0..n {
                        accumulate_observation(
                            i, &x, &y, kernel.coeffs(), kernel.radius(),
                            grid.values(), &mut scratch, &mut sq, &mut inc,
                        );
                    }
                    sq.iter().map(|s| s / n as f64).collect()
                };
                let naive = cv_profile_naive(&x, &y, &grid, &*kernel).unwrap();
                // Degree-scaled tolerance (see the module-level numerical
                // note): the monomial sweep loses digits reconstructing
                // near-zero edge weights of high-degree kernels in the
                // sparse-window regime. Real inclusion/exclusion bugs show
                // up at 1e-1 or larger on these data.
                let deg = kernel.coeffs().len() - 1;
                let tol = match deg {
                    0..=2 => 1e-6,
                    3..=4 => 1e-4,
                    _ => 1e-2,
                };
                for (m, (&ours, &theirs)) in
                    sorted_scores.iter().zip(&naive.scores).enumerate()
                {
                    prop_assert!(
                        approx_eq(ours, theirs, tol, 1e-9),
                        "kernel {} (deg {deg}) h={}: {ours} vs {theirs}",
                        kernel.name(), grid.values()[m]
                    );
                }
            }
        }
    }
}
