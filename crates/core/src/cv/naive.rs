//! The naive `O(k·n²)` cross-validation profile: re-evaluates the full
//! leave-one-out double sum for every candidate bandwidth.
//!
//! This is the reference implementation (and the only option for kernels,
//! like the Gaussian or Cosine, that are not polynomial in `|u|`). The
//! sorted sweep is tested against it.

use super::CvProfile;
use crate::error::{validate_bandwidth, validate_sample, Result};
use crate::grid::BandwidthGrid;
use crate::kernels::Kernel;

/// Computes the CV profile by direct evaluation of Eqs. (1)–(2) at every
/// grid bandwidth.
pub fn cv_profile_naive<K: Kernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let mut scores = vec![0.0; k];
    let mut included = vec![0usize; k];

    let _sweep = kcv_obs::phase("cv.naive");
    for (m, &h) in grid.values().iter().enumerate() {
        let (score, inc) = cv_at_bandwidth(x, y, h, kernel);
        scores[m] = score;
        included[m] = inc;
    }

    Ok(CvProfile { bandwidths: grid.values().to_vec(), scores, included, n })
}

/// Evaluates `CV_lc(h)` at a single bandwidth, returning the score and the
/// number of observations with a defined leave-one-out fit.
///
/// This is the objective the numerical-optimisation baselines minimise.
pub fn cv_score_single<K: Kernel + ?Sized>(x: &[f64], y: &[f64], h: f64, kernel: &K) -> (f64, usize) {
    debug_assert!(validate_bandwidth(h).is_ok());
    let (score, inc) = cv_at_bandwidth(x, y, h, kernel);
    (score, inc)
}

fn cv_at_bandwidth<K: Kernel + ?Sized>(x: &[f64], y: &[f64], h: f64, kernel: &K) -> (f64, usize) {
    let n = x.len();
    let inv_h = 1.0 / h;
    let mut sum_sq = 0.0;
    let mut included = 0usize;
    let mut evals = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
    for i in 0..n {
        let xi = x[i];
        let mut num = 0.0;
        let mut den = 0.0;
        for l in 0..n {
            if l == i {
                continue;
            }
            let w = kernel.eval((xi - x[l]) * inv_h);
            num += y[l] * w;
            den += w;
        }
        evals.incr(n as u64 - 1);
        if den > 0.0 {
            let resid = y[i] - num / den;
            sum_sq += resid * resid;
            included += 1;
        }
    }
    (sum_sq / n as f64, included)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{NadarayaWatson, RegressionEstimator};
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn profile_matches_estimator_cv_score() {
        let (x, y) = paper_dgp(60, 1);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let profile = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        for (m, &h) in grid.values().iter().enumerate() {
            let est = NadarayaWatson::new(&x, &y, Epanechnikov, h).unwrap();
            assert!(
                (profile.scores[m] - est.cv_score()).abs() < 1e-12,
                "bandwidth {h}: {} vs {}",
                profile.scores[m],
                est.cv_score()
            );
        }
    }

    #[test]
    fn all_observations_included_with_gaussian() {
        let (x, y) = paper_dgp(40, 2);
        let grid = BandwidthGrid::linear(0.01, 0.5, 8).unwrap();
        let profile = cv_profile_naive(&x, &y, &grid, &Gaussian).unwrap();
        for &inc in &profile.included {
            assert_eq!(inc, 40);
        }
    }

    #[test]
    fn tiny_bandwidth_excludes_isolated_points() {
        let x = [0.0, 0.001, 0.5, 1.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let grid = BandwidthGrid::from_values(vec![0.01]).unwrap();
        let profile = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        // Only the two nearby points have a neighbour within h = 0.01.
        assert_eq!(profile.included[0], 2);
    }

    #[test]
    fn cv_is_high_at_extreme_bandwidths_on_curved_truth() {
        // CV at the domain-wide bandwidth (over-smoothing a strongly curved
        // function) should exceed the minimum over a sensible grid.
        let (x, y) = paper_dgp(200, 3);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let profile = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        let opt = profile.argmin().unwrap();
        let last = *profile.scores.last().unwrap();
        assert!(
            opt.score < last,
            "optimum {} should beat max-bandwidth score {last}",
            opt.score
        );
        // And the optimum should not be at either grid edge for this DGP.
        assert!(opt.index > 0 && opt.index < profile.len() - 1);
    }

    #[test]
    fn single_score_agrees_with_profile() {
        let (x, y) = paper_dgp(50, 4);
        let grid = BandwidthGrid::linear(0.05, 0.8, 5).unwrap();
        let profile = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        for (m, &h) in grid.values().iter().enumerate() {
            let (s, inc) = cv_score_single(&x, &y, h, &Epanechnikov);
            assert_eq!(s, profile.scores[m]);
            assert_eq!(inc, profile.included[m]);
        }
    }

    #[test]
    fn rejects_undersized_samples() {
        let grid = BandwidthGrid::from_values(vec![0.1]).unwrap();
        assert!(cv_profile_naive(&[1.0], &[1.0], &grid, &Epanechnikov).is_err());
    }
}
