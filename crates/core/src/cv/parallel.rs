//! Rayon-parallel cross-validation profiles — the paper's SPMD insight
//! ("construct `(Y_i − ĝ_{-i}(X_i))` for each of the different `i` values in
//! parallel on a many-core machine") executed on host cores.
//!
//! The per-observation work is embarrassingly parallel; each worker folds
//! its observations into a private `(Σ residual², included)` accumulator and
//! the accumulators are reduced element-wise, so no locking is needed.

use super::sorted::{accumulate_observation, SweepScratch};
use super::CvProfile;
use crate::error::{validate_sample, Result};
use crate::grid::BandwidthGrid;
use crate::kernels::{Kernel, PolynomialKernel};
use rayon::prelude::*;

/// Per-worker fold state: private score/count accumulators plus the sweep
/// scratch so the hot loop never allocates.
struct Acc {
    sq_sums: Vec<f64>,
    included: Vec<usize>,
    scratch: SweepScratch,
}

impl Acc {
    fn new(k: usize, n: usize, deg: usize) -> Self {
        Self {
            sq_sums: vec![0.0; k],
            included: vec![0usize; k],
            scratch: SweepScratch::new(n, deg),
        }
    }
}

/// Element-wise merge for the reduce step. The identity is a bare
/// `(Vec<f64>, Vec<usize>)` pair: constructing a full [`Acc`] there would
/// allocate a [`SweepScratch`] (two `n`-capacity buffers) only to merge it
/// away immediately — the scratch belongs to `fold`'s accumulators, not to
/// `reduce`'s.
pub(super) fn merge_partials(
    (mut sa, mut ia): (Vec<f64>, Vec<usize>),
    (sb, ib): (Vec<f64>, Vec<usize>),
) -> (Vec<f64>, Vec<usize>) {
    for (a, b) in sa.iter_mut().zip(&sb) {
        *a += b;
    }
    for (a, b) in ia.iter_mut().zip(&ib) {
        *a += b;
    }
    (sa, ia)
}

/// Parallel sorted-sweep CV profile — the algorithmic content of the paper's
/// Program 4 (CUDA), run on host cores. One logical "GPU thread" per
/// observation, exactly as §IV-B assigns them.
pub fn cv_profile_sorted_par<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let deg = coeffs.len() - 1;

    let _sweep = kcv_obs::phase("cv.sweep");
    // Scope stacks are thread-local; re-install the caller's recorder scope
    // on every worker. The chunk hook holds the guard for a worker's whole
    // chunk, so the two thread-local ops + `Arc` clone are paid once per
    // chunk instead of once per observation.
    let scope = kcv_obs::scope();
    let (sq_sums, included) = (0..n)
        .into_par_iter()
        .fold_with_setup(
            || scope.enter(),
            || Acc::new(k, n, deg),
            |mut acc, i| {
                accumulate_observation(
                    i,
                    x,
                    y,
                    coeffs,
                    radius,
                    hs,
                    &mut acc.scratch,
                    &mut acc.sq_sums,
                    &mut acc.included,
                );
                acc
            },
        )
        .map(|acc| (acc.sq_sums, acc.included))
        .reduce(|| (vec![0.0; k], vec![0usize; k]), merge_partials);

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Parallel naive CV profile — the analogue of the paper's "Multicore R"
/// Program 2: the `O(k·n²)` objective, split across cores by observation.
pub fn cv_profile_naive_par<K: Kernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let hs = grid.values();

    let _sweep = kcv_obs::phase("cv.naive");
    let scope = kcv_obs::scope();
    let (sq_sums, included) = (0..n)
        .into_par_iter()
        .fold_with_setup(
            || scope.enter(),
            || (vec![0.0; k], vec![0usize; k]),
            |(mut sq, mut inc), i| {
                let xi = x[i];
                let yi = y[i];
                let mut evals = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
                for (m, &h) in hs.iter().enumerate() {
                    let inv_h = 1.0 / h;
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for (l, (&xl, &yl)) in x.iter().zip(y).enumerate() {
                        if l == i {
                            continue;
                        }
                        let w = kernel.eval((xi - xl) * inv_h);
                        num += yl * w;
                        den += w;
                    }
                    evals.incr(n as u64 - 1);
                    if den > 0.0 {
                        let r = yi - num / den;
                        sq[m] += r * r;
                        inc[m] += 1;
                    }
                }
                (sq, inc)
            },
        )
        .reduce(|| (vec![0.0; k], vec![0usize; k]), merge_partials);

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::{cv_profile_naive, cv_profile_sorted};
    use crate::kernels::{Epanechnikov, Gaussian, Triangular};
    use crate::util::{approx_eq, SplitMix64};

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn parallel_sorted_matches_sequential_sorted() {
        let (x, y) = paper_dgp(300, 21);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let seq = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
        let par = cv_profile_sorted_par(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_eq!(seq.included, par.included);
        for m in 0..grid.len() {
            assert!(
                approx_eq(seq.scores[m], par.scores[m], 1e-12, 1e-14),
                "h={}: {} vs {}",
                grid.values()[m],
                seq.scores[m],
                par.scores[m]
            );
        }
    }

    #[test]
    fn parallel_naive_matches_sequential_naive() {
        let (x, y) = paper_dgp(120, 22);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let seq = cv_profile_naive(&x, &y, &grid, &Gaussian).unwrap();
        let par = cv_profile_naive_par(&x, &y, &grid, &Gaussian).unwrap();
        assert_eq!(seq.included, par.included);
        for m in 0..grid.len() {
            assert!(approx_eq(seq.scores[m], par.scores[m], 1e-12, 1e-14));
        }
    }

    #[test]
    fn all_four_strategies_agree_on_optimum() {
        let (x, y) = paper_dgp(200, 23);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let kernels_agree = |idx: &[usize]| idx.windows(2).all(|w| w[0] == w[1]);
        let indices = vec![
            cv_profile_naive(&x, &y, &grid, &Triangular).unwrap().argmin().unwrap().index,
            cv_profile_sorted(&x, &y, &grid, &Triangular).unwrap().argmin().unwrap().index,
            cv_profile_naive_par(&x, &y, &grid, &Triangular).unwrap().argmin().unwrap().index,
            cv_profile_sorted_par(&x, &y, &grid, &Triangular).unwrap().argmin().unwrap().index,
        ];
        assert!(kernels_agree(&indices), "optima diverged: {indices:?}");
    }

    #[test]
    fn parallel_profile_is_deterministic_across_runs() {
        let (x, y) = paper_dgp(150, 24);
        let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
        let a = cv_profile_sorted_par(&x, &y, &grid, &Epanechnikov).unwrap();
        let b = cv_profile_sorted_par(&x, &y, &grid, &Epanechnikov).unwrap();
        // included counts are integers and must match exactly; scores may
        // differ only by reduction order, which merge() keeps associative
        // over identical per-observation terms — still assert tight.
        assert_eq!(a.included, b.included);
        for m in 0..grid.len() {
            assert!(approx_eq(a.scores[m], b.scores[m], 1e-12, 1e-15));
        }
    }
}
