//! The prefix-moment sweep — dropping the per-neighbour scan entirely.
//!
//! [`super::merged`] removed the per-observation *sort*, but still touches
//! every `(observation, neighbour)` pair once: its total cost is bounded
//! below by `n²` neighbour absorptions. For a compactly supported
//! polynomial kernel that scan is also redundant, because the windowed
//! power sums the sweep maintains,
//!
//! ```text
//! S_j(i, h) = Σ_{|x_i − x_l| ≤ h·r, l≠i} (x_i − x_l)^j ,
//! ```
//!
//! expand binomially into differences of **global** prefix sums. With the
//! sample sorted ascending and `P_m[t] = Σ_{l<t} x_l^m`,
//! `Q_m[t] = Σ_{l<t} y_l·x_l^m`,
//!
//! ```text
//! Σ_{l∈[a,b)} (x_l − x_i)^j = Σ_{m=0}^{j} C(j,m)·(−x_i)^{j−m}·(P_m[b] − P_m[a]) ,
//! ```
//!
//! so one `O(n log n)` argsort plus one `O(n·deg)` prefix-building pass
//! replaces the entire `n²` term, and each `(observation, bandwidth)` cell
//! then costs one support-window resolution (two binary searches on the
//! bit-identical `d/h ≤ r` predicate, `O(log n)`) plus an `O(deg²)`
//! binomial assembly:
//!
//! ```text
//! O(n log n + n·k·(log n + deg²))
//! ```
//!
//! versus the merge-sweep's `O(n log n + n·(n + k·deg))` — this is the
//! fast-sum-updating idea of Langrené & Warin (2018) pushed one step
//! further, to closed-form leave-one-out CV over the whole grid.
//!
//! ## Bit-identical classification, documented-tolerance scores
//!
//! The window boundaries are found with the *same* support predicate every
//! other strategy uses — `(x_i − x_l)·(1/h) ≤ r` on the **original**
//! coordinates, which is monotone along the sorted sample in IEEE
//! arithmetic — so which neighbours are in-support (and therefore
//! `included` and the selected bandwidth) agrees with naive/sorted/merged
//! exactly. The *scores*, however, come from differences of large prefix
//! sums, which can cancel catastrophically in sparse windows. Two defences
//! keep the error at the `1e-8`-relative level the tests pin on the paper
//! DGP:
//!
//! 1. the prefix tables are built over **midrange-centred** coordinates
//!    `x' = x − (min+max)/2` (halves the magnitude of `x^m` without
//!    changing any exact-arithmetic score, since the moments only ever
//!    enter through differences `x_l − x_i`), and
//! 2. every prefix entry is accumulated with Neumaier compensated
//!    summation ([`crate::util::NeumaierSum`]), so the stored `P_m[t]` are
//!    correctly rounded to one ulp regardless of `n`.
//!
//! The residual error grows with the kernel degree (the binomial assembly
//! cancels more violently the higher the moment): the deg ≤ 2 kernels hold
//! 1e-8 relative on the paper DGP, the deg-4/deg-6 kernels ~1e-5. One
//! genuine amplifier remains in the *local-linear* variants: a
//! near-degenerate window (all in-support regressors nearly coincident)
//! divides by a vanishing design determinant, which magnifies the moment
//! error without bound — the degeneracy *classification* still matches the
//! naive reference (it is driven by the same windowed moments at coarse
//! tolerance), but scores at such bandwidths are only reliable from the
//! scan-based strategies. The naive profile remains the
//! arbitrarily-accurate reference; see DESIGN.md's numerical-accuracy note
//! for the full tradeoff.
//!
//! Like the merge, the expansion requires a global total order of the
//! regressor — one-dimensional `x` — and a polynomial kernel; the sorted
//! sweep remains the general-position fallback.

use super::CvProfile;
use crate::error::{validate_sample, Result};
use crate::estimate::local_linear::solve_local_linear;
use crate::grid::BandwidthGrid;
use crate::kernels::PolynomialKernel;
use crate::sort::{apply_permutation, argsort};
use crate::util::NeumaierSum;
use rayon::prelude::*;

/// The global moment tables: sample sorted ascending by `x`, plus
/// compensated prefix sums of `x'^m` and `y·x'^m` over midrange-centred
/// coordinates `x'`, for `m = 0..=max_m`. Built once (`O(n log n)` argsort
/// + `O(n·max_m)` pass), shared read-only by every observation.
struct PrefixTables {
    /// `x` sorted ascending (original values — the support predicate runs
    /// on these so boundary classification is bit-identical to the other
    /// strategies).
    xs: Vec<f64>,
    /// `y` co-sorted with `xs`.
    ys: Vec<f64>,
    /// Midrange-centred copy of `xs` (moment assembly runs on these for
    /// conditioning; see the module docs).
    xc: Vec<f64>,
    /// Flattened `(max_m+1) × (n+1)` prefix sums: `px[m·(n+1) + t]` is
    /// `Σ_{l<t} xc[l]^m` (so `px[m·(n+1)] = 0` and range sums are
    /// differences of two entries).
    px: Vec<f64>,
    /// Same layout, `y`-weighted: `Σ_{l<t} ys[l]·xc[l]^m`.
    py: Vec<f64>,
    /// Flattened `(max_m+1) × (max_m+1)` Pascal triangle:
    /// `binom[j·(max_m+1) + m] = C(j, m)` for `m ≤ j`.
    binom: Vec<f64>,
    /// Highest prefix moment stored (`deg` for local-constant, `deg + 2`
    /// for local-linear).
    max_m: usize,
    /// Sample size.
    n: usize,
}

impl PrefixTables {
    /// Argsorts `(x, y)` globally and builds the compensated prefix-moment
    /// tables up to moment `max_m`.
    fn build(x: &[f64], y: &[f64], max_m: usize) -> Self {
        let (xs, ys) = {
            let _sort = kcv_obs::phase("cv.argsort");
            let perm = argsort(x);
            (apply_permutation(x, &perm), apply_permutation(y, &perm))
        };
        let _build = kcv_obs::phase("cv.prefix");
        let n = xs.len();
        // Midrange of the sorted sample: exact on symmetric lattices, and
        // the best single shift for bounding |xc|^m.
        let center = 0.5 * (xs[0] + xs[n - 1]);
        let xc: Vec<f64> = xs.iter().map(|&v| v - center).collect();

        let stride = n + 1;
        let mut px = vec![0.0; (max_m + 1) * stride];
        let mut py = vec![0.0; (max_m + 1) * stride];
        let mut accx = vec![NeumaierSum::new(); max_m + 1];
        let mut accy = vec![NeumaierSum::new(); max_m + 1];
        for t in 0..n {
            let v = xc[t];
            let yv = ys[t];
            let mut pw = 1.0;
            for m in 0..=max_m {
                accx[m].add(pw);
                accy[m].add(yv * pw);
                px[m * stride + t + 1] = accx[m].value();
                py[m * stride + t + 1] = accy[m].value();
                pw *= v;
            }
        }

        let bw = max_m + 1;
        let mut binom = vec![0.0; bw * bw];
        for j in 0..=max_m {
            binom[j * bw] = 1.0;
            for m in 1..=j {
                binom[j * bw + m] =
                    binom[(j - 1) * bw + m - 1] + if m < j { binom[(j - 1) * bw + m] } else { 0.0 };
            }
        }

        Self { xs, ys, xc, px, py, binom, max_m, n }
    }

    /// Writes the windowed moments over sorted index range `[a, b)` into
    /// `w`/`wy` for every `j = 0..=max_m`:
    ///
    /// ```text
    /// w[j]  = Σ_{l∈[a,b)} (xc[l] − xc[i])^j
    /// wy[j] = Σ_{l∈[a,b)} ys[l]·(xc[l] − xc[i])^j
    /// ```
    ///
    /// via the binomial expansion over prefix differences. `npow[t]` must
    /// hold `(−xc[i])^t`. `O(max_m²)` — independent of the window size.
    fn window_moments(&self, a: usize, b: usize, npow: &[f64], scratch: &mut MomentScratch) {
        let stride = self.n + 1;
        for m in 0..=self.max_m {
            scratch.dp[m] = self.px[m * stride + b] - self.px[m * stride + a];
            scratch.dq[m] = self.py[m * stride + b] - self.py[m * stride + a];
        }
        let bw = self.max_m + 1;
        for j in 0..=self.max_m {
            let row = &self.binom[j * bw..j * bw + j + 1];
            let mut s = 0.0;
            let mut sy = 0.0;
            for (m, &c) in row.iter().enumerate() {
                let coeff = c * npow[j - m];
                s += coeff * scratch.dp[m];
                sy += coeff * scratch.dq[m];
            }
            scratch.w[j] = s;
            scratch.wy[j] = sy;
        }
    }
}

/// Per-side workspace for one binomial assembly (all `max_m + 1` long).
#[derive(Debug, Clone)]
struct MomentScratch {
    /// Prefix differences `P_m[b] − P_m[a]`.
    dp: Vec<f64>,
    /// Prefix differences `Q_m[b] − Q_m[a]`.
    dq: Vec<f64>,
    /// Assembled `w[j]` window moments.
    w: Vec<f64>,
    /// Assembled `y`-weighted `wy[j]` window moments.
    wy: Vec<f64>,
}

impl MomentScratch {
    fn new(max_m: usize) -> Self {
        let z = vec![0.0; max_m + 1];
        Self { dp: z.clone(), dq: z.clone(), w: z.clone(), wy: z }
    }
}

/// Per-observation workspace for the prefix sweep: powers of `−xc[i]` plus
/// one [`MomentScratch`] per window side. No `n`-sized buffers anywhere.
struct PrefixScratch {
    npow: Vec<f64>,
    left: MomentScratch,
    right: MomentScratch,
}

impl PrefixScratch {
    fn new(max_m: usize) -> Self {
        Self {
            npow: vec![0.0; max_m + 1],
            left: MomentScratch::new(max_m),
            right: MomentScratch::new(max_m),
        }
    }
}

/// Resolves the support window `[lo, hi)` of the observation at sorted
/// position `si` for bandwidth `1/inv_h`, narrowing monotonically from the
/// previous (smaller-bandwidth) window: `lo` is searched in `[0, lo_prev]`,
/// `hi` in `[hi_prev, n]`. The predicate is the bit-identical
/// `d·(1/h) ≤ r` every other strategy uses, evaluated on the original
/// sorted coordinates, so the returned membership set matches
/// naive/sorted/merged exactly. Costs at most `~2·⌈log₂ n⌉` probes.
#[inline]
fn support_window(
    xs: &[f64],
    si: usize,
    inv_h: f64,
    radius: f64,
    lo_prev: usize,
    hi_prev: usize,
) -> (usize, usize) {
    let xi = xs[si];
    // Leftmost l with (xi − xs[l])·inv_h ≤ r; l = si trivially qualifies.
    let (mut a, mut b) = (0usize, lo_prev);
    while a < b {
        let mid = (a + b) / 2;
        if (xi - xs[mid]) * inv_h <= radius {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    let lo = a;
    // One past the rightmost l with (xs[l] − xi)·inv_h ≤ r.
    let (mut a, mut b) = (hi_prev, xs.len());
    while a < b {
        let mid = (a + b) / 2;
        if (xs[mid] - xi) * inv_h <= radius {
            a = mid + 1;
        } else {
            b = mid;
        }
    }
    (lo, a)
}

/// Adds the contribution of the observation at sorted position `si` —
/// `(Y_i − ĝ_{-i}(X_i))² M(X_i)` at every grid bandwidth — into
/// `sq_sums`/`included`, local-constant form. Per bandwidth: one window
/// query + `O(deg²)` assembly; no per-neighbour work at all.
#[allow(clippy::too_many_arguments)]
fn accumulate_observation_prefix(
    si: usize,
    t: &PrefixTables,
    coeffs: &[f64],
    radius: f64,
    hs: &[f64],
    scratch: &mut PrefixScratch,
    sq_sums: &mut [f64],
    included: &mut [usize],
) {
    let n = t.n;
    let yi = t.ys[si];
    let neg_xi = -t.xc[si];
    scratch.npow[0] = 1.0;
    for m in 1..=t.max_m {
        scratch.npow[m] = scratch.npow[m - 1] * neg_xi;
    }

    let mut lo = si;
    let mut hi = si + 1;
    let mut queries = kcv_obs::LocalCounter::new(kcv_obs::Counter::WindowQueries);
    let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
    for (m, &h) in hs.iter().enumerate() {
        let inv_h = 1.0 / h;
        (lo, hi) = support_window(&t.xs, si, inv_h, radius, lo, hi);
        queries.incr(1);
        skipped.incr((n - (hi - lo)) as u64);

        // Window moments on each side of i; the split excludes i itself.
        t.window_moments(lo, si, &scratch.npow, &mut scratch.left);
        t.window_moments(si + 1, hi, &scratch.npow, &mut scratch.right);

        // d = x_i − x_l on the left, x_l − x_i on the right, so
        // S_j = W_j^right + (−1)^j · W_j^left; then the usual
        // N/D = Σ_j c_j h^{-j} · {SY_j, S_j} assembly.
        let mut hp = 1.0;
        let mut num = 0.0;
        let mut den = 0.0;
        let mut sign = 1.0;
        for (j, &cf) in coeffs.iter().enumerate() {
            let s_j = scratch.right.w[j] + sign * scratch.left.w[j];
            let sy_j = scratch.right.wy[j] + sign * scratch.left.wy[j];
            num += cf * hp * sy_j;
            den += cf * hp * s_j;
            hp *= inv_h;
            sign = -sign;
        }
        if den > 0.0 {
            let resid = yi - num / den;
            sq_sums[m] += resid * resid;
            included[m] += 1;
        }
    }
}

/// Local-linear twin of [`accumulate_observation_prefix`]: assembles the
/// five signed moments `S_0..S_2, T_0..T_1` of [`super::sorted_ll`] from
/// window moments up to `deg + 2` (`|e|^q·e^j` is `±e^{q+j}` by side) and
/// feeds `solve_local_linear`.
#[allow(clippy::too_many_arguments)]
fn accumulate_observation_prefix_ll(
    si: usize,
    t: &PrefixTables,
    coeffs: &[f64],
    radius: f64,
    hs: &[f64],
    scratch: &mut PrefixScratch,
    sq_sums: &mut [f64],
    included: &mut [usize],
) {
    let n = t.n;
    let yi = t.ys[si];
    let neg_xi = -t.xc[si];
    scratch.npow[0] = 1.0;
    for m in 1..=t.max_m {
        scratch.npow[m] = scratch.npow[m - 1] * neg_xi;
    }

    let mut lo = si;
    let mut hi = si + 1;
    let mut queries = kcv_obs::LocalCounter::new(kcv_obs::Counter::WindowQueries);
    let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
    for (m, &h) in hs.iter().enumerate() {
        let inv_h = 1.0 / h;
        (lo, hi) = support_window(&t.xs, si, inv_h, radius, lo, hi);
        queries.incr(1);
        skipped.incr((n - (hi - lo)) as u64);

        t.window_moments(lo, si, &scratch.npow, &mut scratch.left);
        t.window_moments(si + 1, hi, &scratch.npow, &mut scratch.right);

        // With e = x_l − x_i (signed): |e|^q·e^j equals e^{q+j} on the
        // right and (−1)^q·e^{q+j} on the left, so
        // A_{q,j} = W_{q+j}^right + (−1)^q·W_{q+j}^left (and B likewise
        // with the y-weighted moments).
        let mut hp = 1.0;
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut t0 = 0.0;
        let mut t1 = 0.0;
        let mut sign = 1.0;
        for (q, &cq) in coeffs.iter().enumerate() {
            let c = cq * hp;
            s0 += c * (scratch.right.w[q] + sign * scratch.left.w[q]);
            s1 += c * (scratch.right.w[q + 1] + sign * scratch.left.w[q + 1]);
            s2 += c * (scratch.right.w[q + 2] + sign * scratch.left.w[q + 2]);
            t0 += c * (scratch.right.wy[q] + sign * scratch.left.wy[q]);
            t1 += c * (scratch.right.wy[q + 1] + sign * scratch.left.wy[q + 1]);
            hp *= inv_h;
            sign = -sign;
        }
        if let Some(g) = solve_local_linear([s0, s1, s2, t0, t1], h) {
            let r = yi - g;
            sq_sums[m] += r * r;
            included[m] += 1;
        }
    }
}

/// The sequential prefix-moment scoring core shared by
/// [`cv_profile_prefix`] and the d = 1 dispatch of the multivariate fast
/// engine (`crate::multi::fast`): scores every bandwidth in `hs` and
/// returns `(scores, included)` in the same order. `hs` must be
/// non-decreasing — the support windows narrow monotonically from one
/// bandwidth to the next, so an out-of-order list would resolve wrong
/// windows. Callers with an arbitrary bandwidth list sort it (with an
/// index map) first; callers holding a [`BandwidthGrid`] are ascending by
/// construction.
pub(crate) fn prefix_scores_for_bandwidths<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    hs: &[f64],
    kernel: &K,
) -> Result<(Vec<f64>, Vec<usize>)> {
    let n = validate_sample(x, y, 2)?;
    debug_assert!(hs.windows(2).all(|w| w[0] <= w[1]), "bandwidths must be non-decreasing");
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = hs.len();
    let deg = coeffs.len() - 1;

    let tables = PrefixTables::build(x, y, deg);

    let mut sq_sums = vec![0.0; k];
    let mut included = vec![0usize; k];
    let mut scratch = PrefixScratch::new(deg);

    let _window = kcv_obs::phase("cv.window");
    for si in 0..n {
        accumulate_observation_prefix(
            si, &tables, coeffs, radius, hs, &mut scratch, &mut sq_sums, &mut included,
        );
    }

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok((scores, included))
}

/// Computes the CV profile with the prefix-moment sweep, sequentially:
/// `O(n log n + n·k·(log n + deg²))` total — no per-neighbour scan.
pub fn cv_profile_prefix<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let hs = grid.values();
    let (scores, included) = prefix_scores_for_bandwidths(x, y, hs, kernel)?;
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n: x.len() })
}

/// Parallel prefix-moment CV profile: the argsort and table build run once
/// on the calling thread, then observations fold across cores against the
/// shared read-only tables.
pub fn cv_profile_prefix_par<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let deg = coeffs.len() - 1;

    let tables = PrefixTables::build(x, y, deg);
    let tables = &tables;

    let _window = kcv_obs::phase("cv.window");
    // Re-install the caller's recorder scope once per worker chunk (scope
    // stacks are thread-local) so counts attribute to the run that spawned us.
    let scope = kcv_obs::scope();
    let (sq_sums, included) = (0..n)
        .into_par_iter()
        .fold_with_setup(
            || scope.enter(),
            || (vec![0.0; k], vec![0usize; k], PrefixScratch::new(deg)),
            |(mut sq, mut inc, mut scratch), si| {
                accumulate_observation_prefix(
                    si, tables, coeffs, radius, hs, &mut scratch, &mut sq, &mut inc,
                );
                (sq, inc, scratch)
            },
        )
        .map(|(sq, inc, _)| (sq, inc))
        .reduce(|| (vec![0.0; k], vec![0usize; k]), super::parallel::merge_partials);

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Local-linear CV profile via the prefix-moment sweep, sequential. Needs
/// prefix moments up to `deg + 2` (the slope term quadratically weights the
/// offsets), but the per-cell cost stays `O(log n + deg²)`.
pub fn cv_profile_prefix_ll<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let deg = coeffs.len() - 1;

    let tables = PrefixTables::build(x, y, deg + 2);

    let mut sq_sums = vec![0.0; k];
    let mut included = vec![0usize; k];
    let mut scratch = PrefixScratch::new(deg + 2);

    let _window = kcv_obs::phase("cv.window");
    for si in 0..n {
        accumulate_observation_prefix_ll(
            si, &tables, coeffs, radius, hs, &mut scratch, &mut sq_sums, &mut included,
        );
    }

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Local-linear prefix-moment CV profile, parallel over observations.
pub fn cv_profile_prefix_ll_par<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let deg = coeffs.len() - 1;

    let tables = PrefixTables::build(x, y, deg + 2);
    let tables = &tables;

    let _window = kcv_obs::phase("cv.window");
    let scope = kcv_obs::scope();
    let (sq_sums, included) = (0..n)
        .into_par_iter()
        .fold_with_setup(
            || scope.enter(),
            || (vec![0.0; k], vec![0usize; k], PrefixScratch::new(deg + 2)),
            |(mut sq, mut inc, mut scratch), si| {
                accumulate_observation_prefix_ll(
                    si, tables, coeffs, radius, hs, &mut scratch, &mut sq, &mut inc,
                );
                (sq, inc, scratch)
            },
        )
        .map(|(sq, inc, _)| (sq, inc))
        .reduce(|| (vec![0.0; k], vec![0usize; k]), super::parallel::merge_partials);

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::{
        cv_profile_merged, cv_profile_naive, cv_profile_sorted, sorted_ll::cv_profile_naive_ll,
        cv_profile_sorted_ll,
    };
    use crate::kernels::{polynomial_kernels, Epanechnikov, Quartic, Triangular, Triweight, Uniform};
    use crate::util::{approx_eq, SplitMix64};
    use proptest::prelude::*;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    fn assert_profiles_agree(a: &CvProfile, b: &CvProfile, tol: f64) {
        assert_eq!(a.len(), b.len());
        for m in 0..a.len() {
            assert_eq!(
                a.included[m], b.included[m],
                "included mismatch at h={}",
                a.bandwidths[m]
            );
            assert!(
                approx_eq(a.scores[m], b.scores[m], tol, tol),
                "score mismatch at h={}: {} vs {}",
                a.bandwidths[m],
                a.scores[m],
                b.scores[m]
            );
        }
    }

    /// The acceptance criterion of this PR: 1e-8 relative score agreement
    /// with the naive reference on the seed DGP, identical argmin.
    #[test]
    fn prefix_matches_naive_within_1e8_on_paper_dgp() {
        let (x, y) = paper_dgp(150, 11);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let prefix = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&prefix, &naive, 1e-8);
        assert_eq!(
            prefix.argmin().unwrap().bandwidth,
            naive.argmin().unwrap().bandwidth
        );
    }

    #[test]
    fn prefix_matches_naive_for_every_polynomial_kernel() {
        // Degree-scaled tolerance: cancellation in the binomial assembly
        // grows with the highest moment, so the deg-4/deg-6 kernels get the
        // looser bound the module docs put on them.
        let (x, y) = paper_dgp(80, 12);
        let grid = BandwidthGrid::paper_default(&x, 23).unwrap();
        macro_rules! check {
            ($k:expr, $tol:expr) => {{
                let prefix = cv_profile_prefix(&x, &y, &grid, &$k).unwrap();
                let naive = cv_profile_naive(&x, &y, &grid, &$k).unwrap();
                assert_profiles_agree(&prefix, &naive, $tol);
            }};
        }
        check!(Epanechnikov, 1e-8);
        check!(Uniform, 1e-8);
        check!(Triangular, 1e-8);
        check!(Quartic, 1e-5);
        check!(Triweight, 1e-5);
    }

    #[test]
    fn prefix_handles_duplicated_x_values() {
        // Zero-distance neighbours: the window always contains the ties, and
        // the stable argsort order must not matter.
        let x = vec![0.2, 0.5, 0.5, 0.5, 0.8, 0.2, 0.9, 0.5];
        let y = vec![1.0, 2.0, -1.0, 3.0, 0.5, 4.0, 2.5, 0.0];
        let grid = BandwidthGrid::linear(0.05, 1.0, 25).unwrap();
        let prefix = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&prefix, &naive, 1e-9);
        assert!(prefix.included.iter().all(|&c| c >= 6));
    }

    #[test]
    fn prefix_matches_naive_on_clustered_design() {
        // Clusters + an isolated point: exercises empty windows (exactly-
        // zero prefix differences) and M(X_i) = 0.
        let mut rng = SplitMix64::new(13);
        let mut x = Vec::new();
        for c in [0.0, 0.1, 5.0] {
            for _ in 0..20 {
                x.push(c + 0.01 * rng.next_f64());
            }
        }
        x.push(100.0);
        let y: Vec<f64> = x.iter().map(|&v| v.sin() + rng.next_f64()).collect();
        let grid = BandwidthGrid::linear(0.005, 2.0, 40).unwrap();
        let prefix = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&prefix, &naive, 1e-8);
        assert!(prefix.included.iter().all(|&c| c < x.len()));
    }

    #[test]
    fn prefix_works_with_two_observations() {
        let x = [0.0, 0.5];
        let y = [1.0, 3.0];
        let grid = BandwidthGrid::linear(0.1, 1.0, 5).unwrap();
        let profile = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        for (m, &h) in grid.values().iter().enumerate() {
            if h < 0.5 {
                assert_eq!(profile.included[m], 0);
            } else {
                assert_eq!(profile.included[m], 2);
                assert!((profile.scores[m] - 4.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn prefix_argmin_matches_naive_sorted_and_merged() {
        for seed in 0..5 {
            let (x, y) = paper_dgp(120, 100 + seed);
            let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
            let a = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
            let b = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
            let c = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
            let d = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
            assert_eq!(a.argmin().unwrap().index, b.argmin().unwrap().index);
            assert_eq!(a.argmin().unwrap().index, c.argmin().unwrap().index);
            assert_eq!(a.argmin().unwrap().index, d.argmin().unwrap().index);
        }
    }

    #[test]
    fn parallel_prefix_matches_sequential_prefix() {
        let (x, y) = paper_dgp(300, 21);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let seq = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        let par = cv_profile_prefix_par(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_eq!(seq.included, par.included);
        for m in 0..grid.len() {
            assert!(
                approx_eq(seq.scores[m], par.scores[m], 1e-12, 1e-14),
                "h={}: {} vs {}",
                grid.values()[m],
                seq.scores[m],
                par.scores[m]
            );
        }
    }

    #[test]
    fn prefix_handles_unsorted_input() {
        let (x, y) = paper_dgp(90, 16);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let unsorted = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        let perm = crate::sort::argsort(&x);
        let xs = crate::sort::apply_permutation(&x, &perm);
        let ys = crate::sort::apply_permutation(&y, &perm);
        let sorted_input = cv_profile_prefix(&xs, &ys, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            assert!(approx_eq(unsorted.scores[m], sorted_input.scores[m], 1e-10, 1e-12));
        }
    }

    #[test]
    fn prefix_ll_matches_naive_ll() {
        // Inclusion (and LL degeneracy-fallback) classification must agree
        // at every bandwidth, down to the sparsest windows.
        let (x, y) = paper_dgp(120, 205);
        let full_grid = BandwidthGrid::paper_default(&x, 30).unwrap();
        let prefix_full = cv_profile_prefix_ll(&x, &y, &full_grid, &Epanechnikov).unwrap();
        let naive_full = cv_profile_naive_ll(&x, &y, &full_grid, &Epanechnikov).unwrap();
        assert_eq!(prefix_full.included, naive_full.included);
        // Score agreement is asserted away from near-degenerate windows
        // (tiny h): there the LL system's 1/det amplifies the documented
        // prefix-differencing error without bound (see the module docs).
        let grid = BandwidthGrid::linear(0.1, 1.0, 30).unwrap();
        let prefix = cv_profile_prefix_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            assert_eq!(prefix.included[m], naive.included[m], "h index {m}");
            assert!(
                approx_eq(prefix.scores[m], naive.scores[m], 1e-8, 1e-10),
                "h={}: {} vs {}",
                grid.values()[m],
                prefix.scores[m],
                naive.scores[m]
            );
        }
    }

    #[test]
    fn prefix_ll_par_matches_sequential_and_sorted_ll() {
        let (x, y) = paper_dgp(200, 206);
        let grid = BandwidthGrid::linear(0.1, 1.0, 25).unwrap();
        let seq = cv_profile_prefix_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        let par = cv_profile_prefix_ll_par(&x, &y, &grid, &Epanechnikov).unwrap();
        let sorted = cv_profile_sorted_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_eq!(seq.included, par.included);
        assert_eq!(seq.included, sorted.included);
        for m in 0..grid.len() {
            assert!(approx_eq(seq.scores[m], par.scores[m], 1e-12, 1e-14));
            assert!(approx_eq(seq.scores[m], sorted.scores[m], 1e-7, 1e-9));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_prefix_equals_naive(
            seed in 0u64..10_000,
            n in 5usize..60,
            k in 1usize..30,
        ) {
            let (x, y) = paper_dgp(n, seed);
            let grid = BandwidthGrid::paper_default(&x, k).unwrap();
            for kernel in polynomial_kernels() {
                let prefix = cv_profile_prefix(&x, &y, &grid, &*kernel).unwrap();
                let naive = cv_profile_naive(&x, &y, &grid, &*kernel).unwrap();
                // Degree-scaled tolerance: the monomial-cancellation caveat
                // of the sorted sweep plus the prefix-differencing loss this
                // module documents.
                let deg = kernel.coeffs().len() - 1;
                let tol = match deg {
                    0..=2 => 1e-6,
                    3..=4 => 1e-4,
                    _ => 1e-2,
                };
                for (m, (&ours, &theirs)) in
                    prefix.scores.iter().zip(&naive.scores).enumerate()
                {
                    prop_assert_eq!(prefix.included[m], naive.included[m]);
                    prop_assert!(
                        approx_eq(ours, theirs, tol, 1e-9),
                        "kernel {} (deg {deg}) h={}: {ours} vs {theirs}",
                        kernel.name(), grid.values()[m]
                    );
                }
                // Equal argmin whenever any bandwidth is valid.
                if let Ok(a) = prefix.argmin() {
                    prop_assert_eq!(a.index, naive.argmin().unwrap().index);
                }
            }
        }
    }
}
