//! Least-squares leave-one-out cross-validation for bandwidth selection.
//!
//! The objective (paper Eq. 1, Li & Racine §2.3) is
//!
//! ```text
//! CV_lc(h) = (1/n) Σ_i (Y_i − ĝ_{-i}(X_i))² M(X_i)
//! ```
//!
//! with `ĝ_{-i}` the leave-one-out Nadaraya–Watson estimator (Eq. 2) and
//! `M(X_i)` the indicator that its denominator is non-zero.
//!
//! Six evaluation strategies compute the profile `{CV_lc(h) : h ∈ grid}`:
//!
//! | module | complexity | applies to |
//! |---|---|---|
//! | [`naive`] | `O(k·n²)` | any kernel |
//! | [`sorted`] | `O(n² log n)` total (`O(n log n + n·deg + k·deg)` per obs.) | [`PolynomialKernel`]s |
//! | [`merged`] | `O(n log n + n·(n + k·deg))` total (one global argsort) | [`PolynomialKernel`]s, 1-D `x` |
//! | [`prefix`] | `O(n log n + n·k·(log n + deg²))` total (window queries over prefix moments) | [`PolynomialKernel`]s, 1-D `x` |
//! | [`incremental`] | `O(log n)` insert/remove, `O(k·(log n + deg²)·n)` reselect (Fenwick moment tree) | [`PolynomialKernel`]s, 1-D `x`, streaming |
//! | [`parallel`] | same as `sorted`, divided across cores | all of the above |
//!
//! `sorted` is the paper's first contribution; `merged` goes one step
//! further in the bivariate case by replacing the `n` per-observation sorts
//! with a single global argsort and a two-cursor merge; `prefix` then drops
//! the per-neighbour scan too, answering each `(observation, bandwidth)`
//! cell from compensated global moment prefix sums; `parallel` is the
//! SPMD parallelisation (executed here with rayon on host cores; the
//! simulated GPU version lives in the `kcv-gpu` crate).
//!
//! Exactness caveat: `sorted` and `merged` classify *and* score
//! bit-comparably to `naive` (1e-9-level agreement); `prefix` shares the
//! bit-identical support classification but its scores carry the
//! prefix-differencing error documented in [`prefix`] (1e-8-relative
//! agreement on the paper DGP, identical argmin).
//!
//! [`PolynomialKernel`]: crate::kernels::PolynomialKernel

pub mod incremental;
pub mod merged;
pub mod naive;
pub mod parallel;
pub mod prefix;
pub mod sorted;
pub mod sorted_ll;

pub use incremental::{IncrementalSelector, SlidingWindowSelector};
pub use merged::{cv_profile_merged, cv_profile_merged_par};
pub use naive::{cv_profile_naive, cv_score_single};
pub use parallel::{cv_profile_naive_par, cv_profile_sorted_par};
pub use prefix::{
    cv_profile_prefix, cv_profile_prefix_ll, cv_profile_prefix_ll_par, cv_profile_prefix_par,
};
pub use sorted::cv_profile_sorted;
pub use sorted_ll::{
    cv_profile_merged_ll, cv_profile_merged_ll_par, cv_profile_naive_ll, cv_profile_sorted_ll,
    cv_profile_sorted_ll_par,
};

use crate::error::{Error, Result};

/// The cross-validation scores over a bandwidth grid, plus per-bandwidth
/// diagnostic counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CvProfile {
    /// The candidate bandwidths, ascending.
    pub bandwidths: Vec<f64>,
    /// `CV_lc(h)` for each bandwidth.
    pub scores: Vec<f64>,
    /// Number of observations with `M(X_i) = 1` (non-degenerate
    /// leave-one-out fit) at each bandwidth.
    pub included: Vec<usize>,
    /// Sample size the profile was computed from.
    pub n: usize,
}

impl CvProfile {
    /// The grid optimum under the paper's raw semantics: the index, bandwidth
    /// and score of the minimal `CV_lc(h)`; ties resolve to the smallest
    /// bandwidth. Errors only if every bandwidth excluded every observation.
    pub fn argmin(&self) -> Result<CvOptimum> {
        self.argmin_with_min_included(1)
    }

    /// The grid optimum restricted to bandwidths whose leave-one-out fit was
    /// defined for at least `min_included` observations.
    ///
    /// The raw objective rewards bandwidths so small that most observations
    /// are *excluded* (each excluded observation contributes 0); requiring
    /// e.g. `min_included = n` (or `(0.95·n)`) guards against selecting such
    /// a degenerate bandwidth on sparse designs.
    pub fn argmin_with_min_included(&self, min_included: usize) -> Result<CvOptimum> {
        let mut best: Option<CvOptimum> = None;
        for (idx, ((&h, &score), &inc)) in self
            .bandwidths
            .iter()
            .zip(&self.scores)
            .zip(&self.included)
            .enumerate()
        {
            if inc < min_included {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => score < b.score,
            };
            if better {
                best = Some(CvOptimum { index: idx, bandwidth: h, score, included: inc });
            }
        }
        best.ok_or(Error::NoValidBandwidth)
    }

    /// Number of candidate bandwidths `k`.
    pub fn len(&self) -> usize {
        self.bandwidths.len()
    }

    /// True when the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.bandwidths.is_empty()
    }
}

/// The result of minimising a [`CvProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvOptimum {
    /// Index into the grid.
    pub index: usize,
    /// The optimal bandwidth.
    pub bandwidth: f64,
    /// Its cross-validation score.
    pub score: f64,
    /// Observations with a defined leave-one-out fit at this bandwidth.
    pub included: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(scores: &[f64], included: &[usize]) -> CvProfile {
        CvProfile {
            bandwidths: (1..=scores.len()).map(|i| i as f64 * 0.1).collect(),
            scores: scores.to_vec(),
            included: included.to_vec(),
            n: 10,
        }
    }

    #[test]
    fn argmin_picks_global_minimum() {
        let p = profile(&[3.0, 1.0, 2.0], &[10, 10, 10]);
        let opt = p.argmin().unwrap();
        assert_eq!(opt.index, 1);
        assert!((opt.bandwidth - 0.2).abs() < 1e-15);
        assert_eq!(opt.score, 1.0);
    }

    #[test]
    fn argmin_ties_resolve_to_smallest_bandwidth() {
        let p = profile(&[2.0, 1.0, 1.0], &[10, 10, 10]);
        assert_eq!(p.argmin().unwrap().index, 1);
    }

    #[test]
    fn argmin_skips_all_excluded_bandwidths() {
        // First bandwidth excluded everyone → score 0, but must not win.
        let p = profile(&[0.0, 1.5, 2.0], &[0, 10, 10]);
        let opt = p.argmin().unwrap();
        assert_eq!(opt.index, 1);
    }

    #[test]
    fn argmin_min_included_filters() {
        let p = profile(&[0.1, 1.5, 2.0], &[3, 8, 10]);
        assert_eq!(p.argmin_with_min_included(5).unwrap().index, 1);
        assert_eq!(p.argmin_with_min_included(9).unwrap().index, 2);
        assert!(p.argmin_with_min_included(11).is_err());
    }

    #[test]
    fn argmin_errors_when_nothing_valid() {
        let p = profile(&[0.0, 0.0], &[0, 0]);
        assert_eq!(p.argmin().unwrap_err(), Error::NoValidBandwidth);
    }
}
