//! The merge-sweep — dropping the per-observation sort entirely.
//!
//! The paper's sorted sweep ([`super::sorted`]) pays `O(n log n)` *per
//! observation* to sort the leave-one-out distances `|X_i − X_l|`, for an
//! `O(n² log n)` total. With a one-dimensional regressor that sort is
//! redundant: after a **single** global argsort of `x` (`O(n log n)`), the
//! observation at sorted position `i` sees its neighbours' distances as the
//! merge of two already-sorted runs —
//!
//! ```text
//! left  run: x[i] − x[i−1], x[i] − x[i−2], …, x[i] − x[0]      (ascending)
//! right run: x[i+1] − x[i], x[i+2] − x[i], …, x[n−1] − x[i]    (ascending)
//! ```
//!
//! — so two cursors walking outward from `i` yield the distances in
//! non-decreasing order with no comparison sort at all. This is the
//! fast-sum-updating insight of Langrené & Warin (2019) applied to the
//! paper's LOO-CV objective. Each observation then costs `O(n + k·deg)`
//! (every neighbour absorbed into the running power sums at most once, plus
//! one `N/D` assembly per grid bandwidth), for a total of
//!
//! ```text
//! O(n log n + n·(n + k·deg))
//! ```
//!
//! versus the sorted sweep's `O(n² log n + n·k·deg)`. Kernel-evaluation
//! counts are *identical* to the sorted sweep — the support predicate
//! `d/h ≤ r` is bitwise the same — only the sort comparisons disappear,
//! which the `metrics` counters verify exactly.
//!
//! The same numerical note as [`super::sorted`] applies: the monomial
//! expansion loses digits for high-degree kernels in sparse windows; the
//! naive profile remains the arbitrarily-accurate reference.
//!
//! ## When the per-observation sort is still required
//!
//! The merge relies on a global total order of the regressor, which only
//! exists in one dimension. Multivariate regressors (Euclidean or product
//! kernels over `X ∈ ℝᵈ`) have no single ordering that makes every
//! observation's distance vector a merge of sorted runs, so the
//! per-observation sort of [`super::sorted`] remains the general-position
//! fallback there.

use super::CvProfile;
use crate::error::{validate_sample, Result};
use crate::grid::BandwidthGrid;
use crate::kernels::PolynomialKernel;
use crate::sort::{apply_permutation, argsort};
use crate::util::NeumaierSum;
use rayon::prelude::*;

/// Per-observation workspace for the merge-sweep: just the running power
/// sums. Unlike [`super::sorted::SweepScratch`] there are no `n`-sized
/// distance/response buffers — the merge reads the globally sorted arrays
/// in place.
///
/// The sums are [`NeumaierSum`]-compensated: each absorbs up to `n − 1`
/// addends of wildly different magnitude (`d^j` across the whole support),
/// and compensation keeps the accumulated rounding error `O(ε)` instead of
/// `O(n·ε)` — the same defence the prefix tables of [`super::prefix`] use.
#[derive(Debug, Clone)]
pub struct MergeScratch {
    /// Running compensated `Σ d^j` for `j = 0..=deg`.
    s: Vec<NeumaierSum>,
    /// Running compensated `Σ Y·d^j` for `j = 0..=deg`.
    sy: Vec<NeumaierSum>,
}

impl MergeScratch {
    /// Creates a workspace for a kernel polynomial of degree `deg`.
    pub fn new(deg: usize) -> Self {
        Self {
            s: vec![NeumaierSum::new(); deg + 1],
            sy: vec![NeumaierSum::new(); deg + 1],
        }
    }

    /// Clears every running sum for the next observation.
    fn reset(&mut self) {
        for acc in self.s.iter_mut().chain(self.sy.iter_mut()) {
            acc.reset();
        }
    }
}

/// Adds the contribution of the observation at *sorted position* `si` —
/// `(Y_i − ĝ_{-i}(X_i))² M(X_i)` at every grid bandwidth — into
/// `sq_sums`/`included`. `xs`/`ys` are `x`/`y` co-sorted ascending by `x`.
///
/// Two cursors walk outward from `si`; at each step the smaller of the two
/// frontier distances is absorbed into the running power sums, so
/// absorption order is non-decreasing in distance and the ascending grid
/// pass needs no per-observation sort.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_observation_merged(
    si: usize,
    xs: &[f64],
    ys: &[f64],
    coeffs: &[f64],
    radius: f64,
    hs: &[f64],
    scratch: &mut MergeScratch,
    sq_sums: &mut [f64],
    included: &mut [usize],
) {
    let deg = coeffs.len() - 1;
    let n = xs.len();
    let xi = xs[si];
    let yi = ys[si];

    scratch.reset();

    // `left` points one past the next left neighbour (si−1, si−2, …, 0);
    // `right` points at the next right neighbour (si+1, …, n−1).
    let mut left = si;
    let mut right = si + 1;
    let mut taken = 0usize;

    let mut absorbed = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
    let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
    for (m, &h) in hs.iter().enumerate() {
        let inv_h = 1.0 / h;
        let taken_before = taken;
        // Absorb every not-yet-seen neighbour within the kernel support,
        // smaller frontier distance first. The predicate `d·(1/h) ≤ r` is
        // bitwise-identical to the sorted sweep's and to the pointwise
        // kernel evaluation's (`|u| > r → 0`), so boundary classifications
        // — and therefore `included` and the KernelEvals counter — agree
        // across all strategies. Monotone in h: the cursors never retreat.
        loop {
            let dl = if left > 0 { xi - xs[left - 1] } else { f64::INFINITY };
            let dr = if right < n { xs[right] - xi } else { f64::INFINITY };
            let (d, yl) = if dl <= dr {
                if dl * inv_h > radius {
                    break;
                }
                left -= 1;
                (dl, ys[left])
            } else {
                if dr * inv_h > radius {
                    break;
                }
                right += 1;
                (dr, ys[right - 1])
            };
            let mut pw = 1.0;
            for j in 0..=deg {
                scratch.s[j].add(pw);
                scratch.sy[j].add(yl * pw);
                pw *= d;
            }
            taken += 1;
        }
        absorbed.incr((taken - taken_before) as u64);
        skipped.incr((n - 1 - taken) as u64);
        // Assemble N and D from the power sums: Σ_j c_j h^{-j} · S_j.
        let mut hp = 1.0;
        let mut num = 0.0;
        let mut den = 0.0;
        for ((&cf, s_j), sy_j) in coeffs.iter().zip(&scratch.s).zip(&scratch.sy) {
            num += cf * hp * sy_j.value();
            den += cf * hp * s_j.value();
            hp *= inv_h;
        }
        if den > 0.0 {
            let resid = yi - num / den;
            sq_sums[m] += resid * resid;
            included[m] += 1;
        }
    }
}

/// Shared prefix of both merge-sweep drivers: the single global argsort of
/// `x` with `y` carried along.
fn sort_globally(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let _sort = kcv_obs::phase("cv.argsort");
    let perm = argsort(x);
    (apply_permutation(x, &perm), apply_permutation(y, &perm))
}

/// Computes the CV profile with the merge-sweep, sequentially:
/// `O(n log n + n·(n + k·deg))` total — no per-observation sort.
pub fn cv_profile_merged<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();

    let (xs, ys) = sort_globally(x, y);

    let mut sq_sums = vec![0.0; k];
    let mut included = vec![0usize; k];
    let mut scratch = MergeScratch::new(coeffs.len() - 1);

    let _merge = kcv_obs::phase("cv.merge");
    for si in 0..n {
        accumulate_observation_merged(
            si, &xs, &ys, coeffs, radius, hs, &mut scratch, &mut sq_sums, &mut included,
        );
    }

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Per-worker fold state for the parallel merge-sweep.
struct Acc {
    sq_sums: Vec<f64>,
    included: Vec<usize>,
    scratch: MergeScratch,
}

/// Parallel merge-sweep CV profile: the global argsort runs once on the
/// calling thread, then observations are folded across cores. The reduce
/// identity is a bare `(Vec<f64>, Vec<usize>)` pair — per-worker scratches
/// live only in the fold accumulators and are never constructed just to be
/// merged away.
pub fn cv_profile_merged_par<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let deg = coeffs.len() - 1;

    let (xs, ys) = sort_globally(x, y);
    let (xs, ys) = (xs.as_slice(), ys.as_slice());

    let _merge = kcv_obs::phase("cv.merge");
    // Re-install the caller's recorder scope once per worker chunk (scope
    // stacks are thread-local) so counts attribute to the run that spawned us.
    let scope = kcv_obs::scope();
    let (sq_sums, included) = (0..n)
        .into_par_iter()
        .fold_with_setup(
            || scope.enter(),
            || Acc {
                sq_sums: vec![0.0; k],
                included: vec![0usize; k],
                scratch: MergeScratch::new(deg),
            },
            |mut acc, si| {
                accumulate_observation_merged(
                    si,
                    xs,
                    ys,
                    coeffs,
                    radius,
                    hs,
                    &mut acc.scratch,
                    &mut acc.sq_sums,
                    &mut acc.included,
                );
                acc
            },
        )
        .map(|acc| (acc.sq_sums, acc.included))
        .reduce(|| (vec![0.0; k], vec![0usize; k]), super::parallel::merge_partials);

    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::{cv_profile_naive, cv_profile_sorted};
    use crate::kernels::{polynomial_kernels, Epanechnikov, Quartic, Triangular, Triweight, Uniform};
    use crate::util::{approx_eq, SplitMix64};
    use proptest::prelude::*;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    fn assert_profiles_agree(a: &CvProfile, b: &CvProfile, tol: f64) {
        assert_eq!(a.len(), b.len());
        for m in 0..a.len() {
            assert_eq!(
                a.included[m], b.included[m],
                "included mismatch at h={}",
                a.bandwidths[m]
            );
            assert!(
                approx_eq(a.scores[m], b.scores[m], tol, tol),
                "score mismatch at h={}: {} vs {}",
                a.bandwidths[m],
                a.scores[m],
                b.scores[m]
            );
        }
    }

    #[test]
    fn merged_matches_naive_epanechnikov_on_paper_dgp() {
        let (x, y) = paper_dgp(150, 11);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let merged = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&merged, &naive, 1e-9);
    }

    #[test]
    fn merged_matches_naive_for_every_polynomial_kernel() {
        let (x, y) = paper_dgp(80, 12);
        let grid = BandwidthGrid::paper_default(&x, 23).unwrap();
        macro_rules! check {
            ($k:expr) => {{
                let merged = cv_profile_merged(&x, &y, &grid, &$k).unwrap();
                let naive = cv_profile_naive(&x, &y, &grid, &$k).unwrap();
                assert_profiles_agree(&merged, &naive, 1e-9);
            }};
        }
        check!(Epanechnikov);
        check!(Uniform);
        check!(Triangular);
        check!(Quartic);
        check!(Triweight);
    }

    #[test]
    fn merged_handles_duplicated_x_values() {
        // Ties in the global sort: zero distances absorb at the first
        // bandwidth, and the stable argsort order must not matter.
        let x = vec![0.2, 0.5, 0.5, 0.5, 0.8, 0.2, 0.9, 0.5];
        let y = vec![1.0, 2.0, -1.0, 3.0, 0.5, 4.0, 2.5, 0.0];
        let grid = BandwidthGrid::linear(0.05, 1.0, 25).unwrap();
        let merged = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&merged, &naive, 1e-9);
        // Duplicated points have zero-distance neighbours, so they are
        // included at every bandwidth.
        assert!(merged.included.iter().all(|&c| c >= 6));
    }

    #[test]
    fn merged_matches_naive_on_clustered_design() {
        // Clusters + outliers: exercises empty windows and M(X_i) = 0.
        let mut rng = SplitMix64::new(13);
        let mut x = Vec::new();
        for c in [0.0, 0.1, 5.0] {
            for _ in 0..20 {
                x.push(c + 0.01 * rng.next_f64());
            }
        }
        x.push(100.0); // isolated point
        let y: Vec<f64> = x.iter().map(|&v| v.sin() + rng.next_f64()).collect();
        let grid = BandwidthGrid::linear(0.005, 2.0, 40).unwrap();
        let merged = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_profiles_agree(&merged, &naive, 1e-9);
        // The isolated point must be excluded at every grid bandwidth.
        assert!(merged.included.iter().all(|&c| c < x.len()));
    }

    #[test]
    fn merged_works_with_two_observations() {
        let x = [0.0, 0.5];
        let y = [1.0, 3.0];
        let grid = BandwidthGrid::linear(0.1, 1.0, 5).unwrap();
        let profile = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
        for (m, &h) in grid.values().iter().enumerate() {
            if h < 0.5 {
                assert_eq!(profile.included[m], 0);
            } else {
                assert_eq!(profile.included[m], 2);
                assert!((profile.scores[m] - 4.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn merged_argmin_matches_naive_and_sorted() {
        for seed in 0..5 {
            let (x, y) = paper_dgp(120, 100 + seed);
            let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
            let a = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
            let b = cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
            let c = cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
            assert_eq!(a.argmin().unwrap().index, b.argmin().unwrap().index);
            assert_eq!(a.argmin().unwrap().index, c.argmin().unwrap().index);
        }
    }

    #[test]
    fn parallel_merged_matches_sequential_merged() {
        let (x, y) = paper_dgp(300, 21);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let seq = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
        let par = cv_profile_merged_par(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_eq!(seq.included, par.included);
        for m in 0..grid.len() {
            assert!(
                approx_eq(seq.scores[m], par.scores[m], 1e-12, 1e-14),
                "h={}: {} vs {}",
                grid.values()[m],
                seq.scores[m],
                par.scores[m]
            );
        }
    }

    #[test]
    fn merged_handles_unsorted_input() {
        // The merge globally re-sorts internally; feeding sorted input must
        // give identical scores to unsorted input.
        let (x, y) = paper_dgp(90, 16);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let unsorted = cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
        let perm = crate::sort::argsort(&x);
        let xs = crate::sort::apply_permutation(&x, &perm);
        let ys = crate::sort::apply_permutation(&y, &perm);
        let sorted_input = cv_profile_merged(&xs, &ys, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            assert!(approx_eq(unsorted.scores[m], sorted_input.scores[m], 1e-10, 1e-12));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_merged_equals_naive(
            seed in 0u64..10_000,
            n in 5usize..60,
            k in 1usize..30,
        ) {
            let (x, y) = paper_dgp(n, seed);
            let grid = BandwidthGrid::paper_default(&x, k).unwrap();
            for kernel in polynomial_kernels() {
                let merged = cv_profile_merged(&x, &y, &grid, &*kernel).unwrap();
                let naive = cv_profile_naive(&x, &y, &grid, &*kernel).unwrap();
                // Degree-scaled tolerance: same monomial-cancellation caveat
                // as the sorted sweep (see `cv::sorted`'s numerical note).
                let deg = kernel.coeffs().len() - 1;
                let tol = match deg {
                    0..=2 => 1e-6,
                    3..=4 => 1e-4,
                    _ => 1e-2,
                };
                for (m, (&ours, &theirs)) in
                    merged.scores.iter().zip(&naive.scores).enumerate()
                {
                    prop_assert_eq!(merged.included[m], naive.included[m]);
                    prop_assert!(
                        approx_eq(ours, theirs, tol, 1e-9),
                        "kernel {} (deg {deg}) h={}: {ours} vs {theirs}",
                        kernel.name(), grid.values()[m]
                    );
                }
            }
        }
    }
}
