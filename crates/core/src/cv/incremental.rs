//! Incremental prefix-moment CV — the streaming engine.
//!
//! [`super::prefix`] answers every `(observation, bandwidth)` cell from
//! global prefix sums of centred moments, but those tables are immutable:
//! one inserted or removed observation forces a full `O(n·deg)` rebuild.
//! This module makes the same representation *dynamic* by storing the
//! moments in an order-statistic **Fenwick tree** over the sorted distinct
//! keys of the live sample:
//!
//! * each tree node holds a block of `2·(max_m + 1)` Neumaier-compensated
//!   sums — the centred moments `Σ x'^m` and `Σ y·x'^m`, `m ≤ deg + 2` —
//!   over its Fenwick range of key slots;
//! * [`IncrementalSelector::insert`] / [`IncrementalSelector::remove`] fold
//!   an observation into (out of) the `O(log n)` nodes on its update path;
//! * [`IncrementalSelector::reselect`] answers every cell exactly as the
//!   prefix sweep does — two bisections on the **original** sorted keys
//!   with the bit-identical `d·(1/h) ≤ r` support predicate, then the same
//!   `O(deg²)` binomial recombination — except the boundary prefix moments
//!   come from `O(log n)` tree descents instead of a flat table lookup.
//!   Zero kernel evaluations, like the prefix sweep.
//!
//! ## The key pool and amortised folding
//!
//! A Fenwick tree indexes *fixed* positions, but a stream of continuous
//! regressors presents previously unseen keys that belong in the middle of
//! the sorted order. The engine therefore keeps a **pool** of sorted
//! distinct keys (duplicate `x` values share one slot, holding the slot's
//! live `y` values) plus a small sorted **pending** run of not-yet-pooled
//! arrivals:
//!
//! * inserting an existing pool key (or removing any pooled observation) is
//!   a true `O(log n)` Fenwick point update — removals never restructure
//!   the pool, they only subtract the observation's moments back out and
//!   possibly leave a *dead* (zero-count) slot behind;
//! * inserting a brand-new key appends to the pending run (`O(log n)`
//!   compares); pending runs **fold** into the pool — one `O(n)` merge +
//!   linear-time tree rebuild that also compacts dead slots and discards
//!   their rounding residue — when the run outgrows `max(64, slots/8)` or
//!   at the next `reselect()`, so folding is amortised `O(1)` node writes
//!   per arrival and never changes `reselect`'s complexity (the rebuild is
//!   dominated by the sweep it precedes).
//!
//! Every tree-node visit (point updates and rebuild writes alike) counts
//! into the `tree_updates` counter; perf gate 18 holds the total under
//! `(inserts + removes)·⌈log₂ W⌉·(deg + 3)` for the streaming replay.
//!
//! ## Agreement with the fresh prefix sweep
//!
//! Support classification is bit-identical to [`super::prefix`] by
//! construction: the bisection predicate runs on the original keys, dead
//! slots carry an **exactly zero** count (the `m = 0` moment row only ever
//! accumulates `±1.0`, which Neumaier summation tracks exactly), and a
//! side whose live count is zero contributes exactly-zero moments just as
//! an empty prefix range does. Duplicate-key neighbours are folded in
//! closed form (`(x_l − x_i)^j = 0` for `j > 0`), so only the *scores*
//! differ from a fresh [`super::prefix::cv_profile_prefix`] run — by the
//! regrouping of the same compensated sums, within the PR 4 documented
//! tolerance — while the selected bandwidth matches bit-for-bit
//! (`crates/core/tests/incremental_agreement.rs` pins this over random
//! interleaved insert/remove sequences, duplicate keys, and boundary-tie
//! lattices for every polynomial kernel).
//!
//! One intentional difference: the centring shift is **fixed at
//! construction** ([`IncrementalSelector::with_center`]) instead of the
//! sample midrange, which a stream cannot know in advance. Centring only
//! affects score rounding, never the support classification.
//!
//! [`SlidingWindowSelector`] wraps the engine for the streaming use case:
//! capacity `W`, evict-oldest, and a configurable re-selection cadence that
//! amortises one `O(k·(log n + deg²)·n_window)` sweep across many `O(log n)`
//! arrivals — the `streaming` bench binary measures the resulting
//! throughput against recompute-from-scratch per arrival.

use std::collections::VecDeque;

use super::{CvOptimum, CvProfile};
use crate::error::{Error, Result};
use crate::grid::BandwidthGrid;
use crate::kernels::PolynomialKernel;
use crate::util::NeumaierSum;

/// Lowest set bit of a Fenwick index.
#[inline]
fn lowbit(i: usize) -> usize {
    i & i.wrapping_neg()
}

/// Prefix-moment vectors at one slot boundary: `dp[m] = Σ x'^m`,
/// `dq[m] = Σ y·x'^m` over the slots below the boundary.
#[derive(Debug, Clone)]
struct MomentVec {
    dp: Vec<f64>,
    dq: Vec<f64>,
}

impl MomentVec {
    fn new(max_m: usize) -> Self {
        Self { dp: vec![0.0; max_m + 1], dq: vec![0.0; max_m + 1] }
    }

    fn clear(&mut self) {
        self.dp.fill(0.0);
        self.dq.fill(0.0);
    }
}

/// The incremental prefix-moment selector: a dynamic observation multiset
/// with `O(log n)` insert/remove and full-grid re-selection with zero
/// kernel evaluations (see the module docs).
///
/// The bandwidth grid and centring shift are fixed at construction; the
/// observation set evolves through [`insert`](Self::insert) /
/// [`remove`](Self::remove), and [`reselect`](Self::reselect) scores the
/// current live set over the whole grid.
#[derive(Debug, Clone)]
pub struct IncrementalSelector<K> {
    kernel: K,
    grid: BandwidthGrid,
    center: f64,
    /// Highest stored moment (`deg + 2`, matching the prefix tables'
    /// local-linear capacity; the local-constant sweep uses `j ≤ deg`).
    max_m: usize,
    /// Sorted distinct pooled keys (may include dead slots).
    keys: Vec<f64>,
    /// Live `y` values per pooled slot, parallel to `keys`. A slot with an
    /// empty list is *dead*: still indexed by the tree, count exactly zero.
    ys: Vec<Vec<f64>>,
    /// Number of dead slots currently in the pool.
    dead_slots: usize,
    /// Flattened Fenwick tree: node `i` (1-indexed, `i ≤ keys.len()`) owns
    /// the block `tree[i·B .. (i+1)·B]` with `B = 2·(max_m+1)` — x-moments
    /// then y-moments.
    tree: Vec<NeumaierSum>,
    /// Sorted (by key, then arrival) run of inserts whose keys are not yet
    /// pooled.
    pending: Vec<(f64, f64)>,
    /// Total live observations (pooled + pending).
    live_obs: usize,
    /// Flattened `(max_m+1)²` Pascal triangle, as in the prefix tables.
    binom: Vec<f64>,
}

impl<K: PolynomialKernel> IncrementalSelector<K> {
    /// Creates an empty selector scoring over `grid` (ascending by
    /// construction), centred at `0.0`.
    pub fn new(kernel: K, grid: BandwidthGrid) -> Self {
        let deg = kernel.coeffs().len() - 1;
        let max_m = deg + 2;
        let bw = max_m + 1;
        let mut binom = vec![0.0; bw * bw];
        for j in 0..=max_m {
            binom[j * bw] = 1.0;
            for m in 1..=j {
                binom[j * bw + m] =
                    binom[(j - 1) * bw + m - 1] + if m < j { binom[(j - 1) * bw + m] } else { 0.0 };
            }
        }
        Self {
            kernel,
            grid,
            center: 0.0,
            max_m,
            keys: Vec::new(),
            ys: Vec::new(),
            dead_slots: 0,
            tree: vec![NeumaierSum::new(); bw * 2],
            pending: Vec::new(),
            live_obs: 0,
            binom,
        }
    }

    /// Sets the centring shift for the stored moments (conditioning only —
    /// scores round differently, classification and selection semantics are
    /// unchanged). Must be called before any insert.
    ///
    /// # Panics
    /// If observations have already been inserted.
    pub fn with_center(mut self, center: f64) -> Self {
        assert!(
            self.live_obs == 0 && self.keys.is_empty(),
            "with_center must be called on an empty selector"
        );
        assert!(center.is_finite(), "center must be finite");
        self.center = center;
        self
    }

    /// Number of live observations.
    pub fn len(&self) -> usize {
        self.live_obs
    }

    /// True when no live observation is held.
    pub fn is_empty(&self) -> bool {
        self.live_obs == 0
    }

    /// The bandwidth grid every `reselect` scores.
    pub fn grid(&self) -> &BandwidthGrid {
        &self.grid
    }

    /// Block width of one tree node (`2·(max_m+1)` compensated sums).
    fn block(&self) -> usize {
        2 * (self.max_m + 1)
    }

    /// Pool slot of `x`, if pooled (live or dead).
    fn pool_slot(&self, x: f64) -> Option<usize> {
        let s = self.keys.partition_point(|&k| k < x);
        (s < self.keys.len() && self.keys[s] == x).then_some(s)
    }

    /// Folds `±(x, y)` into the tree nodes covering slot `s`, counting one
    /// `tree_updates` per node visited.
    fn point_update(&mut self, s: usize, x: f64, y: f64, sign: f64) {
        let mm = self.max_m;
        let b = self.block();
        let xc = x - self.center;
        let p = self.keys.len();
        let mut visited = 0u64;
        let mut i = s + 1;
        while i <= p {
            let off = i * b;
            let mut pw = sign;
            for m in 0..=mm {
                self.tree[off + m].add(pw);
                self.tree[off + mm + 1 + m].add(y * pw);
                pw *= xc;
            }
            visited += 1;
            i += lowbit(i);
        }
        kcv_obs::add(kcv_obs::Counter::TreeUpdates, visited);
    }

    /// Accumulates the prefix moments of slots `[0, t)` into `out`
    /// (`O(log n)` node-block reads).
    fn prefix_moments(&self, t: usize, out: &mut MomentVec) {
        let mm = self.max_m;
        let b = self.block();
        out.clear();
        let mut i = t;
        while i > 0 {
            let off = i * b;
            for m in 0..=mm {
                out.dp[m] += self.tree[off + m].value();
                out.dq[m] += self.tree[off + mm + 1 + m].value();
            }
            i -= lowbit(i);
        }
    }

    /// Inserts one observation in `O(log n)`: a Fenwick point update when
    /// `x` is already pooled, otherwise an append to the pending run
    /// (folded into the pool amortised-`O(1)`; see the module docs).
    ///
    /// Non-finite `x` or `y` is rejected with [`Error::NonFiniteData`]
    /// **before** any tree mutation: a failed `insert` leaves the selector
    /// state (pool, pending run, live count, every compensated moment)
    /// exactly as it was, so a stream may drop the bad arrival and
    /// continue.
    pub fn insert(&mut self, x: f64, y: f64) -> Result<()> {
        if !x.is_finite() {
            return Err(Error::NonFiniteData { which: "x", index: 0 });
        }
        if !y.is_finite() {
            return Err(Error::NonFiniteData { which: "y", index: 0 });
        }
        let _update = kcv_obs::phase("cv.update");
        if let Some(s) = self.pool_slot(x) {
            if self.ys[s].is_empty() {
                self.dead_slots -= 1;
            }
            self.ys[s].push(y);
            self.point_update(s, x, y, 1.0);
        } else {
            let at = self.pending.partition_point(|&(k, _)| k <= x);
            self.pending.insert(at, (x, y));
        }
        self.live_obs += 1;
        if self.pending.len() > 64.max(self.keys.len() / 8) {
            self.fold();
        }
        Ok(())
    }

    /// Removes one observation matching `(x, y)` exactly, returning whether
    /// one was found. Pooled removals are `O(log n)` Fenwick point updates;
    /// a slot whose last observation leaves stays in the pool as a dead
    /// slot (count exactly zero) until the next fold compacts it.
    pub fn remove(&mut self, x: f64, y: f64) -> bool {
        let _update = kcv_obs::phase("cv.update");
        if let Some(s) = self.pool_slot(x) {
            let Some(at) = self.ys[s].iter().position(|&v| v == y) else {
                return false;
            };
            self.ys[s].remove(at);
            if self.ys[s].is_empty() {
                self.dead_slots += 1;
            }
            self.point_update(s, x, y, -1.0);
            self.live_obs -= 1;
            return true;
        }
        let lo = self.pending.partition_point(|&(k, _)| k < x);
        let hi = self.pending.partition_point(|&(k, _)| k <= x);
        if let Some(at) = self.pending[lo..hi].iter().position(|&(_, v)| v == y) {
            self.pending.remove(lo + at);
            self.live_obs -= 1;
            return true;
        }
        false
    }

    /// Merges the pending run into the pool, drops dead slots, and rebuilds
    /// the tree from freshly recomputed per-slot base moments (linear in
    /// the pool size; every node write counts into `tree_updates`).
    fn fold(&mut self) {
        let mm = self.max_m;
        let b = self.block();
        let live_slots = self.keys.len() - self.dead_slots;
        // Upper bound: every pending entry is a new distinct key.
        let mut keys = Vec::with_capacity(live_slots + self.pending.len());
        let mut ys: Vec<Vec<f64>> = Vec::with_capacity(keys.capacity());
        let mut pool = self
            .keys
            .iter()
            .zip(std::mem::take(&mut self.ys))
            .filter(|(_, sy)| !sy.is_empty())
            .map(|(&k, sy)| (k, sy))
            .peekable();
        let mut pend = std::mem::take(&mut self.pending).into_iter().peekable();
        loop {
            // Pending keys are never pooled (insert checks the pool first),
            // so strict comparison fully orders the two runs.
            let take_pool = match (pool.peek(), pend.peek()) {
                (Some((pk, _)), Some(&(nk, _))) => *pk < nk,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_pool {
                let (k, sy) = pool.next().expect("peeked");
                keys.push(k);
                ys.push(sy);
            } else {
                let (k, v) = pend.next().expect("peeked");
                if keys.last() == Some(&k) {
                    ys.last_mut().expect("non-empty").push(v);
                } else {
                    keys.push(k);
                    ys.push(vec![v]);
                }
            }
        }
        self.keys = keys;
        self.ys = ys;
        self.dead_slots = 0;

        let p = self.keys.len();
        self.tree.clear();
        self.tree.resize((p + 1) * b, NeumaierSum::new());
        let mut writes = 0u64;
        for s in 0..p {
            let off = (s + 1) * b;
            let xc = self.keys[s] - self.center;
            let cnt = self.ys[s].len() as f64;
            let mut sy = NeumaierSum::new();
            for &v in &self.ys[s] {
                sy.add(v);
            }
            let sy = sy.value();
            let mut pw = 1.0;
            for m in 0..=mm {
                self.tree[off + m].add(cnt * pw);
                self.tree[off + mm + 1 + m].add(sy * pw);
                pw *= xc;
            }
            writes += 1;
        }
        // Standard linear Fenwick construction: push each node's total into
        // its parent once, in index order.
        for i in 1..=p {
            let j = i + lowbit(i);
            if j <= p {
                for t in 0..b {
                    let v = self.tree[i * b + t].value();
                    self.tree[j * b + t].add(v);
                }
                writes += 1;
            }
        }
        kcv_obs::add(kcv_obs::Counter::TreeUpdates, writes);
    }

    /// Re-scores the whole bandwidth grid over the current live set —
    /// `O(k·(log n + deg²))` per live observation, zero kernel evaluations —
    /// and returns the CV profile. Folds any pending arrivals first, so the
    /// sweep always runs against a compact, residue-free tree unless only
    /// removals happened since the last fold (in which case dead slots
    /// contribute exactly-zero counts and the sweep proceeds in place).
    pub fn reselect(&mut self) -> Result<CvProfile> {
        if !self.pending.is_empty()
            || self.dead_slots > 64.max((self.keys.len() - self.dead_slots) / 2)
        {
            self.fold();
        }
        let n = self.live_obs;
        if n < 2 {
            return Err(Error::SampleTooSmall { n, required: 2 });
        }
        let _reselect = kcv_obs::phase("cv.reselect");
        kcv_obs::add(kcv_obs::Counter::Reselects, 1);

        let coeffs = self.kernel.coeffs();
        let radius = self.kernel.radius();
        let hs = self.grid.values();
        let k = hs.len();
        let mm = self.max_m;
        let bw = mm + 1;

        let mut sq_sums = vec![0.0; k];
        let mut included = vec![0usize; k];
        let mut npow = vec![0.0; bw];
        let mut pref_s = MomentVec::new(mm);
        let mut pref_s1 = MomentVec::new(mm);
        let mut pref_lo = MomentVec::new(mm);
        let mut pref_hi = MomentVec::new(mm);
        let mut w_left = vec![0.0; bw];
        let mut wy_left = vec![0.0; bw];
        let mut w_right = vec![0.0; bw];
        let mut wy_right = vec![0.0; bw];

        let mut queries = kcv_obs::LocalCounter::new(kcv_obs::Counter::WindowQueries);
        for s in 0..self.keys.len() {
            let cnt = self.ys[s].len();
            if cnt == 0 {
                continue;
            }
            let xc_i = self.keys[s] - self.center;
            let mut sy_slot = NeumaierSum::new();
            for &v in &self.ys[s] {
                sy_slot.add(v);
            }
            let sy_slot = sy_slot.value();
            // Boundary prefixes at the self slot are bandwidth-independent;
            // hoist them out of the grid loop.
            self.prefix_moments(s, &mut pref_s);
            self.prefix_moments(s + 1, &mut pref_s1);
            npow[0] = 1.0;
            for m in 1..=mm {
                npow[m] = npow[m - 1] * (-xc_i);
            }

            for di in 0..cnt {
                let yi = self.ys[s][di];
                let mut lo = s;
                let mut hi = s + 1;
                for (m_idx, &h) in hs.iter().enumerate() {
                    let inv_h = 1.0 / h;
                    (lo, hi) = support_window_slots(&self.keys, s, inv_h, radius, lo, hi);
                    queries.incr(1);
                    self.prefix_moments(lo, &mut pref_lo);
                    self.prefix_moments(hi, &mut pref_hi);

                    // Exact live counts per side: the m = 0 row only ever
                    // accumulated ±1.0, so these are integers and a dead or
                    // removed slot contributes exactly nothing.
                    let left_cnt = pref_s.dp[0] - pref_lo.dp[0];
                    let right_cnt = pref_hi.dp[0] - pref_s1.dp[0];
                    let dup_cnt = (cnt - 1) as f64;
                    if left_cnt + right_cnt + dup_cnt == 0.0 {
                        // Empty leave-one-out window: excluded, exactly as a
                        // fresh prefix run classifies it.
                        continue;
                    }

                    for j in 0..=mm {
                        let row = &self.binom[j * bw..j * bw + j + 1];
                        let (mut sl, mut syl, mut sr, mut syr) = (0.0, 0.0, 0.0, 0.0);
                        for (m, &c) in row.iter().enumerate() {
                            let coeff = c * npow[j - m];
                            sl += coeff * (pref_s.dp[m] - pref_lo.dp[m]);
                            syl += coeff * (pref_s.dq[m] - pref_lo.dq[m]);
                            sr += coeff * (pref_hi.dp[m] - pref_s1.dp[m]);
                            syr += coeff * (pref_hi.dq[m] - pref_s1.dq[m]);
                        }
                        w_left[j] = sl;
                        wy_left[j] = syl;
                        w_right[j] = sr;
                        wy_right[j] = syr;
                    }
                    // Same-key neighbours in closed form: (x_l − x_i)^j is
                    // exactly zero for j > 0 and one for j = 0.
                    w_right[0] += dup_cnt;
                    wy_right[0] += sy_slot - yi;

                    let mut hp = 1.0;
                    let mut num = 0.0;
                    let mut den = 0.0;
                    let mut sign = 1.0;
                    for (j, &cf) in coeffs.iter().enumerate() {
                        let s_j = w_right[j] + sign * w_left[j];
                        let sy_j = wy_right[j] + sign * wy_left[j];
                        num += cf * hp * sy_j;
                        den += cf * hp * s_j;
                        hp *= inv_h;
                        sign = -sign;
                    }
                    if den > 0.0 {
                        let resid = yi - num / den;
                        sq_sums[m_idx] += resid * resid;
                        included[m_idx] += 1;
                    }
                }
            }
        }
        // `queries` flushes to the recorder when it falls out of scope.
        let scores = sq_sums.into_iter().map(|v| v / n as f64).collect();
        Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
    }

    /// [`reselect`](Self::reselect) followed by the paper's raw argmin.
    pub fn reselect_optimum(&mut self) -> Result<CvOptimum> {
        self.reselect()?.argmin()
    }
}

/// Slot-level twin of the prefix sweep's `support_window`: resolves the
/// distinct-key slot range `[lo, hi)` in support of the observation at slot
/// `si` for bandwidth `1/inv_h`, narrowing monotonically from the previous
/// (smaller-bandwidth) window. Same predicate on the same original keys,
/// so slot membership matches the fresh prefix sweep's index membership
/// exactly.
#[inline]
fn support_window_slots(
    keys: &[f64],
    si: usize,
    inv_h: f64,
    radius: f64,
    lo_prev: usize,
    hi_prev: usize,
) -> (usize, usize) {
    let xi = keys[si];
    let (mut a, mut b) = (0usize, lo_prev);
    while a < b {
        let mid = (a + b) / 2;
        if (xi - keys[mid]) * inv_h <= radius {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    let lo = a;
    let (mut a, mut b) = (hi_prev, keys.len());
    while a < b {
        let mid = (a + b) / 2;
        if (keys[mid] - xi) * inv_h <= radius {
            a = mid + 1;
        } else {
            b = mid;
        }
    }
    (lo, a)
}

/// A fixed-capacity sliding window over a stream of observations, re-selecting
/// the bandwidth every `cadence` arrivals through an [`IncrementalSelector`].
///
/// [`push`](Self::push) evicts the oldest observation once the window is
/// full (one `O(log n)` tree update), inserts the arrival, and — when the
/// cadence fires and at least two observations are live — runs a full
/// [`IncrementalSelector::reselect`], caching the optimum for
/// [`current`](Self::current). The amortised per-arrival cost is
/// `O(log W + (k·(log W + deg²)·W)/cadence)`.
#[derive(Debug, Clone)]
pub struct SlidingWindowSelector<K> {
    inner: IncrementalSelector<K>,
    window: VecDeque<(f64, f64)>,
    capacity: usize,
    cadence: usize,
    since_reselect: usize,
    last: Option<CvOptimum>,
}

impl<K: PolynomialKernel> SlidingWindowSelector<K> {
    /// Creates an empty window of `capacity` observations re-selecting
    /// every `cadence` arrivals.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if `capacity < 2` (a window must be able
    /// to hold the two observations cross-validation needs) or
    /// `cadence == 0` (the cadence counts arrivals between re-selections,
    /// so zero would demand a re-selection before any arrival exists).
    pub fn new(kernel: K, grid: BandwidthGrid, capacity: usize, cadence: usize) -> Result<Self> {
        if capacity < 2 {
            return Err(Error::InvalidParameter {
                name: "capacity",
                requirement: "at least 2 (cross-validation needs two observations)",
            });
        }
        if cadence == 0 {
            return Err(Error::InvalidParameter {
                name: "cadence",
                requirement: "positive (arrivals between re-selections)",
            });
        }
        Ok(Self {
            inner: IncrementalSelector::new(kernel, grid),
            window: VecDeque::with_capacity(capacity),
            capacity,
            cadence,
            since_reselect: 0,
            last: None,
        })
    }

    /// Sets the moment-centring shift (see
    /// [`IncrementalSelector::with_center`]). Must precede the first push.
    pub fn with_center(mut self, center: f64) -> Self {
        self.inner = self.inner.with_center(center);
        self
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The window capacity `W` fixed at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The re-selection cadence fixed at construction.
    pub fn cadence(&self) -> usize {
        self.cadence
    }

    /// Arrivals applied since the last re-selection (the cadence clock).
    pub fn since_reselect(&self) -> usize {
        self.since_reselect
    }

    /// The optimum from the most recent re-selection, if any has run.
    pub fn current(&self) -> Option<CvOptimum> {
        self.last
    }

    /// Pushes one arrival: evict-oldest if at capacity, insert, and
    /// re-select when the cadence fires. Returns the fresh optimum on
    /// re-selection turns, `None` otherwise.
    ///
    /// The arrival is validated **before** the oldest observation is
    /// evicted, so a failed `push` (non-finite `x`/`y`,
    /// [`Error::NonFiniteData`]) leaves the window and the underlying
    /// selector exactly as they were — the stream may discard the bad
    /// arrival and keep going, and the next cadence re-selection scores
    /// the intact surviving window.
    pub fn push(&mut self, x: f64, y: f64) -> Result<Option<CvOptimum>> {
        if self.push_deferred(x, y)? {
            return self.reselect_now().map(Some);
        }
        Ok(None)
    }

    /// [`push`](Self::push) without the re-selection: applies the arrival
    /// (same validation, eviction, and cadence clock) and returns whether
    /// the cadence is now due — i.e. whether `push` would have re-selected
    /// on this arrival. Callers that batch arrivals (the `kcv-serve`
    /// shards) apply a burst through this method and then run one
    /// [`reselect_now`](Self::reselect_now) for the whole burst; calling
    /// `reselect_now` exactly when this returns `true` reproduces `push`'s
    /// behaviour operation-for-operation.
    pub fn push_deferred(&mut self, x: f64, y: f64) -> Result<bool> {
        if !x.is_finite() {
            return Err(Error::NonFiniteData { which: "x", index: 0 });
        }
        if !y.is_finite() {
            return Err(Error::NonFiniteData { which: "y", index: 0 });
        }
        if self.window.len() == self.capacity {
            let (ox, oy) = self.window.pop_front().expect("window at capacity");
            let evicted = self.inner.remove(ox, oy);
            debug_assert!(evicted, "window and selector out of sync");
        }
        self.inner.insert(x, y)?;
        self.window.push_back((x, y));
        self.since_reselect += 1;
        Ok(self.since_reselect >= self.cadence && self.window.len() >= 2)
    }

    /// Forces a re-selection immediately (also resets the cadence clock).
    pub fn reselect_now(&mut self) -> Result<CvOptimum> {
        self.since_reselect = 0;
        let opt = self.inner.reselect_optimum()?;
        self.last = Some(opt);
        Ok(opt)
    }

    /// The underlying incremental selector (e.g. for a full-profile
    /// [`IncrementalSelector::reselect`]).
    pub fn selector_mut(&mut self) -> &mut IncrementalSelector<K> {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::cv_profile_prefix;
    use crate::kernels::{Epanechnikov, Quartic, Triweight, Uniform};
    use crate::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    /// Degree-scaled score tolerance, matching the prefix sweep's
    /// documented accuracy on the paper DGP.
    fn score_tol(deg: usize) -> (f64, f64) {
        match deg {
            0..=2 => (1e-8, 1e-10),
            3..=4 => (1e-5, 1e-7),
            _ => (1e-2, 1e-4),
        }
    }

    fn assert_agrees<K: PolynomialKernel>(
        sel: &mut IncrementalSelector<K>,
        x: &[f64],
        y: &[f64],
        kernel: &K,
    ) {
        let grid = sel.grid().clone();
        let fresh = cv_profile_prefix(x, y, &grid, kernel).unwrap();
        let inc = sel.reselect().unwrap();
        assert_eq!(inc.n, fresh.n);
        assert_eq!(inc.included, fresh.included, "classification diverged");
        let deg = kernel.coeffs().len() - 1;
        let (rel, abs) = score_tol(deg);
        for m in 0..grid.len() {
            assert!(
                crate::util::approx_eq(inc.scores[m], fresh.scores[m], rel, abs),
                "h={}: {} vs {}",
                grid.values()[m],
                inc.scores[m],
                fresh.scores[m]
            );
        }
        let a = inc.argmin().unwrap();
        let b = fresh.argmin().unwrap();
        assert_eq!(a.index, b.index, "selected index diverged");
        assert_eq!(a.bandwidth.to_bits(), b.bandwidth.to_bits(), "selection not bit-identical");
    }

    #[test]
    fn batch_insert_matches_fresh_prefix() {
        let (x, y) = paper_dgp(400, 31);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let mut sel = IncrementalSelector::new(Epanechnikov, grid);
        for (&xi, &yi) in x.iter().zip(&y) {
            sel.insert(xi, yi).unwrap();
        }
        assert_eq!(sel.len(), 400);
        assert_agrees(&mut sel, &x, &y, &Epanechnikov);
    }

    #[test]
    fn removals_after_fold_stay_bit_identical_on_selection() {
        // Insert everything, reselect (folds), then remove a third — the
        // remove-only path queries the live tree with dead-slot residue.
        let (x, y) = paper_dgp(300, 32);
        let grid = BandwidthGrid::paper_default(&x, 40).unwrap();
        let mut sel = IncrementalSelector::new(Epanechnikov, grid);
        for (&xi, &yi) in x.iter().zip(&y) {
            sel.insert(xi, yi).unwrap();
        }
        sel.reselect().unwrap();
        let keep = 200;
        for (&xi, &yi) in x.iter().zip(&y).skip(keep) {
            assert!(sel.remove(xi, yi));
        }
        assert_eq!(sel.len(), keep);
        assert_agrees(&mut sel, &x[..keep], &y[..keep], &Epanechnikov);
    }

    #[test]
    fn duplicate_keys_are_handled_in_closed_form() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = SplitMix64::new(33);
        for i in 0..60 {
            let key = (i % 20) as f64 / 20.0; // every key triplicated
            x.push(key);
            y.push(rng.next_f64());
        }
        let grid = BandwidthGrid::paper_default(&x, 25).unwrap();
        let mut sel = IncrementalSelector::new(Epanechnikov, grid);
        for (&xi, &yi) in x.iter().zip(&y) {
            sel.insert(xi, yi).unwrap();
        }
        assert_agrees(&mut sel, &x, &y, &Epanechnikov);
    }

    #[test]
    fn higher_degree_kernels_agree() {
        let (x, y) = paper_dgp(250, 34);
        let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
        let mut q = IncrementalSelector::new(Quartic, grid.clone());
        let mut t = IncrementalSelector::new(Triweight, grid.clone());
        let mut u = IncrementalSelector::new(Uniform, grid);
        for (&xi, &yi) in x.iter().zip(&y) {
            q.insert(xi, yi).unwrap();
            t.insert(xi, yi).unwrap();
            u.insert(xi, yi).unwrap();
        }
        assert_agrees(&mut q, &x, &y, &Quartic);
        assert_agrees(&mut t, &x, &y, &Triweight);
        assert_agrees(&mut u, &x, &y, &Uniform);
    }

    #[test]
    fn center_shift_changes_scores_only_within_tolerance() {
        let (x, y) = paper_dgp(200, 35);
        let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
        let mut sel =
            IncrementalSelector::new(Epanechnikov, grid.clone()).with_center(0.5);
        for (&xi, &yi) in x.iter().zip(&y) {
            sel.insert(xi, yi).unwrap();
        }
        assert_agrees(&mut sel, &x, &y, &Epanechnikov);
    }

    #[test]
    fn insert_validates_and_remove_reports_absence() {
        let grid = BandwidthGrid::from_values(vec![0.5]).unwrap();
        let mut sel = IncrementalSelector::new(Epanechnikov, grid);
        assert!(sel.insert(f64::NAN, 1.0).is_err());
        assert!(sel.insert(1.0, f64::INFINITY).is_err());
        sel.insert(0.5, 1.0).unwrap();
        assert!(!sel.remove(0.5, 2.0));
        assert!(!sel.remove(0.25, 1.0));
        assert!(sel.remove(0.5, 1.0));
        assert!(sel.is_empty());
        assert!(matches!(
            sel.reselect(),
            Err(Error::SampleTooSmall { n: 0, required: 2 })
        ));
    }

    #[test]
    fn sliding_window_tracks_the_trailing_observations() {
        let (x, y) = paper_dgp(600, 36);
        let grid = BandwidthGrid::log(0.01, 0.5, 20).unwrap();
        let mut win =
            SlidingWindowSelector::new(Epanechnikov, grid.clone(), 200, 50).unwrap();
        let mut fired = 0usize;
        for (&xi, &yi) in x.iter().zip(&y) {
            if win.push(xi, yi).unwrap().is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 600 / 50);
        assert_eq!(win.len(), 200);
        // The cached optimum matches a fresh prefix run over the current
        // window *as of the last cadence firing* — which here is the final
        // arrival, so the live window is exactly the last 200 observations.
        let lx = &x[400..];
        let ly = &y[400..];
        let fresh = cv_profile_prefix(lx, ly, &grid, &Epanechnikov)
            .unwrap()
            .argmin()
            .unwrap();
        let cur = win.current().unwrap();
        assert_eq!(cur.bandwidth.to_bits(), fresh.bandwidth.to_bits());
        assert_eq!(cur.included, fresh.included);
    }

    #[test]
    fn zero_capacity_or_cadence_is_rejected_at_construction() {
        let grid = BandwidthGrid::log(0.01, 0.5, 5).unwrap();
        for cap in [0usize, 1] {
            assert!(matches!(
                SlidingWindowSelector::new(Epanechnikov, grid.clone(), cap, 10),
                Err(Error::InvalidParameter { name: "capacity", .. })
            ));
        }
        assert!(matches!(
            SlidingWindowSelector::new(Epanechnikov, grid.clone(), 10, 0),
            Err(Error::InvalidParameter { name: "cadence", .. })
        ));
        assert!(SlidingWindowSelector::new(Epanechnikov, grid, 2, 1).is_ok());
    }

    #[test]
    fn failed_push_leaves_the_window_untouched() {
        // A NaN arrival mid-stream must error cleanly *without* evicting
        // the oldest observation: the next cadence re-selection still
        // matches a fresh prefix run over the intact surviving window.
        let (x, y) = paper_dgp(260, 38);
        let grid = BandwidthGrid::log(0.01, 0.5, 20).unwrap();
        let mut win =
            SlidingWindowSelector::new(Epanechnikov, grid.clone(), 100, 40).unwrap();
        for (&xi, &yi) in x.iter().zip(&y).take(250) {
            win.push(xi, yi).unwrap();
        }
        assert_eq!(win.len(), 100);
        assert!(matches!(
            win.push(f64::NAN, 1.0),
            Err(Error::NonFiniteData { which: "x", .. })
        ));
        assert!(matches!(
            win.push(0.5, f64::INFINITY),
            Err(Error::NonFiniteData { which: "y", .. })
        ));
        assert_eq!(win.len(), 100, "failed pushes must not evict");
        for (&xi, &yi) in x.iter().zip(&y).skip(250) {
            win.push(xi, yi).unwrap();
        }
        let opt = win.reselect_now().unwrap();
        // Surviving window: the last 100 good arrivals, bad ones dropped.
        let lx = &x[160..];
        let ly = &y[160..];
        let fresh = cv_profile_prefix(lx, ly, &grid, &Epanechnikov)
            .unwrap()
            .argmin()
            .unwrap();
        assert_eq!(opt.bandwidth.to_bits(), fresh.bandwidth.to_bits());
        assert_eq!(opt.included, fresh.included);
    }

    #[test]
    fn push_deferred_with_due_reselects_reproduces_push() {
        let (x, y) = paper_dgp(300, 39);
        let grid = BandwidthGrid::log(0.01, 0.5, 15).unwrap();
        let mut a = SlidingWindowSelector::new(Epanechnikov, grid.clone(), 80, 30).unwrap();
        let mut b = SlidingWindowSelector::new(Epanechnikov, grid, 80, 30).unwrap();
        for (&xi, &yi) in x.iter().zip(&y) {
            let via_push = a.push(xi, yi).unwrap();
            let due = b.push_deferred(xi, yi).unwrap();
            let via_deferred = if due { Some(b.reselect_now().unwrap()) } else { None };
            assert_eq!(via_push, via_deferred);
        }
        assert_eq!(a.current(), b.current());
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn reselect_spends_zero_kernel_evals_and_counts_tree_updates() {
        let (x, y) = paper_dgp(256, 37);
        let grid = BandwidthGrid::paper_default(&x, 25).unwrap();
        let run = kcv_obs::Recorder::new();
        {
            let _scope = run.install();
            let mut sel = IncrementalSelector::new(Epanechnikov, grid);
            for (&xi, &yi) in x.iter().zip(&y) {
                sel.insert(xi, yi).unwrap();
            }
            for (&xi, &yi) in x.iter().zip(&y).take(64) {
                assert!(sel.remove(xi, yi));
            }
            sel.reselect().unwrap();
        }
        let snap = run.snapshot();
        assert_eq!(snap.counter("kernel_evals"), 0);
        assert_eq!(snap.counter("reselects"), 1);
        let updates = snap.counter("tree_updates");
        assert!(updates > 0, "tree updates not counted");
        // Gate 18's budget at W = n: every insert/remove plus amortised
        // rebuild writes fit in (U+R)·⌈log₂ W⌉·(deg+3).
        let ops = (256 + 64) as u64;
        let log2w = (256f64).log2().ceil() as u64;
        let deg = 2u64;
        assert!(
            updates <= ops * log2w * (deg + 3),
            "tree_updates {updates} exceeds the gate-18 budget"
        );
        assert!(snap.counter("window_queries") >= 256 * 25 - 64 * 25);
    }
}
