//! The sorted sweep extended to the *local-linear* estimator — one of the
//! "many similar problems in nonparametric estimation" (§II) the paper's
//! least-squares-CV machinery applies to.
//!
//! The local-linear fit at `X_i` needs the weighted moments
//!
//! ```text
//! S_j(h) = Σ_{l≠i} K(e_l/h) · e_l^j   (j = 0, 1, 2)
//! T_j(h) = Σ_{l≠i} K(e_l/h) · Y_l · e_l^j   (j = 0, 1)
//! ```
//!
//! with *signed* offsets `e_l = X_l − X_i`. For a polynomial kernel
//! `K(u) = Σ_p c_p |u|^p` each moment decomposes as
//! `S_j(h) = Σ_p c_p h^{-p} · A_{p,j}` with
//! `A_{p,j} = Σ_{|e_l| ≤ r·h} |e_l|^p · e_l^j`, so sorting once by `|e_l|`
//! and keeping running sums `A_{p,j}` (and the `Y`-weighted `B_{p,j}`)
//! yields all moments for the whole ascending bandwidth grid — the same
//! `O(n log n + (n + k)·deg)` per observation as the local-constant sweep,
//! with 5 running sums per polynomial power instead of 2.

use super::CvProfile;
use crate::error::{validate_sample, Result};
use crate::estimate::local_linear::solve_local_linear;
use crate::grid::BandwidthGrid;
use crate::kernels::PolynomialKernel;
use crate::sort::{apply_permutation, argsort};
use rayon::prelude::*;

/// Per-observation accumulation for the local-linear sweep.
#[allow(clippy::too_many_arguments)]
fn accumulate_observation_ll(
    i: usize,
    x: &[f64],
    y: &[f64],
    coeffs: &[f64],
    radius: f64,
    hs: &[f64],
    sq_sums: &mut [f64],
    included: &mut [usize],
) {
    let deg = coeffs.len() - 1;
    let xi = x[i];
    let yi = y[i];

    // Leave-one-out signed offsets, sorted by |e|.
    let mut abs_e = Vec::with_capacity(x.len() - 1);
    let mut signed = Vec::with_capacity(x.len() - 1);
    let mut yv = Vec::with_capacity(x.len() - 1);
    for (l, (&xl, &yl)) in x.iter().zip(y).enumerate() {
        if l == i {
            continue;
        }
        abs_e.push((xl - xi).abs());
        signed.push(xl - xi);
        yv.push(yl);
    }
    let perm = argsort(&abs_e);
    let abs_e = apply_permutation(&abs_e, &perm);
    let signed = apply_permutation(&signed, &perm);
    let yv = apply_permutation(&yv, &perm);

    // Running sums A[p][j] = Σ |e|^p e^j  (j = 0,1,2) and
    // B[p][j] = Σ |e|^p e^j y  (j = 0,1), for p = 0..=deg.
    let mut a = vec![[0.0f64; 3]; deg + 1];
    let mut b = vec![[0.0f64; 2]; deg + 1];

    let mut p = 0usize;
    let mut absorbed = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
    let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
    for (m, &h) in hs.iter().enumerate() {
        let inv_h = 1.0 / h;
        let p_before = p;
        // Same support predicate as the pointwise evaluation (see
        // `cv::sorted`), so boundary classifications agree with the naive
        // reference.
        while p < abs_e.len() && abs_e[p] * inv_h <= radius {
            let d = abs_e[p];
            let e = signed[p];
            let yl = yv[p];
            let e2 = e * e;
            let mut pw = 1.0;
            for q in 0..=deg {
                a[q][0] += pw;
                a[q][1] += pw * e;
                a[q][2] += pw * e2;
                b[q][0] += pw * yl;
                b[q][1] += pw * yl * e;
                pw *= d;
            }
            p += 1;
        }
        absorbed.incr((p - p_before) as u64);
        skipped.incr((abs_e.len() - p) as u64);
        // Assemble the five weighted moments.
        let mut hp = 1.0;
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut t0 = 0.0;
        let mut t1 = 0.0;
        for q in 0..=deg {
            let c = coeffs[q] * hp;
            s0 += c * a[q][0];
            s1 += c * a[q][1];
            s2 += c * a[q][2];
            t0 += c * b[q][0];
            t1 += c * b[q][1];
            hp *= inv_h;
        }
        if let Some(g) = solve_local_linear([s0, s1, s2, t0, t1], h) {
            let r = yi - g;
            sq_sums[m] += r * r;
            included[m] += 1;
        }
    }
}

/// Per-observation accumulation for the *merged* local-linear sweep: the
/// observation sits at sorted position `si` of the globally argsorted
/// `xs`/`ys`, and its neighbours' absolute offsets `|e_l|` are the merge of
/// two sorted runs walking outward from `si` — no per-observation sort or
/// buffer fill. Same merge front-end as [`super::merged`], with the
/// signed-power running sums of this module.
#[allow(clippy::too_many_arguments)]
fn accumulate_observation_ll_merged(
    si: usize,
    xs: &[f64],
    ys: &[f64],
    coeffs: &[f64],
    radius: f64,
    hs: &[f64],
    sq_sums: &mut [f64],
    included: &mut [usize],
) {
    let deg = coeffs.len() - 1;
    let n = xs.len();
    let xi = xs[si];
    let yi = ys[si];

    let mut a = vec![[0.0f64; 3]; deg + 1];
    let mut b = vec![[0.0f64; 2]; deg + 1];

    let mut left = si;
    let mut right = si + 1;
    let mut taken = 0usize;
    let mut absorbed = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
    let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
    for (m, &h) in hs.iter().enumerate() {
        let inv_h = 1.0 / h;
        let taken_before = taken;
        // Absorb the next-nearest neighbour from whichever side is closer,
        // under the same support predicate as every other strategy.
        loop {
            let dl = if left > 0 { xi - xs[left - 1] } else { f64::INFINITY };
            let dr = if right < n { xs[right] - xi } else { f64::INFINITY };
            let (d, e, yl) = if dl <= dr {
                if dl * inv_h > radius {
                    break;
                }
                left -= 1;
                (dl, xs[left] - xi, ys[left])
            } else {
                if dr * inv_h > radius {
                    break;
                }
                right += 1;
                (dr, xs[right - 1] - xi, ys[right - 1])
            };
            let e2 = e * e;
            let mut pw = 1.0;
            for q in 0..=deg {
                a[q][0] += pw;
                a[q][1] += pw * e;
                a[q][2] += pw * e2;
                b[q][0] += pw * yl;
                b[q][1] += pw * yl * e;
                pw *= d;
            }
            taken += 1;
        }
        absorbed.incr((taken - taken_before) as u64);
        skipped.incr((n - 1 - taken) as u64);
        // Assemble the five weighted moments.
        let mut hp = 1.0;
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut t0 = 0.0;
        let mut t1 = 0.0;
        for q in 0..=deg {
            let c = coeffs[q] * hp;
            s0 += c * a[q][0];
            s1 += c * a[q][1];
            s2 += c * a[q][2];
            t0 += c * b[q][0];
            t1 += c * b[q][1];
            hp *= inv_h;
        }
        if let Some(g) = solve_local_linear([s0, s1, s2, t0, t1], h) {
            let r = yi - g;
            sq_sums[m] += r * r;
            included[m] += 1;
        }
    }
}

/// Local-linear CV profile via the sorted sweep, sequential.
pub fn cv_profile_sorted_ll<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let mut sq_sums = vec![0.0; k];
    let mut included = vec![0usize; k];
    for i in 0..n {
        accumulate_observation_ll(i, x, y, coeffs, radius, hs, &mut sq_sums, &mut included);
    }
    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Local-linear CV profile via the sorted sweep, parallel over observations.
pub fn cv_profile_sorted_ll_par<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    // Re-install the caller's recorder scope once per worker chunk (scope
    // stacks are thread-local) so counts attribute to the run that spawned us.
    let scope = kcv_obs::scope();
    let (sq_sums, included) = (0..n)
        .into_par_iter()
        .fold_with_setup(
            || scope.enter(),
            || (vec![0.0; k], vec![0usize; k]),
            |(mut sq, mut inc), i| {
                accumulate_observation_ll(i, x, y, coeffs, radius, hs, &mut sq, &mut inc);
                (sq, inc)
            },
        )
        .reduce(|| (vec![0.0; k], vec![0usize; k]), super::parallel::merge_partials);
    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Local-linear CV profile via the *merge* sweep: one global argsort of
/// `x`, then two cursors per observation — `O(n log n + n·(n + k·deg))`
/// total, against the sorted sweep's `O(n² log n)`.
pub fn cv_profile_merged_ll<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let (xs, ys) = {
        let _sort = kcv_obs::phase("cv.argsort");
        let perm = argsort(x);
        (apply_permutation(x, &perm), apply_permutation(y, &perm))
    };
    let mut sq_sums = vec![0.0; k];
    let mut included = vec![0usize; k];
    let _merge = kcv_obs::phase("cv.merge");
    for si in 0..n {
        accumulate_observation_ll_merged(
            si, &xs, &ys, coeffs, radius, hs, &mut sq_sums, &mut included,
        );
    }
    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Local-linear merge-sweep CV profile, parallel over observations.
pub fn cv_profile_merged_ll_par<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    let n = validate_sample(x, y, 2)?;
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let k = grid.len();
    let hs = grid.values();
    let (xs, ys) = {
        let _sort = kcv_obs::phase("cv.argsort");
        let perm = argsort(x);
        (apply_permutation(x, &perm), apply_permutation(y, &perm))
    };
    let (xs, ys) = (xs.as_slice(), ys.as_slice());
    let _merge = kcv_obs::phase("cv.merge");
    let scope = kcv_obs::scope();
    let (sq_sums, included) = (0..n)
        .into_par_iter()
        .fold_with_setup(
            || scope.enter(),
            || (vec![0.0; k], vec![0usize; k]),
            |(mut sq, mut inc), si| {
                accumulate_observation_ll_merged(
                    si, xs, ys, coeffs, radius, hs, &mut sq, &mut inc,
                );
                (sq, inc)
            },
        )
        .reduce(|| (vec![0.0; k], vec![0usize; k]), super::parallel::merge_partials);
    let scores = sq_sums.into_iter().map(|s| s / n as f64).collect();
    Ok(CvProfile { bandwidths: hs.to_vec(), scores, included, n })
}

/// Naive local-linear CV profile (`O(k·n²)`), the reference the sweep is
/// tested against; accepts any kernel.
pub fn cv_profile_naive_ll<K: crate::kernels::Kernel + Clone>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> Result<CvProfile> {
    use crate::estimate::{LocalLinear, RegressionEstimator};
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let mut scores = vec![0.0; k];
    let mut included = vec![0usize; k];
    for (m, &h) in grid.values().iter().enumerate() {
        let fit = LocalLinear::new(x, y, kernel.clone(), h)?;
        let mut sum = 0.0;
        let mut inc = 0usize;
        for (i, &yi) in y.iter().enumerate() {
            if let Some(g) = fit.loo_predict(i) {
                let r = yi - g;
                sum += r * r;
                inc += 1;
            }
        }
        scores[m] = sum / n as f64;
        included[m] = inc;
    }
    Ok(CvProfile { bandwidths: grid.values().to_vec(), scores, included, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Quartic, Triangular, Uniform};
    use crate::util::{approx_eq, SplitMix64};
    use proptest::prelude::*;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn sorted_ll_matches_naive_ll() {
        let (x, y) = paper_dgp(120, 201);
        let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
        let sorted = cv_profile_sorted_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            assert_eq!(sorted.included[m], naive.included[m], "h index {m}");
            assert!(
                approx_eq(sorted.scores[m], naive.scores[m], 1e-8, 1e-10),
                "h={}: {} vs {}",
                grid.values()[m],
                sorted.scores[m],
                naive.scores[m]
            );
        }
    }

    #[test]
    fn sorted_ll_matches_naive_for_more_kernels() {
        let (x, y) = paper_dgp(70, 202);
        let grid = BandwidthGrid::paper_default(&x, 15).unwrap();
        macro_rules! check {
            ($k:expr) => {{
                let sorted = cv_profile_sorted_ll(&x, &y, &grid, &$k).unwrap();
                let naive = cv_profile_naive_ll(&x, &y, &grid, &$k).unwrap();
                for m in 0..grid.len() {
                    assert_eq!(sorted.included[m], naive.included[m]);
                    assert!(
                        approx_eq(sorted.scores[m], naive.scores[m], 1e-7, 1e-9),
                        "{} h={}: {} vs {}",
                        stringify!($k),
                        grid.values()[m],
                        sorted.scores[m],
                        naive.scores[m]
                    );
                }
            }};
        }
        check!(Uniform);
        check!(Triangular);
        check!(Quartic);
    }

    #[test]
    fn parallel_ll_matches_sequential_ll() {
        let (x, y) = paper_dgp(200, 203);
        let grid = BandwidthGrid::paper_default(&x, 25).unwrap();
        let seq = cv_profile_sorted_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        let par = cv_profile_sorted_ll_par(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_eq!(seq.included, par.included);
        for m in 0..grid.len() {
            assert!(approx_eq(seq.scores[m], par.scores[m], 1e-12, 1e-14));
        }
    }

    #[test]
    fn merged_ll_matches_naive_ll() {
        let (x, y) = paper_dgp(120, 205);
        let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
        let merged = cv_profile_merged_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        let naive = cv_profile_naive_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            assert_eq!(merged.included[m], naive.included[m], "h index {m}");
            assert!(
                approx_eq(merged.scores[m], naive.scores[m], 1e-8, 1e-10),
                "h={}: {} vs {}",
                grid.values()[m],
                merged.scores[m],
                naive.scores[m]
            );
        }
    }

    #[test]
    fn parallel_merged_ll_matches_sequential_merged_ll() {
        let (x, y) = paper_dgp(200, 206);
        let grid = BandwidthGrid::paper_default(&x, 25).unwrap();
        let seq = cv_profile_merged_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        let par = cv_profile_merged_ll_par(&x, &y, &grid, &Epanechnikov).unwrap();
        assert_eq!(seq.included, par.included);
        for m in 0..grid.len() {
            assert!(approx_eq(seq.scores[m], par.scores[m], 1e-12, 1e-14));
        }
    }

    #[test]
    fn local_linear_cv_is_zero_on_exact_lines() {
        // LL reproduces lines exactly, so every LOO residual vanishes and
        // the profile is ~0 wherever enough neighbours exist.
        let x: Vec<f64> = (0..60).map(|i| i as f64 / 59.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 - 2.0 * v).collect();
        let grid = BandwidthGrid::linear(0.1, 1.0, 10).unwrap();
        let profile = cv_profile_sorted_ll(&x, &y, &grid, &Epanechnikov).unwrap();
        for (m, &s) in profile.scores.iter().enumerate() {
            assert!(s < 1e-16, "h={}: {s}", profile.bandwidths[m]);
        }
    }

    #[test]
    fn ll_optimum_is_wider_than_lc_on_curved_truth() {
        // Local-linear absorbs curvature through its slope term, so CV can
        // afford a wider bandwidth than local-constant on the paper DGP.
        let (x, y) = paper_dgp(400, 204);
        let grid = BandwidthGrid::paper_default(&x, 100).unwrap();
        let lc = super::super::cv_profile_sorted(&x, &y, &grid, &Epanechnikov)
            .unwrap()
            .argmin()
            .unwrap();
        let ll = cv_profile_sorted_ll(&x, &y, &grid, &Epanechnikov)
            .unwrap()
            .argmin()
            .unwrap();
        assert!(
            ll.bandwidth >= lc.bandwidth,
            "LL optimum {} should be ≥ LC optimum {}",
            ll.bandwidth,
            lc.bandwidth
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_sorted_ll_equals_naive_ll(seed in 0u64..5_000, n in 5usize..50, k in 1usize..20) {
            let (x, y) = paper_dgp(n, seed);
            let grid = BandwidthGrid::paper_default(&x, k).unwrap();
            let sorted = cv_profile_sorted_ll(&x, &y, &grid, &Epanechnikov).unwrap();
            let merged = cv_profile_merged_ll(&x, &y, &grid, &Epanechnikov).unwrap();
            let naive = cv_profile_naive_ll(&x, &y, &grid, &Epanechnikov).unwrap();
            for m in 0..k {
                prop_assert_eq!(sorted.included[m], naive.included[m]);
                prop_assert_eq!(merged.included[m], naive.included[m]);
                prop_assert!(
                    approx_eq(sorted.scores[m], naive.scores[m], 1e-6, 1e-9),
                    "h={}: {} vs {}", grid.values()[m], sorted.scores[m], naive.scores[m]
                );
                prop_assert!(
                    approx_eq(merged.scores[m], naive.scores[m], 1e-6, 1e-9),
                    "merged h={}: {} vs {}", grid.values()[m], merged.scores[m], naive.scores[m]
                );
            }
        }
    }
}
