//! Fast sum updating for **multivariate** product-kernel CV — the
//! dimension-recursive counterpart of the univariate prefix-moment sweep.
//!
//! The naive multivariate grid search ([`super::select_full_grid_naive`])
//! scores every `(bandwidth vector, observation)` CV cell with an `O(n)`
//! product-kernel scan, so a `d`-dimensional grid of `g` points costs
//! `O(g·n²·d)` kernel evaluations. For product **polynomial** kernels that
//! scan is redundant, exactly as in the univariate case: the leave-one-out
//! numerator and denominator at observation `i`,
//!
//! ```text
//! Σ_{l≠i, l∈box(i,h)} Π_j K((x_ji − x_jl)/h_j) · {1, y_l} ,
//! ```
//!
//! expand multi-binomially into sums of the **raw mixed moments**
//! `x_1l^{m_1}·x_2l^{m_2}·…` (and their `y`-weighted twins) over the
//! support box — Langrené & Warin's fast-sum-updating recursion carried
//! across dimensions. The engine therefore never evaluates a kernel on its
//! d ≤ 2 hot path; it resolves support boxes with the same monotone
//! `Δ·(1/h) ≤ r` predicate the univariate strategies use and assembles
//! each cell from precomputed moment tables.
//!
//! ## Dispatch by dimension
//!
//! * **d = 1** delegates to the univariate prefix-moment core
//!   (`cv::prefix`), sorting the requested bandwidth list ascending first —
//!   so a one-column selection is *bit-identical* to
//!   [`crate::cv::cv_profile_prefix`] over the same grid.
//! * **d = 2** is the hot path: sweep observations in dimension-1 sorted
//!   order, maintaining **two Fenwick trees over dimension-2 ranks** — `L`
//!   holds the window points left of the sweep position, `R` those right
//!   of it (the query point sits in neither, which is positional
//!   leave-one-out self-exclusion, no subtraction drift). The dimension-1
//!   window slides monotonically (two-pointer, ≤ `4n` tree updates per
//!   grid point); each cell then costs two binary searches on the sorted
//!   dimension-2 axis plus six `O(log n)` prefix queries over
//!   `(deg+1)²`-moment node blocks and an `O(deg⁴)` two-axis binomial
//!   assembly. Per grid point: `O(n·(log n·(deg+1)² + deg⁴))`, versus the
//!   naive `O(n²·d)` — and **zero kernel evaluations**.
//! * **d ≥ 3** carries the partial product sums through a dimension-1
//!   windowed scan: the monotone window bounds the neighbour loop, and
//!   each in-box neighbour contributes its Horner-evaluated product weight
//!   directly. This is honest per-neighbour work (`O(g·n·w̄·d)` with `w̄`
//!   the mean window width, counted as `kernel_evals`); only the d ≤ 2
//!   paths hold the zero-eval contract. Extending the moment-tree
//!   recursion to d ≥ 3 (a Fenwick tree of Fenwick trees) is the
//!   documented follow-on.
//!
//! ## Exactness
//!
//! Box *membership* uses the bit-identical predicate discipline of the
//! univariate sweeps, evaluated on the original (uncentred) coordinates.
//! Empty boxes are detected **exactly**: the `(0,0)` moment of every point
//! is `1.0`, Fenwick adds/removes of `±1.0` are exact integer arithmetic
//! in f64, so a zero count is a true zero and the cell is excluded just as
//! the naive scan excludes it. Scores carry the usual moment-differencing
//! rounding (trees are re-zeroed for every grid point, so drift never
//! accumulates across cells); agreement with the naive oracle is pinned at
//! the same degree-scaled tolerances as the univariate prefix strategy.
//! One caveat sharpens in d ≥ 2: when a cell's every in-box neighbour sits
//! at the support edge, the product weight vanishes like `δ^{deg·d}` and
//! the LOO ratio amplifies the assembled `num`/`den` roundoff without
//! bound — the documented tolerance therefore applies to cells with
//! non-negligible denominator mass (the agreement suite's mass guard).
//!
//! ## Observability
//!
//! The whole engine runs under a `cv.multi` phase (opened once on the
//! calling thread); grid points are scored in parallel with rayon inside
//! the caller's `kcv-obs` scope. `window_queries` counts `d` per
//! `(observation, grid point)` cell and the `dim_sweeps` counter counts
//! one sweep per `(grid point, dimension)` pair.

use crate::error::{validate_bandwidth, Error, Result};
use crate::kernels::{horner, PolynomialKernel};
use crate::sort::{apply_permutation, argsort};
use rayon::prelude::*;

/// Scores every bandwidth vector in `h_vectors` with the fast-sum-updating
/// engine: returns `(scores, included)` aligned with the input order,
/// where `scores[g]` is `CV_lc(h⃗_g)` and `included[g]` counts the
/// observations with a defined leave-one-out fit at that bandwidth vector.
///
/// Produces the same profile the naive
/// [`super::MultiNadarayaWatson::cv_score_included`] oracle computes, at
/// `O(n·(log n·(deg+1)² + deg⁴))` per grid point for d ≤ 2 instead of
/// `O(n²·d)` — see the module docs for the per-dimension dispatch and the
/// documented score tolerances.
pub fn cv_scores_fast<K: PolynomialKernel + ?Sized>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    h_vectors: &[Vec<f64>],
) -> Result<(Vec<f64>, Vec<usize>)> {
    let d = columns.len();
    if d == 0 {
        return Err(Error::DimensionMismatch { expected: 1, found: 0 });
    }
    let n = y.len();
    if n < 2 {
        return Err(Error::SampleTooSmall { n, required: 2 });
    }
    for col in columns {
        if col.len() != n {
            return Err(Error::LengthMismatch { x_len: col.len(), y_len: n });
        }
        if let Some(i) = col.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteData { which: "x", index: i });
        }
    }
    if let Some(i) = y.iter().position(|v| !v.is_finite()) {
        return Err(Error::NonFiniteData { which: "y", index: i });
    }
    for hs in h_vectors {
        if hs.len() != d {
            return Err(Error::DimensionMismatch { expected: d, found: hs.len() });
        }
        for &h in hs {
            validate_bandwidth(h)?;
        }
    }
    if h_vectors.is_empty() {
        return Ok((Vec::new(), Vec::new()));
    }

    let _phase = kcv_obs::phase("cv.multi");
    kcv_obs::add(kcv_obs::Counter::DimSweeps, (h_vectors.len() * d) as u64);
    match d {
        1 => scores_d1(&columns[0], y, kernel, h_vectors),
        2 => Ok(scores_d2(columns, y, kernel, h_vectors)),
        _ => Ok(scores_dn(columns, y, kernel, h_vectors)),
    }
}

/// d = 1: sort the bandwidth list ascending (the univariate core narrows
/// support windows monotonically) and delegate to the shared prefix-moment
/// routine, then unpermute. A caller passing an already-ascending grid
/// runs the exact instruction sequence of `cv_profile_prefix`.
fn scores_d1<K: PolynomialKernel + ?Sized>(
    x: &[f64],
    y: &[f64],
    kernel: &K,
    h_vectors: &[Vec<f64>],
) -> Result<(Vec<f64>, Vec<usize>)> {
    let g = h_vectors.len();
    let mut order: Vec<usize> = (0..g).collect();
    order.sort_by(|&a, &b| h_vectors[a][0].total_cmp(&h_vectors[b][0]));
    let hs_sorted: Vec<f64> = order.iter().map(|&i| h_vectors[i][0]).collect();
    let (scores_sorted, included_sorted) =
        crate::cv::prefix::prefix_scores_for_bandwidths(x, y, &hs_sorted, kernel)?;
    let mut scores = vec![0.0; g];
    let mut included = vec![0usize; g];
    for (rank, &orig) in order.iter().enumerate() {
        scores[orig] = scores_sorted[rank];
        included[orig] = included_sorted[rank];
    }
    Ok((scores, included))
}

/// Shared dimension-1 sweep frame: the sample reordered by the first
/// regressor, plus every other column and `y` carried along in that order.
struct SweepFrame {
    /// First regressor, sorted ascending (original values — support
    /// predicates run on these).
    xs1: Vec<f64>,
    /// Remaining columns (original values), each in dimension-1 sorted
    /// order: `cols[j][p]` is regressor `j+1` of the observation at sorted
    /// position `p`.
    cols: Vec<Vec<f64>>,
    /// Responses in dimension-1 sorted order.
    yv: Vec<f64>,
}

impl SweepFrame {
    fn build(columns: &[Vec<f64>], y: &[f64]) -> Self {
        let perm = argsort(&columns[0]);
        SweepFrame {
            xs1: apply_permutation(&columns[0], &perm),
            cols: columns[1..].iter().map(|c| apply_permutation(c, &perm)).collect(),
            yv: apply_permutation(y, &perm),
        }
    }
}

/// Advances the dimension-1 support window `[lo, hi)` of sorted position
/// `p` for fixed `inv_h1` — both ends are monotone non-decreasing in `p`,
/// so the amortised cost over a full sweep is `O(n)`.
#[inline]
fn slide_window(
    xs1: &[f64],
    p: usize,
    inv_h1: f64,
    radius: f64,
    lo: &mut usize,
    hi: &mut usize,
) {
    let xi = xs1[p];
    while (xi - xs1[*lo]) * inv_h1 > radius {
        *lo += 1;
    }
    while *hi < xs1.len() && (xs1[*hi] - xi) * inv_h1 <= radius {
        *hi += 1;
    }
}

/// Pascal's triangle flattened to `(deg+1) × (deg+1)`:
/// `binom[j·(deg+1) + m] = C(j, m)` for `m ≤ j`.
fn pascal(deg: usize) -> Vec<f64> {
    let bw = deg + 1;
    let mut binom = vec![0.0; bw * bw];
    for j in 0..=deg {
        binom[j * bw] = 1.0;
        for m in 1..=j {
            binom[j * bw + m] =
                binom[(j - 1) * bw + m - 1] + if m < j { binom[(j - 1) * bw + m] } else { 0.0 };
        }
    }
    binom
}

/// The d = 2 moment tables, built once and shared read-only by every grid
/// point: the sweep frame, the second axis sorted for window searches, the
/// dimension-2 rank of every sweep position, and per-point mixed-moment
/// blocks over midrange-centred coordinates. Memory: `2n·(deg+1)²` f64 for
/// the blocks plus `O(n)` index arrays.
struct Tables2 {
    frame: SweepFrame,
    /// Second regressor sorted ascending (original values).
    xs2: Vec<f64>,
    /// Dimension-2 rank of the observation at dimension-1 sorted position
    /// `p` — a permutation of `0..n` even under duplicate coordinates.
    rank2: Vec<usize>,
    /// Midrange-centred sweep coordinates (conditioning only; membership
    /// always uses the original values).
    x1c: Vec<f64>,
    x2c: Vec<f64>,
    /// Per-point moment blocks, `2·bsz` per point: entries
    /// `[m1·(deg+1)+m2]` hold `x1c^{m1}·x2c^{m2}`, entries
    /// `[bsz + m1·(deg+1)+m2]` the `y`-weighted twin.
    blocks: Vec<f64>,
    /// Flattened Pascal triangle `C(j, m)`.
    binom: Vec<f64>,
    deg: usize,
    /// `(deg+1)²` — moments per half-block.
    bsz: usize,
    n: usize,
}

impl Tables2 {
    fn build(columns: &[Vec<f64>], y: &[f64], deg: usize) -> Self {
        let n = y.len();
        let frame = SweepFrame::build(columns, y);
        let perm2 = argsort(&columns[1]);
        let xs2 = apply_permutation(&columns[1], &perm2);
        let mut rank_of_orig = vec![0usize; n];
        for (r, &orig) in perm2.iter().enumerate() {
            rank_of_orig[orig] = r;
        }
        let perm1 = argsort(&columns[0]);
        let rank2: Vec<usize> = perm1.iter().map(|&orig| rank_of_orig[orig]).collect();

        let c1 = 0.5 * (frame.xs1[0] + frame.xs1[n - 1]);
        let c2 = 0.5 * (xs2[0] + xs2[n - 1]);
        let x1c: Vec<f64> = frame.xs1.iter().map(|&v| v - c1).collect();
        let x2c: Vec<f64> = frame.cols[0].iter().map(|&v| v - c2).collect();

        let bsz = (deg + 1) * (deg + 1);
        let mut blocks = vec![0.0; n * 2 * bsz];
        for p in 0..n {
            let block = &mut blocks[p * 2 * bsz..(p + 1) * 2 * bsz];
            let yp = frame.yv[p];
            let mut p1 = 1.0;
            for m1 in 0..=deg {
                let mut v = p1;
                for m2 in 0..=deg {
                    block[m1 * (deg + 1) + m2] = v;
                    block[bsz + m1 * (deg + 1) + m2] = yp * v;
                    v *= x2c[p];
                }
                p1 *= x1c[p];
            }
        }
        Tables2 { frame, xs2, rank2, x1c, x2c, blocks, binom: pascal(deg), deg, bsz, n }
    }

    /// Binary-searches the dimension-2 support window `[a2, b2)` of value
    /// `x2i` on the sorted second axis — the same `Δ·(1/h) ≤ r` predicate
    /// as everywhere else, `O(log n)` (dimension-2 windows are not
    /// monotone along the dimension-1 sweep, so no narrowing here).
    #[inline]
    fn window2(&self, x2i: f64, inv_h2: f64, radius: f64) -> (usize, usize) {
        let n = self.n;
        let (mut a, mut b) = (0usize, n);
        while a < b {
            let mid = (a + b) / 2;
            if (x2i - self.xs2[mid]) * inv_h2 <= radius {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        let lo = a;
        let (mut a, mut b) = (lo, n);
        while a < b {
            let mid = (a + b) / 2;
            if (self.xs2[mid] - x2i) * inv_h2 <= radius {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        (lo, a)
    }
}

/// One grid point's sweep state for d = 2: two Fenwick trees over
/// dimension-2 ranks whose nodes store `2·bsz`-moment blocks, re-zeroed
/// for every grid point, plus the query/assembly scratch.
struct Sweep2 {
    /// Fenwick nodes (1-based), `(n+1)·2·bsz` each: `fen_l` indexes the
    /// window points at sweep positions `< p`, `fen_r` those `> p`.
    fen_l: Vec<f64>,
    fen_r: Vec<f64>,
    /// Prefix-query accumulators at the three split ranks `a2 ≤ r2 ≤ b2`,
    /// per tree: `[L(a2), L(r2), L(b2), R(a2), R(r2), R(b2)]`.
    pref: [Vec<f64>; 6],
    /// Assembled signed moment sums `S[j1][j2]` and `SY[j1][j2]`.
    s: Vec<f64>,
    sy: Vec<f64>,
    /// Powers of `−x1c[p]` / `−x2c[p]` for the binomial shift.
    npow1: Vec<f64>,
    npow2: Vec<f64>,
}

impl Sweep2 {
    fn new(n: usize, deg: usize) -> Self {
        let bsz2 = 2 * (deg + 1) * (deg + 1);
        Sweep2 {
            fen_l: vec![0.0; (n + 1) * bsz2],
            fen_r: vec![0.0; (n + 1) * bsz2],
            pref: std::array::from_fn(|_| vec![0.0; bsz2]),
            s: vec![0.0; (deg + 1) * (deg + 1)],
            sy: vec![0.0; (deg + 1) * (deg + 1)],
            npow1: vec![0.0; deg + 1],
            npow2: vec![0.0; deg + 1],
        }
    }
}

/// Adds (`sign = 1.0`) or removes (`sign = −1.0`) the moment block of the
/// point at dimension-2 rank `rank` into a Fenwick tree. `O(log n)` node
/// touches of `2·bsz` fused multiply-adds each.
#[inline]
fn fenwick_update(tree: &mut [f64], n: usize, bsz2: usize, rank: usize, sign: f64, block: &[f64]) {
    let mut i = rank + 1;
    while i <= n {
        let node = &mut tree[i * bsz2..(i + 1) * bsz2];
        for (slot, &v) in node.iter_mut().zip(block) {
            *slot += sign * v;
        }
        i += i & i.wrapping_neg();
    }
}

/// Accumulates the tree's prefix sum over ranks `< t` into `acc`
/// (overwritten). `O(log n)` node touches.
#[inline]
fn fenwick_prefix(tree: &[f64], bsz2: usize, t: usize, acc: &mut [f64]) {
    acc.fill(0.0);
    let mut i = t;
    while i > 0 {
        let node = &tree[i * bsz2..(i + 1) * bsz2];
        for (slot, &v) in acc.iter_mut().zip(node) {
            *slot += v;
        }
        i &= i - 1;
    }
}

/// d = 2 hot path: per grid point, one monotone dimension-1 sweep with the
/// two-Fenwick-tree window structure; grid points run in parallel.
fn scores_d2<K: PolynomialKernel + ?Sized>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    h_vectors: &[Vec<f64>],
) -> (Vec<f64>, Vec<usize>) {
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let deg = coeffs.len() - 1;
    let n = y.len();
    let tables = Tables2::build(columns, y, deg);
    let tables = &tables;

    let scope = kcv_obs::scope();
    let cells: Vec<Vec<(usize, f64, usize)>> = (0..h_vectors.len())
        .into_par_iter()
        .fold(
            || (Vec::new(), Sweep2::new(n, deg)),
            |(mut out, mut sweep), gi| {
                let _in_scope = scope.enter();
                let (score, inc) =
                    score_grid_point_d2(tables, coeffs, radius, &h_vectors[gi], &mut sweep);
                out.push((gi, score, inc));
                (out, sweep)
            },
        )
        .map(|(out, _)| out)
        .collect();

    let mut scores = vec![0.0; h_vectors.len()];
    let mut included = vec![0usize; h_vectors.len()];
    for (gi, score, inc) in cells.into_iter().flatten() {
        scores[gi] = score;
        included[gi] = inc;
    }
    (scores, included)
}

/// Scores one d = 2 bandwidth vector: `O(n·(log n·(deg+1)² + deg⁴))`.
fn score_grid_point_d2(
    t: &Tables2,
    coeffs: &[f64],
    radius: f64,
    hs: &[f64],
    sweep: &mut Sweep2,
) -> (f64, usize) {
    let (n, deg, bsz) = (t.n, t.deg, t.bsz);
    let bsz2 = 2 * bsz;
    let bw = deg + 1;
    let (inv_h1, inv_h2) = (1.0 / hs[0], 1.0 / hs[1]);
    let xs1 = &t.frame.xs1;
    let block_of = |p: usize| &t.blocks[p * bsz2..(p + 1) * bsz2];

    // Fresh trees per grid point: rounding drift is bounded per sweep and
    // the exact-integer count slot starts from a true zero.
    sweep.fen_l.fill(0.0);
    sweep.fen_r.fill(0.0);

    // Initial window at p = 0; R starts with every other in-window point.
    let (mut lo, mut hi) = (0usize, 1usize);
    slide_window(xs1, 0, inv_h1, radius, &mut lo, &mut hi);
    for q in 1..hi {
        fenwick_update(&mut sweep.fen_r, n, bsz2, t.rank2[q], 1.0, block_of(q));
    }

    let mut queries = kcv_obs::LocalCounter::new(kcv_obs::Counter::WindowQueries);
    let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
    let mut sq_sum = 0.0;
    let mut included = 0usize;
    for p in 0..n {
        if p > 0 {
            // Window transition p−1 → p: the old query point joins L, the
            // new one leaves R, and each end of the window slides forward.
            let (lo_prev, hi_prev) = (lo, hi);
            slide_window(xs1, p, inv_h1, radius, &mut lo, &mut hi);
            fenwick_update(&mut sweep.fen_l, n, bsz2, t.rank2[p - 1], 1.0, block_of(p - 1));
            for q in lo_prev..lo {
                fenwick_update(&mut sweep.fen_l, n, bsz2, t.rank2[q], -1.0, block_of(q));
            }
            if hi_prev > p {
                fenwick_update(&mut sweep.fen_r, n, bsz2, t.rank2[p], -1.0, block_of(p));
            }
            for q in hi_prev.max(p + 1)..hi {
                fenwick_update(&mut sweep.fen_r, n, bsz2, t.rank2[q], 1.0, block_of(q));
            }
        }
        queries.incr(2);
        skipped.incr((n - (hi - lo)) as u64);

        // Dimension-2 window and the own-rank class split (tie points have
        // a zero centred difference, so their side cannot matter).
        let (a2, b2) = t.window2(t.frame.cols[0][p], inv_h2, radius);
        let r2 = t.rank2[p];
        debug_assert!(a2 <= r2 && r2 < b2, "own rank must sit inside its window");
        for (slot, tree) in [&sweep.fen_l, &sweep.fen_r].into_iter().enumerate() {
            fenwick_prefix(tree, bsz2, a2, &mut sweep.pref[3 * slot]);
            fenwick_prefix(tree, bsz2, r2, &mut sweep.pref[3 * slot + 1]);
            fenwick_prefix(tree, bsz2, b2, &mut sweep.pref[3 * slot + 2]);
        }

        // Exact empty-box check on the (0,0) count slot: every in-box
        // point contributed exactly ±1.0, so this is integer arithmetic.
        let count = (sweep.pref[2][0] - sweep.pref[0][0]) + (sweep.pref[5][0] - sweep.pref[3][0]);
        if count <= 0.0 {
            continue;
        }

        // Binomial shift powers for this observation.
        sweep.npow1[0] = 1.0;
        sweep.npow2[0] = 1.0;
        for m in 1..=deg {
            sweep.npow1[m] = sweep.npow1[m - 1] * -t.x1c[p];
            sweep.npow2[m] = sweep.npow2[m - 1] * -t.x2c[p];
        }

        // Assemble the four class moment sums into the signed totals
        // S[j1][j2] = Σ_box |x1−x1i|^{j1}·|x2−x2i|^{j2} expressed through
        // per-class sign flips (−1)^{j1}/(−1)^{j2} on the L / dim2-left
        // classes, and SY likewise for the y-weighted moments.
        sweep.s.fill(0.0);
        sweep.sy.fill(0.0);
        for (class, (ia, ib)) in [(0, 1), (1, 2), (3, 4), (4, 5)].into_iter().enumerate() {
            // class: 0 = (L, dim2-left), 1 = (L, dim2-right),
            //        2 = (R, dim2-left), 3 = (R, dim2-right).
            let s1_neg = class < 2;
            let s2_neg = class % 2 == 0;
            let pa = &sweep.pref[ia];
            let pb = &sweep.pref[ib];
            for j1 in 0..=deg {
                let sign1 = if s1_neg && j1 % 2 == 1 { -1.0 } else { 1.0 };
                for j2 in 0..=deg {
                    let sign2 = if s2_neg && j2 % 2 == 1 { -1.0 } else { 1.0 };
                    let sign = sign1 * sign2;
                    let mut w = 0.0;
                    let mut wy = 0.0;
                    for m1 in 0..=j1 {
                        let c1 = t.binom[j1 * bw + m1] * sweep.npow1[j1 - m1];
                        for m2 in 0..=j2 {
                            let c = c1 * t.binom[j2 * bw + m2] * sweep.npow2[j2 - m2];
                            let idx = m1 * bw + m2;
                            let d_m = pb[idx] - pa[idx];
                            let d_y = pb[bsz + idx] - pa[bsz + idx];
                            w += c * d_m;
                            wy += c * d_y;
                        }
                    }
                    sweep.s[j1 * bw + j2] += sign * w;
                    sweep.sy[j1 * bw + j2] += sign * wy;
                }
            }
        }

        // N/D = Σ_{j1,j2} c_{j1}·c_{j2}·h1^{−j1}·h2^{−j2}·{SY, S}[j1][j2].
        let mut num = 0.0;
        let mut den = 0.0;
        let mut hp1 = 1.0;
        for (j1, &c1) in coeffs.iter().enumerate() {
            let mut hp2 = 1.0;
            for (j2, &c2) in coeffs.iter().enumerate() {
                let cf = c1 * c2 * hp1 * hp2;
                num += cf * sweep.sy[j1 * bw + j2];
                den += cf * sweep.s[j1 * bw + j2];
                hp2 *= inv_h2;
            }
            hp1 *= inv_h1;
        }
        if den > 0.0 {
            let resid = t.frame.yv[p] - num / den;
            sq_sum += resid * resid;
            included += 1;
        }
    }
    (sq_sum / n as f64, included)
}

/// d ≥ 3 fallback: dimension-1 windowed scan carrying the partial product
/// weights — no `Kernel::eval` dispatch, but genuine per-neighbour work
/// (counted as `kernel_evals`, one per polynomial factor evaluated).
fn scores_dn<K: PolynomialKernel + ?Sized>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    h_vectors: &[Vec<f64>],
) -> (Vec<f64>, Vec<usize>) {
    let coeffs = kernel.coeffs();
    let radius = kernel.radius();
    let d = columns.len();
    let n = y.len();
    let frame = SweepFrame::build(columns, y);
    let frame = &frame;

    let scope = kcv_obs::scope();
    let results: Vec<(f64, usize)> = (0..h_vectors.len())
        .into_par_iter()
        .map(|gi| {
            let _in_scope = scope.enter();
            let hs = &h_vectors[gi];
            let inv_h: Vec<f64> = hs.iter().map(|&h| 1.0 / h).collect();
            let mut queries = kcv_obs::LocalCounter::new(kcv_obs::Counter::WindowQueries);
            let mut skipped = kcv_obs::LocalCounter::new(kcv_obs::Counter::LooTermsSkipped);
            let mut evals = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
            let (mut lo, mut hi) = (0usize, 1usize);
            let mut sq_sum = 0.0;
            let mut included = 0usize;
            for p in 0..n {
                slide_window(&frame.xs1, p, inv_h[0], radius, &mut lo, &mut hi);
                queries.incr(d as u64);
                skipped.incr((n - (hi - lo)) as u64);
                let mut num = 0.0;
                let mut den = 0.0;
                for q in lo..hi {
                    if q == p {
                        continue;
                    }
                    let u1 = (frame.xs1[p] - frame.xs1[q]).abs() * inv_h[0];
                    let mut w = horner(coeffs, u1);
                    evals.incr(1);
                    for (j, col) in frame.cols.iter().enumerate() {
                        let u = (col[p] - col[q]).abs() * inv_h[j + 1];
                        if u > radius {
                            w = 0.0;
                            break;
                        }
                        w *= horner(coeffs, u);
                        evals.incr(1);
                        if w == 0.0 {
                            break;
                        }
                    }
                    num += frame.yv[q] * w;
                    den += w;
                }
                if den > 0.0 {
                    let resid = frame.yv[p] - num / den;
                    sq_sum += resid * resid;
                    included += 1;
                }
            }
            (sq_sum / n as f64, included)
        })
        .collect();

    results.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Epanechnikov;
    use crate::multi::MultiNadarayaWatson;
    use crate::util::{approx_eq, SplitMix64};

    fn dgp(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let cols: Vec<Vec<f64>> =
            (0..d).map(|_| (0..n).map(|_| rng.next_f64()).collect()).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                cols.iter().enumerate().map(|(j, c)| (j + 1) as f64 * c[i]).sum::<f64>()
                    + 0.1 * rng.next_f64()
            })
            .collect();
        (cols, y)
    }

    fn naive_oracle(
        cols: &[Vec<f64>],
        y: &[f64],
        h_vectors: &[Vec<f64>],
    ) -> (Vec<f64>, Vec<usize>) {
        h_vectors
            .iter()
            .map(|hs| {
                MultiNadarayaWatson::new(cols, y, Epanechnikov, hs.clone())
                    .unwrap()
                    .cv_score_included()
            })
            .unzip()
    }

    #[test]
    fn d2_agrees_with_the_naive_oracle() {
        let (cols, y) = dgp(120, 2, 1);
        let h_vectors: Vec<Vec<f64>> = (1..=5)
            .flat_map(|i| (1..=5).map(move |j| vec![i as f64 * 0.08, j as f64 * 0.08]))
            .collect();
        let (fast_s, fast_i) = cv_scores_fast(&cols, &y, &Epanechnikov, &h_vectors).unwrap();
        let (naive_s, naive_i) = naive_oracle(&cols, &y, &h_vectors);
        assert_eq!(fast_i, naive_i);
        for g in 0..h_vectors.len() {
            assert!(
                approx_eq(fast_s[g], naive_s[g], 1e-8, 1e-10),
                "grid point {g}: {} vs {}",
                fast_s[g],
                naive_s[g]
            );
        }
    }

    #[test]
    fn d2_handles_tiny_bandwidths_with_empty_boxes() {
        let (cols, y) = dgp(40, 2, 2);
        let h_vectors = vec![vec![1e-6, 1e-6], vec![0.3, 1e-6], vec![0.3, 0.3]];
        let (fast_s, fast_i) = cv_scores_fast(&cols, &y, &Epanechnikov, &h_vectors).unwrap();
        let (naive_s, naive_i) = naive_oracle(&cols, &y, &h_vectors);
        assert_eq!(fast_i, naive_i);
        assert_eq!(fast_i[0], 0);
        assert_eq!(fast_s[0], 0.0);
        assert!(approx_eq(fast_s[2], naive_s[2], 1e-8, 1e-10));
    }

    #[test]
    fn d3_scan_agrees_with_the_naive_oracle() {
        let (cols, y) = dgp(60, 3, 3);
        let h_vectors = vec![vec![0.2, 0.3, 0.4], vec![0.5, 0.5, 0.5], vec![0.15, 0.4, 0.25]];
        let (fast_s, fast_i) = cv_scores_fast(&cols, &y, &Epanechnikov, &h_vectors).unwrap();
        let (naive_s, naive_i) = naive_oracle(&cols, &y, &h_vectors);
        assert_eq!(fast_i, naive_i);
        for g in 0..h_vectors.len() {
            assert!(approx_eq(fast_s[g], naive_s[g], 1e-10, 1e-12));
        }
    }

    #[test]
    fn validation_mirrors_the_naive_estimator() {
        let (cols, y) = dgp(30, 2, 4);
        assert!(cv_scores_fast(&[], &y, &Epanechnikov, &[vec![]]).is_err());
        assert!(cv_scores_fast(&cols, &y, &Epanechnikov, &[vec![0.1]]).is_err());
        assert!(cv_scores_fast(&cols, &y, &Epanechnikov, &[vec![0.1, -0.1]]).is_err());
        assert!(cv_scores_fast(&cols, &y[..10], &Epanechnikov, &[vec![0.1, 0.1]]).is_err());
        let (s, i) = cv_scores_fast(&cols, &y, &Epanechnikov, &[]).unwrap();
        assert!(s.is_empty() && i.is_empty());
    }
}
