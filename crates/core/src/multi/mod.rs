//! Multivariate kernel regression with product kernels — the paper's §I
//! "evenly-spaced grid or matrix in multivariate contexts". The weight of
//! observation `l` at point `x` is `Π_j K((x_j − X_lj)/h_j)` with one
//! bandwidth per regressor.
//!
//! Two engines score the CV grid:
//!
//! * [`fast`] — the dimension-recursive fast-sum-updating engine for
//!   product **polynomial** kernels (zero kernel evaluations on the d ≤ 2
//!   hot path; see the module docs for the per-dimension dispatch and
//!   complexity). [`select_multiplier_grid`] and [`select_full_grid`] run
//!   on it, which is what makes the full Cartesian grid — `O(kᵈ·n²)` under
//!   the naive estimator — practical at realistic sizes.
//! * the naive [`MultiNadarayaWatson`] double loop, kept as the agreement
//!   oracle and as the selector for non-polynomial kernels (Gaussian,
//!   Cosine) via [`select_multiplier_grid_naive`] /
//!   [`select_full_grid_naive`].
//!
//! The scalar-multiplier search (one rule-of-thumb base vector, a 1-D grid
//! of multipliers) remains the cheap default when a full per-dimension
//! grid is not needed.

pub mod fast;

use crate::error::{Error, Result};
use crate::kernels::{Kernel, PolynomialKernel};
use crate::select::rule_of_thumb::silverman_bandwidth;

/// Multivariate product-kernel Nadaraya–Watson estimator.
#[derive(Debug, Clone)]
pub struct MultiNadarayaWatson<'a, K: Kernel> {
    columns: &'a [Vec<f64>],
    y: &'a [f64],
    kernel: K,
    bandwidths: Vec<f64>,
}

impl<'a, K: Kernel> MultiNadarayaWatson<'a, K> {
    /// Constructs the estimator from `d` regressor columns (each of length
    /// `n`), responses, and a per-dimension bandwidth vector.
    pub fn new(
        columns: &'a [Vec<f64>],
        y: &'a [f64],
        kernel: K,
        bandwidths: Vec<f64>,
    ) -> Result<Self> {
        if columns.is_empty() {
            return Err(Error::DimensionMismatch { expected: 1, found: 0 });
        }
        let n = y.len();
        if n < 2 {
            return Err(Error::SampleTooSmall { n, required: 2 });
        }
        for col in columns {
            if col.len() != n {
                return Err(Error::LengthMismatch { x_len: col.len(), y_len: n });
            }
            if let Some(i) = col.iter().position(|v| !v.is_finite()) {
                return Err(Error::NonFiniteData { which: "x", index: i });
            }
        }
        if bandwidths.len() != columns.len() {
            return Err(Error::DimensionMismatch {
                expected: columns.len(),
                found: bandwidths.len(),
            });
        }
        for &h in &bandwidths {
            crate::error::validate_bandwidth(h)?;
        }
        Ok(Self { columns, y, kernel, bandwidths })
    }

    /// Number of regressors `d`.
    pub fn dim(&self) -> usize {
        self.columns.len()
    }

    /// Number of observations `n`.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the sample is empty (cannot occur through the constructor).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Product-kernel weight of observation `l` at `point`, tallying one
    /// kernel evaluation per factor actually computed into `evals`.
    fn weight_evals(&self, point: &[f64], l: usize, evals: &mut u64) -> f64 {
        let mut w = 1.0;
        for (j, col) in self.columns.iter().enumerate() {
            *evals += 1;
            w *= self.kernel.eval((point[j] - col[l]) / self.bandwidths[j]);
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// Product-kernel weight of observation `l` at `point`.
    fn weight(&self, point: &[f64], l: usize) -> f64 {
        let mut evals = 0;
        self.weight_evals(point, l, &mut evals)
    }

    /// Predicts `E[Y | X = point]`; `None` on zero weight mass.
    pub fn predict(&self, point: &[f64]) -> Result<Option<f64>> {
        if point.len() != self.dim() {
            return Err(Error::DimensionMismatch { expected: self.dim(), found: point.len() });
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for l in 0..self.len() {
            let w = self.weight(point, l);
            num += self.y[l] * w;
            den += w;
        }
        Ok((den > 0.0).then(|| num / den))
    }

    /// Leave-one-out prediction at sample point `i`.
    pub fn loo_predict(&self, i: usize) -> Option<f64> {
        let mut evals = 0;
        self.loo_predict_evals(i, &mut evals)
    }

    fn loo_predict_evals(&self, i: usize, evals: &mut u64) -> Option<f64> {
        assert!(i < self.len(), "loo index {i} out of bounds");
        let point: Vec<f64> = self.columns.iter().map(|c| c[i]).collect();
        let mut num = 0.0;
        let mut den = 0.0;
        for l in 0..self.len() {
            if l == i {
                continue;
            }
            let w = self.weight_evals(&point, l, evals);
            num += self.y[l] * w;
            den += w;
        }
        (den > 0.0).then(|| num / den)
    }

    /// The CV score `(1/n) Σ (Y_i − ĝ_{-i})² M_i` together with the number
    /// of observations whose leave-one-out fit is defined — one LOO pass
    /// for both quantities (the selectors need `included` to reject
    /// bandwidths that exclude everyone, and re-running `loo_predict` per
    /// observation just to count them doubled the naive CV cost).
    ///
    /// Kernel evaluations performed by the pass are reported to the
    /// `kernel_evals` counter (one per product factor actually computed).
    pub fn cv_score_included(&self) -> (f64, usize) {
        let n = self.len();
        let mut counter = kcv_obs::LocalCounter::new(kcv_obs::Counter::KernelEvals);
        let mut evals = 0u64;
        let mut sum = 0.0;
        let mut included = 0usize;
        for i in 0..n {
            if let Some(g) = self.loo_predict_evals(i, &mut evals) {
                let r = self.y[i] - g;
                sum += r * r;
                included += 1;
            }
        }
        counter.incr(evals);
        (sum / n as f64, included)
    }

    /// The CV score `(1/n) Σ (Y_i − ĝ_{-i})² M_i` for this bandwidth vector.
    pub fn cv_score(&self) -> f64 {
        self.cv_score_included().0
    }
}

/// Result of the scalar-multiplier multivariate bandwidth search.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSelection {
    /// The selected per-dimension bandwidths.
    pub bandwidths: Vec<f64>,
    /// The scalar multiplier applied to the base vector.
    pub multiplier: f64,
    /// The CV score at the optimum.
    pub score: f64,
}

/// Picks the first strict minimum among grid points with at least one
/// included observation (score exactly 0 with nobody included would
/// otherwise win spuriously).
fn best_index(scores: &[f64], included: &[usize]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for g in 0..scores.len() {
        if included[g] == 0 {
            continue;
        }
        if best.is_none_or(|b| scores[g] < scores[b]) {
            best = Some(g);
        }
    }
    best
}

/// Validates the Cartesian grid, returning the total number of points.
fn validate_full_grid(d: usize, per_dim_grids: &[Vec<f64>]) -> Result<usize> {
    if per_dim_grids.len() != d {
        return Err(Error::DimensionMismatch { expected: d, found: per_dim_grids.len() });
    }
    let mut total = 1usize;
    for g in per_dim_grids {
        if g.is_empty() {
            return Err(Error::InvalidGrid("empty per-dimension grid"));
        }
        if g.iter().any(|&h| !(h.is_finite() && h > 0.0)) {
            return Err(Error::InvalidGrid("bandwidths must be finite and positive"));
        }
        total = total
            .checked_mul(g.len())
            .ok_or(Error::InvalidGrid("grid product overflows"))?;
    }
    if total > 1_000_000 {
        return Err(Error::InvalidGrid("full grid exceeds 1e6 points; use the multiplier search"));
    }
    Ok(total)
}

/// Decodes Cartesian-grid point `idx` by mixed-radix decoding (first grid
/// is the least-significant digit).
fn decode_grid_point(per_dim_grids: &[Vec<f64>], mut idx: usize) -> Vec<f64> {
    let mut hs = Vec::with_capacity(per_dim_grids.len());
    for g in per_dim_grids {
        hs.push(g[idx % g.len()]);
        idx /= g.len();
    }
    hs
}

/// Selects per-dimension bandwidths by grid-searching a scalar multiplier
/// `c ∈ [c_min, c_max]` of the per-dimension Silverman base vector,
/// scoring every multiplier with the fast-sum-updating engine
/// ([`fast::cv_scores_fast`] — zero kernel evaluations for d ≤ 2).
///
/// For non-polynomial kernels use [`select_multiplier_grid_naive`].
pub fn select_multiplier_grid<K: PolynomialKernel + ?Sized>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    multipliers: &[f64],
) -> Result<MultiSelection> {
    if multipliers.is_empty() {
        return Err(Error::InvalidGrid("empty multiplier grid"));
    }
    if multipliers.iter().any(|&c| !(c.is_finite() && c > 0.0)) {
        return Err(Error::InvalidGrid("multipliers must be finite and positive"));
    }
    let base: Vec<f64> = columns
        .iter()
        .map(|col| silverman_bandwidth(col, &kernel))
        .collect::<Result<_>>()?;
    let h_vectors: Vec<Vec<f64>> =
        multipliers.iter().map(|&c| base.iter().map(|&b| b * c).collect()).collect();
    let (scores, included) = fast::cv_scores_fast(columns, y, kernel, &h_vectors)?;
    let g = best_index(&scores, &included).ok_or(Error::NoValidBandwidth)?;
    Ok(MultiSelection {
        bandwidths: h_vectors[g].clone(),
        multiplier: multipliers[g],
        score: scores[g],
    })
}

/// Naive-oracle variant of [`select_multiplier_grid`]: scores every
/// multiplier with the `O(n²·d)` [`MultiNadarayaWatson`] double loop.
/// Works for any [`Kernel`] (Gaussian, Cosine, …).
pub fn select_multiplier_grid_naive<K: Kernel + Clone>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    multipliers: &[f64],
) -> Result<MultiSelection> {
    if multipliers.is_empty() {
        return Err(Error::InvalidGrid("empty multiplier grid"));
    }
    let base: Vec<f64> = columns
        .iter()
        .map(|col| silverman_bandwidth(col, kernel))
        .collect::<Result<_>>()?;
    let _phase = kcv_obs::phase("cv.multi");
    let mut best: Option<MultiSelection> = None;
    for &c in multipliers {
        if !(c.is_finite() && c > 0.0) {
            return Err(Error::InvalidGrid("multipliers must be finite and positive"));
        }
        let hs: Vec<f64> = base.iter().map(|&b| b * c).collect();
        let est = MultiNadarayaWatson::new(columns, y, kernel.clone(), hs.clone())?;
        let (score, included) = est.cv_score_included();
        if included == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|b| score < b.score) {
            best = Some(MultiSelection { bandwidths: hs, multiplier: c, score });
        }
    }
    best.ok_or(Error::NoValidBandwidth)
}

/// Selects per-dimension bandwidths over the *full* Cartesian grid — the
/// "evenly-spaced grid or matrix in multivariate contexts" of the paper's
/// §I — scored with the fast-sum-updating engine
/// ([`fast::cv_scores_fast`]): `O(g·n·(log n·(deg+1)² + deg⁴))` for d = 2
/// with `g` total grid points and **zero kernel evaluations**, instead of
/// the naive `O(g·n²·d)`. Grid points run in parallel with rayon.
///
/// For non-polynomial kernels use [`select_full_grid_naive`].
pub fn select_full_grid<K: PolynomialKernel + ?Sized>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    per_dim_grids: &[Vec<f64>],
) -> Result<MultiSelection> {
    let total = validate_full_grid(columns.len(), per_dim_grids)?;
    let h_vectors: Vec<Vec<f64>> =
        (0..total).map(|idx| decode_grid_point(per_dim_grids, idx)).collect();
    let (scores, included) = fast::cv_scores_fast(columns, y, kernel, &h_vectors)?;
    let g = best_index(&scores, &included).ok_or(Error::NoValidBandwidth)?;
    Ok(MultiSelection {
        bandwidths: h_vectors[g].clone(),
        multiplier: f64::NAN,
        score: scores[g],
    })
}

/// Naive-oracle variant of [`select_full_grid`]: every grid point costs an
/// `O(n²·d)` product-kernel double loop, so the total is `O(kᵈ·n²·d)` —
/// practical only for small `d`, `k`, and `n`. Grid points are evaluated
/// in parallel with rayon. Works for any [`Kernel`].
pub fn select_full_grid_naive<K: Kernel + Clone + Sync>(
    columns: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    per_dim_grids: &[Vec<f64>],
) -> Result<MultiSelection> {
    use rayon::prelude::*;
    let total = validate_full_grid(columns.len(), per_dim_grids)?;
    let _phase = kcv_obs::phase("cv.multi");
    let scope = kcv_obs::scope();
    let best = (0..total)
        .into_par_iter()
        .map(|idx| {
            let _in_scope = scope.enter();
            let hs = decode_grid_point(per_dim_grids, idx);
            let est = MultiNadarayaWatson::new(columns, y, kernel.clone(), hs.clone())
                .expect("validated inputs");
            let (score, included) = est.cv_score_included();
            (hs, score, included)
        })
        .filter(|(_, _, included)| *included > 0)
        .min_by(|a, b| a.1.total_cmp(&b.1));

    match best {
        Some((bandwidths, score, _)) => {
            Ok(MultiSelection { bandwidths, multiplier: f64::NAN, score })
        }
        None => Err(Error::NoValidBandwidth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    fn dgp2(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x1: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let x2: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x1
            .iter()
            .zip(&x2)
            .map(|(&a, &b)| a + 2.0 * b * b + 0.1 * rng.next_f64())
            .collect();
        (vec![x1, x2], y)
    }

    #[test]
    fn constant_response_recovered() {
        let (cols, _) = dgp2(50, 101);
        let y = vec![7.0; 50];
        let est = MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.3, 0.3]).unwrap();
        let g = est.predict(&[0.5, 0.5]).unwrap().unwrap();
        assert!((g - 7.0).abs() < 1e-10);
    }

    #[test]
    fn univariate_case_matches_scalar_estimator() {
        use crate::estimate::{NadarayaWatson, RegressionEstimator};
        let mut rng = SplitMix64::new(102);
        let x: Vec<f64> = (0..60).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x.iter().map(|&v| v * v + rng.next_f64() * 0.1).collect();
        let cols = vec![x.clone()];
        let multi = MultiNadarayaWatson::new(&cols, &y, Epanechnikov, vec![0.2]).unwrap();
        let scalar = NadarayaWatson::new(&x, &y, Epanechnikov, 0.2).unwrap();
        for &p in &[0.1, 0.5, 0.9] {
            let a = multi.predict(&[p]).unwrap();
            let b = scalar.predict(p);
            match (a, b) {
                (Some(ga), Some(gb)) => assert!((ga - gb).abs() < 1e-12),
                (None, None) => {}
                other => panic!("disagreement at {p}: {other:?}"),
            }
        }
        assert!((multi.cv_score() - scalar.cv_score()).abs() < 1e-12);
    }

    #[test]
    fn prediction_tracks_truth_on_smooth_surface() {
        let (cols, y) = dgp2(800, 103);
        let est = MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.07, 0.07]).unwrap();
        let truth = |a: f64, b: f64| a + 2.0 * b * b + 0.05;
        for &(a, b) in &[(0.3, 0.3), (0.5, 0.7), (0.7, 0.2)] {
            let g = est.predict(&[a, b]).unwrap().unwrap();
            assert!((g - truth(a, b)).abs() < 0.15, "at ({a},{b}): {g} vs {}", truth(a, b));
        }
    }

    #[test]
    fn multiplier_search_finds_interior_optimum() {
        let (cols, y) = dgp2(200, 104);
        let multipliers: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let sel = select_multiplier_grid(&cols, &y, &Epanechnikov, &multipliers).unwrap();
        assert_eq!(sel.bandwidths.len(), 2);
        assert!(sel.score.is_finite() && sel.score >= 0.0);
        // The optimum should beat the extremes of the multiplier grid.
        let at = |c: f64| {
            let base: Vec<f64> = cols
                .iter()
                .map(|col| silverman_bandwidth(col, &Epanechnikov).unwrap() * c)
                .collect();
            MultiNadarayaWatson::new(&cols, &y, Epanechnikov, base).unwrap().cv_score()
        };
        assert!(sel.score <= at(0.25) + 1e-12);
        assert!(sel.score <= at(5.0) + 1e-12);
    }

    #[test]
    fn full_grid_beats_or_matches_the_multiplier_search() {
        // The full Cartesian grid explores strictly more bandwidth vectors
        // than the scalar-multiplier path built on the same values.
        let (cols, y) = dgp2(120, 106);
        let g1: Vec<f64> = (1..=6).map(|i| i as f64 * 0.05).collect();
        let g2 = g1.clone();
        let full = select_full_grid_naive(&cols, &y, &Gaussian, &[g1.clone(), g2]).unwrap();
        assert_eq!(full.bandwidths.len(), 2);
        // Any single point of the grid can't beat the full-grid optimum.
        for &h1 in &g1 {
            for &h2 in &g1 {
                let est =
                    MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![h1, h2]).unwrap();
                assert!(full.score <= est.cv_score() + 1e-12);
            }
        }
    }

    #[test]
    fn full_grid_can_pick_anisotropic_bandwidths() {
        // Truth varies fast in x2 (quadratic ×2) and slowly in x1: the
        // selected h2 should not exceed h1.
        let (cols, y) = dgp2(400, 107);
        let grid: Vec<f64> = (1..=8).map(|i| i as f64 * 0.04).collect();
        let sel = select_full_grid(&cols, &y, &Epanechnikov, &[grid.clone(), grid]).unwrap();
        assert!(
            sel.bandwidths[1] <= sel.bandwidths[0] + 0.04,
            "expected tighter smoothing along the curved dimension: {:?}",
            sel.bandwidths
        );
    }

    #[test]
    fn full_grid_validates_inputs() {
        let (cols, y) = dgp2(30, 108);
        assert!(select_full_grid_naive(&cols, &y, &Gaussian, &[vec![0.1]]).is_err());
        assert!(select_full_grid_naive(&cols, &y, &Gaussian, &[vec![0.1], vec![]]).is_err());
        assert!(select_full_grid_naive(&cols, &y, &Gaussian, &[vec![0.1], vec![-0.1]]).is_err());
        let huge: Vec<f64> = (1..=1_001).map(|i| i as f64 * 1e-3).collect();
        assert!(select_full_grid_naive(&cols, &y, &Gaussian, &[huge.clone(), huge.clone()]).is_err());
        assert!(select_full_grid(&cols, &y, &Epanechnikov, &[vec![0.1]]).is_err());
        assert!(select_full_grid(&cols, &y, &Epanechnikov, &[vec![0.1], vec![]]).is_err());
        assert!(select_full_grid(&cols, &y, &Epanechnikov, &[vec![0.1], vec![-0.1]]).is_err());
        assert!(select_full_grid(&cols, &y, &Epanechnikov, &[huge.clone(), huge]).is_err());
    }

    #[test]
    fn fast_selectors_agree_with_the_naive_variants() {
        let (cols, y) = dgp2(150, 109);
        let grid: Vec<f64> = (1..=5).map(|i| i as f64 * 0.06).collect();
        let fast = select_full_grid(&cols, &y, &Epanechnikov, &[grid.clone(), grid.clone()])
            .unwrap();
        let naive =
            select_full_grid_naive(&cols, &y, &Epanechnikov, &[grid.clone(), grid]).unwrap();
        assert_eq!(fast.bandwidths, naive.bandwidths);
        assert!((fast.score - naive.score).abs() <= 1e-8 * naive.score.abs().max(1.0));

        let multipliers: Vec<f64> = (1..=12).map(|i| i as f64 * 0.4).collect();
        let fast_m = select_multiplier_grid(&cols, &y, &Epanechnikov, &multipliers).unwrap();
        let naive_m =
            select_multiplier_grid_naive(&cols, &y, &Epanechnikov, &multipliers).unwrap();
        assert_eq!(fast_m.bandwidths, naive_m.bandwidths);
        assert_eq!(fast_m.multiplier, naive_m.multiplier);
    }

    #[test]
    fn cv_score_included_matches_the_separate_passes() {
        let (cols, y) = dgp2(80, 110);
        let est = MultiNadarayaWatson::new(&cols, &y, Epanechnikov, vec![0.05, 0.05]).unwrap();
        let (score, included) = est.cv_score_included();
        assert_eq!(score, est.cv_score());
        let recount = (0..y.len()).filter(|&i| est.loo_predict(i).is_some()).count();
        assert_eq!(included, recount);
        assert!(included < y.len(), "tiny bandwidth should exclude someone");
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let (cols, y) = dgp2(30, 105);
        assert!(MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.1]).is_err());
        let est = MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![0.1, 0.1]).unwrap();
        assert!(est.predict(&[0.5]).is_err());
    }

    #[test]
    fn empty_columns_rejected() {
        let y = vec![1.0, 2.0];
        let cols: Vec<Vec<f64>> = vec![];
        assert!(MultiNadarayaWatson::new(&cols, &y, Gaussian, vec![]).is_err());
    }
}
