//! Small internal utilities: a dependency-free PRNG and float helpers.

/// A SplitMix64 pseudo-random number generator.
///
/// Used internally (e.g. for multistart optimiser initial values and
/// quicksort pivot scrambling) so that `kcv-core` stays free of a `rand`
/// dependency while remaining deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → [0,1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a float uniformly distributed in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns an index uniformly distributed in `0..n` (`n > 0`).
    pub fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Neumaier's improved Kahan–Babuška compensated summation.
///
/// Keeps a running compensation term alongside the primary sum so that the
/// accumulated rounding error stays `O(ε)` independent of the number of
/// addends, where plain summation drifts by `O(n·ε)`. Unlike classic Kahan
/// summation it also survives the case where the incoming term is larger
/// than the running sum (the branch picks which operand's low-order bits
/// were lost), so it is safe for sign-alternating and wildly-scaled inputs
/// — exactly what the prefix-moment tables of [`crate::cv::prefix`] feed it.
///
/// ```
/// use kcv_core::util::NeumaierSum;
///
/// let mut s = NeumaierSum::default();
/// for v in [1.0, 1e100, 1.0, -1e100] {
///     s.add(v);
/// }
/// // Plain (and Kahan) summation returns 0.0 here; Neumaier recovers 2.0.
/// assert_eq!(s.value(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` with compensation.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Clears the sum back to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.sum = 0.0;
        self.comp = 0.0;
    }
}

/// Returns the min and max of a slice, ignoring nothing (inputs are assumed
/// finite; validate first). Returns `None` for an empty slice.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let first = *xs.first()?;
    let mut lo = first;
    let mut hi = first;
    for &v in &xs[1..] {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Some((lo, hi))
}

/// Mean of a slice (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (0.0 for fewer than two observations).
pub fn variance(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Interquartile range computed by linear interpolation (type-7 quantiles,
/// matching R's default).
pub fn interquartile_range(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25)
}

/// Type-7 quantile of an already-sorted slice.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&p));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// True when `a` and `b` agree to within `rel` relative tolerance or `abs`
/// absolute tolerance.
pub fn approx_eq(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v} out of [0,1)");
        }
    }

    #[test]
    fn splitmix_range_respects_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = rng.next_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn splitmix_f64_roughly_uniform() {
        let mut rng = SplitMix64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn min_max_and_moments() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_eq!(min_max(&xs), Some((1.0, 9.0)));
        assert!(min_max(&[]).is_none());
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-15);
        assert!((variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-15);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn quantiles_match_r_type7() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        // R: quantile(1:4, .25) = 1.75, quantile(1:4, .75) = 3.25
        assert!((quantile_sorted(&sorted, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile_sorted(&sorted, 0.75) - 3.25).abs() < 1e-12);
        assert!((interquartile_range(&[4.0, 1.0, 3.0, 2.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neumaier_recovers_catastrophic_cancellation() {
        // The canonical case where both plain and Kahan summation lose the
        // small terms entirely.
        let mut s = NeumaierSum::new();
        for v in [1.0, 1e100, 1.0, -1e100] {
            s.add(v);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn neumaier_beats_plain_summation_on_long_runs() {
        // 0.1 is inexact in binary; a long plain sum drifts, the
        // compensated sum stays within one ulp of the correctly rounded
        // total.
        let n = 1_000_000u64;
        let mut plain = 0.0f64;
        let mut comp = NeumaierSum::new();
        for _ in 0..n {
            plain += 0.1;
            comp.add(0.1);
        }
        let exact = n as f64 * 0.1;
        assert!((comp.value() - exact).abs() <= (plain - exact).abs());
        assert!((comp.value() - exact).abs() < 1e-9);
    }

    #[test]
    fn neumaier_reset_and_default_are_zero() {
        let mut s = NeumaierSum::default();
        assert_eq!(s.value(), 0.0);
        s.add(3.5);
        assert_eq!(s.value(), 3.5);
        s.reset();
        assert_eq!(s.value(), 0.0);
    }

    #[test]
    fn neumaier_matches_plain_sum_on_exact_inputs() {
        // Power-of-two lattice values sum exactly; compensation must not
        // perturb an already-exact result.
        let mut s = NeumaierSum::new();
        for v in [0.25, 0.5, -0.125, 2.0] {
            s.add(v);
        }
        assert_eq!(s.value(), 0.25 + 0.5 - 0.125 + 2.0);
    }

    #[test]
    fn approx_eq_behaviour() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-10, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-10, 1e-12));
        assert!(approx_eq(0.0, 1e-14, 0.0, 1e-12));
    }
}
