//! Pointwise confidence intervals for kernel density estimates — the
//! remaining extension the paper names ("leave-one-out cross-validated
//! confidence intervals for kernel density estimates").
//!
//! The asymptotic pointwise variance of the KDE is
//! `Var(f̂(x)) ≈ f(x)·R(K)/(n·h)`; plugging in `f̂(x)` gives the standard
//! first-order band. The bandwidth is expected to come from the LSCV
//! machinery in this module's parent.

use super::Kde;
use crate::ci::normal_quantile;
use crate::error::{Error, Result};
use crate::kernels::Kernel;

/// A pointwise confidence band for a density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityBand {
    /// Evaluation points.
    pub points: Vec<f64>,
    /// Density estimates.
    pub densities: Vec<f64>,
    /// Lower band limits (clamped at 0 — densities are non-negative).
    pub lower: Vec<f64>,
    /// Upper band limits.
    pub upper: Vec<f64>,
    /// The normal critical value used.
    pub z: f64,
}

/// Builds the pointwise `level` confidence band for the KDE of `x` at
/// bandwidth `h`, over `points`.
pub fn density_band<K: Kernel + Clone>(
    x: &[f64],
    kernel: &K,
    h: f64,
    points: &[f64],
    level: f64,
) -> Result<DensityBand> {
    if !(0.0 < level && level < 1.0) {
        return Err(Error::InvalidGrid("confidence level must be in (0,1)"));
    }
    let kde = Kde::new(x, kernel.clone(), h)?;
    let n = x.len() as f64;
    let z = normal_quantile(0.5 + level / 2.0);
    let roughness = kernel.roughness();
    let mut densities = Vec::with_capacity(points.len());
    let mut lower = Vec::with_capacity(points.len());
    let mut upper = Vec::with_capacity(points.len());
    for &p in points {
        let f_hat = kde.evaluate(p);
        let se = (f_hat * roughness / (n * h)).sqrt();
        densities.push(f_hat);
        lower.push((f_hat - z * se).max(0.0));
        upper.push(f_hat + z * se);
    }
    Ok(DensityBand { points: points.to_vec(), densities, lower, upper, z })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Epanechnikov;
    use crate::util::SplitMix64;

    fn uniform_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64()).collect()
    }

    #[test]
    fn band_brackets_the_estimate() {
        let x = uniform_sample(500, 1);
        let points: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();
        let band = density_band(&x, &Epanechnikov, 0.1, &points, 0.95).unwrap();
        for i in 0..points.len() {
            assert!(band.lower[i] <= band.densities[i]);
            assert!(band.densities[i] <= band.upper[i]);
            assert!(band.lower[i] >= 0.0);
        }
    }

    #[test]
    fn band_mostly_covers_the_uniform_density() {
        // True density is 1 on [0,1]; interior coverage should be high.
        let x = uniform_sample(2_000, 2);
        let points: Vec<f64> = (15..=85).map(|i| i as f64 / 100.0).collect();
        let band = density_band(&x, &Epanechnikov, 0.08, &points, 0.95).unwrap();
        let covered = points
            .iter()
            .enumerate()
            .filter(|&(i, _)| band.lower[i] <= 1.0 && 1.0 <= band.upper[i])
            .count();
        let rate = covered as f64 / points.len() as f64;
        assert!(rate > 0.8, "coverage {rate}");
    }

    #[test]
    fn band_is_zero_width_where_there_is_no_mass() {
        let x = uniform_sample(100, 3);
        let band = density_band(&x, &Epanechnikov, 0.05, &[10.0], 0.95).unwrap();
        assert_eq!(band.densities[0], 0.0);
        assert_eq!(band.lower[0], 0.0);
        assert_eq!(band.upper[0], 0.0);
    }

    #[test]
    fn band_tightens_with_n() {
        let width = |n: usize| {
            let x = uniform_sample(n, 4);
            let band = density_band(&x, &Epanechnikov, 0.1, &[0.5], 0.95).unwrap();
            band.upper[0] - band.lower[0]
        };
        assert!(width(4_000) < width(250) / 2.0);
    }

    #[test]
    fn invalid_level_rejected() {
        let x = uniform_sample(50, 5);
        assert!(density_band(&x, &Epanechnikov, 0.1, &[0.5], 1.5).is_err());
    }
}
