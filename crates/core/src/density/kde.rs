//! The kernel density estimator.

use crate::error::{validate_bandwidth, Error, Result};
use crate::kernels::Kernel;

/// A kernel density estimate `f̂(x) = (1/nh) Σ_l K((x − X_l)/h)`.
#[derive(Debug, Clone)]
pub struct Kde<'a, K: Kernel> {
    x: &'a [f64],
    kernel: K,
    bandwidth: f64,
}

impl<'a, K: Kernel> Kde<'a, K> {
    /// Constructs the estimator.
    pub fn new(x: &'a [f64], kernel: K, bandwidth: f64) -> Result<Self> {
        if x.is_empty() {
            return Err(Error::SampleTooSmall { n: 0, required: 1 });
        }
        if let Some(i) = x.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteData { which: "x", index: i });
        }
        validate_bandwidth(bandwidth)?;
        Ok(Self { x, kernel, bandwidth })
    }

    /// The bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x0`.
    pub fn evaluate(&self, x0: f64) -> f64 {
        let inv_h = 1.0 / self.bandwidth;
        let sum: f64 = self.x.iter().map(|&xl| self.kernel.eval((x0 - xl) * inv_h)).sum();
        sum * inv_h / self.x.len() as f64
    }

    /// Leave-one-out density estimate at sample point `i`:
    /// `f̂_{-i}(X_i) = (1/((n−1)h)) Σ_{l≠i} K((X_i − X_l)/h)`.
    pub fn loo_evaluate(&self, i: usize) -> f64 {
        assert!(i < self.x.len(), "loo index {i} out of bounds");
        let n = self.x.len();
        if n == 1 {
            return 0.0;
        }
        let inv_h = 1.0 / self.bandwidth;
        let xi = self.x[i];
        let sum: f64 = self
            .x
            .iter()
            .enumerate()
            .filter(|(l, _)| *l != i)
            .map(|(_, &xl)| self.kernel.eval((xi - xl) * inv_h))
            .sum();
        sum * inv_h / (n - 1) as f64
    }

    /// Density estimates over `count` evenly spaced points on `[lo, hi]`,
    /// returned as `(points, densities)`.
    pub fn evaluate_grid(&self, lo: f64, hi: f64, count: usize) -> (Vec<f64>, Vec<f64>) {
        let points: Vec<f64> = if count <= 1 {
            vec![lo]
        } else {
            let step = (hi - lo) / (count - 1) as f64;
            (0..count).map(|i| lo + step * i as f64).collect()
        };
        let densities = points.iter().map(|&p| self.evaluate(p)).collect();
        (points, densities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Epanechnikov, Gaussian};
    use crate::util::SplitMix64;

    #[test]
    fn density_is_nonnegative_and_integrates_to_one() {
        let mut rng = SplitMix64::new(61);
        let x: Vec<f64> = (0..200).map(|_| rng.next_f64()).collect();
        let kde = Kde::new(&x, Epanechnikov, 0.1).unwrap();
        let (points, dens) = kde.evaluate_grid(-0.5, 1.5, 2001);
        assert!(dens.iter().all(|&d| d >= 0.0));
        let step = points[1] - points[0];
        let integral: f64 = dens.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn density_peaks_where_data_concentrates() {
        let x = [0.0, 0.01, 0.02, 0.03, 1.0];
        let kde = Kde::new(&x, Gaussian, 0.05).unwrap();
        assert!(kde.evaluate(0.015) > kde.evaluate(0.5));
        assert!(kde.evaluate(0.015) > kde.evaluate(1.0));
    }

    #[test]
    fn single_point_density_is_scaled_kernel() {
        let x = [0.5];
        let kde = Kde::new(&x, Epanechnikov, 0.2).unwrap();
        // f̂(0.5) = K(0)/h = 0.75/0.2.
        assert!((kde.evaluate(0.5) - 0.75 / 0.2).abs() < 1e-12);
        assert_eq!(kde.evaluate(2.0), 0.0);
    }

    #[test]
    fn loo_excludes_self_mass() {
        let x = [0.0, 1.0];
        let kde = Kde::new(&x, Epanechnikov, 0.5).unwrap();
        // Neither point sees the other within h = 0.5 → LOO density 0.
        assert_eq!(kde.loo_evaluate(0), 0.0);
        // But the plain density at X_0 is positive (its own mass).
        assert!(kde.evaluate(0.0) > 0.0);
    }

    #[test]
    fn loo_matches_direct_computation() {
        let mut rng = SplitMix64::new(62);
        let x: Vec<f64> = (0..50).map(|_| rng.next_f64()).collect();
        let h = 0.15;
        let kde = Kde::new(&x, Epanechnikov, h).unwrap();
        for i in [0usize, 10, 49] {
            let mut direct = 0.0;
            for (l, &xl) in x.iter().enumerate() {
                if l != i {
                    direct += Epanechnikov.eval((x[i] - xl) / h);
                }
            }
            direct /= (x.len() - 1) as f64 * h;
            assert!((kde.loo_evaluate(i) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Kde::new(&[], Epanechnikov, 0.1).is_err());
        assert!(Kde::new(&[f64::NAN], Epanechnikov, 0.1).is_err());
        assert!(Kde::new(&[1.0], Epanechnikov, 0.0).is_err());
    }
}
