//! Kernel density estimation and least-squares cross-validation bandwidth
//! selection — the extension the paper names explicitly ("the methods
//! developed here for least-squares cross-validation can be applied to …
//! optimal bandwidth selection for kernel density estimation").
//!
//! The LSCV objective is
//!
//! ```text
//! LSCV(h) = ∫ f̂² − (2/n) Σ_i f̂_{-i}(X_i)
//!         = [Σ_i Σ_{l≠i} K̄(d_il/h) + n·K̄(0)] / (n²h)
//!           − 2 · Σ_i Σ_{l≠i} K(d_il/h) / (n(n−1)h)
//! ```
//!
//! where `K̄ = K∗K` is the convolution kernel. For the Epanechnikov kernel
//! both `K` (radius 1, degree 2) and `K̄` (radius 2, degree 5) are
//! polynomials in `|u|`, so the paper's sorted sweep applies verbatim with
//! two advancing pointers per observation.

mod ci;
mod kde;
mod lscv;

pub use ci::{density_band, DensityBand};
pub use kde::Kde;
pub use lscv::{lscv_profile_naive, lscv_profile_sorted, LscvProfile, LscvSelector};
