//! Least-squares cross-validation for KDE bandwidths via the sorted sweep.

use crate::error::{validate_bandwidth, Error, Result};
use crate::grid::BandwidthGrid;
use crate::kernels::{Epanechnikov, EpanechnikovConvolution, Kernel, PolynomialKernel};
use crate::sort::sort_with_aux;

/// The LSCV scores over a bandwidth grid.
#[derive(Debug, Clone, PartialEq)]
pub struct LscvProfile {
    /// Candidate bandwidths, ascending.
    pub bandwidths: Vec<f64>,
    /// `LSCV(h)` for each candidate (can be negative; smaller is better).
    pub scores: Vec<f64>,
    /// Sample size.
    pub n: usize,
}

impl LscvProfile {
    /// The grid optimum (ties resolve to the smallest bandwidth).
    pub fn argmin(&self) -> Result<(usize, f64, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, (&h, &s)) in self.bandwidths.iter().zip(&self.scores).enumerate() {
            if !s.is_finite() {
                continue;
            }
            if best.is_none_or(|(_, _, bs)| s < bs) {
                best = Some((i, h, s));
            }
        }
        best.ok_or(Error::NoValidBandwidth)
    }
}

fn validate_x(x: &[f64]) -> Result<usize> {
    if x.len() < 2 {
        return Err(Error::SampleTooSmall { n: x.len(), required: 2 });
    }
    if let Some(i) = x.iter().position(|v| !v.is_finite()) {
        return Err(Error::NonFiniteData { which: "x", index: i });
    }
    Ok(x.len())
}

/// Naive `O(k·n²)` LSCV profile for any kernel/convolution pair — the
/// reference the sorted version is tested against, and the only option for
/// the Gaussian.
pub fn lscv_profile_naive<K: Kernel, C: Kernel>(
    x: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
    convolution: &C,
) -> Result<LscvProfile> {
    let n = validate_x(x)?;
    let nf = n as f64;
    let mut scores = Vec::with_capacity(grid.len());
    for &h in grid.values() {
        validate_bandwidth(h)?;
        let inv_h = 1.0 / h;
        let mut sum_k = 0.0;
        let mut sum_c = 0.0;
        for i in 0..n {
            for l in 0..n {
                if l == i {
                    continue;
                }
                let u = (x[i] - x[l]) * inv_h;
                sum_k += kernel.eval(u);
                sum_c += convolution.eval(u);
            }
        }
        let integral_fhat_sq = (sum_c + nf * convolution.eval(0.0)) / (nf * nf * h);
        let loo_term = 2.0 * sum_k / (nf * (nf - 1.0) * h);
        scores.push(integral_fhat_sq - loo_term);
    }
    Ok(LscvProfile { bandwidths: grid.values().to_vec(), scores, n })
}

/// Sorted-sweep LSCV profile: `O(n log n + (n + k)·deg)` per observation —
/// the paper's grid-search trick applied to the density problem it names as
/// future work. Requires both the kernel and its self-convolution to be
/// polynomial in `|u|` (true for Epanechnikov, Uniform, Triangular, …).
pub fn lscv_profile_sorted<K: PolynomialKernel, C: PolynomialKernel>(
    x: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
    convolution: &C,
) -> Result<LscvProfile> {
    let n = validate_x(x)?;
    let nf = n as f64;
    let k_coeffs = kernel.coeffs();
    let c_coeffs = convolution.coeffs();
    let k_radius = kernel.radius();
    let c_radius = convolution.radius();
    let k_deg = k_coeffs.len() - 1;
    let c_deg = c_coeffs.len() - 1;
    let hs = grid.values();
    let kk = hs.len();

    // Pairwise totals Σ_i Σ_{l≠i} K and Σ_i Σ_{l≠i} K̄ per bandwidth.
    let mut total_k = vec![0.0; kk];
    let mut total_c = vec![0.0; kk];

    let mut dist: Vec<f64> = Vec::with_capacity(n - 1);
    let mut dummy: Vec<f64> = Vec::with_capacity(n - 1);
    let mut sk = vec![0.0; k_deg + 1];
    let mut sc = vec![0.0; c_deg + 1];

    for i in 0..n {
        dist.clear();
        dummy.clear();
        for (l, &xl) in x.iter().enumerate() {
            if l != i {
                dist.push((x[i] - xl).abs());
                dummy.push(0.0);
            }
        }
        sort_with_aux(&mut dist, &mut dummy);
        sk.fill(0.0);
        sc.fill(0.0);
        let mut pk = 0usize;
        let mut pc = 0usize;
        for (m, &h) in hs.iter().enumerate() {
            let inv_h = 1.0 / h;
            // Same support predicate as pointwise evaluation (`d·(1/h) ≤ r`)
            // so boundary points are classified identically to the naive
            // path; see `cv::sorted` for the rationale.
            while pk < dist.len() && dist[pk] * inv_h <= k_radius {
                let d = dist[pk];
                let mut pw = 1.0;
                for s in sk.iter_mut() {
                    *s += pw;
                    pw *= d;
                }
                pk += 1;
            }
            while pc < dist.len() && dist[pc] * inv_h <= c_radius {
                let d = dist[pc];
                let mut pw = 1.0;
                for s in sc.iter_mut() {
                    *s += pw;
                    pw *= d;
                }
                pc += 1;
            }
            let mut hp = 1.0;
            let mut acc_k = 0.0;
            for (j, &c) in k_coeffs.iter().enumerate() {
                acc_k += c * hp * sk[j];
                hp *= inv_h;
            }
            let mut hp = 1.0;
            let mut acc_c = 0.0;
            for (j, &c) in c_coeffs.iter().enumerate() {
                acc_c += c * hp * sc[j];
                hp *= inv_h;
            }
            total_k[m] += acc_k;
            total_c[m] += acc_c;
        }
    }

    let c_zero = convolution.eval(0.0);
    let scores = hs
        .iter()
        .enumerate()
        .map(|(m, &h)| {
            let integral_fhat_sq = (total_c[m] + nf * c_zero) / (nf * nf * h);
            let loo_term = 2.0 * total_k[m] / (nf * (nf - 1.0) * h);
            integral_fhat_sq - loo_term
        })
        .collect();

    Ok(LscvProfile { bandwidths: hs.to_vec(), scores, n })
}

/// LSCV bandwidth selector for the Epanechnikov KDE, using the sorted sweep.
#[derive(Debug, Clone)]
pub struct LscvSelector {
    grid_size: usize,
}

impl LscvSelector {
    /// Creates a selector evaluating `grid_size` candidate bandwidths on the
    /// paper-default grid.
    pub fn new(grid_size: usize) -> Self {
        Self { grid_size }
    }

    /// Selects the LSCV-optimal Epanechnikov bandwidth for sample `x`.
    pub fn select(&self, x: &[f64]) -> Result<(f64, LscvProfile)> {
        let grid = BandwidthGrid::paper_default(x, self.grid_size)?;
        let profile = lscv_profile_sorted(x, &grid, &Epanechnikov, &EpanechnikovConvolution)?;
        let (_, h, _) = profile.argmin()?;
        Ok((h, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Gaussian, GaussianConvolution};
    use crate::util::{approx_eq, SplitMix64};

    fn gaussian_mixture(n: usize, seed: u64) -> Vec<f64> {
        // Box–Muller bimodal mixture on which LSCV has a clear optimum.
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let u1: f64 = rng.next_f64().max(1e-12);
                let u2: f64 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                if i % 2 == 0 {
                    z * 0.3
                } else {
                    2.0 + z * 0.3
                }
            })
            .collect()
    }

    #[test]
    fn sorted_matches_naive_epanechnikov() {
        let x = gaussian_mixture(120, 71);
        let grid = BandwidthGrid::linear(0.05, 1.5, 40).unwrap();
        let sorted =
            lscv_profile_sorted(&x, &grid, &Epanechnikov, &EpanechnikovConvolution).unwrap();
        let naive =
            lscv_profile_naive(&x, &grid, &Epanechnikov, &EpanechnikovConvolution).unwrap();
        for m in 0..grid.len() {
            assert!(
                approx_eq(sorted.scores[m], naive.scores[m], 1e-9, 1e-11),
                "h={}: {} vs {}",
                grid.values()[m],
                sorted.scores[m],
                naive.scores[m]
            );
        }
    }

    #[test]
    fn lscv_optimum_is_interior_for_mixture_data() {
        let x = gaussian_mixture(300, 72);
        let grid = BandwidthGrid::linear(0.02, 3.0, 60).unwrap();
        let profile =
            lscv_profile_sorted(&x, &grid, &Epanechnikov, &EpanechnikovConvolution).unwrap();
        let (idx, h, _) = profile.argmin().unwrap();
        assert!(idx > 0 && idx < grid.len() - 1, "optimum at edge: h={h}");
        // A bimodal mixture with modes 2 apart needs h well below 2.
        assert!(h < 1.0, "h={h} too wide");
    }

    #[test]
    fn gaussian_lscv_works_via_naive_path() {
        let x = gaussian_mixture(80, 73);
        let grid = BandwidthGrid::linear(0.05, 1.0, 15).unwrap();
        let profile = lscv_profile_naive(&x, &grid, &Gaussian, &GaussianConvolution).unwrap();
        let (_, h, s) = profile.argmin().unwrap();
        assert!(h > 0.0 && s.is_finite());
    }

    #[test]
    fn lscv_score_approximates_ise_ranking() {
        // LSCV(h) + ∫f² estimates ISE(h); the LSCV-ranked best bandwidth
        // should yield a visibly better density estimate than a 10× wider
        // one. We check via the LSCV scores themselves (monotone proxy).
        let x = gaussian_mixture(200, 74);
        let grid = BandwidthGrid::linear(0.05, 3.0, 30).unwrap();
        let profile =
            lscv_profile_sorted(&x, &grid, &Epanechnikov, &EpanechnikovConvolution).unwrap();
        let (idx, _, best) = profile.argmin().unwrap();
        let last = *profile.scores.last().unwrap();
        assert!(best < last, "optimum must beat over-smoothed edge");
        assert!(idx < grid.len() - 1);
    }

    #[test]
    fn selector_end_to_end() {
        let x = gaussian_mixture(150, 75);
        let (h, profile) = LscvSelector::new(50).select(&x).unwrap();
        assert!(h > 0.0);
        assert_eq!(profile.bandwidths.len(), 50);
    }

    #[test]
    fn rejects_tiny_samples() {
        let grid = BandwidthGrid::from_values(vec![0.1]).unwrap();
        assert!(
            lscv_profile_sorted(&[1.0], &grid, &Epanechnikov, &EpanechnikovConvolution).is_err()
        );
    }
}
