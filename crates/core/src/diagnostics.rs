//! Fit diagnostics: residual summaries, R², and oracle comparisons against
//! a known truth function (used throughout the test-suite and the
//! benchmark harness's correctness checks).

use crate::estimate::RegressionEstimator;
use crate::util::mean;

/// Summary statistics of a fitted kernel regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitDiagnostics {
    /// Mean squared in-sample residual (over defined fits).
    pub mse: f64,
    /// In-sample R² (1 − SSR/SST over defined fits).
    pub r_squared: f64,
    /// Mean squared leave-one-out residual (over defined LOO fits).
    pub loo_mse: f64,
    /// Number of observations with a defined in-sample fit.
    pub fitted_count: usize,
    /// Number of observations with a defined leave-one-out fit.
    pub loo_count: usize,
}

/// Computes [`FitDiagnostics`] for `estimator` against responses `y`.
pub fn diagnostics<E: RegressionEstimator>(estimator: &E, y: &[f64]) -> FitDiagnostics {
    assert_eq!(estimator.len(), y.len(), "estimator and y length mismatch");
    let fitted = estimator.fitted();
    let mut ssr = 0.0;
    let mut defined_y = Vec::new();
    let mut fitted_count = 0usize;
    for (f, &yi) in fitted.iter().zip(y) {
        if let Some(g) = f {
            ssr += (yi - g) * (yi - g);
            defined_y.push(yi);
            fitted_count += 1;
        }
    }
    let mse = if fitted_count > 0 { ssr / fitted_count as f64 } else { f64::NAN };
    let ybar = mean(&defined_y);
    let sst: f64 = defined_y.iter().map(|&v| (v - ybar) * (v - ybar)).sum();
    let r_squared = if sst > 0.0 { 1.0 - ssr / sst } else { f64::NAN };

    let mut loo_ssr = 0.0;
    let mut loo_count = 0usize;
    for r in estimator.loo_residuals().into_iter().flatten() {
        loo_ssr += r * r;
        loo_count += 1;
    }
    let loo_mse = if loo_count > 0 { loo_ssr / loo_count as f64 } else { f64::NAN };

    FitDiagnostics { mse, r_squared, loo_mse, fitted_count, loo_count }
}

/// Mean squared error of the estimator against a known truth function over
/// `points` (skipping undefined fits); used for oracle checks that
/// CV-selected bandwidths beat badly misspecified ones.
pub fn oracle_mse<E: RegressionEstimator>(
    estimator: &E,
    points: &[f64],
    truth: impl Fn(f64) -> f64,
) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &p in points {
        if let Some(g) = estimator.predict(p) {
            let t = truth(p);
            sum += (g - t) * (g - t);
            count += 1;
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::NadarayaWatson;
    use crate::kernels::Epanechnikov;
    use crate::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn good_fit_has_high_r_squared() {
        let (x, y) = paper_dgp(500, 91);
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.08).unwrap();
        let d = diagnostics(&fit, &y);
        assert!(d.r_squared > 0.95, "R² {}", d.r_squared);
        assert!(d.mse < d.loo_mse, "in-sample MSE should beat LOO MSE");
        assert_eq!(d.fitted_count, 500);
    }

    #[test]
    fn oversmoothing_hurts_oracle_mse() {
        let (x, y) = paper_dgp(500, 92);
        let points: Vec<f64> = (5..=95).map(|i| i as f64 / 100.0).collect();
        let truth = |v: f64| 0.5 * v + 10.0 * v * v + 0.25;
        let good = NadarayaWatson::new(&x, &y, Epanechnikov, 0.08).unwrap();
        let bad = NadarayaWatson::new(&x, &y, Epanechnikov, 1.0).unwrap();
        assert!(oracle_mse(&good, &points, truth) < oracle_mse(&bad, &points, truth));
    }

    #[test]
    fn undersmoothing_hurts_loo_mse() {
        let (x, y) = paper_dgp(500, 93);
        let tight = NadarayaWatson::new(&x, &y, Epanechnikov, 0.002).unwrap();
        let good = NadarayaWatson::new(&x, &y, Epanechnikov, 0.08).unwrap();
        let dt = diagnostics(&tight, &y);
        let dg = diagnostics(&good, &y);
        assert!(dt.loo_mse > dg.loo_mse || dt.loo_count < dg.loo_count);
    }

    #[test]
    fn empty_fits_produce_nans_not_panics() {
        let x = [0.0, 10.0];
        let y = [1.0, 2.0];
        let fit = NadarayaWatson::new(&x, &y, Epanechnikov, 0.5).unwrap();
        let d = diagnostics(&fit, &y);
        // Each point sees only itself in-sample; LOO sees nothing.
        assert_eq!(d.loo_count, 0);
        assert!(d.loo_mse.is_nan());
    }
}
