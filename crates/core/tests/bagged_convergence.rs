//! Statistical acceptance tests for the bagged selector (ISSUE 7).
//!
//! The headline test reproduces the Barreiro-Ures et al. setup on the paper
//! DGP at n = 50,000: bagging with B = 25 bags of r = 2,000 (prefix engine)
//! must land within the documented tolerance of the full-data prefix
//! selection. The tolerance (15% relative) reflects two error sources the
//! module docs derive: subsample noise of the C_h estimate (shrinks like
//! 1/√B) and the finite-sample error of the (r/n)^{1/5} rescaling law,
//! which is exact only in the AMISE limit. Measured gaps are 1.3% (seed 42,
//! mean combiner) and 4.9% (seed 43, median), so 15% is a stable bound, not
//! a tuned one.
//!
//! The proptest pins the degenerate corner: r = n, B = 1 must be
//! *bit-identical* to the underlying strategy (full sample in original
//! order, rescale factor exactly 1.0, mean of one element exact).

use kcv_core::prelude::*;
// Explicit import: both preludes glob-export a `Strategy` (the grid-search
// enum here, the generation trait in proptest); the named import wins.
use kcv_core::select::Strategy;
use proptest::prelude::*;

/// Paper DGP: X ~ U(0,1), Y = 0.5X + 10X² + u, u ~ U(0, 0.5).
fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = kcv_core::util::SplitMix64::new(seed);
    let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
        .collect();
    (x, y)
}

#[test]
fn bagged_tracks_the_full_data_prefix_answer_at_fifty_thousand() {
    let n = 50_000;
    let k = 100;
    let (x, y) = paper_dgp(n, 42);

    let full = SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(k))
        .select(&x, &y)
        .unwrap();
    let bagged = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(k), 25, 2_000)
        .with_seed(42)
        .select_bagged(&x, &y)
        .unwrap();

    assert_eq!(bagged.bags.len(), 25);
    assert_eq!(bagged.rescale, (2_000f64 / 50_000f64).powf(0.2));

    let rel = (bagged.bandwidth - full.bandwidth).abs() / full.bandwidth;
    assert!(
        rel < 0.15,
        "bagged h = {} vs full-data h = {} (relative gap {:.3} exceeds the \
         documented 15% tolerance)",
        bagged.bandwidth,
        full.bandwidth,
        rel
    );
}

#[test]
fn median_combiner_tracks_the_full_data_answer_too() {
    let n = 50_000;
    let k = 100;
    let (x, y) = paper_dgp(n, 43);

    let full = SortedGridSearch::prefix(Epanechnikov, GridSpec::PaperDefault(k))
        .select(&x, &y)
        .unwrap();
    let bagged = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(k), 25, 2_000)
        .with_combiner(BagCombiner::Median)
        .with_seed(43)
        .select(&x, &y)
        .unwrap();

    let rel = (bagged.bandwidth - full.bandwidth).abs() / full.bandwidth;
    assert!(
        rel < 0.15,
        "median-combined bagged h = {} vs full-data h = {} (relative gap {rel:.3})",
        bagged.bandwidth,
        full.bandwidth
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bagging with r = n and B = 1 is bit-identical to the underlying
    /// strategy, for every engine the grid search offers.
    #[test]
    fn prop_full_size_single_bag_is_the_underlying_strategy(
        seed in 0u64..1_000,
        n in 20usize..200,
        k in 5usize..40,
    ) {
        let (x, y) = paper_dgp(n, seed);
        for strategy in [Strategy::SortedSweep, Strategy::MergedSweep, Strategy::PrefixMoments] {
            let direct = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(k))
                .with_strategy(strategy)
                .select(&x, &y)
                .unwrap();
            let bagged = BaggedSelector::new(Epanechnikov, GridSpec::PaperDefault(k), 1, n)
                .with_strategy(strategy)
                .with_seed(seed)
                .select(&x, &y)
                .unwrap();
            prop_assert_eq!(bagged.bandwidth, direct.bandwidth);
            prop_assert_eq!(bagged.score, direct.score);
            prop_assert_eq!(bagged.evaluations, direct.evaluations);
        }
    }
}
