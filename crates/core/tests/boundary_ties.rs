//! Regression test for exact support-boundary ties.
//!
//! Every CV strategy decides membership with the predicate `d/h ≤ r`; an
//! observation pair with `|x_i − x_l| == h·r` *exactly* sits on the closed
//! boundary and must be classified identically by all of them. The design
//! below lives on a power-of-two lattice so `d/h` is computed without
//! rounding: `0.25 / 0.25 = 1.0` exactly, making the tie real rather than
//! an artefact of float noise.
//!
//! Two kernels probe the two interesting boundary behaviours:
//! - `Uniform` has weight `0.5 > 0` at `|u| = r`, so a boundary neighbour
//!   changes the denominator — misclassifying it flips `included`.
//! - `Epanechnikov` has weight exactly `0` at `|u| = r`, so the boundary
//!   neighbour must be *counted as in-support yet weightless*: on this
//!   lattice the `h = 0.25` denominators collapse to exactly `0.0` and all
//!   observations are excluded — any strategy that drops (or double-counts)
//!   the tie by a strict inequality, or perturbs the arithmetic, disagrees.
//!
//! Because the lattice keeps all four strategies' arithmetic exact
//! (including the prefix sweep's midrange-centred moments), the scores are
//! asserted bitwise-equal, not just approximately.

use kcv_core::cv::{
    cv_profile_merged, cv_profile_naive, cv_profile_prefix, cv_profile_sorted, CvProfile,
};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::{Epanechnikov, PolynomialKernel, Uniform};

fn lattice() -> (Vec<f64>, Vec<f64>) {
    // Spacing 0.25: at h = 0.25 every adjacent pair is exactly on the
    // support boundary (d/h == 1 == r); at h = 0.5 adjacent pairs are
    // interior and next-nearest pairs are exactly on the boundary.
    let x = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    // Exact binary fractions so y-weighted sums stay exact too.
    let y = vec![1.0, 2.0, -1.0, 0.5, 3.0];
    (x, y)
}

fn all_strategies<K: PolynomialKernel + Clone>(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    kernel: &K,
) -> [(&'static str, CvProfile); 4] {
    [
        ("naive", cv_profile_naive(x, y, grid, kernel).unwrap()),
        ("sorted", cv_profile_sorted(x, y, grid, kernel).unwrap()),
        ("merged", cv_profile_merged(x, y, grid, kernel).unwrap()),
        ("prefix", cv_profile_prefix(x, y, grid, kernel).unwrap()),
    ]
}

fn assert_identical_classification(profiles: &[(&'static str, CvProfile)]) {
    let (ref_name, reference) = &profiles[0];
    for (name, p) in &profiles[1..] {
        assert_eq!(
            p.included, reference.included,
            "{name} classified boundary ties differently from {ref_name}"
        );
        for m in 0..reference.len() {
            assert_eq!(
                p.scores[m].to_bits(),
                reference.scores[m].to_bits(),
                "{name} vs {ref_name} score not bitwise equal at h={} ({} vs {})",
                reference.bandwidths[m],
                p.scores[m],
                reference.scores[m]
            );
        }
    }
}

#[test]
fn uniform_kernel_counts_exact_boundary_neighbours() {
    let (x, y) = lattice();
    let grid = BandwidthGrid::from_values(vec![0.25, 0.5]).unwrap();
    let profiles = all_strategies(&x, &y, &grid, &Uniform);
    assert_identical_classification(&profiles);
    // At h = 0.25 every observation's only in-support neighbours sit
    // exactly on the boundary with weight 0.5 > 0 — all five must be
    // included. A strict `<` predicate anywhere would exclude the two
    // endpoints (single boundary neighbour each) first.
    assert_eq!(profiles[0].1.included, vec![5, 5]);
}

#[test]
fn epanechnikov_kernel_gives_boundary_neighbours_zero_weight() {
    let (x, y) = lattice();
    let grid = BandwidthGrid::from_values(vec![0.25, 0.5]).unwrap();
    let profiles = all_strategies(&x, &y, &grid, &Epanechnikov);
    assert_identical_classification(&profiles);
    // At h = 0.25 each in-support neighbour has |u| = 1 exactly, where
    // Epanechnikov weight is 0.75·(1 − 1) = 0: denominators are exactly
    // zero and everyone is excluded. At h = 0.5 the adjacent neighbours
    // are interior (|u| = 0.5) and everyone is included.
    assert_eq!(profiles[0].1.included, vec![0, 5]);
    assert_eq!(profiles[0].1.scores[0], 0.0);
}

#[test]
fn boundary_ties_also_agree_at_radius_spanning_bandwidths() {
    // h = 0.125: d/h = 2 for adjacent pairs (outside r = 1) — nobody has a
    // neighbour, all excluded. h = 1.0: everything in support. Checks the
    // degenerate extremes classify identically too.
    let (x, y) = lattice();
    let grid = BandwidthGrid::from_values(vec![0.125, 1.0]).unwrap();
    for kernel_profiles in [
        all_strategies(&x, &y, &grid, &Uniform),
        all_strategies(&x, &y, &grid, &Epanechnikov),
    ] {
        assert_identical_classification(&kernel_profiles);
        assert_eq!(kernel_profiles[0].1.included[0], 0);
        assert_eq!(kernel_profiles[0].1.included[1], 5);
    }
}
