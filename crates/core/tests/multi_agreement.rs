//! Fast-vs-naive agreement for the multivariate fast-sum-updating CV
//! engine (ISSUE 8).
//!
//! `kcv_core::multi::fast` answers every `(bandwidth vector, observation)`
//! cell from prefix-moment structures instead of the naive product-kernel
//! double loop, so these tests pin the contract the selectors rely on:
//!
//! * **Scores** match the [`MultiNadarayaWatson`] oracle within the
//!   documented degree-scaled tolerance (same tiers as the univariate
//!   prefix strategy: the binomial recombination loses ~`deg` digits of
//!   cancellation headroom per axis).
//! * **Inclusion** (which observations have a defined leave-one-out fit)
//!   matches exactly on random data and on the adversarial lattices —
//!   the support predicate runs on the original coordinates in both
//!   engines.
//! * **Selection**: the first strict minimum over the shared grid is the
//!   same point, pinned on fixed seeds for d ∈ {1, 2, 3} and property
//!   tested across all polynomial kernels.
//! * **d = 1 degeneracy**: a one-column fast profile is *bit-for-bit* the
//!   univariate `cv_profile_prefix` over the same ascending grid.

use kcv_core::cv::cv_profile_prefix;
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::{polynomial_kernels, Epanechnikov, PolynomialKernel, Quartic};
use kcv_core::multi::{
    fast::cv_scores_fast, select_full_grid, select_full_grid_naive, MultiNadarayaWatson,
};
use kcv_core::util::{approx_eq, SplitMix64};
use proptest::prelude::*;

/// Random columns on (0,1) with a smooth anisotropic response.
fn dgp(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let cols: Vec<Vec<f64>> = (0..d).map(|_| (0..n).map(|_| rng.next_f64()).collect()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            cols.iter()
                .enumerate()
                .map(|(j, c)| (j + 1) as f64 * c[i] * c[i])
                .sum::<f64>()
                + 0.1 * rng.next_f64()
        })
        .collect();
    (cols, y)
}

/// Scores every bandwidth vector with the naive estimator — one
/// `cv_score_included` pass per grid point.
fn naive_scores<K: PolynomialKernel + Clone>(
    cols: &[Vec<f64>],
    y: &[f64],
    kernel: &K,
    h_vectors: &[Vec<f64>],
) -> (Vec<f64>, Vec<usize>) {
    h_vectors
        .iter()
        .map(|hs| {
            MultiNadarayaWatson::new(cols, y, kernel.clone(), hs.clone())
                .unwrap()
                .cv_score_included()
        })
        .unzip()
}

/// Cartesian product of one per-dimension bandwidth list, mirroring the
/// selector's mixed-radix order (first grid least significant).
fn cartesian(per_dim: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let total: usize = per_dim.iter().map(Vec::len).product();
    (0..total)
        .map(|mut idx| {
            per_dim
                .iter()
                .map(|g| {
                    let h = g[idx % g.len()];
                    idx /= g.len();
                    h
                })
                .collect()
        })
        .collect()
}

/// First strict minimum among grid points with someone included — the
/// selectors' tie-breaking rule, applied to an explicit score vector.
fn first_min(scores: &[f64], included: &[usize]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for g in 0..scores.len() {
        if included[g] == 0 {
            continue;
        }
        if best.is_none_or(|b| scores[g] < scores[b]) {
            best = Some(g);
        }
    }
    best
}

/// The documented degree-scaled relative tolerance for fast-vs-naive
/// scores (absolute floor 1e-9).
fn score_tol(deg: usize) -> f64 {
    match deg {
        0..=2 => 1e-6,
        3..=4 => 1e-4,
        _ => 1e-2,
    }
}

/// The smallest positive leave-one-out denominator mass across the
/// sample at one bandwidth vector, computed directly from kernel weights.
///
/// The documented tolerance applies to cells with non-negligible weight
/// mass: when every in-box neighbour sits at the support edge, the
/// product weight vanishes like `δ^(deg·d)` and the moment-differencing
/// engine's absolute roundoff in `num`/`den` is amplified arbitrarily in
/// the LOO ratio (same knife-edge for any moment-based sweep; the naive
/// engine computes `y_l` exactly there only because it sums the single
/// weight directly). Grid points whose minimum mass falls below the
/// threshold are compared on *inclusion* only.
fn min_positive_den(cols: &[Vec<f64>], kernel: &dyn PolynomialKernel, hs: &[f64]) -> f64 {
    let n = cols[0].len();
    let mut min_den = f64::INFINITY;
    for i in 0..n {
        let mut den = 0.0;
        for l in 0..n {
            if l == i {
                continue;
            }
            let mut w = 1.0;
            for (j, c) in cols.iter().enumerate() {
                w *= kernel.eval((c[i] - c[l]) / hs[j]);
            }
            den += w;
        }
        if den > 0.0 {
            min_den = min_den.min(den);
        }
    }
    min_den
}

#[test]
fn pinned_selection_is_identical_across_dimensions() {
    // Fixed seeds, Epanechnikov + Quartic: the fast selector must pick the
    // exact bandwidth vector the naive selector picks (the acceptance
    // criterion's "identical bandwidth vector").
    for d in 1..=3usize {
        let (cols, y) = dgp(90, d, 40 + d as u64);
        let grid: Vec<f64> = (1..=4).map(|i| i as f64 * 0.09).collect();
        let per_dim: Vec<Vec<f64>> = vec![grid; d];
        let fast = select_full_grid(&cols, &y, &Epanechnikov, &per_dim).unwrap();
        let naive = select_full_grid_naive(&cols, &y, &Epanechnikov, &per_dim).unwrap();
        assert_eq!(fast.bandwidths, naive.bandwidths, "d = {d}");

        let fast_q = select_full_grid(&cols, &y, &Quartic, &per_dim).unwrap();
        let naive_q = select_full_grid_naive(&cols, &y, &Quartic, &per_dim).unwrap();
        assert_eq!(fast_q.bandwidths, naive_q.bandwidths, "quartic, d = {d}");
    }
}

#[test]
fn d1_fast_path_is_bitwise_the_univariate_prefix_profile() {
    let (cols, y) = dgp(150, 1, 50);
    let grid = BandwidthGrid::paper_default(&cols[0], 25).unwrap();
    let profile = cv_profile_prefix(&cols[0], &y, &grid, &Epanechnikov).unwrap();
    let h_vectors: Vec<Vec<f64>> = grid.values().iter().map(|&h| vec![h]).collect();
    let (scores, included) = cv_scores_fast(&cols, &y, &Epanechnikov, &h_vectors).unwrap();
    assert_eq!(scores, profile.scores, "scores must be bit-for-bit");
    assert_eq!(included, profile.included);

    // And the d = 1 selector lands on the profile's argmin, bit-for-bit.
    let sel = select_full_grid(&cols, &y, &Epanechnikov, &[grid.values().to_vec()]).unwrap();
    let opt = profile.argmin().unwrap();
    assert_eq!(sel.bandwidths[0], opt.bandwidth);
    assert_eq!(sel.score, opt.score);
}

#[test]
fn d1_fast_path_unpermutes_a_shuffled_bandwidth_list() {
    // The d = 1 delegation sorts the requested bandwidths before running
    // the monotone univariate core; results must come back in input order.
    let (cols, y) = dgp(80, 1, 51);
    let hs = [0.3, 0.05, 0.6, 0.12, 0.3];
    let h_vectors: Vec<Vec<f64>> = hs.iter().map(|&h| vec![h]).collect();
    let (scores, included) = cv_scores_fast(&cols, &y, &Epanechnikov, &h_vectors).unwrap();
    let grid = BandwidthGrid::from_values(vec![0.05, 0.12, 0.3, 0.6]).unwrap();
    let profile = cv_profile_prefix(&cols[0], &y, &grid, &Epanechnikov).unwrap();
    for (g, &h) in hs.iter().enumerate() {
        let r = grid.values().iter().position(|&v| v == h).unwrap();
        assert_eq!(scores[g], profile.scores[r], "bandwidth {h}");
        assert_eq!(included[g], profile.included[r]);
    }
}

#[test]
fn duplicate_coordinate_lattice_agrees_exactly() {
    // Every coordinate on a dyadic 1/8 lattice with heavy duplication:
    // kernel weights, moments, and window predicates are all exact dyadic
    // arithmetic, so inclusion must match and scores stay at f64 noise.
    let n = 48;
    let mut rng = SplitMix64::new(52);
    let cols: Vec<Vec<f64>> = (0..2)
        .map(|_| (0..n).map(|_| (rng.next_u64() % 9) as f64 / 8.0).collect())
        .collect();
    let y: Vec<f64> = (0..n).map(|_| (rng.next_u64() % 16) as f64 / 4.0).collect();
    // Dyadic bandwidths, including ones placing lattice points exactly on
    // the support boundary (|Δ| = h·r with r = 1).
    let per_dim = vec![vec![0.125, 0.25, 0.5, 1.0], vec![0.125, 0.25, 0.5, 1.0]];
    let h_vectors = cartesian(&per_dim);
    let (fast_s, fast_i) = cv_scores_fast(&cols, &y, &Epanechnikov, &h_vectors).unwrap();
    let (naive_s, naive_i) = naive_scores(&cols, &y, &Epanechnikov, &h_vectors);
    assert_eq!(fast_i, naive_i, "inclusion must be exact on the dyadic lattice");
    for g in 0..h_vectors.len() {
        assert!(
            approx_eq(fast_s[g], naive_s[g], 1e-12, 1e-14),
            "lattice grid point {g}: {} vs {}",
            fast_s[g],
            naive_s[g]
        );
    }
}

#[test]
fn boundary_tie_lattice_agrees_for_every_polynomial_kernel() {
    // A regular 6×8 grid of points with spacing exactly h/2 at the largest
    // bandwidth: many |Δ| == h·radius ties per cell in both dimensions.
    let mut cols = vec![Vec::new(), Vec::new()];
    let mut y = Vec::new();
    for i in 0..6 {
        for j in 0..8 {
            cols[0].push(i as f64 * 0.25);
            cols[1].push(j as f64 * 0.25);
            y.push((i * 8 + j) as f64 / 8.0);
        }
    }
    let h_vectors = cartesian(&[vec![0.25, 0.5], vec![0.25, 0.5]]);
    for kernel in polynomial_kernels() {
        let (fast_s, fast_i) = cv_scores_fast(&cols, &y, &*kernel, &h_vectors).unwrap();
        let (naive_s, naive_i): (Vec<f64>, Vec<usize>) = h_vectors
            .iter()
            .map(|hs| {
                MultiNadarayaWatson::new(&cols, &y, &*kernel, hs.clone())
                    .unwrap()
                    .cv_score_included()
            })
            .unzip();
        assert_eq!(fast_i, naive_i, "{}: boundary ties must classify identically", kernel.name());
        let tol = score_tol(kernel.coeffs().len() - 1);
        for g in 0..h_vectors.len() {
            assert!(
                approx_eq(fast_s[g], naive_s[g], tol, 1e-9),
                "{} grid point {g}: {} vs {}",
                kernel.name(),
                fast_s[g],
                naive_s[g]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fast scores track the naive oracle across dimensions and kernels,
    /// and the first-strict-minimum selection computed from the fast
    /// profile is (up to score tolerance) as good as the naive optimum.
    #[test]
    fn prop_fast_matches_naive_across_dims_and_kernels(
        seed in 0u64..10_000,
        d in 1usize..4,
        n in 8usize..40,
        s in 2usize..4,
    ) {
        let (cols, y) = dgp(n, d, seed);
        let grid: Vec<f64> = (1..=s).map(|i| i as f64 * 0.11).collect();
        let per_dim: Vec<Vec<f64>> = vec![grid; d];
        let h_vectors = cartesian(&per_dim);
        for kernel in polynomial_kernels() {
            let (fast_s, fast_i) = cv_scores_fast(&cols, &y, &*kernel, &h_vectors).unwrap();
            let (naive_s, naive_i): (Vec<f64>, Vec<usize>) = h_vectors
                .iter()
                .map(|hs| {
                    MultiNadarayaWatson::new(&cols, &y, &*kernel, hs.clone())
                        .unwrap()
                        .cv_score_included()
                })
                .unzip();
            prop_assert!(fast_i == naive_i, "{}: inclusion mismatch", kernel.name());
            let tol = score_tol(kernel.coeffs().len() - 1);
            // Weight-mass guard (see `min_positive_den`): cells whose
            // denominator mass nearly vanishes are inclusion-checked only.
            let mass: Vec<f64> = h_vectors
                .iter()
                .map(|hs| min_positive_den(&cols, &*kernel, hs))
                .collect();
            for g in 0..h_vectors.len() {
                if mass[g] < 1e-2 {
                    continue;
                }
                prop_assert!(
                    approx_eq(fast_s[g], naive_s[g], tol, 1e-9),
                    "{} grid point {}: {} vs {} (mass {})",
                    kernel.name(), g, fast_s[g], naive_s[g], mass[g]
                );
            }
            // Selection agreement, robust to near-ties: the naive score at
            // the fast argmin must match the naive optimum within the same
            // tolerance (exact argmin equality is pinned on fixed seeds).
            if let (Some(f), Some(nv)) =
                (first_min(&fast_s, &fast_i), first_min(&naive_s, &naive_i))
            {
                if mass[f] >= 1e-2 && mass[nv] >= 1e-2 {
                    prop_assert!(
                        approx_eq(naive_s[f], naive_s[nv], tol, 1e-9),
                        "{}: fast argmin {} scores {} vs naive optimum {} at {}",
                        kernel.name(), f, naive_s[f], naive_s[nv], nv
                    );
                }
            }
        }
    }
}
