//! Counter-correctness tests for the observability layer.
//!
//! Only compiled with `--features metrics`. Every measured run installs its
//! own [`kcv_obs::Recorder`], whose counters are private to the run — no
//! `exclusive()` serialisation against other tests is needed, and the suite
//! runs correctly on any number of test threads.

#![cfg(feature = "metrics")]

use kcv_core::cv::{
    cv_profile_merged, cv_profile_merged_par, cv_profile_naive, cv_profile_naive_par,
    cv_profile_prefix, cv_profile_prefix_par, cv_profile_sorted, cv_profile_sorted_par,
};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_core::sort::sort_with_aux;
use kcv_core::util::SplitMix64;
use kcv_obs::{Counter, Recorder};

/// Runs `f` under a fresh recorder and hands the recorder back for
/// assertions: the snapshot is exactly `f`'s delta, whatever else the test
/// harness runs concurrently.
fn record(f: impl FnOnce()) -> Recorder {
    let recorder = Recorder::new();
    let scope = recorder.install();
    f();
    drop(scope);
    recorder
}

/// A fixture where every count is computable by hand: x on a unit grid,
/// arbitrary responses.
fn tiny_fixture() -> (Vec<f64>, Vec<f64>) {
    (vec![0.0, 0.3, 0.55, 1.0], vec![1.0, 2.0, 0.5, 1.5])
}

#[test]
fn naive_cv_counts_exactly_k_times_n_times_n_minus_1_kernel_evals() {
    let (x, y) = tiny_fixture();
    let n = x.len() as u64; // 4
    let k = 2u64;
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    let run = record(|| {
        cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    // The naive double sum evaluates K((X_i − X_l)/h) for every ordered
    // pair (i, l≠i) at every bandwidth: k·n·(n−1) = 2·4·3 = 24.
    assert_eq!(run.get(Counter::KernelEvals), k * n * (n - 1));
}

#[test]
fn sorted_sweep_counts_strictly_fewer_kernel_evals_than_naive() {
    let (x, y) = tiny_fixture();
    let n = x.len() as u64;
    let k = 2u64;
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    let naive_evals = record(|| {
        cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .get(Counter::KernelEvals);

    let sweep_evals = record(|| {
        cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .get(Counter::KernelEvals);

    // The sweep absorbs each neighbour into the running sums at most once
    // per observation, independent of k: ≤ n·(n−1), and strictly fewer
    // than the naive k·n·(n−1) for any k ≥ 2.
    assert_eq!(naive_evals, k * n * (n - 1));
    assert!(sweep_evals <= n * (n - 1), "sweep absorbed {sweep_evals}");
    assert!(
        sweep_evals < naive_evals,
        "sweep {sweep_evals} should beat naive {naive_evals}"
    );
}

#[test]
fn sweep_skip_count_complements_absorbed_terms() {
    let (x, y) = tiny_fixture();
    let n = x.len() as u64;
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();
    let k = grid.len() as u64;

    let run = record(|| {
        cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    let absorbed = run.get(Counter::KernelEvals);
    let skipped = run.get(Counter::LooTermsSkipped);

    // At each (i, h) the sweep partitions the n−1 leave-one-out terms into
    // in-support (absorbed at some h' ≤ h) and beyond-support (skipped), so
    // per-bandwidth absorbed-so-far + skipped = n−1. Summing over the grid:
    //   Σ_m (cumulative absorbed at m) + Σ_m skipped_m = k·n·(n−1),
    // which bounds skipped ≤ k·n·(n−1) − absorbed (equality iff everything
    // absorbed happens at the first bandwidth).
    assert!(absorbed + skipped <= k * n * (n - 1));
    assert!(skipped > 0, "h=0.4 leaves far pairs outside the support");
}

#[test]
fn parallel_strategies_count_the_same_totals_as_sequential() {
    let (x, y) = tiny_fixture();
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    let seq_naive = record(|| {
        cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .get(Counter::KernelEvals);

    let par_naive = record(|| {
        cv_profile_naive_par(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    assert_eq!(par_naive.get(Counter::KernelEvals), seq_naive);

    let seq = record(|| {
        cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    let par = record(|| {
        cv_profile_sorted_par(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    assert_eq!(par.get(Counter::KernelEvals), seq.get(Counter::KernelEvals));
    assert_eq!(par.get(Counter::SortComparisons), seq.get(Counter::SortComparisons));
}

fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
        .collect();
    (x, y)
}

#[test]
fn merged_sweep_sort_comparisons_are_one_global_argsort() {
    let (x, y) = paper_dgp(400, 51);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 30).unwrap();

    let merged_cmps = record(|| {
        cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .get(Counter::SortComparisons);

    // The merge-sweep's only comparison sort is the single global argsort
    // of x: O(n log n), never O(n² log n). std's stable sort does at most
    // ~n·log2(n) comparisons plus lower-order terms; 3·n·log2(n) is a safe
    // hard ceiling, and n² is unreachable by two orders of magnitude.
    let log2n = (n as f64).log2().ceil() as u64;
    assert!(
        merged_cmps <= 3 * n * log2n,
        "merged did {merged_cmps} comparisons, ceiling {}",
        3 * n * log2n
    );
    assert!(merged_cmps >= n - 1, "a real sort must compare: {merged_cmps}");
}

#[test]
fn merged_sweep_kernel_evals_equal_sorted_sweep() {
    let (x, y) = paper_dgp(300, 52);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 40).unwrap();

    let sorted = record(|| {
        cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    let merged = record(|| {
        cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    });

    // The support predicate `d·(1/h) ≤ r` is bitwise-identical between the
    // two sweeps, so the absorbed-neighbour (KernelEvals) and skipped-term
    // totals must agree exactly — only the sort comparisons differ.
    assert_eq!(merged.get(Counter::KernelEvals), sorted.get(Counter::KernelEvals));
    assert_eq!(merged.get(Counter::LooTermsSkipped), sorted.get(Counter::LooTermsSkipped));
    assert!(merged.get(Counter::KernelEvals) <= n * (n - 1));
}

#[test]
fn merged_parallel_counts_the_same_totals_as_sequential() {
    let (x, y) = paper_dgp(200, 53);
    let grid = BandwidthGrid::paper_default(&x, 25).unwrap();

    let seq = record(|| {
        cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    let par = record(|| {
        cv_profile_merged_par(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    assert_eq!(par.get(Counter::KernelEvals), seq.get(Counter::KernelEvals));
    assert_eq!(par.get(Counter::SortComparisons), seq.get(Counter::SortComparisons));
}

/// The acceptance bound of the merge-sweep PR: at `n = 2000, k = 100` the
/// whole profile's sort comparisons drop by ≥ 100× versus the sorted sweep
/// (one global `O(n log n)` argsort versus `n` per-observation
/// `O(n log n)` sorts — the asymptotic gap is a factor of ~n).
#[test]
fn merged_sweep_cuts_sort_comparisons_by_at_least_100x_at_n2000() {
    let (x, y) = paper_dgp(2_000, 54);
    let grid = BandwidthGrid::paper_default(&x, 100).unwrap();

    let sorted_cmps = record(|| {
        cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .get(Counter::SortComparisons);

    let merged_cmps = record(|| {
        cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .get(Counter::SortComparisons);

    assert!(merged_cmps > 0, "the global argsort must be counted");
    assert!(
        sorted_cmps >= 100 * merged_cmps,
        "expected ≥100× drop, got {sorted_cmps} vs {merged_cmps} ({}×)",
        sorted_cmps / merged_cmps.max(1)
    );
}

#[test]
fn merged_phase_timers_cover_argsort_and_merge() {
    let (x, y) = paper_dgp(50, 55);
    let grid = BandwidthGrid::paper_default(&x, 10).unwrap();

    let snap = record(|| {
        cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .snapshot();
    let argsort = snap.phases.iter().find(|p| p.name == "cv.argsort").expect("cv.argsort phase");
    assert_eq!(argsort.calls, 1, "exactly one global argsort");
    let merge = snap.phases.iter().find(|p| p.name == "cv.merge").expect("cv.merge phase");
    assert_eq!(merge.calls, 1);
    // No per-observation sort phase: the merge-sweep never enters cv.sort.
    assert!(snap.phases.iter().all(|p| p.name != "cv.sort"));
}

#[test]
fn prefix_sweep_counts_one_window_query_per_cell_and_zero_kernel_evals() {
    let (x, y) = paper_dgp(400, 61);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
    let k = grid.len() as u64;

    let run = record(|| {
        cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    // One support-window resolution per (observation, bandwidth) cell —
    // exactly n·k — and, since each costs at most ~2⌈log₂ n⌉ probes, the
    // total stays under the n·k·⌈log₂ n⌉ perf-gate ceiling with room to
    // spare.
    let queries = run.get(Counter::WindowQueries);
    assert_eq!(queries, n * k);
    let log2n = (n as f64).log2().ceil() as u64;
    assert!(queries <= n * k * log2n);
    // The tentpole claim: the prefix sweep touches no neighbours at all.
    assert_eq!(run.get(Counter::KernelEvals), 0);
}

#[test]
fn prefix_skip_count_covers_out_of_window_terms() {
    let (x, y) = paper_dgp(200, 62);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
    let k = grid.len() as u64;

    let run = record(|| {
        cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    // Per cell the prefix sweep skips n − (hi − lo) terms (everything
    // outside the window, including nothing of the per-neighbour work the
    // scan strategies do inside it) — bounded by the full n·k·n rectangle.
    let skipped = run.get(Counter::LooTermsSkipped);
    assert!(skipped > 0, "small bandwidths must leave terms outside");
    assert!(skipped <= n * k * n);
}

#[test]
fn prefix_phase_timers_cover_argsort_prefix_and_window() {
    let (x, y) = paper_dgp(50, 63);
    let grid = BandwidthGrid::paper_default(&x, 10).unwrap();

    let snap = record(|| {
        cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .snapshot();
    let argsort = snap.phases.iter().find(|p| p.name == "cv.argsort").expect("cv.argsort phase");
    assert_eq!(argsort.calls, 1, "exactly one global argsort");
    let build = snap.phases.iter().find(|p| p.name == "cv.prefix").expect("cv.prefix phase");
    assert_eq!(build.calls, 1, "tables built once");
    let window = snap.phases.iter().find(|p| p.name == "cv.window").expect("cv.window phase");
    assert_eq!(window.calls, 1);
    // Neither the per-observation sort nor the merge phase ever runs.
    assert!(snap.phases.iter().all(|p| p.name != "cv.sort" && p.name != "cv.merge"));
}

#[test]
fn prefix_parallel_counts_the_same_totals_as_sequential() {
    let (x, y) = paper_dgp(200, 64);
    let grid = BandwidthGrid::paper_default(&x, 25).unwrap();

    let seq = record(|| {
        cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    let par = record(|| {
        cv_profile_prefix_par(&x, &y, &grid, &Epanechnikov).unwrap();
    });
    assert_eq!(par.get(Counter::WindowQueries), seq.get(Counter::WindowQueries));
    assert_eq!(par.get(Counter::SortComparisons), seq.get(Counter::SortComparisons));
    assert_eq!(par.get(Counter::LooTermsSkipped), seq.get(Counter::LooTermsSkipped));
    assert_eq!(par.get(Counter::KernelEvals), 0);
}

#[test]
fn sort_comparisons_lower_bound_holds() {
    let mut keys: Vec<f64> = (0..100).rev().map(|i| i as f64).collect();
    let mut aux = vec![0.0; 100];

    let cmps = record(|| {
        sort_with_aux(&mut keys, &mut aux);
    })
    .get(Counter::SortComparisons);
    // Sorting 100 reversed keys needs at least n−1 comparisons; quicksort
    // with insertion-sort tails does a small multiple of n log n.
    assert!(cmps >= 99, "only {cmps} comparisons recorded");
    assert!(cmps < 100 * 100, "quadratic blowup: {cmps}");
}

#[test]
fn phase_timers_cover_sweep_and_sort() {
    let (x, y) = tiny_fixture();
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    let snap = record(|| {
        cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    })
    .snapshot();
    let sweep = snap.phases.iter().find(|p| p.name == "cv.sweep").expect("cv.sweep phase");
    assert_eq!(sweep.calls, 1);
    let sort = snap.phases.iter().find(|p| p.name == "cv.sort").expect("cv.sort phase");
    assert_eq!(sort.calls, x.len() as u64, "one per-observation sort each");
}

/// The tentpole's acceptance test: two instrumented CV runs executing
/// *concurrently* in one process must each report exactly the counters
/// their sequential run reports — bit-identical kernel_evals,
/// sort_comparisons, and window_queries. Before scoped recorders the
/// global counters interleaved and both runs saw a corrupted mixture.
#[test]
fn concurrent_instrumented_runs_see_only_their_own_counters() {
    let (xa, ya) = paper_dgp(300, 71);
    let grid_a = BandwidthGrid::paper_default(&xa, 20).unwrap();
    let (xb, yb) = paper_dgp(250, 72);
    let grid_b = BandwidthGrid::paper_default(&xb, 30).unwrap();

    // Sequential baselines, one recorder per run. Run A uses the parallel
    // sorted sweep and run B the parallel prefix sweep, so the test also
    // covers scope propagation into rayon workers.
    let key = |r: &Recorder| {
        (
            r.get(Counter::KernelEvals),
            r.get(Counter::SortComparisons),
            r.get(Counter::WindowQueries),
        )
    };
    let run_a = || {
        record(|| {
            cv_profile_sorted_par(&xa, &ya, &grid_a, &Epanechnikov).unwrap();
        })
    };
    let run_b = || {
        record(|| {
            cv_profile_prefix_par(&xb, &yb, &grid_b, &Epanechnikov).unwrap();
        })
    };
    let baseline_a = key(&run_a());
    let baseline_b = key(&run_b());
    // The two workloads are distinguishable, so cross-contamination cannot
    // cancel out.
    assert_ne!(baseline_a, baseline_b);
    assert!(baseline_a.0 > 0 && baseline_b.2 > 0);

    // Now the same two runs, genuinely concurrent, several times over to
    // give interleaving every chance to corrupt the deltas.
    for round in 0..5 {
        let (got_a, got_b) = std::thread::scope(|s| {
            let ha = s.spawn(|| key(&run_a()));
            let hb = s.spawn(|| key(&run_b()));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(got_a, baseline_a, "run A contaminated in round {round}");
        assert_eq!(got_b, baseline_b, "run B contaminated in round {round}");
    }
}
