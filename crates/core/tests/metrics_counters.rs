//! Counter-correctness tests for the observability layer.
//!
//! Only compiled with `--features metrics`; the counters are process-global,
//! so every test holds `kcv_obs::exclusive()` to serialise against any other
//! instrumented code in the same binary.

#![cfg(feature = "metrics")]

use kcv_core::cv::{
    cv_profile_merged, cv_profile_merged_par, cv_profile_naive, cv_profile_naive_par,
    cv_profile_prefix, cv_profile_prefix_par, cv_profile_sorted, cv_profile_sorted_par,
};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_core::sort::sort_with_aux;
use kcv_core::util::SplitMix64;
use kcv_obs::Counter;

/// A fixture where every count is computable by hand: x on a unit grid,
/// arbitrary responses.
fn tiny_fixture() -> (Vec<f64>, Vec<f64>) {
    (vec![0.0, 0.3, 0.55, 1.0], vec![1.0, 2.0, 0.5, 1.5])
}

#[test]
fn naive_cv_counts_exactly_k_times_n_times_n_minus_1_kernel_evals() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = tiny_fixture();
    let n = x.len() as u64; // 4
    let k = 2u64;
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    kcv_obs::reset();
    cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
    // The naive double sum evaluates K((X_i − X_l)/h) for every ordered
    // pair (i, l≠i) at every bandwidth: k·n·(n−1) = 2·4·3 = 24.
    assert_eq!(kcv_obs::get(Counter::KernelEvals), k * n * (n - 1));
}

#[test]
fn sorted_sweep_counts_strictly_fewer_kernel_evals_than_naive() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = tiny_fixture();
    let n = x.len() as u64;
    let k = 2u64;
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    kcv_obs::reset();
    cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
    let naive_evals = kcv_obs::get(Counter::KernelEvals);

    kcv_obs::reset();
    cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    let sweep_evals = kcv_obs::get(Counter::KernelEvals);

    // The sweep absorbs each neighbour into the running sums at most once
    // per observation, independent of k: ≤ n·(n−1), and strictly fewer
    // than the naive k·n·(n−1) for any k ≥ 2.
    assert_eq!(naive_evals, k * n * (n - 1));
    assert!(sweep_evals <= n * (n - 1), "sweep absorbed {sweep_evals}");
    assert!(
        sweep_evals < naive_evals,
        "sweep {sweep_evals} should beat naive {naive_evals}"
    );
}

#[test]
fn sweep_skip_count_complements_absorbed_terms() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = tiny_fixture();
    let n = x.len() as u64;
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();
    let k = grid.len() as u64;

    kcv_obs::reset();
    cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    let absorbed = kcv_obs::get(Counter::KernelEvals);
    let skipped = kcv_obs::get(Counter::LooTermsSkipped);

    // At each (i, h) the sweep partitions the n−1 leave-one-out terms into
    // in-support (absorbed at some h' ≤ h) and beyond-support (skipped), so
    // per-bandwidth absorbed-so-far + skipped = n−1. Summing over the grid:
    //   Σ_m (cumulative absorbed at m) + Σ_m skipped_m = k·n·(n−1),
    // which bounds skipped ≤ k·n·(n−1) − absorbed (equality iff everything
    // absorbed happens at the first bandwidth).
    assert!(absorbed + skipped <= k * n * (n - 1));
    assert!(skipped > 0, "h=0.4 leaves far pairs outside the support");
}

#[test]
fn parallel_strategies_count_the_same_totals_as_sequential() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = tiny_fixture();
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    kcv_obs::reset();
    cv_profile_naive(&x, &y, &grid, &Epanechnikov).unwrap();
    let seq_naive = kcv_obs::get(Counter::KernelEvals);

    kcv_obs::reset();
    cv_profile_naive_par(&x, &y, &grid, &Epanechnikov).unwrap();
    assert_eq!(kcv_obs::get(Counter::KernelEvals), seq_naive);

    kcv_obs::reset();
    cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    let seq_sweep = kcv_obs::get(Counter::KernelEvals);
    let seq_cmps = kcv_obs::get(Counter::SortComparisons);

    kcv_obs::reset();
    cv_profile_sorted_par(&x, &y, &grid, &Epanechnikov).unwrap();
    assert_eq!(kcv_obs::get(Counter::KernelEvals), seq_sweep);
    assert_eq!(kcv_obs::get(Counter::SortComparisons), seq_cmps);
}

fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
        .collect();
    (x, y)
}

#[test]
fn merged_sweep_sort_comparisons_are_one_global_argsort() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(400, 51);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 30).unwrap();

    kcv_obs::reset();
    cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    let merged_cmps = kcv_obs::get(Counter::SortComparisons);

    // The merge-sweep's only comparison sort is the single global argsort
    // of x: O(n log n), never O(n² log n). std's stable sort does at most
    // ~n·log2(n) comparisons plus lower-order terms; 3·n·log2(n) is a safe
    // hard ceiling, and n² is unreachable by two orders of magnitude.
    let log2n = (n as f64).log2().ceil() as u64;
    assert!(
        merged_cmps <= 3 * n * log2n,
        "merged did {merged_cmps} comparisons, ceiling {}",
        3 * n * log2n
    );
    assert!(merged_cmps >= n - 1, "a real sort must compare: {merged_cmps}");
}

#[test]
fn merged_sweep_kernel_evals_equal_sorted_sweep() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(300, 52);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 40).unwrap();

    kcv_obs::reset();
    cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    let sorted_evals = kcv_obs::get(Counter::KernelEvals);
    let sorted_skips = kcv_obs::get(Counter::LooTermsSkipped);

    kcv_obs::reset();
    cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    let merged_evals = kcv_obs::get(Counter::KernelEvals);
    let merged_skips = kcv_obs::get(Counter::LooTermsSkipped);

    // The support predicate `d·(1/h) ≤ r` is bitwise-identical between the
    // two sweeps, so the absorbed-neighbour (KernelEvals) and skipped-term
    // totals must agree exactly — only the sort comparisons differ.
    assert_eq!(merged_evals, sorted_evals);
    assert_eq!(merged_skips, sorted_skips);
    assert!(merged_evals <= n * (n - 1));
}

#[test]
fn merged_parallel_counts_the_same_totals_as_sequential() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(200, 53);
    let grid = BandwidthGrid::paper_default(&x, 25).unwrap();

    kcv_obs::reset();
    cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    let seq_evals = kcv_obs::get(Counter::KernelEvals);
    let seq_cmps = kcv_obs::get(Counter::SortComparisons);

    kcv_obs::reset();
    cv_profile_merged_par(&x, &y, &grid, &Epanechnikov).unwrap();
    assert_eq!(kcv_obs::get(Counter::KernelEvals), seq_evals);
    assert_eq!(kcv_obs::get(Counter::SortComparisons), seq_cmps);
}

/// The acceptance bound of the merge-sweep PR: at `n = 2000, k = 100` the
/// whole profile's sort comparisons drop by ≥ 100× versus the sorted sweep
/// (one global `O(n log n)` argsort versus `n` per-observation
/// `O(n log n)` sorts — the asymptotic gap is a factor of ~n).
#[test]
fn merged_sweep_cuts_sort_comparisons_by_at_least_100x_at_n2000() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(2_000, 54);
    let grid = BandwidthGrid::paper_default(&x, 100).unwrap();

    kcv_obs::reset();
    cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    let sorted_cmps = kcv_obs::get(Counter::SortComparisons);

    kcv_obs::reset();
    cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    let merged_cmps = kcv_obs::get(Counter::SortComparisons);

    assert!(merged_cmps > 0, "the global argsort must be counted");
    assert!(
        sorted_cmps >= 100 * merged_cmps,
        "expected ≥100× drop, got {sorted_cmps} vs {merged_cmps} ({}×)",
        sorted_cmps / merged_cmps.max(1)
    );
}

#[test]
fn merged_phase_timers_cover_argsort_and_merge() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(50, 55);
    let grid = BandwidthGrid::paper_default(&x, 10).unwrap();

    kcv_obs::reset();
    cv_profile_merged(&x, &y, &grid, &Epanechnikov).unwrap();
    let snap = kcv_obs::snapshot();
    let argsort = snap.phases.iter().find(|p| p.name == "cv.argsort").expect("cv.argsort phase");
    assert_eq!(argsort.calls, 1, "exactly one global argsort");
    let merge = snap.phases.iter().find(|p| p.name == "cv.merge").expect("cv.merge phase");
    assert_eq!(merge.calls, 1);
    // No per-observation sort phase: the merge-sweep never enters cv.sort.
    assert!(snap.phases.iter().all(|p| p.name != "cv.sort"));
}

#[test]
fn prefix_sweep_counts_one_window_query_per_cell_and_zero_kernel_evals() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(400, 61);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
    let k = grid.len() as u64;

    kcv_obs::reset();
    cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    // One support-window resolution per (observation, bandwidth) cell —
    // exactly n·k — and, since each costs at most ~2⌈log₂ n⌉ probes, the
    // total stays under the n·k·⌈log₂ n⌉ perf-gate ceiling with room to
    // spare.
    let queries = kcv_obs::get(Counter::WindowQueries);
    assert_eq!(queries, n * k);
    let log2n = (n as f64).log2().ceil() as u64;
    assert!(queries <= n * k * log2n);
    // The tentpole claim: the prefix sweep touches no neighbours at all.
    assert_eq!(kcv_obs::get(Counter::KernelEvals), 0);
}

#[test]
fn prefix_skip_count_covers_out_of_window_terms() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(200, 62);
    let n = x.len() as u64;
    let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
    let k = grid.len() as u64;

    kcv_obs::reset();
    cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    // Per cell the prefix sweep skips n − (hi − lo) terms (everything
    // outside the window, including nothing of the per-neighbour work the
    // scan strategies do inside it) — bounded by the full n·k·n rectangle.
    let skipped = kcv_obs::get(Counter::LooTermsSkipped);
    assert!(skipped > 0, "small bandwidths must leave terms outside");
    assert!(skipped <= n * k * n);
}

#[test]
fn prefix_phase_timers_cover_argsort_prefix_and_window() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(50, 63);
    let grid = BandwidthGrid::paper_default(&x, 10).unwrap();

    kcv_obs::reset();
    cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    let snap = kcv_obs::snapshot();
    let argsort = snap.phases.iter().find(|p| p.name == "cv.argsort").expect("cv.argsort phase");
    assert_eq!(argsort.calls, 1, "exactly one global argsort");
    let build = snap.phases.iter().find(|p| p.name == "cv.prefix").expect("cv.prefix phase");
    assert_eq!(build.calls, 1, "tables built once");
    let window = snap.phases.iter().find(|p| p.name == "cv.window").expect("cv.window phase");
    assert_eq!(window.calls, 1);
    // Neither the per-observation sort nor the merge phase ever runs.
    assert!(snap.phases.iter().all(|p| p.name != "cv.sort" && p.name != "cv.merge"));
}

#[test]
fn prefix_parallel_counts_the_same_totals_as_sequential() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = paper_dgp(200, 64);
    let grid = BandwidthGrid::paper_default(&x, 25).unwrap();

    kcv_obs::reset();
    cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    let seq_queries = kcv_obs::get(Counter::WindowQueries);
    let seq_cmps = kcv_obs::get(Counter::SortComparisons);
    let seq_skips = kcv_obs::get(Counter::LooTermsSkipped);

    kcv_obs::reset();
    cv_profile_prefix_par(&x, &y, &grid, &Epanechnikov).unwrap();
    assert_eq!(kcv_obs::get(Counter::WindowQueries), seq_queries);
    assert_eq!(kcv_obs::get(Counter::SortComparisons), seq_cmps);
    assert_eq!(kcv_obs::get(Counter::LooTermsSkipped), seq_skips);
    assert_eq!(kcv_obs::get(Counter::KernelEvals), 0);
}

#[test]
fn sort_comparisons_lower_bound_holds() {
    let _guard = kcv_obs::exclusive();
    let mut keys: Vec<f64> = (0..100).rev().map(|i| i as f64).collect();
    let mut aux = vec![0.0; 100];

    kcv_obs::reset();
    sort_with_aux(&mut keys, &mut aux);
    let cmps = kcv_obs::get(Counter::SortComparisons);
    // Sorting 100 reversed keys needs at least n−1 comparisons; quicksort
    // with insertion-sort tails does a small multiple of n log n.
    assert!(cmps >= 99, "only {cmps} comparisons recorded");
    assert!(cmps < 100 * 100, "quadratic blowup: {cmps}");
}

#[test]
fn phase_timers_cover_sweep_and_sort() {
    let _guard = kcv_obs::exclusive();
    let (x, y) = tiny_fixture();
    let grid = BandwidthGrid::from_values(vec![0.4, 0.8]).unwrap();

    kcv_obs::reset();
    cv_profile_sorted(&x, &y, &grid, &Epanechnikov).unwrap();
    let snap = kcv_obs::snapshot();
    let sweep = snap.phases.iter().find(|p| p.name == "cv.sweep").expect("cv.sweep phase");
    assert_eq!(sweep.calls, 1);
    let sort = snap.phases.iter().find(|p| p.name == "cv.sort").expect("cv.sort phase");
    assert_eq!(sort.calls, x.len() as u64, "one per-observation sort each");
}
