//! Property tests for the incremental Fenwick moment-tree engine.
//!
//! The contract under test (DESIGN.md, "incremental" row): after any
//! interleaved sequence of `insert`/`remove` operations, `reselect()` must
//! agree with a *fresh* `cv_profile_prefix` run over the live multiset —
//! identical inclusion classification, scores within the degree-scaled
//! prefix tolerance documented in PR 4, and a bit-for-bit identical
//! selected bandwidth. Three hostile regimes are exercised:
//!
//! * random continuous keys with interleaved removals and periodic
//!   reselects (so both the pending-run and the dead-slot-residue query
//!   paths fire mid-stream);
//! * duplicate-heavy streams where every key collides (the closed-form
//!   duplicate path does all the work);
//! * boundary-tie lattices where `|x_i − x_l| == h·r` holds exactly at many
//!   cells, hammering the bisection's tie-breaking.
//!
//! Knife-edge caveat (shared with `multi_agreement.rs`): when every in-box
//! neighbour of some observation sits essentially at the support edge, its
//! leave-one-out denominator vanishes and the moment-differencing roundoff
//! is amplified arbitrarily — for the fresh prefix run just as much as for
//! the incremental engine, and the two need not even agree on the *sign*
//! of such a denominator. Grid points whose minimum positive denominator
//! mass falls below a threshold are therefore compared on guarded terms
//! only; the unconditional bit-for-bit selection claim is pinned on
//! fixed-seed streams with solid mass everywhere (`pinned_*` tests below).

use kcv_core::cv::{cv_profile_prefix, CvProfile, IncrementalSelector};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::{polynomial_kernels, PolynomialKernel};
use kcv_core::util::{approx_eq, SplitMix64};
use proptest::prelude::*;

/// Below this minimum positive leave-one-out denominator mass, a grid
/// point is knife-edge and only guarded comparisons apply (same threshold
/// as `multi_agreement.rs`).
const MASS_FLOOR: f64 = 1e-2;

/// Degree-scaled score tolerance, matching the prefix sweep's documented
/// accuracy (PR 4) and the in-module agreement tests.
fn score_tol(deg: usize) -> (f64, f64) {
    match deg {
        0..=2 => (1e-8, 1e-10),
        3..=4 => (1e-5, 1e-7),
        _ => (1e-2, 1e-4),
    }
}

/// The smallest positive leave-one-out denominator mass across the sample
/// at one bandwidth, computed directly from kernel weights (the test may
/// spend kernel evaluations; the engine under test may not).
fn min_positive_den(xs: &[f64], kernel: &dyn PolynomialKernel, h: f64) -> f64 {
    let mut min_den = f64::INFINITY;
    for (i, &xi) in xs.iter().enumerate() {
        let mut den = 0.0;
        for (l, &xl) in xs.iter().enumerate() {
            if l != i {
                den += kernel.eval((xi - xl) / h);
            }
        }
        if den > 0.0 {
            min_den = min_den.min(den);
        }
    }
    min_den
}

/// How the replay draws observations.
enum Draw {
    /// Continuous keys on `[0, 1)` (occasionally duplicating a live key),
    /// paper-DGP responses.
    Continuous,
    /// Keys confined to the lattice `{0, 1/m, …, (m−1)/m}`, paper-DGP
    /// responses: every key collides constantly.
    DuplicatePool(usize),
    /// Power-of-two lattice keys `{j/16}` with exact-binary responses
    /// `{k/8}`: `|x_i − x_l| == h·r` holds exactly at many cells.
    ExactLattice,
}

/// Replays a seeded interleaved insert/remove stream against the
/// incremental selector, mirroring it in a plain `Vec`, then returns the
/// incremental profile, a fresh prefix run over the surviving multiset,
/// and the surviving regressors.
fn replay(
    kernel: &dyn PolynomialKernel,
    grid: &BandwidthGrid,
    seed: u64,
    n_ops: usize,
    draw: &Draw,
) -> (CvProfile, CvProfile, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let mut sel = IncrementalSelector::new(kernel, grid.clone());
    let mut live: Vec<(f64, f64)> = Vec::new();
    let mut step = 0;
    // Keep streaming until the op budget is spent AND enough observations
    // survive for a meaningful profile.
    while step < n_ops || live.len() < 8 {
        let r = rng.next_f64();
        if step < n_ops && r < 0.3 && live.len() > 8 {
            let idx = (rng.next_f64() * live.len() as f64) as usize % live.len();
            let (xi, yi) = live.swap_remove(idx);
            assert!(sel.remove(xi, yi), "live observation missing from selector");
        } else {
            let (xi, yi) = match draw {
                Draw::Continuous => {
                    let xi = if r > 0.85 && !live.is_empty() {
                        // Duplicate an existing key: exercises pooled-slot
                        // inserts and the closed-form duplicate scoring.
                        live[(rng.next_f64() * live.len() as f64) as usize % live.len()].0
                    } else {
                        rng.next_f64()
                    };
                    (xi, 0.5 * xi + 10.0 * xi * xi + 0.5 * rng.next_f64())
                }
                Draw::DuplicatePool(m) => {
                    let j = (rng.next_f64() * *m as f64) as usize % m;
                    let xi = j as f64 / *m as f64;
                    (xi, 0.5 * xi + 10.0 * xi * xi + 0.5 * rng.next_f64())
                }
                Draw::ExactLattice => {
                    let j = (rng.next_f64() * 17.0) as usize % 17;
                    let k = (rng.next_f64() * 16.0) as usize % 16;
                    (j as f64 / 16.0, k as f64 / 8.0)
                }
            };
            sel.insert(xi, yi).unwrap();
            live.push((xi, yi));
        }
        // Periodic mid-stream reselect: folds the pending run and compacts
        // dead slots, so later operations hit the post-fold query path too.
        if step % 17 == 16 && live.len() >= 2 {
            sel.reselect().unwrap();
        }
        step += 1;
    }
    let xs: Vec<f64> = live.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = live.iter().map(|p| p.1).collect();
    let fresh = cv_profile_prefix(&xs, &ys, grid, kernel).unwrap();
    let inc = sel.reselect().unwrap();
    (inc, fresh, xs)
}

/// The shared mass-guarded agreement assertion:
///
/// * at solid-mass grid points, inclusion must match exactly and scores
///   must agree within the documented tolerance;
/// * the selected bandwidth must be bit-for-bit identical whenever the
///   fresh profile's optimum is well separated (runner-up beyond the score
///   tolerance) and every grid point carries solid mass — the generic
///   case; near-ties fall back to the `multi_agreement.rs`-style check
///   that the fresh score at the incremental argmin matches the fresh
///   optimum within tolerance.
fn check_agreement(
    kernel: &dyn PolynomialKernel,
    inc: &CvProfile,
    fresh: &CvProfile,
    xs: &[f64],
) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(inc.n, fresh.n);
    let (rel, abs) = score_tol(kernel.coeffs().len() - 1);
    let mass: Vec<f64> =
        inc.bandwidths.iter().map(|&h| min_positive_den(xs, kernel, h)).collect();
    for (m, &mass_m) in mass.iter().enumerate() {
        if mass_m < MASS_FLOOR {
            continue;
        }
        prop_assert!(
            inc.included[m] == fresh.included[m],
            "{}: h={} classification diverged ({} vs {}, mass {})",
            kernel.name(),
            inc.bandwidths[m],
            inc.included[m],
            fresh.included[m],
            mass_m
        );
        prop_assert!(
            approx_eq(inc.scores[m], fresh.scores[m], rel, abs),
            "{}: h={} score {} vs {} (mass {})",
            kernel.name(),
            inc.bandwidths[m],
            inc.scores[m],
            fresh.scores[m],
            mass_m
        );
    }
    let (a, b) = match (inc.argmin(), fresh.argmin()) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            prop_assert!(
                a.is_err() && b.is_err(),
                "argmin availability diverged ({})",
                kernel.name()
            );
            return Ok(());
        }
    };
    let solid_everywhere = mass.iter().all(|&m| m >= MASS_FLOOR);
    let separated = !fresh
        .scores
        .iter()
        .zip(&fresh.included)
        .enumerate()
        .any(|(m, (&s, &i))| m != b.index && i > 0 && approx_eq(s, b.score, rel, abs));
    if solid_everywhere && separated {
        prop_assert!(
            a.index == b.index && a.bandwidth.to_bits() == b.bandwidth.to_bits(),
            "{}: selection not bit-identical (inc h={} vs fresh h={})",
            kernel.name(),
            a.bandwidth,
            b.bandwidth
        );
    } else if mass[a.index] >= MASS_FLOOR && mass[b.index] >= MASS_FLOOR {
        prop_assert!(
            approx_eq(fresh.scores[a.index], b.score, rel, abs),
            "{}: incremental argmin {} not a fresh near-optimum ({} vs {})",
            kernel.name(),
            a.bandwidth,
            fresh.scores[a.index],
            b.score
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleaved insert/remove streams over continuous keys, all
    /// polynomial kernels.
    #[test]
    fn interleaved_streams_agree(
        seed in 0u64..10_000,
        n_ops in 24usize..120,
    ) {
        let grid = BandwidthGrid::log(0.05, 1.0, 12).unwrap();
        for kernel in polynomial_kernels() {
            let (inc, fresh, xs) = replay(&*kernel, &grid, seed, n_ops, &Draw::Continuous);
            check_agreement(&*kernel, &inc, &fresh, &xs)?;
        }
    }

    /// Duplicate-saturated streams: keys confined to a small lattice so the
    /// closed-form duplicate handling carries the whole profile.
    #[test]
    fn duplicate_heavy_streams_agree(
        seed in 0u64..10_000,
        n_ops in 30usize..100,
        pool in 5usize..14,
    ) {
        let grid = BandwidthGrid::log(0.08, 1.0, 10).unwrap();
        for kernel in polynomial_kernels() {
            let (inc, fresh, xs) =
                replay(&*kernel, &grid, seed, n_ops, &Draw::DuplicatePool(pool));
            check_agreement(&*kernel, &inc, &fresh, &xs)?;
        }
    }

    /// Boundary-tie lattices: `x ∈ {j/16}`, `h ∈ {1/8, 1/4, 1/2}`, so
    /// `|x_i − x_l| == h·r` holds exactly at many cells and the two
    /// engines' window bisections must break the tie identically.
    #[test]
    fn boundary_tie_lattices_agree(
        seed in 0u64..10_000,
        n_ops in 24usize..90,
    ) {
        let grid = BandwidthGrid::from_values(vec![0.125, 0.25, 0.5]).unwrap();
        for kernel in polynomial_kernels() {
            let (inc, fresh, xs) = replay(&*kernel, &grid, seed, n_ops, &Draw::ExactLattice);
            check_agreement(&*kernel, &inc, &fresh, &xs)?;
        }
    }
}

/// Fixed-seed dense streams (n ≈ 300 after removals): every grid point
/// carries solid denominator mass, so the full unguarded contract must
/// hold — identical classification at every bandwidth and a bit-for-bit
/// identical selected bandwidth, for every polynomial kernel.
#[test]
fn pinned_streams_select_bit_identically() {
    let grid = BandwidthGrid::log(0.05, 1.0, 12).unwrap();
    for seed in [7u64, 101, 9001] {
        for kernel in polynomial_kernels() {
            let (inc, fresh, xs) = replay(&*kernel, &grid, seed, 450, &Draw::Continuous);
            for &h in grid.values() {
                assert!(
                    min_positive_den(&xs, &*kernel, h) >= MASS_FLOOR,
                    "pinned stream lost mass at h={h}; pick another seed"
                );
            }
            assert_eq!(inc.included, fresh.included, "{} seed {}", kernel.name(), seed);
            let a = inc.argmin().unwrap();
            let b = fresh.argmin().unwrap();
            assert_eq!(a.index, b.index, "{} seed {}", kernel.name(), seed);
            assert_eq!(
                a.bandwidth.to_bits(),
                b.bandwidth.to_bits(),
                "{} seed {}: selection not bit-identical",
                kernel.name(),
                seed
            );
        }
    }
}

/// The `boundary_ties.rs` design, streamed: power-of-two lattice with
/// exact-binary responses stays in exact arithmetic at this size, so the
/// profiles must match bitwise — scores included — after an insert/remove
/// detour through a key that is later evicted.
#[test]
fn pinned_exact_lattice_matches_bitwise() {
    let x = [0.0, 0.25, 0.5, 0.75, 1.0];
    let y = [1.0, 2.0, 1.5, 2.5, 2.0];
    let grid = BandwidthGrid::from_values(vec![0.25, 0.5]).unwrap();
    for kernel in polynomial_kernels() {
        let mut sel = IncrementalSelector::new(&*kernel, grid.clone());
        for (&xi, &yi) in x.iter().zip(&y) {
            sel.insert(xi, yi).unwrap();
        }
        // Detour: a transient observation inserted and removed again, so
        // the final query runs over dead-slot residue.
        sel.insert(0.375, 9.0).unwrap();
        sel.reselect().unwrap();
        assert!(sel.remove(0.375, 9.0));
        let inc = sel.reselect().unwrap();
        let fresh = cv_profile_prefix(&x, &y, &grid, &*kernel).unwrap();
        assert_eq!(inc.included, fresh.included, "{}", kernel.name());
        for m in 0..grid.len() {
            assert_eq!(
                inc.scores[m].to_bits(),
                fresh.scores[m].to_bits(),
                "{}: h={} exact-lattice score not bitwise ({} vs {})",
                kernel.name(),
                grid.values()[m],
                inc.scores[m],
                fresh.scores[m]
            );
        }
    }
}
