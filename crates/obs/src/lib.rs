//! # kcv-obs — zero-cost observability for the kernelcv workspace
//!
//! The paper's headline claims are *operation counts*: the sorted sweep does
//! `O(n² log n)` work where the naive grid search does `O(k·n²)`, and the
//! GPU wins by the volume of memory transactions it avoids. This crate makes
//! those counts observable: **op-counters** ([`Counter`]), scoped **phase
//! timers** ([`phase`]), and a machine-readable [`Snapshot`] that `kcv-bench`
//! serialises into `results/BENCH_report.json` so perf can be diffed
//! PR-over-PR.
//!
//! ## Zero cost by default
//!
//! Everything here is behind the `metrics` cargo feature. Without it, every
//! function in this crate is an empty `#[inline(always)]` stub: a counted
//! hot loop carries no atomic traffic, no timer syscalls, and (after
//! optimisation) no residual arithmetic. Downstream crates forward the
//! feature (`kcv-core/metrics`, `kcv-gpu-sim/metrics`,
//! `kcv-bench/metrics`), so one `--features metrics` at the top enables the
//! whole pipeline.
//!
//! ## Scoped recorders
//!
//! Counts land in two places: a process-wide **global aggregate** (what
//! [`get`]/[`snapshot`] read) and, when one is installed, the innermost
//! **[`Recorder`]** on the current thread's scope stack. A recorder owns its
//! own counter array and phase table, so two instrumented runs in one
//! process — concurrent tests, a batch-selection service handling parallel
//! requests — each see exactly their own operations instead of an
//! interleaved global delta:
//!
//! ```
//! use kcv_obs::{add, phase, Counter, LocalCounter, Recorder};
//!
//! let run = Recorder::new();
//! {
//!     let _scope = run.install(); // instrumentation below lands in `run`
//!     let _sweep = phase("cv.sweep");
//!     let mut evals = LocalCounter::new(Counter::KernelEvals);
//!     for _ in 0..100 {
//!         evals.incr(1); // no atomic traffic here
//!     }
//!     add(Counter::SortComparisons, 42);
//! } // LocalCounter, the phase guard, and the scope flush on drop
//!
//! let snap = run.snapshot();
//! // With `--features metrics` the snapshot holds this run's counts alone;
//! // without it the calls above compiled to nothing and it is empty.
//! if kcv_obs::enabled() {
//!     assert_eq!(snap.counter("kernel_evals"), 100);
//!     assert_eq!(snap.counter("sort_comparisons"), 42);
//! } else {
//!     assert_eq!(snap.counter("kernel_evals"), 0);
//! }
//! assert!(snap.to_json().starts_with('{'));
//! ```
//!
//! Scopes are thread-local. Code that fans work out across threads (the
//! rayon-parallel CV strategies, the GPU simulator's launcher) re-installs
//! the calling thread's scope on each worker: capture a handle with
//! [`scope`] before spawning and [`Scope::enter`] inside the worker
//! closure. Both are cheap (an `Arc` clone and two thread-local
//! operations) and no-ops when no recorder is installed.
//!
//! ## Counting discipline
//!
//! Hot loops must not hit a shared atomic per iteration. Batch with
//! [`LocalCounter`] (one flush on drop) or accumulate a local `u64` and
//! [`add`] it once per call.
//!
//! ## Phase-timer semantics
//!
//! Phase totals are *summed over scopes*. When same-name scopes overlap on
//! different rayon workers the total is **CPU time**, which legitimately
//! exceeds wall-clock — the per-observation `cv.sort` phase and the
//! per-subsample `cv.bag` phase (one scope per bag, bags spread across
//! workers) are the canonical examples. [`Snapshot::to_json`] therefore labels the field
//! `cpu_seconds`, not `seconds`. The workspace convention: top-level
//! parallel regions (`cv.sweep`, `cv.merge`, `cv.window`, `cv.naive`,
//! `cv.multi`, `gpu.launch`) are timed **once on the calling thread**, so their
//! `cpu_seconds` approximates wall time; phases opened inside worker
//! closures accumulate CPU time across workers. Wall-clock per strategy is
//! reported separately (`wall_seconds` in `BENCH_report.json`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// The operation classes the CV pipeline counts.
///
/// The names map to the paper's cost analysis (§III–§IV): kernel
/// evaluations are the unit of the naive `O(k·n²)` bound, sort comparisons
/// the `O(n log n)` per-observation sort, skipped LOO terms the saving from
/// compact support, and memory transactions the currency of the GPU cost
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Pointwise kernel-weight evaluations `K((X_i − X_l)/h)` (naive
    /// strategies) or absorbed neighbour terms (sorted sweep — each
    /// neighbour enters the running power sums exactly once per
    /// observation, which is the sweep's whole point).
    KernelEvals = 0,
    /// Key comparisons performed by the per-observation distance sorts
    /// (host quicksort and the simulated device sort).
    SortComparisons = 1,
    /// Leave-one-out sum terms *never touched* because the kernel's compact
    /// support excluded them — work the naive evaluation would have spent
    /// multiplying by zero.
    LooTermsSkipped = 2,
    /// Full `CV_lc(h)` objective evaluations by the numerical-optimisation
    /// selectors (the paper's Program 1/2 cost unit).
    ObjectiveEvals = 3,
    /// Simulated global-memory transactions reported by the GPU cost model
    /// (uncoalesced reads + writes + coalesced accesses).
    MemTransactions = 4,
    /// Simulated device cycles folded in from `kcv-gpu-sim` launch reports
    /// (rounded to u64).
    GpuSimCycles = 5,
    /// Support-window resolutions performed by the prefix-moment strategy:
    /// one per `(observation, bandwidth)` cell (each costs at most
    /// `~2·⌈log₂ n⌉` binary-search probes into the globally sorted `x`).
    /// The prefix strategy touches no per-neighbour terms, so its
    /// `KernelEvals` stays zero while this counter carries its `O(n·k)`
    /// cost — the contrast the perf gate asserts.
    WindowQueries = 6,
    /// Individual binary-search probes spent resolving support windows —
    /// the device-side refinement of [`Counter::WindowQueries`]: one query
    /// costs at most `~2·⌈log₂ n⌉` probes (fewer with monotone narrowing),
    /// and each probe is one divergent global-memory read on the simulated
    /// GPU. The windowed GPU program's traffic gate is stated in these
    /// terms.
    BinarySearchProbes = 7,
    /// Completed bags in a bagged CV selection (Barreiro-Ures et al.): one
    /// increment per subsample whose per-bag grid search finished. At fixed
    /// `(B, r)` the bagged selector's total work is at most `B ×` the
    /// single-bag bound regardless of the full sample size `n` — the
    /// invariant the bagged perf gate divides this counter into. Each bag
    /// also runs under a `cv.bag` phase scope; bags execute on rayon
    /// workers, so the phase's `cpu_seconds` sums per-bag CPU time and
    /// legitimately exceeds wall-clock (see *Phase-timer semantics*).
    BagsRun = 8,
    /// Sorted-axis sweeps performed by the multivariate fast-sum-updating
    /// CV engine (`kcv-core::multi::fast`): one increment per
    /// `(grid point, dimension)` pair, so a full run adds
    /// `grid_points × d`. Together with [`Counter::WindowQueries`]
    /// (`d` per `(observation, grid point)` cell) this carries the fast
    /// multivariate path's cost while its `KernelEvals` stays zero on the
    /// d ≤ 2 hot path — the contrast the multivariate perf gates assert.
    DimSweeps = 9,
    /// Fenwick-tree node visits performed by the incremental CV engine
    /// (`kcv-core::cv::incremental`): one increment per tree node touched
    /// while folding an `insert`/`remove` into the moment tree (including
    /// the amortised rebuild writes when the key pool compacts/doubles).
    /// A point update touches `O(log n)` nodes, so over a stream of `U`
    /// updates into a window of capacity `W` this stays within
    /// `U·⌈log₂ W⌉·(deg+3)` — the budget perf gate 18 asserts.
    TreeUpdates = 10,
    /// Completed `reselect()` passes of the incremental CV engine: one
    /// increment per full grid re-selection over the live window. The
    /// sliding-window amortisation story is `reselects ≪ arrivals`; each
    /// pass runs under a `cv.reselect` phase scope while updates run under
    /// `cv.update`.
    Reselects = 11,
    /// Recorder-scope re-entries performed inside worker closures
    /// ([`Scope::enter`]): the bookkeeping cost of propagating an installed
    /// recorder across a parallel region. Under the vendored rayon's
    /// `fold_with_setup` chunk hook each parallel strategy pays one entry
    /// per worker *chunk* (at most `available_parallelism`) instead of one
    /// per observation — the delta `BENCH_report.json` shows between a
    /// parallel strategy and its sequential twin (whose count is zero: no
    /// scope ever needs re-entering on the calling thread).
    ScopeEnters = 12,
    /// Requests processed by the multi-stream bandwidth service
    /// (`kcv-serve`): one increment per queue entry a shard worker drained
    /// and executed — stream opens, arrivals, and closes alike.
    RequestsServed = 13,
    /// Arrivals the service applied as part of a same-stream burst beyond
    /// the first (`burst_len − 1` per coalesced burst): each one rode an
    /// already-drained batch instead of paying its own wakeup, and bursts
    /// that cross re-selection boundaries fund the conflated single
    /// `reselect()` the serving perf gates assert.
    CoalescedArrivals = 14,
    /// High-water mark of a shard's bounded request queue (maximum queued
    /// entries observed). **Max-semantics**: recorded via [`record_max`],
    /// so across shards the meaningful aggregate is the maximum, not the
    /// sum — `kcv-serve` merges shard snapshots accordingly.
    QueueHighWater = 15,
    /// Requests rejected with `Overloaded` because a shard's bounded queue
    /// was full — the backpressure contract's visible cost (shed load
    /// instead of unbounded buffering).
    ShedRequests = 16,
}

/// Number of counters (array sizing).
const NUM_COUNTERS: usize = 17;

impl Counter {
    /// Every counter, in serialisation order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::KernelEvals,
        Counter::SortComparisons,
        Counter::LooTermsSkipped,
        Counter::ObjectiveEvals,
        Counter::MemTransactions,
        Counter::GpuSimCycles,
        Counter::WindowQueries,
        Counter::BinarySearchProbes,
        Counter::BagsRun,
        Counter::DimSweeps,
        Counter::TreeUpdates,
        Counter::Reselects,
        Counter::ScopeEnters,
        Counter::RequestsServed,
        Counter::CoalescedArrivals,
        Counter::QueueHighWater,
        Counter::ShedRequests,
    ];

    /// The snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::KernelEvals => "kernel_evals",
            Counter::SortComparisons => "sort_comparisons",
            Counter::LooTermsSkipped => "loo_terms_skipped",
            Counter::ObjectiveEvals => "objective_evals",
            Counter::MemTransactions => "mem_transactions",
            Counter::GpuSimCycles => "gpu_sim_cycles",
            Counter::WindowQueries => "window_queries",
            Counter::BinarySearchProbes => "binary_search_probes",
            Counter::BagsRun => "bags_run",
            Counter::DimSweeps => "dim_sweeps",
            Counter::TreeUpdates => "tree_updates",
            Counter::Reselects => "reselects",
            Counter::ScopeEnters => "scope_enters",
            Counter::RequestsServed => "requests_served",
            Counter::CoalescedArrivals => "coalesced_arrivals",
            Counter::QueueHighWater => "queue_high_water",
            Counter::ShedRequests => "shed_requests",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Time statistics for one named phase.
///
/// `nanos` sums the durations of every completed scope with this name —
/// across threads, so overlapping scopes on rayon workers produce CPU
/// time, not wall time (see the crate-level *Phase-timer semantics*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name as passed to [`phase`] (e.g. `"cv.sort"`).
    pub name: String,
    /// Number of completed phase scopes.
    pub calls: u64,
    /// Total nanoseconds spent inside the phase, summed over all scopes
    /// (CPU time when scopes overlapped on different threads).
    pub nanos: u64,
}

/// A point-in-time copy of every counter and phase timer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for each [`Counter`], in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-phase timing totals, in first-use order.
    pub phases: Vec<PhaseStat>,
}

impl Snapshot {
    /// Value of the named counter, `0` when absent (e.g. metrics disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Total nanoseconds of the named phase, `0` when absent.
    pub fn phase_nanos(&self, name: &str) -> u64 {
        self.phases.iter().find(|p| p.name == name).map_or(0, |p| p.nanos)
    }

    /// Serialises the snapshot as a JSON object:
    /// `{"counters": {name: value, …}, "phases": {name: {"calls": c,
    /// "cpu_seconds": s}, …}}`. The phase field is named `cpu_seconds`
    /// because overlapping same-name scopes on different threads sum to CPU
    /// time (see the crate-level *Phase-timer semantics*). Hand-rolled (the
    /// build environment has no serde); all names are static identifiers,
    /// so no string escaping is needed beyond what [`json_escape`]
    /// provides.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"phases\":{");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"cpu_seconds\":{:.9}}}",
                json_escape(&p.name),
                p.calls,
                p.nanos as f64 * 1e-9
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{Counter, PhaseStat, Snapshot, NUM_COUNTERS};
    use std::cell::RefCell;
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// One counter array plus one phase table. Both the process-wide global
    /// aggregate and every [`Recorder`] are instances of this shape, so a
    /// write costs the same wherever it lands.
    struct Store {
        counters: [AtomicU64; NUM_COUNTERS],
        phases: Mutex<Vec<PhaseStat>>,
    }

    impl Store {
        fn new() -> Self {
            Store {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                phases: Mutex::new(Vec::new()),
            }
        }

        #[inline]
        fn add(&self, counter: Counter, n: u64) {
            self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }

        #[inline]
        fn max(&self, counter: Counter, v: u64) {
            self.counters[counter as usize].fetch_max(v, Ordering::Relaxed);
        }

        #[inline]
        fn get(&self, counter: Counter) -> u64 {
            self.counters[counter as usize].load(Ordering::Relaxed)
        }

        fn reset(&self) {
            for c in &self.counters {
                c.store(0, Ordering::Relaxed);
            }
            self.phases.lock().expect("phase registry poisoned").clear();
        }

        fn record_phase(&self, name: &'static str, nanos: u64) {
            let mut ps = self.phases.lock().expect("phase registry poisoned");
            if let Some(p) = ps.iter_mut().find(|p| p.name == name) {
                p.calls += 1;
                p.nanos += nanos;
            } else {
                ps.push(PhaseStat { name: name.to_string(), calls: 1, nanos });
            }
        }

        fn snapshot(&self) -> Snapshot {
            Snapshot {
                counters: Counter::ALL.iter().map(|&c| (c.name(), self.get(c))).collect(),
                phases: self.phases.lock().expect("phase registry poisoned").clone(),
            }
        }
    }

    /// The process-wide aggregate every write falls through to.
    fn global() -> &'static Store {
        static GLOBAL: OnceLock<Store> = OnceLock::new();
        GLOBAL.get_or_init(Store::new)
    }

    thread_local! {
        /// The scope stack: recorders installed on this thread, innermost
        /// last. Writes go to the innermost entry (plus the global
        /// aggregate).
        static SCOPES: RefCell<Vec<Arc<Store>>> = const { RefCell::new(Vec::new()) };
    }

    /// The innermost recorder installed on this thread, if any.
    #[inline]
    fn current() -> Option<Arc<Store>> {
        SCOPES.with(|s| s.borrow().last().cloned())
    }

    fn push_scope(store: Arc<Store>) -> ScopeGuard {
        SCOPES.with(|s| s.borrow_mut().push(store));
        ScopeGuard { installed: true, _not_send: PhantomData }
    }

    fn exclusive_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// A scoped metric sink: a private counter array and phase table that
    /// receive every instrumentation event issued while the recorder is
    /// [installed](Recorder::install) (events also fall through to the
    /// global aggregate). Cloning is shallow — clones share the same
    /// storage, which is how a recorder handle travels into rayon workers.
    #[derive(Clone)]
    pub struct Recorder {
        store: Arc<Store>,
    }

    impl Recorder {
        /// Creates a recorder with all counters zero and no phases.
        pub fn new() -> Self {
            Recorder { store: Arc::new(Store::new()) }
        }

        /// Installs the recorder as the innermost scope on the *current
        /// thread* until the returned guard drops. Nesting is allowed;
        /// events go to the innermost installed recorder only (plus the
        /// global aggregate). The guard is `!Send`: it must drop on the
        /// thread that created it.
        #[must_use = "the recorder only receives events while this guard is alive"]
        pub fn install(&self) -> ScopeGuard {
            push_scope(Arc::clone(&self.store))
        }

        /// Current value of one of this recorder's counters.
        #[inline]
        pub fn get(&self, counter: Counter) -> u64 {
            self.store.get(counter)
        }

        /// Copies this recorder's counters and phase timers.
        pub fn snapshot(&self) -> Snapshot {
            self.store.snapshot()
        }
    }

    impl Default for Recorder {
        fn default() -> Self {
            Self::new()
        }
    }

    impl std::fmt::Debug for Recorder {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Recorder").finish_non_exhaustive()
        }
    }

    /// RAII guard for an installed scope ([`Recorder::install`] /
    /// [`Scope::enter`]); dropping it pops the scope stack.
    #[must_use = "the scope is active only while this guard is alive"]
    pub struct ScopeGuard {
        installed: bool,
        /// Pop must happen on the installing thread, so the guard is !Send.
        _not_send: PhantomData<*const ()>,
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            if self.installed {
                SCOPES.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
    }

    /// A `Send + Sync` handle to the innermost recorder installed at
    /// [`scope`] time (or to nothing, when none was installed). Captured on
    /// the calling thread and [entered](Scope::enter) inside worker
    /// closures so parallel strategies attribute counts to the run that
    /// spawned them.
    #[derive(Clone)]
    pub struct Scope {
        store: Option<Arc<Store>>,
    }

    impl Scope {
        /// Re-installs the captured recorder on the current thread until
        /// the returned guard drops. A no-op (but still cheap and safe)
        /// when no recorder was installed at capture time.
        #[must_use = "the scope is active only while this guard is alive"]
        pub fn enter(&self) -> ScopeGuard {
            match &self.store {
                Some(store) => {
                    let guard = push_scope(Arc::clone(store));
                    // Counted after installation so the increment lands in
                    // the re-entered recorder itself.
                    crate::add(crate::Counter::ScopeEnters, 1);
                    guard
                }
                None => ScopeGuard { installed: false, _not_send: PhantomData },
            }
        }
    }

    /// Captures the current thread's innermost recorder as a [`Scope`].
    pub fn scope() -> Scope {
        Scope { store: current() }
    }

    #[inline]
    pub fn add(counter: Counter, n: u64) {
        if n > 0 {
            global().add(counter, n);
            if let Some(r) = current() {
                r.add(counter, n);
            }
        }
    }

    #[inline]
    pub fn record_max(counter: Counter, v: u64) {
        if v > 0 {
            global().max(counter, v);
            if let Some(r) = current() {
                r.max(counter, v);
            }
        }
    }

    #[inline]
    pub fn get(counter: Counter) -> u64 {
        global().get(counter)
    }

    pub fn reset() {
        global().reset();
    }

    pub fn record_phase(name: &'static str, nanos: u64) {
        global().record_phase(name, nanos);
        if let Some(r) = current() {
            r.record_phase(name, nanos);
        }
    }

    pub fn snapshot() -> Snapshot {
        global().snapshot()
    }

    pub fn exclusive() -> MutexGuard<'static, ()> {
        match exclusive_lock().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// RAII phase scope.
    #[must_use = "the phase is timed until this guard drops"]
    pub struct PhaseGuard {
        name: &'static str,
        start: Instant,
    }

    pub fn phase(name: &'static str) -> PhaseGuard {
        PhaseGuard { name, start: Instant::now() }
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            record_phase(self.name, self.start.elapsed().as_nanos() as u64);
        }
    }

    /// Batching counter: increments locally, flushes one shared add on drop.
    pub struct LocalCounter {
        counter: Counter,
        n: u64,
    }

    impl LocalCounter {
        /// Starts batching for `counter`.
        #[inline(always)]
        pub fn new(counter: Counter) -> Self {
            Self { counter, n: 0 }
        }

        /// Adds `n` to the local batch (no shared-memory traffic).
        #[inline(always)]
        pub fn incr(&mut self, n: u64) {
            self.n += n;
        }
    }

    impl Drop for LocalCounter {
        fn drop(&mut self) {
            add(self.counter, self.n);
        }
    }

    pub const ENABLED: bool = true;
}

#[cfg(not(feature = "metrics"))]
mod imp {
    //! No-op twins: every function is an empty `#[inline(always)]` stub the
    //! optimiser erases, so instrumentation costs nothing when disabled.
    #![allow(clippy::missing_const_for_fn)]

    use super::{Counter, Snapshot};

    #[inline(always)]
    pub fn add(_counter: Counter, _n: u64) {}

    #[inline(always)]
    pub fn record_max(_counter: Counter, _v: u64) {}

    #[inline(always)]
    pub fn get(_counter: Counter) -> u64 {
        0
    }

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// With metrics off there is no shared state to guard; hand back a unit.
    #[inline(always)]
    pub fn exclusive() {}

    /// Inert recorder (metrics disabled): installing it does nothing and
    /// its snapshot is always empty.
    #[derive(Debug, Clone, Default)]
    pub struct Recorder;

    impl Recorder {
        /// Creates an inert recorder (metrics disabled).
        #[inline(always)]
        pub fn new() -> Self {
            Recorder
        }

        /// Returns an inert guard (metrics disabled).
        #[inline(always)]
        #[must_use = "the recorder only receives events while this guard is alive"]
        pub fn install(&self) -> ScopeGuard {
            ScopeGuard
        }

        /// Always `0` (metrics disabled).
        #[inline(always)]
        pub fn get(&self, _counter: Counter) -> u64 {
            0
        }

        /// Always the empty snapshot (metrics disabled).
        #[inline(always)]
        pub fn snapshot(&self) -> Snapshot {
            Snapshot::default()
        }
    }

    /// Unit-like scope guard; dropping it does nothing.
    #[must_use = "the scope is active only while this guard is alive"]
    pub struct ScopeGuard;

    /// Unit-like scope handle (metrics disabled).
    #[derive(Debug, Clone)]
    pub struct Scope;

    impl Scope {
        /// Returns an inert guard (metrics disabled).
        #[inline(always)]
        #[must_use = "the scope is active only while this guard is alive"]
        pub fn enter(&self) -> ScopeGuard {
            ScopeGuard
        }
    }

    /// Captures nothing (metrics disabled).
    #[inline(always)]
    pub fn scope() -> Scope {
        Scope
    }

    /// Unit-like guard; dropping it does nothing.
    #[must_use = "the phase is timed until this guard drops"]
    pub struct PhaseGuard;

    #[inline(always)]
    pub fn phase(_name: &'static str) -> PhaseGuard {
        PhaseGuard
    }

    /// Unit-like local counter; `incr` compiles away.
    pub struct LocalCounter;

    impl LocalCounter {
        /// Creates an inert counter (metrics disabled).
        #[inline(always)]
        pub fn new(_counter: Counter) -> Self {
            Self
        }

        /// Discards the increment (metrics disabled).
        #[inline(always)]
        pub fn incr(&mut self, _n: u64) {}
    }

    pub const ENABLED: bool = false;
}

/// RAII guard returned by [`phase`]; the scope is timed until it drops.
pub use imp::PhaseGuard;

/// Batching counter for hot loops: increment locally with
/// [`LocalCounter::incr`], pay one shared add when it drops. A no-op type
/// without the `metrics` feature.
pub use imp::LocalCounter;

/// A scoped metric sink owning its own counter array and phase table.
///
/// Create one per measured run, [`install`](Recorder::install) it for the
/// duration of the run, and read the run's private totals with
/// [`Recorder::snapshot`]/[`Recorder::get`] — immune to whatever other
/// instrumented code executes concurrently in the process. An inert unit
/// type without the `metrics` feature.
pub use imp::Recorder;

/// A `Send + Sync` handle for carrying the current scope into worker
/// threads; see [`scope`].
pub use imp::Scope;

/// RAII guard holding a scope installed ([`Recorder::install`] /
/// [`Scope::enter`]); `!Send`, pops the scope stack on drop.
pub use imp::ScopeGuard;

/// Adds `n` to a counter: the innermost installed [`Recorder`] on this
/// thread (if any) and the global aggregate both receive it. A no-op
/// without the `metrics` feature.
#[inline(always)]
pub fn add(counter: Counter, n: u64) {
    imp::add(counter, n);
}

/// Raises a **max-semantics** counter (e.g. [`Counter::QueueHighWater`]) to
/// at least `v`: the innermost installed [`Recorder`] on this thread (if
/// any) and the global aggregate both take `max(current, v)` instead of
/// adding. Such counters aggregate across recorders by maximum, not sum. A
/// no-op without the `metrics` feature.
#[inline(always)]
pub fn record_max(counter: Counter, v: u64) {
    imp::record_max(counter, v);
}

/// Current value of a counter in the **global aggregate** (always `0`
/// without the `metrics` feature). Prefer [`Recorder::get`] for per-run
/// values — the global aggregate interleaves every instrumented run in the
/// process.
#[inline(always)]
pub fn get(counter: Counter) -> u64 {
    imp::get(counter)
}

/// Clears every counter and phase timer in the **global aggregate**.
/// Installed [`Recorder`]s are unaffected.
#[inline(always)]
pub fn reset() {
    imp::reset();
}

/// Starts timing a named phase; the scope ends when the returned guard
/// drops. Nested and concurrent scopes of the same name accumulate — see
/// the crate-level *Phase-timer semantics* for why concurrent scopes sum
/// to CPU time. The elapsed time is recorded against the innermost
/// [`Recorder`] installed *when the guard drops*, plus the global
/// aggregate.
#[inline(always)]
pub fn phase(name: &'static str) -> PhaseGuard {
    imp::phase(name)
}

/// Copies the current **global aggregate** counters and phase timers.
/// Prefer [`Recorder::snapshot`] for per-run values.
#[inline(always)]
pub fn snapshot() -> Snapshot {
    imp::snapshot()
}

/// Captures the innermost [`Recorder`] installed on the current thread as
/// a cheap `Send + Sync` [`Scope`] handle. Capture it before fanning work
/// out to rayon workers and [`Scope::enter`] it inside each worker closure
/// so the workers' counts land in the same recorder as the calling
/// thread's.
#[inline(always)]
pub fn scope() -> Scope {
    imp::scope()
}

/// True when the `metrics` feature is compiled in.
#[inline(always)]
pub const fn enabled() -> bool {
    imp::ENABLED
}

/// Serialises measured sections that assert on exact **global** counter
/// values.
///
/// Deprecated: install a per-run [`Recorder`] instead — its counters are
/// private to the run, so no cross-run serialization is needed and tests
/// can run on as many threads as the harness likes. With metrics disabled
/// this is a unit value.
#[deprecated(
    note = "install a per-run `Recorder` instead of serialising on the global aggregate"
)]
#[inline(always)]
#[allow(clippy::unit_arg)] // the no-op imp's guard is a unit by design
pub fn exclusive() -> impl Drop + Sized {
    struct Guard<T>(#[allow(dead_code)] T);
    impl<T> Drop for Guard<T> {
        fn drop(&mut self) {}
    }
    Guard(imp::exclusive())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_shape_is_stable() {
        let snap = Snapshot {
            counters: vec![("kernel_evals", 12), ("sort_comparisons", 3)],
            phases: vec![PhaseStat { name: "cv.sort".into(), calls: 2, nanos: 1_500_000 }],
        };
        let json = snap.to_json();
        assert!(json.contains("\"kernel_evals\":12"));
        assert!(json.contains("\"cv.sort\":{\"calls\":2,\"cpu_seconds\":0.001500000"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let snap = Snapshot::default();
        assert_eq!(snap.counter("kernel_evals"), 0);
        assert_eq!(snap.phase_nanos("cv.sort"), 0);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn recorder_captures_adds_local_counters_and_phases() {
        let run = Recorder::new();
        {
            let _scope = run.install();
            add(Counter::KernelEvals, 5);
            add(Counter::KernelEvals, 7);
            {
                let mut local = LocalCounter::new(Counter::SortComparisons);
                local.incr(3);
                local.incr(4);
            }
            for _ in 0..3 {
                let _p = phase("test.phase");
                std::hint::black_box(0u64);
            }
        }
        assert_eq!(run.get(Counter::KernelEvals), 12);
        assert_eq!(run.get(Counter::SortComparisons), 7);
        let snap = run.snapshot();
        assert_eq!(snap.counter("kernel_evals"), 12);
        let stat = snap.phases.iter().find(|p| p.name == "test.phase").unwrap();
        assert_eq!(stat.calls, 3);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn events_outside_the_scope_do_not_reach_the_recorder() {
        let run = Recorder::new();
        add(Counter::LooTermsSkipped, 100); // before install
        {
            let _scope = run.install();
            add(Counter::LooTermsSkipped, 1);
        }
        add(Counter::LooTermsSkipped, 100); // after the guard dropped
        assert_eq!(run.get(Counter::LooTermsSkipped), 1);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn nested_recorders_route_to_the_innermost() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _og = outer.install();
        add(Counter::ObjectiveEvals, 2);
        {
            let _ig = inner.install();
            add(Counter::ObjectiveEvals, 40);
        }
        add(Counter::ObjectiveEvals, 300);
        assert_eq!(inner.get(Counter::ObjectiveEvals), 40);
        assert_eq!(outer.get(Counter::ObjectiveEvals), 302);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn scope_carries_the_recorder_across_threads() {
        let run = Recorder::new();
        let _guard = run.install();
        let scope = scope();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _in_scope = scope.enter();
                    for _ in 0..1000 {
                        add(Counter::MemTransactions, 1);
                    }
                });
            }
        });
        assert_eq!(run.get(Counter::MemTransactions), 8_000);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn concurrent_recorders_do_not_interleave() {
        let totals: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    s.spawn(move || {
                        let run = Recorder::new();
                        let _g = run.install();
                        for _ in 0..500 {
                            add(Counter::KernelEvals, t + 1);
                        }
                        run.get(Counter::KernelEvals)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(totals, vec![500, 1000, 1500, 2000]);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn global_aggregate_still_accumulates() {
        // The free functions keep working against the global aggregate —
        // deltas only, since other tests run concurrently against it.
        let before = get(Counter::GpuSimCycles);
        add(Counter::GpuSimCycles, 17);
        assert!(get(Counter::GpuSimCycles) >= before + 17);
        assert!(snapshot().counter("gpu_sim_cycles") >= before + 17);
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_metrics_are_inert() {
        add(Counter::KernelEvals, 99);
        assert_eq!(get(Counter::KernelEvals), 0);
        assert!(snapshot().counters.is_empty());
        assert!(!enabled());

        let run = Recorder::new();
        let _g = run.install();
        add(Counter::KernelEvals, 99);
        assert_eq!(run.get(Counter::KernelEvals), 0);
        assert!(run.snapshot().counters.is_empty());
        let _in = scope().enter();
    }
}
