//! # kcv-obs — zero-cost observability for the kernelcv workspace
//!
//! The paper's headline claims are *operation counts*: the sorted sweep does
//! `O(n² log n)` work where the naive grid search does `O(k·n²)`, and the
//! GPU wins by the volume of memory transactions it avoids. This crate makes
//! those counts observable: global atomic **op-counters** ([`Counter`]),
//! scoped **phase timers** ([`phase`]), and a machine-readable [`Snapshot`]
//! that `kcv-bench` serialises into `results/BENCH_report.json` so perf can
//! be diffed PR-over-PR.
//!
//! ## Zero cost by default
//!
//! Everything here is behind the `metrics` cargo feature. Without it, every
//! function in this crate is an empty `#[inline(always)]` stub: a counted
//! hot loop carries no atomic traffic, no timer syscalls, and (after
//! optimisation) no residual arithmetic. Downstream crates forward the
//! feature (`kcv-core/metrics`, `kcv-gpu-sim/metrics`,
//! `kcv-bench/metrics`), so one `--features metrics` at the top enables the
//! whole pipeline.
//!
//! ## Counting discipline
//!
//! Hot loops must not hit a shared atomic per iteration. Batch with
//! [`LocalCounter`] (one atomic add on drop) or accumulate a local `u64`
//! and [`add`] it once per call.
//!
//! ```
//! use kcv_obs::{add, phase, snapshot, reset, Counter, LocalCounter};
//!
//! reset();
//! {
//!     let _sweep = phase("cv.sweep");
//!     let mut evals = LocalCounter::new(Counter::KernelEvals);
//!     for _ in 0..100 {
//!         evals.incr(1); // no atomic traffic here
//!     }
//! } // LocalCounter and the phase guard flush on drop
//! add(Counter::SortComparisons, 42);
//!
//! let snap = snapshot();
//! // With `--features metrics` the snapshot holds the counts; without it
//! // the calls above compiled to nothing and the snapshot is empty.
//! if kcv_obs::enabled() {
//!     assert_eq!(snap.counter("kernel_evals"), 100);
//!     assert_eq!(snap.counter("sort_comparisons"), 42);
//! } else {
//!     assert_eq!(snap.counter("kernel_evals"), 0);
//! }
//! assert!(snap.to_json().starts_with('{'));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// The operation classes the CV pipeline counts.
///
/// The names map to the paper's cost analysis (§III–§IV): kernel
/// evaluations are the unit of the naive `O(k·n²)` bound, sort comparisons
/// the `O(n log n)` per-observation sort, skipped LOO terms the saving from
/// compact support, and memory transactions the currency of the GPU cost
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Pointwise kernel-weight evaluations `K((X_i − X_l)/h)` (naive
    /// strategies) or absorbed neighbour terms (sorted sweep — each
    /// neighbour enters the running power sums exactly once per
    /// observation, which is the sweep's whole point).
    KernelEvals = 0,
    /// Key comparisons performed by the per-observation distance sorts
    /// (host quicksort and the simulated device sort).
    SortComparisons = 1,
    /// Leave-one-out sum terms *never touched* because the kernel's compact
    /// support excluded them — work the naive evaluation would have spent
    /// multiplying by zero.
    LooTermsSkipped = 2,
    /// Full `CV_lc(h)` objective evaluations by the numerical-optimisation
    /// selectors (the paper's Program 1/2 cost unit).
    ObjectiveEvals = 3,
    /// Simulated global-memory transactions reported by the GPU cost model
    /// (uncoalesced reads + writes + coalesced accesses).
    MemTransactions = 4,
    /// Simulated device cycles folded in from `kcv-gpu-sim` launch reports
    /// (rounded to u64).
    GpuSimCycles = 5,
    /// Support-window resolutions performed by the prefix-moment strategy:
    /// one per `(observation, bandwidth)` cell (each costs at most
    /// `~2·⌈log₂ n⌉` binary-search probes into the globally sorted `x`).
    /// The prefix strategy touches no per-neighbour terms, so its
    /// `KernelEvals` stays zero while this counter carries its `O(n·k)`
    /// cost — the contrast the perf gate asserts.
    WindowQueries = 6,
}

/// Number of counters (array sizing).
const NUM_COUNTERS: usize = 7;

impl Counter {
    /// Every counter, in serialisation order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::KernelEvals,
        Counter::SortComparisons,
        Counter::LooTermsSkipped,
        Counter::ObjectiveEvals,
        Counter::MemTransactions,
        Counter::GpuSimCycles,
        Counter::WindowQueries,
    ];

    /// The snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::KernelEvals => "kernel_evals",
            Counter::SortComparisons => "sort_comparisons",
            Counter::LooTermsSkipped => "loo_terms_skipped",
            Counter::ObjectiveEvals => "objective_evals",
            Counter::MemTransactions => "mem_transactions",
            Counter::GpuSimCycles => "gpu_sim_cycles",
            Counter::WindowQueries => "window_queries",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-time statistics for one named phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name as passed to [`phase`] (e.g. `"cv.sort"`).
    pub name: String,
    /// Number of completed phase scopes.
    pub calls: u64,
    /// Total nanoseconds spent inside the phase across all scopes.
    pub nanos: u64,
}

/// A point-in-time copy of every counter and phase timer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for each [`Counter`], in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-phase wall-time totals, in first-use order.
    pub phases: Vec<PhaseStat>,
}

impl Snapshot {
    /// Value of the named counter, `0` when absent (e.g. metrics disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Total nanoseconds of the named phase, `0` when absent.
    pub fn phase_nanos(&self, name: &str) -> u64 {
        self.phases.iter().find(|p| p.name == name).map_or(0, |p| p.nanos)
    }

    /// Serialises the snapshot as a JSON object:
    /// `{"counters": {name: value, …}, "phases": {name: {"calls": c,
    /// "seconds": s}, …}}`. Hand-rolled (the build environment has no
    /// serde); all names are static identifiers, so no string escaping is
    /// needed beyond what [`json_escape`] provides.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"phases\":{");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"seconds\":{:.9}}}",
                json_escape(&p.name),
                p.calls,
                p.nanos as f64 * 1e-9
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{Counter, PhaseStat, Snapshot, NUM_COUNTERS};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    static COUNTERS: [AtomicU64; NUM_COUNTERS] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    fn phases() -> &'static Mutex<Vec<PhaseStat>> {
        static PHASES: OnceLock<Mutex<Vec<PhaseStat>>> = OnceLock::new();
        PHASES.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn exclusive_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[inline]
    pub fn add(counter: Counter, n: u64) {
        if n > 0 {
            COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn get(counter: Counter) -> u64 {
        COUNTERS[counter as usize].load(Ordering::Relaxed)
    }

    pub fn reset() {
        for c in &COUNTERS {
            c.store(0, Ordering::Relaxed);
        }
        phases().lock().expect("phase registry poisoned").clear();
    }

    pub fn record_phase(name: &'static str, nanos: u64) {
        let mut ps = phases().lock().expect("phase registry poisoned");
        if let Some(p) = ps.iter_mut().find(|p| p.name == name) {
            p.calls += 1;
            p.nanos += nanos;
        } else {
            ps.push(PhaseStat { name: name.to_string(), calls: 1, nanos });
        }
    }

    pub fn snapshot() -> Snapshot {
        Snapshot {
            counters: Counter::ALL.iter().map(|&c| (c.name(), get(c))).collect(),
            phases: phases().lock().expect("phase registry poisoned").clone(),
        }
    }

    pub fn exclusive() -> MutexGuard<'static, ()> {
        match exclusive_lock().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// RAII phase scope.
    #[must_use = "the phase is timed until this guard drops"]
    pub struct PhaseGuard {
        name: &'static str,
        start: Instant,
    }

    pub fn phase(name: &'static str) -> PhaseGuard {
        PhaseGuard { name, start: Instant::now() }
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            record_phase(self.name, self.start.elapsed().as_nanos() as u64);
        }
    }

    /// Batching counter: increments locally, flushes one atomic add on drop.
    pub struct LocalCounter {
        counter: Counter,
        n: u64,
    }

    impl LocalCounter {
        /// Starts batching for `counter`.
        #[inline(always)]
        pub fn new(counter: Counter) -> Self {
            Self { counter, n: 0 }
        }

        /// Adds `n` to the local batch (no atomic traffic).
        #[inline(always)]
        pub fn incr(&mut self, n: u64) {
            self.n += n;
        }
    }

    impl Drop for LocalCounter {
        fn drop(&mut self) {
            add(self.counter, self.n);
        }
    }

    pub const ENABLED: bool = true;
}

#[cfg(not(feature = "metrics"))]
mod imp {
    //! No-op twins: every function is an empty `#[inline(always)]` stub the
    //! optimiser erases, so instrumentation costs nothing when disabled.
    #![allow(clippy::missing_const_for_fn)]

    use super::{Counter, Snapshot};

    #[inline(always)]
    pub fn add(_counter: Counter, _n: u64) {}

    #[inline(always)]
    pub fn get(_counter: Counter) -> u64 {
        0
    }

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// With metrics off there is no shared state to guard; hand back a unit.
    #[inline(always)]
    pub fn exclusive() {}

    /// Unit-like guard; dropping it does nothing.
    #[must_use = "the phase is timed until this guard drops"]
    pub struct PhaseGuard;

    #[inline(always)]
    pub fn phase(_name: &'static str) -> PhaseGuard {
        PhaseGuard
    }

    /// Unit-like local counter; `incr` compiles away.
    pub struct LocalCounter;

    impl LocalCounter {
        /// Creates an inert counter (metrics disabled).
        #[inline(always)]
        pub fn new(_counter: Counter) -> Self {
            Self
        }

        /// Discards the increment (metrics disabled).
        #[inline(always)]
        pub fn incr(&mut self, _n: u64) {}
    }

    pub const ENABLED: bool = false;
}

/// RAII guard returned by [`phase`]; the scope is timed until it drops.
pub use imp::PhaseGuard;

/// Batching counter for hot loops: increment locally with
/// [`LocalCounter::incr`], pay one atomic add when it drops. A no-op type
/// without the `metrics` feature.
pub use imp::LocalCounter;

/// Adds `n` to a global counter (no-op without the `metrics` feature).
#[inline(always)]
pub fn add(counter: Counter, n: u64) {
    imp::add(counter, n);
}

/// Current value of a counter (always `0` without the `metrics` feature).
#[inline(always)]
pub fn get(counter: Counter) -> u64 {
    imp::get(counter)
}

/// Clears every counter and phase timer.
#[inline(always)]
pub fn reset() {
    imp::reset();
}

/// Starts timing a named phase; the scope ends when the returned guard
/// drops. Nested and concurrent scopes of the same name accumulate.
#[inline(always)]
pub fn phase(name: &'static str) -> PhaseGuard {
    imp::phase(name)
}

/// Copies the current counters and phase timers.
#[inline(always)]
pub fn snapshot() -> Snapshot {
    imp::snapshot()
}

/// True when the `metrics` feature is compiled in.
#[inline(always)]
pub const fn enabled() -> bool {
    imp::ENABLED
}

/// Serialises tests and measured sections that assert on exact global
/// counter values: hold the returned guard for the duration of the measured
/// region so concurrently running instrumented code (e.g. other tests in
/// the same binary) cannot pollute the delta. With metrics disabled this is
/// a unit value.
#[inline(always)]
#[allow(clippy::unit_arg)] // the no-op imp's guard is a unit by design
pub fn exclusive() -> impl Drop + Sized {
    struct Guard<T>(#[allow(dead_code)] T);
    impl<T> Drop for Guard<T> {
        fn drop(&mut self) {}
    }
    Guard(imp::exclusive())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_shape_is_stable() {
        let snap = Snapshot {
            counters: vec![("kernel_evals", 12), ("sort_comparisons", 3)],
            phases: vec![PhaseStat { name: "cv.sort".into(), calls: 2, nanos: 1_500_000 }],
        };
        let json = snap.to_json();
        assert!(json.contains("\"kernel_evals\":12"));
        assert!(json.contains("\"cv.sort\":{\"calls\":2,\"seconds\":0.001500000"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let snap = Snapshot::default();
        assert_eq!(snap.counter("kernel_evals"), 0);
        assert_eq!(snap.phase_nanos("cv.sort"), 0);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn counters_accumulate_and_reset() {
        let _guard = exclusive();
        reset();
        add(Counter::KernelEvals, 5);
        add(Counter::KernelEvals, 7);
        {
            let mut local = LocalCounter::new(Counter::SortComparisons);
            local.incr(3);
            local.incr(4);
        }
        assert_eq!(get(Counter::KernelEvals), 12);
        assert_eq!(get(Counter::SortComparisons), 7);
        let snap = snapshot();
        assert_eq!(snap.counter("kernel_evals"), 12);
        reset();
        assert_eq!(get(Counter::KernelEvals), 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn phases_record_calls_and_time() {
        let _guard = exclusive();
        reset();
        for _ in 0..3 {
            let _p = phase("test.phase");
            std::hint::black_box(0u64);
        }
        let snap = snapshot();
        let stat = snap.phases.iter().find(|p| p.name == "test.phase").unwrap();
        assert_eq!(stat.calls, 3);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn counting_is_thread_safe() {
        let _guard = exclusive();
        reset();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        add(Counter::MemTransactions, 1);
                    }
                });
            }
        });
        assert_eq!(get(Counter::MemTransactions), 8_000);
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_metrics_are_inert() {
        add(Counter::KernelEvals, 99);
        assert_eq!(get(Counter::KernelEvals), 0);
        assert!(snapshot().counters.is_empty());
        assert!(!enabled());
    }
}
